//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace
//! vendors the subset of proptest it uses: the [`proptest!`] macro,
//! `prop_assert*`, [`strategy::Strategy`] with `prop_map`,
//! [`prop_oneof!`], `prop::collection::vec`, `prop::sample::select`,
//! [`arbitrary::any`], and range strategies.
//!
//! Differences from upstream, by design:
//!
//! - **no shrinking** — a failing case reports its inputs and stops;
//! - **deterministic seeding** — the RNG seed derives from the test's
//!   name, so every run explores the identical case sequence (CI and
//!   local runs agree);
//! - strategies generate values directly instead of building value
//!   trees.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-case execution: configuration, RNG, and failure plumbing.
pub mod test_runner {
    use std::fmt;

    /// How many cases each property runs (upstream default: 256).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed `prop_assert*` inside a property body.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Wraps a failure message.
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// The deterministic per-test RNG (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }
    }

    /// Drives one property: owns the RNG and the case count.
    pub struct TestRunner {
        rng: TestRng,
        cases: u32,
    }

    impl TestRunner {
        /// Creates a runner whose seed is derived (FNV-1a) from the
        /// property's name, so case sequences are stable across runs.
        pub fn new(config: &ProptestConfig, name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRunner {
                rng: TestRng::new(seed),
                cases: config.cases,
            }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// The case RNG.
        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// Generates values of an associated type from an RNG.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Object-safe strategy facade, used by [`Union`] / `prop_oneof!`.
    pub trait DynStrategy {
        /// The generated value type.
        type Value;
        /// Draws one value.
        fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Boxes a strategy for use in a [`Union`] (`prop_oneof!` plumbing).
    pub fn boxed<S>(s: S) -> Box<dyn DynStrategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Chooses uniformly among several strategies of one value type.
    pub struct Union<V> {
        options: Vec<Box<dyn DynStrategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Builds a union; `options` must be non-empty.
        pub fn new(options: Vec<Box<dyn DynStrategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].dyn_generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// `any::<T>()` support for primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy over `T`'s full domain.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// Combinator namespaces mirroring upstream's `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Length bounds for [`vec`].
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    lo: n,
                    hi_inclusive: n,
                }
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty vec size range");
                SizeRange {
                    lo: r.start,
                    hi_inclusive: r.end - 1,
                }
            }
        }

        impl From<core::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: core::ops::RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty vec size range");
                SizeRange {
                    lo: *r.start(),
                    hi_inclusive: *r.end(),
                }
            }
        }

        /// The strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi_inclusive - self.size.lo) as u64;
                let len = self.size.lo + rng.below(span + 1) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A strategy for vectors of `element` with length in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// The strategy returned by [`select`].
        pub struct Select<T: Clone> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.below(self.options.len() as u64) as usize].clone()
            }
        }

        /// A strategy choosing uniformly from `options` (non-empty).
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select needs at least one option");
            Select { options }
        }
    }
}

/// The conventional glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. Each `fn` body runs once per generated case;
/// arguments are drawn from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(&config, stringify!($name));
            for case in 0..runner.cases() {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), runner.rng());)+
                let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "property {} failed at case {case}: {e}",
                        stringify!($name)
                    );
                }
            }
        }
    )*};
}

/// Asserts inside a property body; failure reports the case and stops.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{}: {:?} != {:?}", format!($($fmt)*), l, r);
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: both sides are {:?}", l);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "{}: both sides are {:?}", format!($($fmt)*), l);
    }};
}

/// Chooses uniformly among several strategies with one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(x in 3u32..10, y in 1u8..=4, b in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
            let _ = b;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn select_and_oneof_work(
            w in prop::sample::select(vec![1u32, 2, 3]),
            z in prop_oneof![(0u32..1).prop_map(|_| 10u32), (0u32..1).prop_map(|_| 20u32)],
        ) {
            prop_assert!((1..=3).contains(&w));
            prop_assert!(z == 10 || z == 20, "z = {z}");
            prop_assert_eq!(z % 10, 0);
            prop_assert_ne!(z, 15);
        }
    }

    #[test]
    fn deterministic_across_runners() {
        use crate::strategy::Strategy;
        use crate::test_runner::{ProptestConfig, TestRunner};
        let cfg = ProptestConfig::with_cases(4);
        let mut a = TestRunner::new(&cfg, "name");
        let mut b = TestRunner::new(&cfg, "name");
        let s = 0u64..1000;
        for _ in 0..64 {
            assert_eq!(s.generate(a.rng()), s.generate(b.rng()));
        }
    }
}
