//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this workspace
//! vendors the benchmark-facing subset it uses: [`Criterion`],
//! benchmark groups, [`Throughput`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a
//! plain wall-clock mean over a fixed warm-up + sample schedule — good
//! enough for the relative comparisons the bench binaries print, with
//! none of upstream's statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to the measured closure; call [`Bencher::iter`].
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over a warm-up pass plus measured iterations.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up and calibration: find an iteration count that runs
        // for roughly 100 ms, capped to keep huge routines bounded.
        let probe = Instant::now();
        std::hint::black_box(routine());
        let once = probe.elapsed().max(Duration::from_nanos(50));
        let target = Duration::from_millis(100);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the group's per-iteration throughput annotation.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark.
    pub fn bench_function<I: Into<BenchmarkId>>(&mut self, id: I, mut f: impl FnMut(&mut Bencher)) {
        self.run(id.into(), &mut f);
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized>(
        &mut self,
        id: I,
        input: &T,
        mut f: impl FnMut(&mut Bencher, &T),
    ) {
        self.run(id.into(), &mut |b| f(b, input));
    }

    fn run(&mut self, id: BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let per_iter = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.elapsed / (b.iters as u32)
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
                format!("  {:>12.0} elem/s", n as f64 / per_iter.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
                format!("  {:>12.0} B/s", n as f64 / per_iter.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<24} {:>12.3?}/iter  ({} iters){rate}",
            self.name, id.label, per_iter, b.iters
        );
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        BenchmarkGroup {
            name,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let mut g = self.benchmark_group(name.to_string());
        g.bench_function(name, f);
        g.finish();
    }
}

/// Re-export matching upstream's `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(4));
        g.bench_function("id", |b| b.iter(|| black_box(2 + 2)));
        g.bench_with_input(BenchmarkId::from_parameter(8), &8u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
