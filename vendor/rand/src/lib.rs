//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace
//! vendors the small API subset it actually uses: [`SeedableRng`],
//! [`Rng::gen_bool`] / [`Rng::gen_range`], and [`rngs::SmallRng`].
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! deterministic, and statistically solid for simulation workloads.
//! Streams do **not** match upstream `rand`; every consumer in this
//! repository only relies on seeded determinism, not on specific
//! sequences.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Seeding support: the subset of upstream's `SeedableRng` we use.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling from a range, modelled on upstream's `SampleRange`.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods, modelled on upstream's `Rng`.
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        unit_f64(self.next_u64()) < p
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Multiply-free unbiased-enough integer narrowing (Lemire's method
/// without the rejection loop; the tiny modulo bias is irrelevant for
/// simulation inputs and keeps sampling branch-free and deterministic).
fn narrow(bits: u64, span: u64) -> u64 {
    ((u128::from(bits) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(narrow(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(narrow(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Bundled generators, mirroring upstream's `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro authors' guidance.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(1u8..=4);
            assert!((1..=4).contains(&w));
            let f = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.1)).count();
        assert!((500..1_500).contains(&hits), "got {hits} hits at p=0.1");
        assert!((0..10_000).all(|_| r.gen_bool(1.0)));
        assert!(!(0..10_000).any(|_| r.gen_bool(0.0)));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        use super::RngCore;
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
