//! Quickstart: build a program, run it under all four region-selection
//! algorithms, and print the paper's metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use regionsel::core::select::SelectorKind;
use regionsel::core::{SimConfig, Simulator};
use regionsel::program::Executor;
use regionsel::program::patterns::ScenarioBuilder;

fn main() {
    // A small program: a hot loop that calls a helper function at a
    // lower address (so the call is a backward branch) and flips an
    // unbiased coin each iteration.
    let mut s = ScenarioBuilder::new(42);
    let main = s.function("main", 0x40_0000);
    let helper = s.function("helper", 0x1000);

    let head = s.block(main, 3);
    s.call(head, helper);
    let coin = s.diamond(main, 0.5, 2); // unbiased accept/reject
    let _ = coin;
    let latch = s.block(main, 1);
    s.branch_trips(latch, head, 100_000);
    let done = s.block(main, 0);
    s.ret(done);

    let h0 = s.block(helper, 4);
    s.ret(h0);

    let (program, spec) = s.build().expect("scenario is well-formed");
    println!(
        "program: {} functions, {} blocks, {} instructions\n",
        program.functions().len(),
        program.blocks().len(),
        program.inst_count()
    );

    let config = SimConfig::default();
    for kind in SelectorKind::all() {
        // The executor is deterministic for a given seed, so every
        // selector sees the identical dynamic execution.
        let selector = kind.make(&program, &config);
        let mut sim = Simulator::new(&program, selector, &config);
        sim.run(Executor::new(&program, spec.clone()));
        println!("{}\n", sim.report());
    }

    println!("Things to look for, mirroring the paper:");
    println!(" - LEI's trace spans the call-containing cycle; NET's cannot;");
    println!(" - the combined selectors keep both coin-flip sides in one");
    println!("   region, cutting region transitions and exit stubs.");
}
