//! Paper Figure 2: a loop with a function call on its dominant path.
//!
//! "The control flow graph ... contains a loop with a function call on
//! its dominant path (ABDEF). NET requires two traces (ABD and EF) to
//! span the cycle. ... Ideally, only one trace would be selected, and
//! it would require two fewer exit stubs."
//!
//! This example reconstructs exactly that CFG — blocks A, B, D in the
//! caller, E, F in a callee placed at a *lower* address (so the call is
//! a backward branch) — runs NET and LEI on it, and prints the selected
//! regions.
//!
//! ```sh
//! cargo run --release --example interprocedural_cycle
//! ```

use regionsel::core::select::SelectorKind;
use regionsel::core::{SimConfig, Simulator};
use regionsel::program::patterns::ScenarioBuilder;
use regionsel::program::{Addr, Executor};

fn main() {
    // Caller at a high address; callee (E, F) at a low address, as in
    // the figure ("we assume that the function beginning with E is at a
    // lower address, so the call is a backward branch").
    let mut s = ScenarioBuilder::new(2);
    let caller = s.function("loop_fn", 0x40_0000);
    let callee = s.function("callee", 0x1000);

    let a = s.block(caller, 2); // A: loop header
    let b = s.block(caller, 1); // B: rarely-skipped body
    let d = s.block(caller, 1); // D: calls E
    s.branch_p(a, d, 0.02); // A occasionally skips straight to D
    s.call(d, callee);
    let f_latch = s.block(caller, 1); // F' in the caller: the back edge
    s.branch_trips(f_latch, a, 20_000);
    let out = s.block(caller, 0);
    s.ret(out);

    let e = s.block(callee, 2); // E ... F
    s.ret(e);

    let (program, spec) = s.build().expect("figure 2 CFG is well-formed");
    let names: Vec<(Addr, &str)> = vec![
        (program.block(a).start(), "A"),
        (program.block(b).start(), "B"),
        (program.block(d).start(), "D"),
        (program.block(e).start(), "E/F"),
        (program.block(f_latch).start(), "F'"),
        (program.block(out).start(), "out"),
    ];
    let name_of = |addr: Addr| {
        names
            .iter()
            .find(|(s, _)| *s == addr)
            .map(|(_, n)| *n)
            .unwrap_or("?")
    };

    let config = SimConfig::default();
    for kind in [SelectorKind::Net, SelectorKind::Lei] {
        let mut sim = Simulator::new(&program, kind.make(&program, &config), &config);
        sim.run(Executor::new(&program, spec.clone()));
        let report = sim.report();
        println!("=== {kind} selected {} region(s) ===", sim.cache().len());
        for r in sim.cache().regions() {
            let path: Vec<&str> = r.blocks().iter().map(|b| name_of(b.start())).collect();
            println!(
                "  {}: [{}]  stubs {}  spans cycle: {}",
                r.id(),
                path.join(" "),
                r.stub_count(),
                r.spans_cycle()
            );
        }
        println!(
            "  region transitions: {}   total exit stubs: {}\n",
            report.region_transitions,
            report.stub_count()
        );
    }

    println!("As in the paper's Figure 2: NET stops each trace at the backward");
    println!("call or return, so iterating bounces between two regions; LEI's");
    println!("single trace spans the whole interprocedural cycle A B D E/F F'.");
}
