//! Paper Figure 3: trace selection for simple nested loops.
//!
//! "NET selects three traces and duplicates the inner loop. An ideal
//! trace-selection algorithm would avoid duplication of the inner loop
//! and separation of the outer-loop blocks."
//!
//! The CFG is the figure's: outer loop A → B(inner self-loop) → C → A.
//! Block B is its own single-block cycle. Under NET, B is selected
//! first; then C; and the trace for A grows across the loop back edge
//! and includes *another copy* of B. Under LEI, B is selected as a
//! single-block cycle and the second trace stops when it reaches B's
//! region — no duplication.
//!
//! ```sh
//! cargo run --release --example nested_loops
//! ```

use regionsel::core::select::SelectorKind;
use regionsel::core::{SimConfig, Simulator};
use regionsel::program::patterns::ScenarioBuilder;
use regionsel::program::{Addr, Executor};
use std::collections::HashMap;

fn main() {
    let mut s = ScenarioBuilder::new(5);
    let f = s.function("nest", 0x1000);
    let a = s.block(f, 2); // A: outer loop header
    let b = s.block(f, 2); // B: inner loop (self-loop)
    s.branch_trips(b, b, 12);
    let c = s.block(f, 2); // C: outer latch, branches back to A
    s.branch_trips(c, a, 30_000);
    let out = s.block(f, 0);
    s.ret(out);

    let (program, spec) = s.build().expect("figure 3 CFG is well-formed");
    let labels: HashMap<Addr, &str> = HashMap::from([
        (program.block(a).start(), "A"),
        (program.block(b).start(), "B"),
        (program.block(c).start(), "C"),
        (program.block(out).start(), "out"),
    ]);

    let config = SimConfig::default();
    for kind in [SelectorKind::Net, SelectorKind::Lei] {
        let mut sim = Simulator::new(&program, kind.make(&program, &config), &config);
        sim.run(Executor::new(&program, spec.clone()));
        println!("=== {kind} ===");
        let mut copies_of_b = 0;
        for r in sim.cache().regions() {
            let path: Vec<&str> = r.blocks().iter().map(|blk| labels[&blk.start()]).collect();
            copies_of_b += r
                .blocks()
                .iter()
                .filter(|blk| labels[&blk.start()] == "B")
                .count();
            println!(
                "  {}: [{}]  spans cycle: {}",
                r.id(),
                path.join(" "),
                r.spans_cycle()
            );
        }
        println!("  copies of inner-loop block B in the cache: {copies_of_b}");
        println!("  instructions copied: {}\n", sim.report().insts_copied());
    }

    println!("NET's trace for the outer loop duplicates the first iteration of");
    println!("the inner loop (a second copy of B); LEI ends a trace when the");
    println!("next block already starts a region, so B is copied exactly once.");
}
