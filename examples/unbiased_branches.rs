//! Paper Figure 4: an unbiased branch followed by a biased one.
//!
//! "Traces selected by NET for an unbiased branch (ending A) followed by
//! a biased branch (ending D) ... The unbiased branch targets are
//! separated, and two blocks and an exit stub are duplicated."
//!
//! The CFG: A splits 50/50 to B or C; both rejoin at D, which branches
//! (90/10) over E to F. NET selects one trace per direction of A and
//! duplicates the D→F tail in each. Trace combination observes both
//! paths and builds one region containing A, B, C, D, F with no
//! duplication — "the exit stub to block B is replaced by the block
//! itself, and there is no need to duplicate the exit stub to E".
//!
//! ```sh
//! cargo run --release --example unbiased_branches
//! ```

use regionsel::core::select::SelectorKind;
use regionsel::core::{SimConfig, Simulator};
use regionsel::program::patterns::ScenarioBuilder;
use regionsel::program::{Addr, Executor};
use std::collections::HashMap;

fn main() {
    let mut s = ScenarioBuilder::new(9);
    let f = s.function("diamond", 0x1000);
    // Loop wrapper so the diamond gets hot.
    let head = s.block(f, 1);
    let a = s.block(f, 1); // A: unbiased split (taken -> C)
    let b = s.block(f, 2); // B: fall-through side, jumps to D
    let c = s.block(f, 2); // C: taken side, falls into D
    let d = s.block(f, 1); // D: join + biased split (taken -> E, 10%)
    let fff = s.block(f, 1); // F: hot tail (D's fall-through)
    let e = s.block(f, 2); // E: rare side, falls into the latch
    let latch = s.block(f, 1);
    let out = s.block(f, 0);

    let _ = head; // falls into A
    s.branch_p(a, c, 0.5); // unbiased
    s.jump(b, d);
    // C falls through into D.
    s.branch_p(d, e, 0.1); // biased: E is rare, F is the hot tail
    s.jump(fff, latch);
    // E falls through into the latch.
    let _ = e;
    s.branch_trips(latch, head, 40_000);
    s.ret(out);

    let (program, spec) = s.build().expect("figure 4 CFG is well-formed");
    let labels: HashMap<Addr, &str> = HashMap::from([
        (program.block(head).start(), "H"),
        (program.block(a).start(), "A"),
        (program.block(b).start(), "B"),
        (program.block(c).start(), "C"),
        (program.block(d).start(), "D"),
        (program.block(e).start(), "E"),
        (program.block(fff).start(), "F"),
        (program.block(latch).start(), "L"),
        (program.block(out).start(), "out"),
    ]);

    let config = SimConfig::default();
    for kind in [SelectorKind::Net, SelectorKind::CombinedNet] {
        let mut sim = Simulator::new(&program, kind.make(&program, &config), &config);
        sim.run(Executor::new(&program, spec.clone()));
        let rep = sim.report();
        println!("=== {kind} ===");
        let mut block_copies: HashMap<&str, usize> = HashMap::new();
        for r in sim.cache().regions() {
            let path: Vec<&str> = r.blocks().iter().map(|blk| labels[&blk.start()]).collect();
            for p in &path {
                *block_copies.entry(p).or_insert(0) += 1;
            }
            println!(
                "  {}: [{}]  stubs {}",
                r.id(),
                path.join(" "),
                r.stub_count()
            );
        }
        let dup: Vec<String> = ["D", "F"]
            .iter()
            .map(|n| format!("{n}x{}", block_copies.get(n).copied().unwrap_or(0)))
            .collect();
        println!(
            "  copies of the shared tail: {}   stubs {}   transitions {}\n",
            dup.join(" "),
            rep.stub_count(),
            rep.region_transitions
        );
    }

    println!("NET duplicates the D/F tail behind both sides of the unbiased");
    println!("branch; combined NET keeps one copy of each block, replaces the");
    println!("stub to B with block B itself, and control stays in one region");
    println!("whichever way the coin lands.");
}
