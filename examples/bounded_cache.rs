//! Extension demo: region selection under a bounded code cache.
//!
//! The paper assumes an unbounded cache but predicts (§2.3) that its
//! algorithms help bounded systems because they select fewer regions
//! and duplicate less. This example shrinks the cache until it thrashes
//! and shows how each selector copes.
//!
//! ```sh
//! cargo run --release --example bounded_cache
//! ```

use regionsel::core::select::SelectorKind;
use regionsel::core::{SimConfig, Simulator};
use regionsel::program::Executor;
use regionsel::workloads::{Scale, suite};

fn main() {
    let workload = suite()
        .into_iter()
        .find(|w| w.name() == "eon")
        .expect("eon exists");
    println!("workload: {} ({})\n", workload.name(), workload.summary());
    println!(
        "{:>10}  {:<13} {:>8} {:>9} {:>10}",
        "capacity", "selector", "flushes", "regions", "hit rate"
    );
    for capacity in [None, Some(4_000u64), Some(1_500), Some(600)] {
        for kind in SelectorKind::all() {
            let config = SimConfig {
                cache_capacity: capacity,
                ..SimConfig::default()
            };
            let (program, spec) = workload.build(7, Scale::Test);
            let mut sim = Simulator::new(&program, kind.make(&program, &config), &config);
            sim.run(Executor::new(&program, spec));
            let r = sim.report();
            let cap = capacity.map_or("unbounded".to_string(), |c| format!("{c}B"));
            println!(
                "{cap:>10}  {:<13} {:>8} {:>9} {:>9.2}%",
                kind.name(),
                r.cache_flushes,
                r.region_count(),
                100.0 * r.hit_rate()
            );
        }
        println!();
    }
    println!("Every flush throws away the whole cache (Dynamo's policy), so the");
    println!("regions column counts regenerations. Selectors that need fewer,");
    println!("larger regions keep more of the hot set cached at small capacities.");
}
