//! Render a program's CFG and the regions a selector builds on it as
//! Graphviz DOT.
//!
//! ```sh
//! cargo run --release --example visualize > /tmp/regions.dot
//! dot -Tsvg /tmp/regions.dot -o /tmp/regions.svg
//! ```
//!
//! The program is the paper's Figure 2 loop; run with `NET` or `LEI` as
//! the first argument (default `LEI`) to compare what each selects.

use regionsel::core::cache::cache_to_dot;
use regionsel::core::select::SelectorKind;
use regionsel::core::{SimConfig, Simulator};
use regionsel::program::patterns::ScenarioBuilder;
use regionsel::program::{Executor, program_to_dot};

fn main() {
    let kind = match std::env::args().nth(1).as_deref() {
        Some("NET") | Some("net") => SelectorKind::Net,
        _ => SelectorKind::Lei,
    };

    let mut s = ScenarioBuilder::new(2);
    let caller = s.function("loop_fn", 0x40_0000);
    let callee = s.function("callee", 0x1000);
    let a = s.block(caller, 2);
    s.call(a, callee);
    let latch = s.block(caller, 1);
    s.branch_trips(latch, a, 5_000);
    let out = s.block(caller, 0);
    s.ret(out);
    let e = s.block(callee, 2);
    s.ret(e);
    let (program, spec) = s.build().expect("figure 2 CFG is well-formed");

    let config = SimConfig::default();
    let mut sim = Simulator::new(&program, kind.make(&program, &config), &config);
    sim.run(Executor::new(&program, spec));

    // Two graphs in one stream; `dot` renders them as two pages.
    print!("{}", program_to_dot(&program));
    print!("{}", cache_to_dot(sim.cache()));
    eprintln!(
        "{}: {} region(s), {} transitions — pipe stdout into `dot -Tsvg`",
        kind.name(),
        sim.cache().len(),
        sim.report().region_transitions
    );
}
