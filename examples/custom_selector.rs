//! Plugging a custom region-selection algorithm into the simulator.
//!
//! The paper's framework "allows us to gather data for each
//! region-selection algorithm without modification" (§2.3, footnote 4),
//! and its conclusion mentions ongoing work to let Pin "accept a
//! user-specified trace-selection algorithm". This crate keeps the same
//! property: anything implementing
//! [`RegionSelector`](regionsel::core::select::RegionSelector) drives
//! the simulator.
//!
//! The custom algorithm here is *single-block caching*: every backward
//! branch target above a threshold becomes a one-block region — roughly
//! the simplest sound selector. Comparing it against NET shows why
//! traces matter: hit rates are similar, but the single-block scheme
//! needs far more region transitions (poor locality of execution).
//!
//! ```sh
//! cargo run --release --example custom_selector
//! ```

use regionsel::core::cache::{CodeCache, Region};
use regionsel::core::select::{Arrival, RegionSelector, SelectorKind};
use regionsel::core::{SimConfig, Simulator};
use regionsel::program::{Addr, Executor, Program};
use regionsel::workloads::{Scale, suite};
use std::collections::HashMap;

/// Caches every hot backward-branch target as a one-block region.
struct SingleBlockSelector<'p> {
    program: &'p Program,
    threshold: u32,
    counters: HashMap<Addr, u32>,
    peak: usize,
}

impl<'p> SingleBlockSelector<'p> {
    fn new(program: &'p Program, threshold: u32) -> Self {
        SingleBlockSelector {
            program,
            threshold,
            counters: HashMap::new(),
            peak: 0,
        }
    }
}

impl RegionSelector for SingleBlockSelector<'_> {
    fn on_transfer(&mut self, _: &CodeCache, _: Addr, _: Addr, _: bool) -> Vec<Region> {
        Vec::new()
    }

    fn on_arrival(&mut self, _: &CodeCache, a: Arrival) -> Vec<Region> {
        let backward = a.taken && a.src.is_some_and(|s| a.tgt.is_backward_from(s));
        if !(backward || a.from_cache_exit) {
            return Vec::new();
        }
        let c = self.counters.entry(a.tgt).or_insert(0);
        *c += 1;
        let hot = *c >= self.threshold;
        self.peak = self.peak.max(self.counters.len());
        if !hot {
            return Vec::new();
        }
        self.counters.remove(&a.tgt);
        vec![Region::trace(self.program, &[a.tgt])]
    }

    fn on_block(&mut self, _: &CodeCache, _: Addr) -> Vec<Region> {
        Vec::new()
    }

    fn counters_in_use(&self) -> usize {
        self.counters.len()
    }

    fn peak_counters(&self) -> usize {
        self.peak
    }

    fn name(&self) -> &'static str {
        "single-block"
    }
}

fn main() {
    let config = SimConfig::default();
    let workload = suite()
        .into_iter()
        .find(|w| w.name() == "gzip")
        .expect("gzip exists");
    println!("workload: {} ({})\n", workload.name(), workload.summary());

    // The custom selector.
    let (program, spec) = workload.build(7, Scale::Test);
    let mut sim = Simulator::new(
        &program,
        Box::new(SingleBlockSelector::new(&program, config.net_threshold)),
        &config,
    );
    sim.run(Executor::new(&program, spec));
    let custom = sim.report();
    println!("{custom}\n");

    // NET on the identical execution.
    let (program, spec) = workload.build(7, Scale::Test);
    let mut sim = Simulator::new(&program, SelectorKind::Net.make(&program, &config), &config);
    sim.run(Executor::new(&program, spec));
    let net = sim.report();
    println!("{net}\n");

    println!(
        "single-block regions bounce {}x as often between regions as NET's traces",
        custom.region_transitions / net.region_transitions.max(1)
    );
}
