//! Facade crate re-exporting the `regionsel` workspace.
//!
//! `regionsel` reproduces the MICRO 2005 paper *Improving Region
//! Selection in Dynamic Optimization Systems* (Hiniker, Hazelwood,
//! Smith): the NET baseline, the LEI cyclic-trace selector, and the
//! trace-combination region builder, together with the trace-driven
//! simulation framework and metrics used by the paper's evaluation.
//!
//! See the individual crates for details:
//!
//! - [`program`]: program model, behaviours and the execution engine;
//! - [`trace`]: event streams and the compact trace codec;
//! - [`core`]: code cache, interpreter simulation, NET/LEI/combination
//!   and all evaluation metrics;
//! - [`workloads`]: the twelve SPECint2000-like synthetic benchmarks;
//! - [`runtime`]: the multi-tenant serving runtime — sharded shared
//!   code cache, session scheduler, and adaptive selector policy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rsel_core as core;
pub use rsel_program as program;
pub use rsel_runtime as runtime;
pub use rsel_trace as trace;
pub use rsel_workloads as workloads;
