//! Simulation and algorithm parameters.

use crate::error::SimError;
use crate::sim::faults::FaultConfig;
use rsel_trace::AddrWidth;

/// Parameters of the simulated dynamic optimization system.
///
/// Defaults follow the paper:
///
/// - NET execution threshold 50 ("the published standard", §3.2);
/// - LEI cycle threshold `T_cyc` = 35 and history buffer size 500
///   (§3.2);
/// - trace combination observes `T_prof` = 15 traces and keeps blocks
///   occurring in at least `T_min` = 5 of them (§4.3), profiling
///   starting at `base threshold − T_prof` so regions are still
///   "selected after the same number of interpreted executions";
/// - exit stubs are charged 10 bytes in cache-size estimates (§4.3.4).
///
/// The maximum trace length is the one parameter the paper mentions but
/// does not publish (footnote 7); the default of 256 instructions is
/// large enough that real traces rarely hit it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimConfig {
    /// NET execution-count threshold before a trace is selected.
    pub net_threshold: u32,
    /// LEI cycle-completion threshold `T_cyc`.
    pub lei_threshold: u32,
    /// Number of taken branches retained in LEI's history buffer.
    pub history_size: usize,
    /// Maximum number of instructions in a NET-grown trace.
    pub max_trace_insts: usize,
    /// Number of traces observed per hot target under combination.
    pub t_prof: u32,
    /// Minimum observed-trace occurrences for a block to be kept.
    pub t_min: u32,
    /// Address width used in compact trace encodings.
    pub addr_width: AddrWidth,
    /// Bytes charged per exit stub in cache-size estimates.
    pub stub_bytes: u64,
    /// Mojo's lower execution threshold for trace-exit targets
    /// (paper §5: Mojo "uses one threshold for backward-branch targets
    /// and a lower threshold for trace exits").
    pub mojo_exit_threshold: u32,
    /// BOA's entry-point emulation threshold (paper §5: "after the
    /// entry point ... is emulated 15 times, a trace is selected").
    pub boa_threshold: u32,
    /// Wiggins/Redstone's sampling period: one interpreted block in
    /// every `wr_sample_period` is sampled as a potential trace head.
    pub wr_sample_period: u64,
    /// Samples of the same address before Wiggins/Redstone selects a
    /// trace there.
    pub wr_sample_threshold: u32,
    /// ADORE's sampling period over taken branches (its hardware PMU
    /// reads the four most recent taken branches every so often).
    pub adore_sample_period: u64,
    /// Occurrences of the same four-branch path before ADORE selects
    /// it.
    pub adore_path_threshold: u32,
    /// Code-cache capacity in estimated bytes; `None` (the paper's
    /// setting, §2.3) means unbounded. Bounded caches flush completely
    /// when an insertion would overflow.
    pub cache_capacity: Option<u64>,
    /// Fault-injection schedule (see [`crate::sim::faults`]). The
    /// default has every rate at zero, which makes the fault layer
    /// completely inert: runs are bit-identical to a simulator without
    /// it.
    pub faults: FaultConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            net_threshold: 50,
            lei_threshold: 35,
            history_size: 500,
            max_trace_insts: 256,
            t_prof: 15,
            t_min: 5,
            addr_width: AddrWidth::W32,
            stub_bytes: 10,
            mojo_exit_threshold: 25,
            boa_threshold: 15,
            wr_sample_period: 97,
            wr_sample_threshold: 8,
            adore_sample_period: 61,
            adore_path_threshold: 4,
            cache_capacity: None,
            faults: FaultConfig::default(),
        }
    }
}

impl SimConfig {
    /// Profiling start threshold `T_start` for combined NET
    /// (`net_threshold − t_prof`, clamped at 1).
    pub fn net_t_start(&self) -> u32 {
        self.net_threshold.saturating_sub(self.t_prof).max(1)
    }

    /// Profiling start threshold `T_start` for combined LEI
    /// (`lei_threshold − t_prof`, clamped at 1).
    pub fn lei_t_start(&self) -> u32 {
        self.lei_threshold.saturating_sub(self.t_prof).max(1)
    }

    /// Validates cross-parameter consistency, reporting the first
    /// violated constraint.
    pub fn check(&self) -> Result<(), SimError> {
        fn ensure(ok: bool, what: &'static str) -> Result<(), SimError> {
            if ok {
                Ok(())
            } else {
                Err(SimError::InvalidConfig(what))
            }
        }
        ensure(self.net_threshold > 0, "net_threshold must be positive")?;
        ensure(self.lei_threshold > 0, "lei_threshold must be positive")?;
        ensure(self.history_size > 0, "history_size must be positive")?;
        ensure(self.max_trace_insts > 0, "max_trace_insts must be positive")?;
        ensure(self.t_prof > 0, "t_prof must be positive")?;
        ensure(
            self.t_min > 0 && self.t_min <= self.t_prof,
            "need 0 < t_min <= t_prof",
        )?;
        ensure(
            self.mojo_exit_threshold > 0,
            "mojo_exit_threshold must be positive",
        )?;
        ensure(self.boa_threshold > 0, "boa_threshold must be positive")?;
        ensure(
            self.wr_sample_period > 0,
            "wr_sample_period must be positive",
        )?;
        ensure(
            self.wr_sample_threshold > 0,
            "wr_sample_threshold must be positive",
        )?;
        ensure(
            self.adore_sample_period > 0,
            "adore_sample_period must be positive",
        )?;
        ensure(
            self.adore_path_threshold > 0,
            "adore_path_threshold must be positive",
        )?;
        self.faults.check()
    }

    /// Validates cross-parameter consistency.
    ///
    /// # Panics
    ///
    /// Panics on the first constraint [`SimConfig::check`] reports.
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SimConfig::default();
        assert_eq!(c.net_threshold, 50);
        assert_eq!(c.lei_threshold, 35);
        assert_eq!(c.history_size, 500);
        assert_eq!(c.t_prof, 15);
        assert_eq!(c.t_min, 5);
        assert_eq!(c.stub_bytes, 10);
        c.validate();
    }

    #[test]
    fn combined_thresholds_select_at_same_execution_count() {
        let c = SimConfig::default();
        // "combined NET begins profiling after 35 executions rather
        // than 50, and combined LEI begins after 20 rather than 35"
        assert_eq!(c.net_t_start(), 35);
        assert_eq!(c.lei_t_start(), 20);
        assert_eq!(c.net_t_start() + c.t_prof, c.net_threshold);
        assert_eq!(c.lei_t_start() + c.t_prof, c.lei_threshold);
    }

    #[test]
    #[should_panic(expected = "t_min")]
    fn t_min_above_t_prof_rejected() {
        let c = SimConfig {
            t_min: 20,
            ..SimConfig::default()
        };
        c.validate();
    }

    #[test]
    fn default_faults_are_inert_and_checked() {
        let c = SimConfig::default();
        assert!(!c.faults.active());
        assert!(c.check().is_ok());
        let bad = SimConfig {
            faults: FaultConfig {
                smc_max_span: 0,
                ..FaultConfig::default()
            },
            ..SimConfig::default()
        };
        assert!(bad.check().is_err());
    }

    #[test]
    fn t_start_clamps_at_one() {
        let c = SimConfig {
            net_threshold: 5,
            lei_threshold: 5,
            ..SimConfig::default()
        };
        assert_eq!(c.net_t_start(), 1);
        assert_eq!(c.lei_t_start(), 1);
    }
}
