//! Batch replay of decoded streams, with buffer recycling and a
//! guarded spin-phase fast-forward.
//!
//! The matrix harness replays one recording through many selectors;
//! this module is the hot path of that fan-out. It consumes a
//! [`DecodedStream`] (decode-once struct-of-arrays, `rsel_trace`)
//! directly — no per-step [`Step`](rsel_program::Step) rebuild, no
//! block-table hashing — through the same arrival core as the live
//! path, so replay stays bit-identical by construction.
//!
//! # The spin fast-forward
//!
//! Decoding marks *spin phases*: maximal runs where the stream repeats
//! the same short step cycle (`SpinPhase`). At a phase, the replay loop
//! executes one full period normally (the *warm-up*, where first-touch
//! side effects land: predecessor-set inserts, lazy-link recording),
//! snapshots the observable counters, executes a second period (the
//! *verify*), and compares. The fast-forward applies only when the
//! verify period proves itself pure-counter:
//!
//! - every instruction was served from the cache (`Δtotal == Δcache`);
//! - no interpreted taken branch, so no selector hook ran
//!   (`Δinterpreted_taken == 0` — together with the cache check this
//!   covers every selector call site in the arrival core);
//! - nothing was selected, retired, flushed, or invalidated
//!   (`Δregions_selected == Δinsts_selected == 0`, retired/cache
//!   length and flush count unchanged, resilience stats unchanged);
//! - the execution state closed the loop (mode, previous block and
//!   pending-exit flag equal to the snapshot).
//!
//! Under those guards each further period is a state-identical replay
//! of the verify period (region transitions are allowed: re-recording
//! an existing link and re-inserting an observed exit edge are
//! idempotent), so the remaining `reps - 2` periods are applied as one
//! multiplication over the measured deltas — O(1) per phase instead of
//! O(steps). Any guard failure simply falls back to stepping; the
//! fast-forward is an optimization, never a semantics change. The
//! fast-forward is disabled outright while a fault injector is active:
//! skipping steps would desynchronize the per-block fault schedule.

use super::{Mode, RegionRuntime, Simulator};
use crate::cache::RegionId;
use crate::fxhash::FxHashSet;
use crate::metrics::report::{RegionReport, ResilienceStats};
use rsel_program::Addr;
use rsel_trace::DecodedStream;

/// Recyclable per-run buffers of a [`Simulator`], so a replay fan-out
/// (many simulators built one after another on the same worker) stops
/// re-allocating its dense side tables for every cell.
///
/// Obtain one from a finished simulator with
/// [`Simulator::into_scratch`] and pass it to [`Simulator::recycled`];
/// a `Default` scratch donates nothing and behaves like
/// [`Simulator::new`].
#[derive(Debug, Default)]
pub struct ReplayScratch {
    exec_preds: Vec<FxHashSet<Addr>>,
    exit_edges: Vec<FxHashSet<(RegionId, Addr)>>,
    last_pred: Vec<u64>,
    runtime: Vec<RegionRuntime>,
    retired: Vec<RegionReport>,
}

/// The buffers of a [`ReplayScratch`], cleared and resized by
/// [`ReplayScratch::prepare`], in field-declaration order.
pub(super) type PreparedBuffers = (
    Vec<FxHashSet<Addr>>,
    Vec<FxHashSet<(RegionId, Addr)>>,
    Vec<u64>,
    Vec<RegionRuntime>,
    Vec<RegionReport>,
);

impl ReplayScratch {
    /// Clears and resizes the donated buffers for a program with
    /// `block_count` blocks, returning them ready for a fresh run.
    pub(super) fn prepare(self, block_count: usize) -> PreparedBuffers {
        let ReplayScratch {
            mut exec_preds,
            mut exit_edges,
            mut last_pred,
            mut runtime,
            mut retired,
        } = self;
        for s in &mut exec_preds {
            s.clear();
        }
        exec_preds.resize(block_count, FxHashSet::default());
        for s in &mut exit_edges {
            s.clear();
        }
        exit_edges.resize(block_count, FxHashSet::default());
        last_pred.clear();
        last_pred.resize(block_count, u64::MAX);
        runtime.clear();
        runtime.reserve(block_count);
        retired.clear();
        (exec_preds, exit_edges, last_pred, runtime, retired)
    }
}

/// The observable state compared across two consecutive periods of a
/// candidate spin phase.
struct FfSnapshot {
    total_insts: u64,
    cache_insts: u64,
    interpreted_taken: u64,
    transitions: u64,
    transition_distance_sum: u64,
    transition_page_crossings: u64,
    regions_selected: u64,
    insts_selected: u64,
    retired_len: usize,
    cache_len: usize,
    flushes: u64,
    mode: Mode,
    pending_exit: bool,
    prev_block: Option<Addr>,
    runtime_len: usize,
    /// Pre-period runtime rows of the regions the warm-up period
    /// visited: `(region index, value)`, ascending.
    runtime: Vec<(usize, RegionRuntime)>,
    resilience: ResilienceStats,
}

/// Per-period deltas of a verified spin period, applied
/// multiplicatively for the skipped repetitions.
struct FfDelta {
    insts: u64,
    transitions: u64,
    distance: u64,
    page_crossings: u64,
    /// `(region index, per-period delta)` for every region the period
    /// touched.
    runtime: Vec<(usize, RegionRuntime)>,
}

impl<'p> Simulator<'p> {
    /// Tears a finished simulator down to its recyclable buffers (see
    /// [`ReplayScratch`]).
    pub fn into_scratch(self) -> ReplayScratch {
        ReplayScratch {
            exec_preds: self.exec_preds,
            exit_edges: self.exit_edges,
            last_pred: self.last_pred,
            runtime: self.runtime,
            retired: self.retired,
        }
    }

    /// Replays a whole decoded stream through the system — equivalent
    /// to [`Simulator::run`] over the stream's steps, with the spin
    /// fast-forward enabled.
    ///
    /// The stream must have been decoded against this simulator's
    /// program.
    pub fn replay_decoded(&mut self, stream: &DecodedStream) {
        self.replay_decoded_range(stream, 0, stream.len(), true);
    }

    /// Replays steps `[start, end)` of a decoded stream (`end` is
    /// clamped to the stream length).
    ///
    /// Ranges must be fed contiguously: the caller replays `[0, a)`,
    /// then `[a, b)`, and so on, on the same simulator — the epoch
    /// pattern of the serving runtime. A *fresh* simulator (one that
    /// has executed nothing yet) may instead start anywhere in the
    /// stream: that is how a reconnecting tenant resumes from a
    /// checkpoint, and the first step simply arrives with no
    /// predecessor, like a program's first block. `fast_forward`
    /// force-enables or disables the spin fast-forward (it is
    /// additionally disabled whenever a fault injector is active);
    /// results are bit-identical either way.
    pub fn replay_decoded_range(
        &mut self,
        stream: &DecodedStream,
        start: usize,
        end: usize,
        fast_forward: bool,
    ) {
        let end = end.min(stream.len());
        if start >= end {
            return;
        }
        debug_assert!(
            start == 0
                || self.prev_block.is_none()
                || self.prev_block == Some(stream.block_start(stream.block_index(start - 1))),
            "ranges must continue the same stream on the same simulator \
             (only a fresh simulator may resume mid-stream)"
        );
        let phases = stream.phases();
        let ff = fast_forward && !self.injector.active();
        let mut pp = phases.partition_point(|ph| (ph.start as usize) < start);
        let mut i = start;
        while i < end {
            if ff && pp < phases.len() {
                let ph = phases[pp];
                let s = ph.start as usize;
                if s < i {
                    // Overtaken (a previous epoch ended mid-phase).
                    pp += 1;
                    continue;
                }
                if s == i {
                    pp += 1;
                    let p = ph.period as usize;
                    let usable = ((end - s) / p).min(ph.reps as usize);
                    if usable >= 3 {
                        i = self.ff_phase(stream, s, p, s + usable * p);
                        continue;
                    }
                }
            }
            self.exec_decoded(stream, i);
            i += 1;
        }
    }

    /// Executes step `i` of the decoded stream through the shared
    /// arrival core — the batch twin of [`Simulator::arrive`].
    #[inline]
    fn exec_decoded(&mut self, stream: &DecodedStream, i: usize) {
        let bidx = stream.block_index(i);
        let target = stream.block_start(bidx);
        let len = u64::from(stream.block_len(bidx));
        let entry = stream.entry_at(i);
        let program = self.program;
        self.arrive_with(bidx, target, len, entry, |prev| {
            if i > 0 {
                // The previous step of a contiguous replay is the
                // previous stream entry; its terminator address was
                // resolved once at decode time.
                Some(stream.term_addr(stream.block_index(i - 1)))
            } else {
                prev.and_then(|p| program.block_at(p))
                    .map(|b| b.terminator().addr())
            }
        });
    }

    /// Runs one detected spin phase spanning steps `[start, phase_end)`
    /// (a whole number of `period`-step repetitions), fast-forwarding
    /// as soon as one repetition verifies as pure-counter. Returns the
    /// step index the outer loop should resume from.
    ///
    /// The phase is attempted repeatedly, two periods at a time: early
    /// repetitions usually mutate state (the selector is still
    /// profiling the loop, then selects it), so the first attempts
    /// fail their guards — but once the loop settles into the cache a
    /// later attempt verifies and the whole remainder is applied
    /// arithmetically. Failed attempts cost only the steps they would
    /// have executed anyway plus an O(period) snapshot.
    fn ff_phase(
        &mut self,
        stream: &DecodedStream,
        start: usize,
        period: usize,
        phase_end: usize,
    ) -> usize {
        let mut i = start;
        let mut warm_touched: Vec<usize> = Vec::with_capacity(period + 1);
        let mut verify_touched: Vec<usize> = Vec::with_capacity(period + 1);
        while i + 3 * period <= phase_end {
            // Warm-up period (or the previous failed verify): note
            // every region the loop visits, so the snapshot covers
            // exactly the runtime rows the next period can touch.
            warm_touched.clear();
            for k in i..i + period {
                self.exec_decoded(stream, k);
                if let Mode::InCache { region, .. } = self.mode {
                    warm_touched.push(region.index());
                }
            }
            i += period;
            warm_touched.sort_unstable();
            warm_touched.dedup();
            let snap = self.ff_snapshot(&warm_touched);
            // Verify period.
            verify_touched.clear();
            for k in i..i + period {
                self.exec_decoded(stream, k);
                if let Mode::InCache { region, .. } = self.mode {
                    verify_touched.push(region.index());
                }
            }
            i += period;
            // A runtime row can only change on the region that was
            // current at a step boundary; every boundary region of the
            // verify period must therefore be in the snapshot (the
            // boundary before its first step is the warm period's last
            // push).
            verify_touched.sort_unstable();
            verify_touched.dedup();
            let covered = verify_touched
                .iter()
                .all(|r| warm_touched.binary_search(r).is_ok());
            if !covered {
                continue;
            }
            if let Some(delta) = self.ff_delta(&snap) {
                let skip = (phase_end - i) / period;
                self.ff_apply(&delta, skip as u64);
                return i + skip * period;
            }
        }
        i
    }

    /// Snapshots the guarded counters plus the runtime rows of
    /// `touched` (ascending region indices).
    fn ff_snapshot(&self, touched: &[usize]) -> FfSnapshot {
        FfSnapshot {
            total_insts: self.total_insts,
            cache_insts: self.cache_insts,
            interpreted_taken: self.interpreted_taken,
            transitions: self.transitions,
            transition_distance_sum: self.transition_distance_sum,
            transition_page_crossings: self.transition_page_crossings,
            regions_selected: self.regions_selected,
            insts_selected: self.insts_selected,
            retired_len: self.retired.len(),
            cache_len: self.cache.len(),
            flushes: self.cache.flushes(),
            mode: self.mode,
            pending_exit: self.pending_exit,
            prev_block: self.prev_block,
            runtime_len: self.runtime.len(),
            runtime: touched
                .iter()
                .map(|&r| (r, self.runtime.get(r).copied().unwrap_or_default()))
                .collect(),
            resilience: self.resilience.clone(),
        }
    }

    /// Checks the fast-forward guards against the snapshot taken one
    /// period ago and, when every guard holds, returns the verified
    /// per-period deltas. `None` means the period was not pure-counter
    /// and the phase must keep stepping.
    fn ff_delta(&self, s: &FfSnapshot) -> Option<FfDelta> {
        let insts = self.total_insts - s.total_insts;
        let all_cached = self.cache_insts - s.cache_insts == insts;
        if !all_cached
            || self.interpreted_taken != s.interpreted_taken
            || self.regions_selected != s.regions_selected
            || self.insts_selected != s.insts_selected
            || self.retired.len() != s.retired_len
            || self.cache.len() != s.cache_len
            || self.cache.flushes() != s.flushes
            || self.mode != s.mode
            || self.pending_exit != s.pending_exit
            || self.prev_block != s.prev_block
            || self.runtime.len() != s.runtime_len
            || self.resilience != s.resilience
        {
            return None;
        }
        let runtime = s
            .runtime
            .iter()
            .filter_map(|&(i, then)| {
                let now = self.runtime.get(i).copied().unwrap_or_default();
                (now != then).then_some((
                    i,
                    RegionRuntime {
                        executions: now.executions - then.executions,
                        cycle_ends: now.cycle_ends - then.cycle_ends,
                        insts_executed: now.insts_executed - then.insts_executed,
                    },
                ))
            })
            .collect();
        Some(FfDelta {
            insts,
            transitions: self.transitions - s.transitions,
            distance: self.transition_distance_sum - s.transition_distance_sum,
            page_crossings: self.transition_page_crossings - s.transition_page_crossings,
            runtime,
        })
    }

    /// Applies `periods` repetitions of a verified period's deltas.
    fn ff_apply(&mut self, d: &FfDelta, periods: u64) {
        self.total_insts += d.insts * periods;
        self.cache_insts += d.insts * periods;
        self.transitions += d.transitions * periods;
        self.transition_distance_sum += d.distance * periods;
        self.transition_page_crossings += d.page_crossings * periods;
        for &(i, dd) in &d.runtime {
            let rt = &mut self.runtime[i];
            rt.executions += dd.executions * periods;
            rt.cycle_ends += dd.cycle_ends * periods;
            rt.insts_executed += dd.insts_executed * periods;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::select::SelectorKind;
    use rsel_program::Executor;
    use rsel_program::patterns::ScenarioBuilder;
    use rsel_trace::CompactStream;

    fn hot_loop(s: &mut ScenarioBuilder) {
        let f = s.function("main", 0x1000);
        let lp = s.counted_loop(f, 3, 100_000);
        s.ret_from(f, lp.exit);
    }

    fn interproc_loop(s: &mut ScenarioBuilder) {
        let main = s.function("main", 0x4000);
        let callee = s.function("callee", 0x1000);
        let head = s.block(main, 2);
        let latch = s.block(main, 1);
        s.call(head, callee);
        s.branch_trips(latch, head, 50_000);
        let done = s.block(main, 0);
        s.ret(done);
        let c0 = s.block(callee, 2);
        s.ret(c0);
    }

    fn recorded(
        build: impl Fn(&mut ScenarioBuilder),
        seed: u64,
    ) -> (rsel_program::Program, CompactStream) {
        let mut s = ScenarioBuilder::new(seed);
        build(&mut s);
        let (p, spec) = s.build().unwrap();
        let stream = CompactStream::record(Executor::new(&p, spec));
        (p, stream)
    }

    fn replay_reports(
        build: impl Fn(&mut ScenarioBuilder) + Copy,
        cfg: &SimConfig,
    ) -> Vec<(
        SelectorKind,
        crate::metrics::RunReport,
        crate::metrics::RunReport,
    )> {
        let (p, stream) = recorded(build, 1);
        let decoded = DecodedStream::decode(stream, &p);
        SelectorKind::extended()
            .into_iter()
            .map(|kind| {
                let mut a = Simulator::new(&p, kind.make(&p, cfg), cfg);
                a.run(decoded.compact().replay(&p));
                let mut b = Simulator::new(&p, kind.make(&p, cfg), cfg);
                b.replay_decoded(&decoded);
                (kind, a.report(), b.report())
            })
            .collect()
    }

    #[test]
    fn decoded_replay_matches_step_replay() {
        let cfg = SimConfig::default();
        for build in [
            hot_loop as fn(&mut ScenarioBuilder),
            interproc_loop as fn(&mut ScenarioBuilder),
        ] {
            for (kind, step_rep, decoded_rep) in replay_reports(build, &cfg) {
                assert_eq!(step_rep, decoded_rep, "{kind}");
            }
        }
    }

    #[test]
    fn fast_forward_on_and_off_are_identical() {
        let cfg = SimConfig::default();
        let (p, stream) = recorded(hot_loop, 1);
        let decoded = DecodedStream::decode(stream, &p);
        assert!(
            !decoded.phases().is_empty(),
            "the hot loop must present a spin phase"
        );
        for kind in SelectorKind::extended() {
            let mut on = Simulator::new(&p, kind.make(&p, &cfg), &cfg);
            on.replay_decoded_range(&decoded, 0, decoded.len(), true);
            let mut off = Simulator::new(&p, kind.make(&p, &cfg), &cfg);
            off.replay_decoded_range(&decoded, 0, decoded.len(), false);
            assert_eq!(on.report(), off.report(), "{kind}");
        }
    }

    #[test]
    fn ranged_replay_matches_monolithic() {
        let cfg = SimConfig::default();
        let (p, stream) = recorded(interproc_loop, 1);
        let decoded = DecodedStream::decode(stream, &p);
        for epoch_len in [1usize, 7, 1000, decoded.len()] {
            let mut epoch = Simulator::new(&p, SelectorKind::Lei.make(&p, &cfg), &cfg);
            let mut at = 0;
            while at < decoded.len() {
                let end = (at + epoch_len).min(decoded.len());
                epoch.replay_decoded_range(&decoded, at, end, true);
                at = end;
            }
            let mut mono = Simulator::new(&p, SelectorKind::Lei.make(&p, &cfg), &cfg);
            mono.replay_decoded(&decoded);
            assert_eq!(epoch.report(), mono.report(), "epoch_len {epoch_len}");
        }
    }

    #[test]
    fn recycled_scratch_changes_nothing() {
        let cfg = SimConfig::default();
        let (p, stream) = recorded(hot_loop, 1);
        let decoded = DecodedStream::decode(stream, &p);
        let mut fresh = Simulator::new(&p, SelectorKind::Net.make(&p, &cfg), &cfg);
        fresh.replay_decoded(&decoded);
        let fresh_report = fresh.report();
        let mut scratch = fresh.into_scratch();
        // Run a different selector through the recycled buffers, then
        // the same one again: both must match their fresh equivalents.
        let mut other = Simulator::recycled(&p, SelectorKind::Lei.make(&p, &cfg), &cfg, scratch);
        other.replay_decoded(&decoded);
        let other_report = other.report();
        let mut lei_fresh = Simulator::new(&p, SelectorKind::Lei.make(&p, &cfg), &cfg);
        lei_fresh.replay_decoded(&decoded);
        assert_eq!(other_report, lei_fresh.report());
        scratch = other.into_scratch();
        let mut again = Simulator::recycled(&p, SelectorKind::Net.make(&p, &cfg), &cfg, scratch);
        again.replay_decoded(&decoded);
        assert_eq!(again.report(), fresh_report);
    }

    #[test]
    fn fast_forward_disabled_under_fault_injection() {
        use crate::sim::faults::FaultConfig;
        let cfg = SimConfig {
            faults: FaultConfig {
                seed: 42,
                smc_write_ppm: 2_000,
                flush_wave_ppm: 500,
                counter_fault_ppm: 300,
                ..FaultConfig::default()
            },
            ..SimConfig::default()
        };
        let (p, stream) = recorded(hot_loop, 1);
        let decoded = DecodedStream::decode(stream, &p);
        // With an active injector the detector is bypassed even when
        // force-enabled; both replays must equal the live stepping run.
        let mut live = Simulator::new(&p, SelectorKind::Net.make(&p, &cfg), &cfg);
        live.run(decoded.compact().replay(&p));
        for ff in [true, false] {
            let mut sim = Simulator::new(&p, SelectorKind::Net.make(&p, &cfg), &cfg);
            sim.replay_decoded_range(&decoded, 0, decoded.len(), ff);
            let rep = sim.report();
            assert!(rep.resilience.fault_events() > 0);
            assert_eq!(rep, live.report(), "ff={ff}");
        }
    }
}
