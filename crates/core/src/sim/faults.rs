//! Deterministic fault injection for the simulated system.
//!
//! Real Dynamo/DynamoRIO-style systems survive events the paper's
//! evaluation never models: self-modifying code invalidating cached
//! regions, code-cache flush waves under memory pressure, and corrupted
//! or saturated profiling counters. This module injects those events
//! into a run from a seeded schedule so the recovery machinery —
//! range-based invalidation, the hot-target blacklist, counter
//! tolerance — can be exercised and measured reproducibly.
//!
//! Determinism contract:
//!
//! - with [`FaultConfig::default`] (all rates zero) the injector is
//!   inert: it draws no random numbers and the simulation is
//!   bit-identical to one without the fault layer;
//! - with nonzero rates, two runs over the same event stream with the
//!   same [`FaultConfig`] produce the identical fault schedule and so
//!   the identical [`RunReport`](crate::RunReport).
//!
//! Rates are expressed in events per million executed blocks (ppm) so
//! the configuration stays `Eq`/hashable and the schedule is exact
//! integer arithmetic over the PRNG stream.
//!
//! The serving runtime rides on the same contract: `rsel-runtime`
//! derives each tenant's seed from a base seed and the tenant id, so
//! a multi-tenant serve under SMC, flush-wave, and counter-fault
//! traffic (the `RSEL_SMC_PPM` / `RSEL_FLUSH_PPM` / `RSEL_CTR_PPM`
//! serve knobs) keeps per-tenant schedules independent of scheduling
//! order and the whole run byte-identical for any worker count.

use rsel_program::Addr;

/// Fault-injection rates and knobs, carried by
/// [`SimConfig`](crate::SimConfig).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultConfig {
    /// PRNG seed for the fault schedule.
    pub seed: u64,
    /// Self-modifying-code writes per million executed blocks. Each
    /// write dirties a byte range near the faulting block and
    /// invalidates every cached region overlapping it.
    pub smc_write_ppm: u32,
    /// Cache-pressure flush waves per million executed blocks. Each
    /// wave evicts the oldest 25–75 % of live regions (beyond the
    /// bounded cache's own whole-cache flushes).
    pub flush_wave_ppm: u32,
    /// Profiling-counter faults per million executed blocks. Each
    /// fault either saturates or resets the selector's counters; the
    /// selector must tolerate both without panicking.
    pub counter_fault_ppm: u32,
    /// Maximum span (bytes) of one self-modifying-code write.
    pub smc_max_span: u64,
    /// Invalidations of the same entry address before the target is
    /// blacklisted (demoted to interpretation for a cooldown).
    pub blacklist_after: u32,
    /// Base blacklist cooldown in executed instructions; doubles with
    /// every further invalidation of the same target (exponential
    /// backoff).
    pub blacklist_cooldown_insts: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            smc_write_ppm: 0,
            flush_wave_ppm: 0,
            counter_fault_ppm: 0,
            smc_max_span: 64,
            blacklist_after: 3,
            blacklist_cooldown_insts: 10_000,
        }
    }
}

impl FaultConfig {
    /// Whether any fault rate is nonzero (the injector does work).
    pub fn active(&self) -> bool {
        self.smc_write_ppm > 0 || self.flush_wave_ppm > 0 || self.counter_fault_ppm > 0
    }

    /// Validates the knobs.
    pub fn check(&self) -> Result<(), crate::error::SimError> {
        use crate::error::SimError::InvalidConfig;
        const MILLION: u32 = 1_000_000;
        if self.smc_write_ppm > MILLION
            || self.flush_wave_ppm > MILLION
            || self.counter_fault_ppm > MILLION
        {
            return Err(InvalidConfig(
                "fault rates are per-million, at most 1_000_000",
            ));
        }
        if self.smc_max_span == 0 {
            return Err(InvalidConfig("smc_max_span must be positive"));
        }
        if self.blacklist_after == 0 {
            return Err(InvalidConfig("blacklist_after must be positive"));
        }
        if self.blacklist_cooldown_insts == 0 {
            return Err(InvalidConfig("blacklist_cooldown_insts must be positive"));
        }
        Ok(())
    }
}

/// How a counter fault perturbs the selector's profiling state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CounterFault {
    /// Every live counter jumps to `u32::MAX` (hardware saturation /
    /// runaway increment): selection fires spuriously.
    Saturate,
    /// Every live counter is lost (corrupted page dropped): profiling
    /// starts over.
    Reset,
}

/// One scheduled fault event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Self-modifying code wrote the byte range `[lo, hi)`: every
    /// cached region overlapping it must be invalidated and unlinked.
    SmcWrite {
        /// First dirtied byte.
        lo: Addr,
        /// One past the last dirtied byte.
        hi: Addr,
    },
    /// Memory pressure: evict the oldest `percent` of live regions.
    FlushWave {
        /// Fraction of live regions to evict, in percent (25–75).
        percent: u8,
    },
    /// Perturb the selector's profiling counters.
    Counter(CounterFault),
}

/// SplitMix64: tiny, seedable, and statistically fine for schedules.
/// Kept private to the fault layer so the injector owes nothing to the
/// workload RNG and its stream survives dependency changes.
#[derive(Clone, Debug)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    fn below(&mut self, n: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// The seeded fault scheduler. Poll it once per executed block.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    rng: SplitMix64,
    config: FaultConfig,
    active: bool,
    emitted: u64,
}

impl FaultInjector {
    /// Builds an injector over `config`.
    pub fn new(config: &FaultConfig) -> Self {
        FaultInjector {
            rng: SplitMix64::new(config.seed ^ 0xfa17_c0de_5eed_2005),
            config: config.clone(),
            active: config.active(),
            emitted: 0,
        }
    }

    /// Whether any fault can ever fire. When `false`, [`poll`] is free
    /// and draws nothing: a zero-rate run is bit-identical to a run
    /// without the fault layer.
    ///
    /// [`poll`]: FaultInjector::poll
    pub fn active(&self) -> bool {
        self.active
    }

    /// Total faults emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Draws the faults striking at the executed block starting at
    /// `at`. Independent Bernoulli draws per fault class keep the
    /// schedule deterministic in the PRNG stream; the returned vector
    /// is empty (and unallocated) on the overwhelmingly common no-fault
    /// path.
    pub fn poll(&mut self, at: Addr) -> Vec<Fault> {
        let mut faults = Vec::new();
        if !self.active {
            return faults;
        }
        const MILLION: u64 = 1_000_000;
        if self.config.smc_write_ppm > 0
            && self.rng.below(MILLION) < u64::from(self.config.smc_write_ppm)
        {
            // A write near the code being executed: offset the dirtied
            // span around the faulting block so overlap with hot
            // regions is common (self-modifying code patches what it
            // runs).
            let span = 1 + self.rng.below(self.config.smc_max_span);
            let back = self.rng.below(span + 1);
            let lo = Addr::new(at.raw().saturating_sub(back));
            faults.push(Fault::SmcWrite {
                lo,
                hi: lo.offset(span),
            });
        }
        if self.config.flush_wave_ppm > 0
            && self.rng.below(MILLION) < u64::from(self.config.flush_wave_ppm)
        {
            let percent = 25 + self.rng.below(51) as u8;
            faults.push(Fault::FlushWave { percent });
        }
        if self.config.counter_fault_ppm > 0
            && self.rng.below(MILLION) < u64::from(self.config.counter_fault_ppm)
        {
            let kind = if self.rng.below(2) == 0 {
                CounterFault::Saturate
            } else {
                CounterFault::Reset
            };
            faults.push(Fault::Counter(kind));
        }
        self.emitted += faults.len() as u64;
        faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_inert() {
        let cfg = FaultConfig::default();
        assert!(!cfg.active());
        cfg.check().unwrap();
        let mut inj = FaultInjector::new(&cfg);
        assert!(!inj.active());
        for i in 0..10_000 {
            assert!(inj.poll(Addr::new(0x1000 + i)).is_empty());
        }
        assert_eq!(inj.emitted(), 0);
    }

    #[test]
    fn seeded_schedules_are_identical() {
        let cfg = FaultConfig {
            seed: 99,
            smc_write_ppm: 5_000,
            flush_wave_ppm: 2_000,
            counter_fault_ppm: 1_000,
            ..FaultConfig::default()
        };
        let mut a = FaultInjector::new(&cfg);
        let mut b = FaultInjector::new(&cfg);
        for i in 0..200_000u64 {
            let at = Addr::new(0x4000 + (i % 512) * 8);
            assert_eq!(a.poll(at), b.poll(at));
        }
        assert!(
            a.emitted() > 0,
            "rates this high must fire over 200k blocks"
        );
        assert_eq!(a.emitted(), b.emitted());
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let mk = |seed| FaultConfig {
            seed,
            smc_write_ppm: 20_000,
            ..FaultConfig::default()
        };
        let mut a = FaultInjector::new(&mk(1));
        let mut b = FaultInjector::new(&mk(2));
        let schedule = |inj: &mut FaultInjector| {
            (0..50_000u64)
                .flat_map(|i| inj.poll(Addr::new(0x1000 + i * 4)))
                .collect::<Vec<_>>()
        };
        assert_ne!(schedule(&mut a), schedule(&mut b));
    }

    #[test]
    fn smc_ranges_bracket_the_faulting_block() {
        let cfg = FaultConfig {
            seed: 7,
            smc_write_ppm: 100_000,
            smc_max_span: 32,
            ..FaultConfig::default()
        };
        let mut inj = FaultInjector::new(&cfg);
        let mut seen = 0;
        for i in 0..100_000u64 {
            let at = Addr::new(0x8000 + (i % 64) * 16);
            for f in inj.poll(at) {
                if let Fault::SmcWrite { lo, hi } = f {
                    seen += 1;
                    assert!(lo < hi);
                    assert!(hi.raw() - lo.raw() <= 2 * cfg.smc_max_span);
                    // The dirtied range stays near the faulting block.
                    assert!(lo.raw() <= at.raw() && at.raw() <= hi.raw() + cfg.smc_max_span);
                }
            }
        }
        assert!(seen > 1_000);
    }

    #[test]
    fn flush_percent_stays_in_band() {
        let cfg = FaultConfig {
            seed: 3,
            flush_wave_ppm: 200_000,
            ..FaultConfig::default()
        };
        let mut inj = FaultInjector::new(&cfg);
        for i in 0..20_000u64 {
            for f in inj.poll(Addr::new(i)) {
                let Fault::FlushWave { percent } = f else {
                    panic!("only waves enabled")
                };
                assert!((25..=75).contains(&percent));
            }
        }
    }

    #[test]
    fn config_check_rejects_bad_knobs() {
        let bad = FaultConfig {
            smc_write_ppm: 2_000_000,
            ..FaultConfig::default()
        };
        assert!(bad.check().is_err());
        let bad = FaultConfig {
            smc_max_span: 0,
            ..FaultConfig::default()
        };
        assert!(bad.check().is_err());
        let bad = FaultConfig {
            blacklist_after: 0,
            ..FaultConfig::default()
        };
        assert!(bad.check().is_err());
        let bad = FaultConfig {
            blacklist_cooldown_insts: 0,
            ..FaultConfig::default()
        };
        assert!(bad.check().is_err());
    }
}
