//! The dynamic-optimization-system simulator (paper §2.1 and §2.3).
//!
//! The simulator consumes the executed basic-block stream (from
//! [`Executor`](rsel_program::Executor) or a recorded stream) and
//! re-enacts the system of the paper's Figure 1: interpretation with
//! branch profiling, region selection, an unbounded code cache, lazy
//! inter-region linking, and execution from the cache — while measuring
//! every quantity the evaluation reports.
//!
//! Beyond the paper, the simulator carries a deterministic
//! fault-injection layer ([`faults`]) exercising the recovery machinery
//! real systems need: range invalidation for self-modifying code,
//! pressure-wave eviction, counter-fault tolerance, and an
//! exponential-backoff blacklist for targets that keep being
//! invalidated. With the default all-zero fault rates the layer is
//! inert and runs are bit-identical to a simulator without it.

pub mod faults;
mod replay;

pub use replay::ReplayScratch;

use crate::cache::{CodeCache, Region, RegionId, TransferClass};
use crate::config::SimConfig;
use crate::error::SimError;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::metrics::domination::analyze_domination;
use crate::metrics::report::{RegionReport, ResilienceStats, RunReport};
use crate::select::{Arrival, RegionSelector};
use faults::{Fault, FaultConfig, FaultInjector};
use rsel_program::{Addr, Entry, Program, Step};

/// Virtual-memory page size used for the layout-locality metric.
const PAGE_BYTES: u64 = 4096;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Interp,
    InCache {
        region: RegionId,
        block: Addr,
        /// The current block's slot in the region (index into
        /// [`Region::blocks`]); tracked alongside the address so the
        /// hot path can classify transfers against the slot-indexed
        /// successor table without hashing. The entry is always slot 0.
        slot: u32,
    },
}

#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct RegionRuntime {
    executions: u64,
    cycle_ends: u64,
    insts_executed: u64,
}

/// Backoff state for an entry address whose regions keep being
/// invalidated by self-modifying code.
#[derive(Clone, Copy, Debug, Default)]
struct BlacklistEntry {
    /// Self-modifying-code invalidations suffered at this entry.
    invalidations: u32,
    /// Instruction count (total) until which selection is suppressed.
    cooldown_until: u64,
}

/// The trace-driven simulator.
///
/// Drive it with [`Simulator::run`] (or step-by-step with
/// [`Simulator::arrive`]) and collect the metrics with
/// [`Simulator::report`].
pub struct Simulator<'p> {
    program: &'p Program,
    selector: Box<dyn RegionSelector + Send + 'p>,
    cache: CodeCache,
    stub_bytes: u64,
    mode: Mode,
    pending_exit: bool,
    prev_block: Option<Addr>,
    // Aggregate counters.
    total_insts: u64,
    cache_insts: u64,
    interpreted_taken: u64,
    transitions: u64,
    transition_distance_sum: u64,
    transition_page_crossings: u64,
    // Per-region runtime stats, indexed by RegionId raw value (ids are
    // monotonic within a cache generation, so the vec only grows; it
    // resets at a full flush together with the id sequence).
    runtime: Vec<RegionRuntime>,
    // Executed-predecessor relation over program blocks, dense by the
    // target's block index (arrival targets are always block starts).
    exec_preds: Vec<FxHashSet<Addr>>,
    // Last predecessor inserted into each block's exec_preds set (raw
    // address; u64::MAX = none yet). Steps overwhelmingly repeat the
    // previous edge, and the relation only ever grows, so this memo
    // turns the common per-step set insert into one array compare.
    last_pred: Vec<u64>,
    // Index of the mode's current region within the cache's region
    // list, validated by id before use (indices shift on removal).
    // Pure lookup acceleration — never observable in reports.
    region_idx_hint: usize,
    // Exits observed leaving the cache towards each block:
    // {(region, from block)}, dense by the target's block index.
    exit_edges: Vec<FxHashSet<(RegionId, Addr)>>,
    // Regions removed from the cache (bounded-cache flushes, fault
    // invalidations, pressure evictions), with their final stats.
    retired: Vec<RegionReport>,
    // Monotone selection totals surviving flushes and evictions.
    regions_selected: u64,
    insts_selected: u64,
    // Peaks carried over from selectors replaced by set_selector, so
    // reported peaks cover the whole run, not just the last selector.
    peak_counters_floor: usize,
    peak_observed_floor: usize,
    // Fault-injection layer.
    injector: FaultInjector,
    fault_cfg: FaultConfig,
    blacklist: FxHashMap<Addr, BlacklistEntry>,
    invalidated_entries: FxHashSet<Addr>,
    // Entry addresses of regions killed by SMC writes since the last
    // drain — the runtime's per-epoch resilience feed.
    invalidation_log: Vec<Addr>,
    resilience: ResilienceStats,
}

impl<'p> Simulator<'p> {
    /// Creates a simulator over `program` with the given selector.
    pub fn new(
        program: &'p Program,
        selector: Box<dyn RegionSelector + Send + 'p>,
        config: &SimConfig,
    ) -> Self {
        Simulator::recycled(program, selector, config, ReplayScratch::default())
    }

    /// [`Simulator::new`] reusing the allocations of a previous run's
    /// [`ReplayScratch`] (see [`Simulator::into_scratch`]). Behaviour
    /// is identical to a fresh simulator — the scratch only donates
    /// buffer capacity.
    pub fn recycled(
        program: &'p Program,
        selector: Box<dyn RegionSelector + Send + 'p>,
        config: &SimConfig,
        scratch: ReplayScratch,
    ) -> Self {
        let cache = match config.cache_capacity {
            Some(cap) => CodeCache::bounded(cap, config.stub_bytes),
            None => CodeCache::new(),
        };
        // Pre-size the per-step side tables from the program's shape so
        // the hot path never grows them: the dense tables are indexed by
        // block, and region count scales with block count.
        let block_count = program.blocks().len();
        let (exec_preds, exit_edges, last_pred, runtime, retired) = scratch.prepare(block_count);
        Simulator {
            program,
            selector,
            cache,
            stub_bytes: config.stub_bytes,
            mode: Mode::Interp,
            pending_exit: false,
            prev_block: None,
            total_insts: 0,
            cache_insts: 0,
            interpreted_taken: 0,
            transitions: 0,
            transition_distance_sum: 0,
            transition_page_crossings: 0,
            runtime,
            exec_preds,
            last_pred,
            region_idx_hint: 0,
            exit_edges,
            retired,
            regions_selected: 0,
            insts_selected: 0,
            peak_counters_floor: 0,
            peak_observed_floor: 0,
            injector: FaultInjector::new(&config.faults),
            fault_cfg: config.faults.clone(),
            blacklist: FxHashMap::default(),
            invalidated_entries: FxHashSet::default(),
            invalidation_log: Vec::new(),
            resilience: ResilienceStats::default(),
        }
    }

    /// Feeds every step of `stream` through the system.
    pub fn run(&mut self, stream: impl IntoIterator<Item = Step>) {
        for step in stream {
            self.arrive(&step);
        }
    }

    /// The code cache (inspect regions after a run).
    pub fn cache(&self) -> &CodeCache {
        &self.cache
    }

    /// The selector (inspect profiling state).
    pub fn selector(&self) -> &dyn RegionSelector {
        self.selector.as_ref()
    }

    /// Total instructions executed so far.
    pub fn total_insts(&self) -> u64 {
        self.total_insts
    }

    /// Instructions executed from the code cache so far.
    pub fn cache_insts(&self) -> u64 {
        self.cache_insts
    }

    /// Instructions ever executed from region `id`'s cached code.
    /// Zero for ids the current cache generation has not touched;
    /// resets with the id sequence at a full flush.
    pub fn region_insts_executed(&self, id: RegionId) -> u64 {
        self.runtime
            .get(id.index())
            .map_or(0, |rt| rt.insts_executed)
    }

    /// Regions ever inserted into the cache (monotone: survives
    /// flushes, invalidations and evictions).
    pub fn regions_selected(&self) -> u64 {
        self.regions_selected
    }

    /// Instructions ever copied into the cache (monotone code
    /// expansion: survives flushes, invalidations and evictions).
    pub fn insts_selected(&self) -> u64 {
        self.insts_selected
    }

    /// Replaces the region-selection algorithm mid-run, returning the
    /// old selector.
    ///
    /// This is the epoch-switch hook of the adaptive runtime: the new
    /// selector starts with fresh profiling state (counters, history
    /// buffers, observed traces), while the code cache, all cached
    /// regions, and every accumulated metric survive. Peak counter and
    /// observed-trace figures are folded into run-level floors so the
    /// final report covers every selector that ran, not just the last.
    pub fn set_selector(
        &mut self,
        selector: Box<dyn RegionSelector + Send + 'p>,
    ) -> Box<dyn RegionSelector + Send + 'p> {
        self.peak_counters_floor = self.peak_counters_floor.max(self.selector.peak_counters());
        self.peak_observed_floor = self
            .peak_observed_floor
            .max(self.selector.peak_observed_bytes());
        std::mem::replace(&mut self.selector, selector)
    }

    /// Re-inserts previously captured regions into the cache of a
    /// simulator that has not executed yet — the warm-start hook of the
    /// multi-tenant runtime's snapshot layer.
    ///
    /// Regions are inserted in the given order and receive fresh ids
    /// (0, 1, …), so the restored cache's selection order is the order
    /// of `regions`. Restored capacity is *not* charged to the monotone
    /// selection totals ([`Simulator::regions_selected`],
    /// [`Simulator::insts_selected`]): the code expansion was paid for
    /// by the run that produced the snapshot, and a warm run reports
    /// only what it selects itself. Like [`Simulator::set_selector`],
    /// restoring never loses run-level bookkeeping — at construction
    /// time every peak floor is still zero, so there is nothing to
    /// fold.
    ///
    /// Returns how many regions were inserted.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DuplicateRegionEntry`] if two regions share
    /// an entry address. The cache may hold a prefix of `regions` after
    /// an error; callers treat that as fatal and discard the simulator.
    pub fn restore_regions(&mut self, regions: Vec<Region>) -> Result<usize, SimError> {
        debug_assert_eq!(self.total_insts, 0, "warm starts precede execution");
        let mut restored = 0;
        for r in regions {
            let id = self.cache.try_insert(r)?;
            if self.runtime.len() <= id.index() {
                self.runtime
                    .resize(id.index() + 1, RegionRuntime::default());
            }
            restored += 1;
        }
        Ok(restored)
    }

    /// Removes the named regions from the cache under external
    /// pressure (the multi-tenant runtime's shard-capacity policy),
    /// running the same recovery bookkeeping as a pressure-wave fault:
    /// stats are retired, severed links counted, execution falls back
    /// to the interpreter if it was inside a removed region, and
    /// re-selection at the same entry later counts as a reformation.
    /// Returns how many regions were actually removed (dead ids are
    /// ignored). No target is blamed, so nothing is blacklisted.
    pub fn evict_regions(&mut self, ids: &[RegionId]) -> usize {
        let out = self.cache.remove_regions(ids);
        let count = out.removed.len();
        self.resilience.pressure_evicted_regions += count as u64;
        self.handle_removal(out.removed, out.severed_links, false);
        count
    }

    /// Resilience statistics accumulated so far (all zeros when the
    /// fault layer is inert).
    pub fn resilience(&self) -> &ResilienceStats {
        &self.resilience
    }

    /// Drains the entry addresses of regions killed by
    /// self-modifying-code writes since the last drain, in kill order —
    /// the multi-tenant runtime attributes each to its cache shard at
    /// the epoch boundary. Empty (and allocation-free) when no SMC
    /// fault struck.
    pub fn drain_invalidations(&mut self) -> Vec<Addr> {
        std::mem::take(&mut self.invalidation_log)
    }

    /// The blacklist's persistent state: `(entry, invalidations)` in
    /// ascending entry order. Cooldown deadlines are *not* exported —
    /// they are denominated in this run's instruction count — so a
    /// restored target resumes demotion only on its next invalidation.
    pub fn export_blacklist(&self) -> Vec<(Addr, u32)> {
        let mut out: Vec<(Addr, u32)> = self
            .blacklist
            .iter()
            .map(|(&a, b)| (a, b.invalidations))
            .collect();
        out.sort_unstable_by_key(|&(a, _)| a);
        out
    }

    /// Seeds the blacklist of a simulator that has not executed yet
    /// with counts exported by [`Simulator::export_blacklist`] — the
    /// warm-start path. Restored entries carry no cooldown (deadlines
    /// do not translate across runs), so a restored target executes
    /// until its next invalidation escalates it straight past
    /// `blacklist_after`.
    pub fn restore_blacklist(&mut self, entries: &[(Addr, u32)]) {
        debug_assert_eq!(self.total_insts, 0, "warm starts precede execution");
        for &(entry, invalidations) in entries {
            self.blacklist.insert(
                entry,
                BlacklistEntry {
                    invalidations,
                    cooldown_until: 0,
                },
            );
        }
    }

    fn insert_regions(&mut self, regions: Vec<Region>) {
        for r in regions {
            // Targets demoted by the blacklist stay interpreted until
            // their cooldown expires.
            if self.is_blacklisted(r.entry()) {
                self.resilience.blacklist_hits += 1;
                continue;
            }
            if self.cache.would_overflow(&r) {
                self.retire_all();
            }
            let entry = r.entry();
            let insts = r.inst_count();
            if let Ok(id) = self.cache.try_insert(r) {
                self.regions_selected += 1;
                self.insts_selected += insts;
                if self.runtime.len() <= id.index() {
                    self.runtime
                        .resize(id.index() + 1, RegionRuntime::default());
                }
                if self.invalidated_entries.contains(&entry) {
                    self.resilience.reformations += 1;
                }
            }
            // A duplicate entry (fault recovery racing a re-selection
            // against a re-formation in the same event) is dropped.
        }
    }

    fn is_blacklisted(&self, entry: Addr) -> bool {
        self.blacklist.get(&entry).is_some_and(|b| {
            b.invalidations >= self.fault_cfg.blacklist_after && self.total_insts < b.cooldown_until
        })
    }

    /// Bounded-cache flush: every live region's final statistics move
    /// to the retired list, the cache empties, and region ids restart.
    fn retire_all(&mut self) {
        debug_assert_eq!(self.mode, Mode::Interp, "flushes happen while interpreting");
        self.retired
            .extend(Self::region_reports(&self.cache, &self.runtime));
        self.cache.flush();
        self.runtime.clear();
        // Exit edges refer to now-recycled region ids.
        for set in &mut self.exit_edges {
            set.clear();
        }
    }

    fn report_for(r: &Region, rt: RegionRuntime) -> RegionReport {
        RegionReport {
            entry: r.entry(),
            kind: r.kind(),
            insts_copied: r.inst_count(),
            bytes: r.byte_size(),
            stubs: r.stub_count(),
            spans_cycle: r.spans_cycle(),
            executions: rt.executions,
            cycle_ends: rt.cycle_ends,
            insts_executed: rt.insts_executed,
        }
    }

    fn region_reports(cache: &CodeCache, runtime: &[RegionRuntime]) -> Vec<RegionReport> {
        cache
            .regions()
            .iter()
            .map(|r| {
                let rt = runtime.get(r.id().index()).copied().unwrap_or_default();
                Self::report_for(r, rt)
            })
            .collect()
    }

    /// Draws and applies this block's scheduled faults. A no-op (and
    /// draw-free, preserving bit-identity) when every rate is zero.
    fn apply_faults(&mut self, at: Addr) {
        let struck = self.injector.poll(at);
        for fault in struck {
            if self.resilience.total_insts_at_first_fault.is_none() {
                self.resilience.total_insts_at_first_fault = Some(self.total_insts);
                self.resilience.cache_insts_at_first_fault = Some(self.cache_insts);
            }
            match fault {
                Fault::SmcWrite { lo, hi } => {
                    self.resilience.smc_events += 1;
                    let out = self.cache.invalidate_range(lo, hi);
                    self.resilience.invalidated_regions += out.removed.len() as u64;
                    self.handle_removal(out.removed, out.severed_links, true);
                }
                Fault::FlushWave { percent } => {
                    self.resilience.flush_waves += 1;
                    let count = (self.cache.len() * usize::from(percent)).div_ceil(100);
                    let out = self.cache.evict_oldest(count);
                    self.resilience.pressure_evicted_regions += out.removed.len() as u64;
                    self.handle_removal(out.removed, out.severed_links, false);
                }
                Fault::Counter(kind) => {
                    self.resilience.counter_faults += 1;
                    self.selector.on_fault(kind);
                }
            }
        }
    }

    /// Bookkeeping after regions left the cache mid-run: retire their
    /// stats, recover the execution mode, prune exit edges, and (for
    /// self-modifying-code invalidations) advance the blacklist.
    fn handle_removal(&mut self, removed: Vec<Region>, severed: u64, blame_target: bool) {
        self.resilience.severed_links += severed;
        if removed.is_empty() {
            return;
        }
        let dead: FxHashSet<RegionId> = removed.iter().map(Region::id).collect();
        // The region being executed vanished: fall back to the
        // interpreter, landing as if through an exit stub.
        if let Mode::InCache { region, .. } = self.mode {
            if dead.contains(&region) {
                self.mode = Mode::Interp;
                self.pending_exit = true;
                self.resilience.recovery_transitions += 1;
            }
        }
        for r in &removed {
            let rt = self
                .runtime
                .get(r.id().index())
                .copied()
                .unwrap_or_default();
            self.retired.push(Self::report_for(r, rt));
            self.invalidated_entries.insert(r.entry());
            if blame_target {
                self.invalidation_log.push(r.entry());
                let after = self.fault_cfg.blacklist_after;
                let base = self.fault_cfg.blacklist_cooldown_insts;
                let b = self.blacklist.entry(r.entry()).or_default();
                b.invalidations += 1;
                if b.invalidations >= after {
                    // Exponential backoff: the cooldown doubles with
                    // every invalidation past the demotion point.
                    let shift = (b.invalidations - after).min(16);
                    b.cooldown_until = self
                        .total_insts
                        .saturating_add(base.saturating_mul(1 << shift));
                    if b.invalidations == after {
                        self.resilience.blacklisted_targets += 1;
                    }
                }
            }
        }
        // Exit bookkeeping must not name dead regions.
        for set in &mut self.exit_edges {
            set.retain(|(rid, _)| !dead.contains(rid));
        }
    }

    fn enter_region(&mut self, id: RegionId, target: Addr, len: u64) {
        self.runtime[id.index()].executions += 1;
        self.runtime[id.index()].insts_executed += len;
        self.cache_insts += len;
        // Entering always lands on the region entry — slot 0.
        self.mode = Mode::InCache {
            region: id,
            block: target,
            slot: 0,
        };
        if let Some(idx) = self.cache.region_index(id) {
            self.region_idx_hint = idx;
        }
    }

    /// Processes one executed block.
    pub fn arrive(&mut self, step: &Step) {
        let len = self.program.block(step.block).len() as u64;
        let program = self.program;
        // `prev` always starts a program block (it came from an
        // executed step); resolve it gracefully regardless — under
        // fault injection a missing block degrades to an unattributed
        // arrival, never a panic.
        self.arrive_with(step.block.index(), step.start, len, step.entry, |prev| {
            prev.and_then(|p| program.block_at(p))
                .map(|b| b.terminator().addr())
        });
    }

    /// The single arrival implementation shared by the live path
    /// ([`Simulator::arrive`]) and the decoded batch path, so the two
    /// cannot drift. `fall_src` resolves the fall-through source from
    /// the previous block's address — the live path looks it up in the
    /// program tables, the decoded path reads a precomputed terminator
    /// table; it is only invoked for fall-through entries.
    #[inline]
    fn arrive_with(
        &mut self,
        block_idx: usize,
        target: Addr,
        len: u64,
        entry: Entry,
        fall_src: impl FnOnce(Option<Addr>) -> Option<Addr>,
    ) {
        // Scheduled faults strike before the block runs (draw-free and
        // bit-identical to no fault layer when every rate is zero).
        if self.injector.active() {
            self.apply_faults(target);
        }
        self.total_insts += len;
        let prev = self.prev_block;
        self.prev_block = Some(target);
        if let Some(p) = prev {
            // Steps overwhelmingly repeat the last edge into a block;
            // the relation only grows, so skipping the repeat insert
            // is a pure no-op spared.
            if self.last_pred[block_idx] != p.raw() {
                self.exec_preds[block_idx].insert(p);
                self.last_pred[block_idx] = p.raw();
            }
        }

        // --- In-cache execution ---------------------------------------
        if let Mode::InCache {
            region,
            block,
            slot,
        } = self.mode
        {
            // The region is live: fault recovery resets the mode when
            // the current region is removed. Classify gracefully
            // anyway — an unknown id degrades to an interpreter
            // recovery instead of a panic. The common case (the same
            // region as the previous step) revalidates the cached
            // index with one id compare, then classifies against the
            // slot-indexed successor table: no hash lookups.
            let hint = self.region_idx_hint;
            let idx = {
                let regions = self.cache.regions();
                if hint < regions.len() && regions[hint].id() == region {
                    Some(hint)
                } else {
                    self.cache.region_index(region)
                }
            };
            match idx {
                Some(i) => {
                    self.region_idx_hint = i;
                    let (class, tslot) = self.cache.regions()[i].classify_slot(slot, target);
                    match class {
                        TransferClass::Cycle => {
                            let rt = &mut self.runtime[region.index()];
                            rt.cycle_ends += 1;
                            rt.executions += 1;
                            rt.insts_executed += len;
                            self.cache_insts += len;
                            self.mode = Mode::InCache {
                                region,
                                block: target,
                                slot: 0,
                            };
                            return;
                        }
                        TransferClass::Internal => {
                            self.runtime[region.index()].insts_executed += len;
                            self.cache_insts += len;
                            self.mode = Mode::InCache {
                                region,
                                block: target,
                                slot: tslot,
                            };
                            return;
                        }
                        TransferClass::Exit => {
                            self.exit_edges[block_idx].insert((region, block));
                            if let Some(r2) = self.cache.lookup(target) {
                                // Lazy linking: the exit stub jumps
                                // straight to the other region — a
                                // region transition.
                                self.transitions += 1;
                                self.cache.record_link(region, r2);
                                let from = self.cache.region(region).cache_offset();
                                let to = self.cache.region(r2).cache_offset();
                                self.transition_distance_sum += from.abs_diff(to);
                                if from / PAGE_BYTES != to / PAGE_BYTES {
                                    self.transition_page_crossings += 1;
                                }
                                self.enter_region(r2, target, len);
                                return;
                            }
                            // Exit to the interpreter; fall through to
                            // the interpreter arrival logic below.
                            self.mode = Mode::Interp;
                            self.pending_exit = true;
                        }
                    }
                }
                None => {
                    self.mode = Mode::Interp;
                    self.pending_exit = true;
                    self.resilience.recovery_transitions += 1;
                }
            }
        }

        // --- Interpreter arrival ---------------------------------------
        let from_exit = std::mem::take(&mut self.pending_exit);
        match entry {
            Entry::Taken { src, .. } => {
                if !from_exit {
                    self.interpreted_taken += 1;
                    // Active trace growth sees the transfer first (stop
                    // conditions, Figure 6 line 7 / NET's rules).
                    let done = self.selector.on_transfer(&self.cache, src, target, true);
                    self.insert_regions(done);
                }
                // "At every interpreted taken branch, the system decides
                // whether to switch ... to executing a region" (§2.1).
                if let Some(rid) = self.cache.lookup(target) {
                    self.enter_region(rid, target, len);
                    return;
                }
                let done = self.selector.on_arrival(
                    &self.cache,
                    Arrival {
                        src: Some(src),
                        tgt: target,
                        taken: true,
                        from_cache_exit: from_exit,
                    },
                );
                self.insert_regions(done);
                // "jump newT" (Figure 5, line 15): a freshly selected
                // region whose entry is this target is entered at once.
                if let Some(rid) = self.cache.lookup(target) {
                    self.enter_region(rid, target, len);
                    return;
                }
            }
            Entry::Fallthrough => {
                let src = fall_src(prev);
                if from_exit {
                    // Landing from a fall-through exit stub.
                    let done = self.selector.on_arrival(
                        &self.cache,
                        Arrival {
                            src,
                            tgt: target,
                            taken: false,
                            from_cache_exit: true,
                        },
                    );
                    self.insert_regions(done);
                } else if let Some(src) = src {
                    let done = self.selector.on_transfer(&self.cache, src, target, false);
                    self.insert_regions(done);
                }
            }
            Entry::Start => {}
        }

        // Interpreted execution of the block (active growth extends).
        let done = self.selector.on_block(&self.cache, target);
        self.insert_regions(done);
    }

    /// Assembles the full metrics report. With a bounded cache, the
    /// region list covers every region ever selected (retired and
    /// live); the domination analysis covers live regions only.
    pub fn report(&self) -> RunReport {
        let mut regions = self.retired.clone();
        regions.extend(Self::region_reports(&self.cache, &self.runtime));
        RunReport {
            selector: self.selector.name().to_string(),
            total_insts: self.total_insts,
            cache_insts: self.cache_insts,
            interpreted_taken: self.interpreted_taken,
            region_transitions: self.transitions,
            regions,
            peak_counters: self.peak_counters_floor.max(self.selector.peak_counters()),
            peak_observed_bytes: self
                .peak_observed_floor
                .max(self.selector.peak_observed_bytes()),
            cache_size_estimate: self.cache.size_estimate(self.stub_bytes),
            domination: analyze_domination(
                self.program,
                &self.cache,
                &self.exec_preds,
                &self.exit_edges,
            ),
            cache_flushes: self.cache.flushes(),
            transition_distance_sum: self.transition_distance_sum,
            transition_page_crossings: self.transition_page_crossings,
            resilience: self.resilience.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::SelectorKind;
    use rsel_program::Executor;
    use rsel_program::patterns::ScenarioBuilder;

    fn run_kind(
        kind: SelectorKind,
        build: impl Fn(&mut ScenarioBuilder),
        seed: u64,
        config: &SimConfig,
    ) -> RunReport {
        let mut s = ScenarioBuilder::new(seed);
        build(&mut s);
        let (p, spec) = s.build().unwrap();
        let mut sim = Simulator::new(&p, kind.make(&p, config), config);
        sim.run(Executor::new(&p, spec));
        sim.report()
    }

    fn hot_loop(s: &mut ScenarioBuilder) {
        let f = s.function("main", 0x1000);
        let lp = s.counted_loop(f, 3, 100_000);
        s.ret_from(f, lp.exit);
    }

    #[test]
    fn net_caches_a_hot_loop() {
        let r = run_kind(SelectorKind::Net, hot_loop, 1, &SimConfig::default());
        assert!(r.hit_rate() > 0.99, "hit rate {}", r.hit_rate());
        assert_eq!(r.region_count(), 1);
        assert!(r.regions[0].spans_cycle);
        assert!(r.regions[0].cycle_ends > 90_000);
        assert_eq!(r.cover_set_size(0.9), Some(1));
    }

    #[test]
    fn all_selectors_conserve_instructions() {
        for kind in SelectorKind::all() {
            let r = run_kind(kind, hot_loop, 1, &SimConfig::default());
            assert!(r.cache_insts <= r.total_insts, "{kind}");
            assert!(r.total_insts > 0, "{kind}");
        }
    }

    /// Paper Figure 2: a loop whose dominant path calls a function at a
    /// lower address. NET needs two traces; LEI spans the cycle in one.
    fn interproc_loop(s: &mut ScenarioBuilder) {
        let main = s.function("main", 0x4000);
        let callee = s.function("callee", 0x1000);
        let head = s.block(main, 2);
        let latch = s.block(main, 1);
        s.call(head, callee);
        s.branch_trips(latch, head, 50_000);
        let done = s.block(main, 0);
        s.ret(done);
        let c0 = s.block(callee, 2);
        s.ret(c0);
    }

    #[test]
    fn lei_spans_interprocedural_cycle_net_does_not() {
        let cfg = SimConfig::default();
        let net = run_kind(SelectorKind::Net, interproc_loop, 1, &cfg);
        let lei = run_kind(SelectorKind::Lei, interproc_loop, 1, &cfg);
        // NET splits the cycle into multiple traces, none spanning it.
        assert!(
            net.region_count() >= 2,
            "NET regions: {}",
            net.region_count()
        );
        assert_eq!(net.regions.iter().filter(|r| r.spans_cycle).count(), 0);
        // LEI selects one cycle-spanning trace.
        assert!(lei.regions.iter().any(|r| r.spans_cycle));
        assert!(lei.region_count() < net.region_count());
        // Fewer regions, fewer transitions: better locality.
        assert!(lei.region_transitions < net.region_transitions);
        // Both execute almost everything from the cache.
        assert!(net.hit_rate() > 0.99);
        assert!(lei.hit_rate() > 0.99);
    }

    #[test]
    fn transitions_counted_between_regions() {
        let cfg = SimConfig::default();
        let net = run_kind(SelectorKind::Net, interproc_loop, 1, &cfg);
        // NET's two traces bounce between each other every iteration.
        assert!(net.region_transitions > 10_000);
    }

    #[test]
    fn bounded_cache_flushes_and_recovers() {
        let cfg = SimConfig {
            cache_capacity: Some(60),
            ..SimConfig::default()
        };
        let mut s = ScenarioBuilder::new(1);
        interproc_loop(&mut s);
        let (p, spec) = s.build().unwrap();
        let mut sim = Simulator::new(&p, SelectorKind::Net.make(&p, &cfg), &cfg);
        sim.run(Executor::new(&p, spec));
        let rep = sim.report();
        assert!(rep.cache_flushes > 0, "tiny capacity forces flushes");
        // Regions regenerate after each flush, so more are selected
        // than under an unbounded cache.
        let unbounded = run_kind(SelectorKind::Net, interproc_loop, 1, &SimConfig::default());
        assert_eq!(unbounded.cache_flushes, 0);
        assert!(rep.region_count() > unbounded.region_count());
        // Even while thrashing, the cache serves a nontrivial share of
        // execution between flushes.
        assert!(rep.hit_rate() > 0.3, "hit {:.3}", rep.hit_rate());
        // Live cache respects the capacity.
        assert!(sim.cache().size_estimate(cfg.stub_bytes) <= 60);
    }

    /// Indirect dispatch loop: head, indirect switch over two handlers,
    /// latch back to head.
    fn dispatch_loop(s: &mut ScenarioBuilder) {
        let f = s.function("main", 0x1000);
        let head = s.block(f, 1);
        let sw = s.block(f, 1);
        let h1 = s.block(f, 2);
        let h2 = s.block(f, 2);
        let latch = s.block(f, 1);
        let out = s.block(f, 0);
        let _ = head;
        s.indirect_jump_weighted(sw, vec![(h1, 9), (h2, 1)]);
        s.jump(h1, latch);
        s.jump(h2, latch);
        s.branch_trips(latch, head, 60_000);
        s.ret(out);
    }

    #[test]
    fn indirect_targets_match_and_mispredict_in_cache() {
        let cfg = SimConfig::default();
        let r = run_kind(SelectorKind::Net, dispatch_loop, 5, &cfg);
        // The hot handler's path is cached and runs from the cache; the
        // cold handler's indirect target mispredicts the embedded edge
        // and exits, so the cache still serves most execution.
        assert!(r.hit_rate() > 0.9, "hit {:.3}", r.hit_rate());
        assert!(r.region_count() >= 1);
        // Roughly 10% of iterations take the cold handler: they leave
        // the region (as a transition or an interpreter exit).
        assert!(r.region_transitions > 0 || r.interpreted_taken > 5_000);
    }

    #[test]
    fn page_crossings_never_exceed_transitions() {
        let cfg = SimConfig::default();
        for kind in SelectorKind::all() {
            let r = run_kind(kind, interproc_loop, 1, &cfg);
            assert!(
                r.transition_page_crossings <= r.region_transitions,
                "{kind}"
            );
            if r.region_transitions > 0 {
                assert!(r.mean_transition_distance() >= 0.0);
            }
        }
    }

    #[test]
    fn extended_selectors_run_the_interproc_loop() {
        let cfg = SimConfig::default();
        for kind in SelectorKind::extended() {
            let r = run_kind(kind, interproc_loop, 1, &cfg);
            assert!(r.cache_insts <= r.total_insts, "{kind}");
            // Every algorithm eventually caches this scorching loop.
            assert!(r.region_count() >= 1, "{kind} selected nothing");
            assert!(r.hit_rate() > 0.5, "{kind} hit {:.3}", r.hit_rate());
        }
    }

    fn fault_cfg(seed: u64) -> SimConfig {
        SimConfig {
            faults: FaultConfig {
                seed,
                smc_write_ppm: 2_000,
                flush_wave_ppm: 500,
                counter_fault_ppm: 300,
                ..FaultConfig::default()
            },
            ..SimConfig::default()
        }
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        let cfg = fault_cfg(42);
        let a = run_kind(SelectorKind::Lei, interproc_loop, 1, &cfg);
        let b = run_kind(SelectorKind::Lei, interproc_loop, 1, &cfg);
        assert!(
            a.resilience.fault_events() > 0,
            "rates this high must strike"
        );
        assert_eq!(a, b, "same seed, same schedule, same report");
    }

    #[test]
    fn zero_rates_match_regardless_of_fault_seed() {
        // The injector is never polled when every rate is zero, so the
        // fault seed cannot leak into the run.
        let base = SimConfig::default();
        let seeded = SimConfig {
            faults: FaultConfig {
                seed: 0xdead_beef,
                ..FaultConfig::default()
            },
            ..SimConfig::default()
        };
        let a = run_kind(SelectorKind::CombinedNet, interproc_loop, 1, &base);
        let b = run_kind(SelectorKind::CombinedNet, interproc_loop, 1, &seeded);
        assert_eq!(a.resilience, crate::metrics::ResilienceStats::default());
        assert_eq!(a, b);
    }

    #[test]
    fn smc_invalidation_recovers_and_reforms() {
        // Demotion is pushed out of reach so the loop keeps reforming
        // after every invalidation instead of being blacklisted.
        let cfg = SimConfig {
            faults: FaultConfig {
                seed: 7,
                smc_write_ppm: 500,
                blacklist_after: 1_000_000,
                ..FaultConfig::default()
            },
            ..SimConfig::default()
        };
        let r = run_kind(SelectorKind::Net, hot_loop, 1, &cfg);
        let res = &r.resilience;
        assert!(res.smc_events > 0);
        assert!(
            res.invalidated_regions > 0,
            "the hot loop sits in the write path"
        );
        assert!(
            res.reformations > 0,
            "the loop gets re-selected after invalidation"
        );
        // Conservation still holds and the cache keeps serving most of
        // the run between invalidations.
        assert!(r.cache_insts <= r.total_insts);
        assert!(r.hit_rate() > 0.5, "hit {:.3}", r.hit_rate());
        let under = r.hit_rate_under_faults().expect("faults struck");
        assert!((0.0..=1.0).contains(&under));
    }

    #[test]
    fn repeated_invalidation_blacklists_the_target() {
        // Saturate the loop with SMC writes so its entry is invalidated
        // well past blacklist_after; with a long cooldown the target is
        // demoted and selections get dropped.
        let cfg = SimConfig {
            faults: FaultConfig {
                seed: 3,
                smc_write_ppm: 50_000,
                blacklist_after: 2,
                blacklist_cooldown_insts: 1_000_000,
                ..FaultConfig::default()
            },
            ..SimConfig::default()
        };
        let r = run_kind(SelectorKind::Net, hot_loop, 1, &cfg);
        let res = &r.resilience;
        assert!(res.blacklisted_targets > 0, "resilience: {res:?}");
        assert!(
            res.blacklist_hits > 0,
            "demoted selections are dropped: {res:?}"
        );
    }

    #[test]
    fn blacklist_exports_and_restores_counts() {
        let cfg = SimConfig {
            faults: FaultConfig {
                seed: 3,
                smc_write_ppm: 50_000,
                blacklist_after: 2,
                blacklist_cooldown_insts: 1_000_000,
                ..FaultConfig::default()
            },
            ..SimConfig::default()
        };
        let mut s = ScenarioBuilder::new(1);
        hot_loop(&mut s);
        let (p, spec) = s.build().unwrap();
        let mut sim = Simulator::new(&p, SelectorKind::Net.make(&p, &cfg), &cfg);
        sim.run(Executor::new(&p, spec));
        // SMC kills were logged, in kill order, one per invalidation.
        let log = sim.drain_invalidations();
        assert_eq!(log.len() as u64, sim.resilience().invalidated_regions);
        assert!(
            sim.drain_invalidations().is_empty(),
            "drain empties the log"
        );
        let exported = sim.export_blacklist();
        assert!(!exported.is_empty());
        assert!(exported.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
        assert!(exported.iter().any(|&(_, n)| n >= 2), "counts exported");
        // A fresh simulator restored with saturated counts demotes the
        // target on its *next* invalidation, not before (no cooldown is
        // carried across runs).
        let mut warm = Simulator::new(&p, SelectorKind::Net.make(&p, &cfg), &cfg);
        warm.restore_blacklist(&exported);
        assert_eq!(warm.export_blacklist(), exported, "counts round-trip");
    }

    #[test]
    fn pressure_waves_evict_and_execution_continues() {
        let cfg = SimConfig {
            faults: FaultConfig {
                seed: 11,
                flush_wave_ppm: 5_000,
                ..FaultConfig::default()
            },
            ..SimConfig::default()
        };
        let r = run_kind(SelectorKind::Lei, interproc_loop, 1, &cfg);
        let res = &r.resilience;
        assert!(res.flush_waves > 0);
        assert!(res.pressure_evicted_regions > 0);
        assert_eq!(res.invalidated_regions, 0, "no SMC faults were enabled");
        assert_eq!(
            res.blacklisted_targets, 0,
            "pressure does not blame targets"
        );
        assert!(r.hit_rate() > 0.3, "hit {:.3}", r.hit_rate());
    }

    #[test]
    fn counter_faults_leave_selectors_standing() {
        let cfg = SimConfig {
            faults: FaultConfig {
                seed: 5,
                counter_fault_ppm: 20_000,
                ..FaultConfig::default()
            },
            ..SimConfig::default()
        };
        for kind in SelectorKind::extended() {
            let r = run_kind(kind, interproc_loop, 1, &cfg);
            assert!(r.resilience.counter_faults > 0, "{kind}");
            assert!(r.cache_insts <= r.total_insts, "{kind}");
        }
    }

    #[test]
    fn report_region_order_matches_cache() {
        let cfg = SimConfig::default();
        let mut s = ScenarioBuilder::new(1);
        interproc_loop(&mut s);
        let (p, spec) = s.build().unwrap();
        let mut sim = Simulator::new(&p, SelectorKind::Net.make(&p, &cfg), &cfg);
        sim.run(Executor::new(&p, spec));
        let rep = sim.report();
        for (i, (r, c)) in rep.regions.iter().zip(sim.cache().regions()).enumerate() {
            assert_eq!(r.entry, c.entry(), "region {i}");
        }
    }
}
