//! The dynamic-optimization-system simulator (paper §2.1 and §2.3).
//!
//! The simulator consumes the executed basic-block stream (from
//! [`Executor`](rsel_program::Executor) or a recorded stream) and
//! re-enacts the system of the paper's Figure 1: interpretation with
//! branch profiling, region selection, an unbounded code cache, lazy
//! inter-region linking, and execution from the cache — while measuring
//! every quantity the evaluation reports.

use crate::cache::{CodeCache, RegionId, TransferClass};
use crate::config::SimConfig;
use crate::metrics::domination::analyze_domination;
use crate::metrics::report::{RegionReport, RunReport};
use crate::select::{Arrival, RegionSelector};
use rsel_program::{Addr, Entry, Program, Step};
use std::collections::{HashMap, HashSet};

/// Virtual-memory page size used for the layout-locality metric.
const PAGE_BYTES: u64 = 4096;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    Interp,
    InCache { region: RegionId, block: Addr },
}

#[derive(Clone, Copy, Debug, Default)]
struct RegionRuntime {
    executions: u64,
    cycle_ends: u64,
    insts_executed: u64,
}

/// The trace-driven simulator.
///
/// Drive it with [`Simulator::run`] (or step-by-step with
/// [`Simulator::arrive`]) and collect the metrics with
/// [`Simulator::report`].
pub struct Simulator<'p> {
    program: &'p Program,
    selector: Box<dyn RegionSelector + 'p>,
    cache: CodeCache,
    stub_bytes: u64,
    mode: Mode,
    pending_exit: bool,
    prev_block: Option<Addr>,
    // Aggregate counters.
    total_insts: u64,
    cache_insts: u64,
    interpreted_taken: u64,
    transitions: u64,
    transition_distance_sum: u64,
    transition_page_crossings: u64,
    // Per-region runtime stats, indexed by RegionId.
    runtime: Vec<RegionRuntime>,
    // Executed-predecessor relation over program blocks.
    exec_preds: HashMap<Addr, HashSet<Addr>>,
    // Exits observed leaving the cache: target -> {(region, from block)}.
    exit_edges: HashMap<Addr, HashSet<(RegionId, Addr)>>,
    // Regions evicted by bounded-cache flushes, with their final stats.
    retired: Vec<RegionReport>,
}

impl<'p> Simulator<'p> {
    /// Creates a simulator over `program` with the given selector.
    pub fn new(
        program: &'p Program,
        selector: Box<dyn RegionSelector + 'p>,
        config: &SimConfig,
    ) -> Self {
        let cache = match config.cache_capacity {
            Some(cap) => CodeCache::bounded(cap, config.stub_bytes),
            None => CodeCache::new(),
        };
        Simulator {
            program,
            selector,
            cache,
            stub_bytes: config.stub_bytes,
            mode: Mode::Interp,
            pending_exit: false,
            prev_block: None,
            total_insts: 0,
            cache_insts: 0,
            interpreted_taken: 0,
            transitions: 0,
            transition_distance_sum: 0,
            transition_page_crossings: 0,
            runtime: Vec::new(),
            exec_preds: HashMap::new(),
            exit_edges: HashMap::new(),
            retired: Vec::new(),
        }
    }

    /// Feeds every step of `stream` through the system.
    pub fn run(&mut self, stream: impl IntoIterator<Item = Step>) {
        for step in stream {
            self.arrive(&step);
        }
    }

    /// The code cache (inspect regions after a run).
    pub fn cache(&self) -> &CodeCache {
        &self.cache
    }

    /// The selector (inspect profiling state).
    pub fn selector(&self) -> &dyn RegionSelector {
        self.selector.as_ref()
    }

    /// Total instructions executed so far.
    pub fn total_insts(&self) -> u64 {
        self.total_insts
    }

    fn insert_regions(&mut self, regions: Vec<crate::cache::Region>) {
        for r in regions {
            if self.cache.would_overflow(&r) {
                self.retire_all();
            }
            let id = self.cache.insert(r);
            debug_assert_eq!(id.index(), self.runtime.len());
            self.runtime.push(RegionRuntime::default());
        }
    }

    /// Bounded-cache flush: every live region's final statistics move
    /// to the retired list, the cache empties, and region ids restart.
    fn retire_all(&mut self) {
        debug_assert_eq!(self.mode, Mode::Interp, "flushes happen while interpreting");
        self.retired.extend(Self::region_reports(&self.cache, &self.runtime));
        self.cache.flush();
        self.runtime.clear();
        // Exit edges refer to now-recycled region ids.
        self.exit_edges.clear();
    }

    fn region_reports(cache: &CodeCache, runtime: &[RegionRuntime]) -> Vec<RegionReport> {
        cache
            .regions()
            .iter()
            .zip(runtime)
            .map(|(r, rt)| RegionReport {
                entry: r.entry(),
                kind: r.kind(),
                insts_copied: r.inst_count(),
                bytes: r.byte_size(),
                stubs: r.stub_count(),
                spans_cycle: r.spans_cycle(),
                executions: rt.executions,
                cycle_ends: rt.cycle_ends,
                insts_executed: rt.insts_executed,
            })
            .collect()
    }

    fn enter_region(&mut self, id: RegionId, target: Addr, len: u64) {
        self.runtime[id.index()].executions += 1;
        self.runtime[id.index()].insts_executed += len;
        self.cache_insts += len;
        self.mode = Mode::InCache { region: id, block: target };
    }

    /// Processes one executed block.
    pub fn arrive(&mut self, step: &Step) {
        let len = self.program.block(step.block).len() as u64;
        let target = step.start;
        self.total_insts += len;
        let prev = self.prev_block;
        self.prev_block = Some(target);
        if let Some(p) = prev {
            self.exec_preds.entry(target).or_default().insert(p);
        }

        // --- In-cache execution ---------------------------------------
        if let Mode::InCache { region, block } = self.mode {
            match self.cache.region(region).classify(block, target) {
                TransferClass::Cycle => {
                    let rt = &mut self.runtime[region.index()];
                    rt.cycle_ends += 1;
                    rt.executions += 1;
                    rt.insts_executed += len;
                    self.cache_insts += len;
                    self.mode = Mode::InCache { region, block: target };
                    return;
                }
                TransferClass::Internal => {
                    self.runtime[region.index()].insts_executed += len;
                    self.cache_insts += len;
                    self.mode = Mode::InCache { region, block: target };
                    return;
                }
                TransferClass::Exit => {
                    self.exit_edges.entry(target).or_default().insert((region, block));
                    if let Some(r2) = self.cache.lookup(target) {
                        // Lazy linking: the exit stub jumps straight to
                        // the other region — a region transition.
                        self.transitions += 1;
                        let from = self.cache.region(region).cache_offset();
                        let to = self.cache.region(r2).cache_offset();
                        self.transition_distance_sum += from.abs_diff(to);
                        if from / PAGE_BYTES != to / PAGE_BYTES {
                            self.transition_page_crossings += 1;
                        }
                        self.enter_region(r2, target, len);
                        return;
                    }
                    // Exit to the interpreter; fall through to the
                    // interpreter arrival logic below.
                    self.mode = Mode::Interp;
                    self.pending_exit = true;
                }
            }
        }

        // --- Interpreter arrival ---------------------------------------
        let from_exit = std::mem::take(&mut self.pending_exit);
        match step.entry {
            Entry::Taken { src, .. } => {
                if !from_exit {
                    self.interpreted_taken += 1;
                    // Active trace growth sees the transfer first (stop
                    // conditions, Figure 6 line 7 / NET's rules).
                    let done = self.selector.on_transfer(&self.cache, src, target, true);
                    self.insert_regions(done);
                }
                // "At every interpreted taken branch, the system decides
                // whether to switch ... to executing a region" (§2.1).
                if let Some(rid) = self.cache.lookup(target) {
                    self.enter_region(rid, target, len);
                    return;
                }
                let done = self.selector.on_arrival(
                    &self.cache,
                    Arrival { src: Some(src), tgt: target, taken: true, from_cache_exit: from_exit },
                );
                self.insert_regions(done);
                // "jump newT" (Figure 5, line 15): a freshly selected
                // region whose entry is this target is entered at once.
                if let Some(rid) = self.cache.lookup(target) {
                    self.enter_region(rid, target, len);
                    return;
                }
            }
            Entry::Fallthrough => {
                if from_exit {
                    // Landing from a fall-through exit stub.
                    let src = prev.map(|p| {
                        self.program.block_at(p).expect("prev is a block").terminator().addr()
                    });
                    let done = self.selector.on_arrival(
                        &self.cache,
                        Arrival { src, tgt: target, taken: false, from_cache_exit: true },
                    );
                    self.insert_regions(done);
                } else if let Some(p) = prev {
                    let src =
                        self.program.block_at(p).expect("prev is a block").terminator().addr();
                    let done = self.selector.on_transfer(&self.cache, src, target, false);
                    self.insert_regions(done);
                }
            }
            Entry::Start => {}
        }

        // Interpreted execution of the block (active growth extends).
        let done = self.selector.on_block(&self.cache, target);
        self.insert_regions(done);
    }

    /// Assembles the full metrics report. With a bounded cache, the
    /// region list covers every region ever selected (retired and
    /// live); the domination analysis covers live regions only.
    pub fn report(&self) -> RunReport {
        let mut regions = self.retired.clone();
        regions.extend(Self::region_reports(&self.cache, &self.runtime));
        RunReport {
            selector: self.selector.name().to_string(),
            total_insts: self.total_insts,
            cache_insts: self.cache_insts,
            interpreted_taken: self.interpreted_taken,
            region_transitions: self.transitions,
            regions,
            peak_counters: self.selector.peak_counters(),
            peak_observed_bytes: self.selector.peak_observed_bytes(),
            cache_size_estimate: self.cache.size_estimate(self.stub_bytes),
            domination: analyze_domination(&self.cache, &self.exec_preds, &self.exit_edges),
            cache_flushes: self.cache.flushes(),
            transition_distance_sum: self.transition_distance_sum,
            transition_page_crossings: self.transition_page_crossings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::SelectorKind;
    use rsel_program::patterns::ScenarioBuilder;
    use rsel_program::Executor;

    fn run_kind(
        kind: SelectorKind,
        build: impl Fn(&mut ScenarioBuilder),
        seed: u64,
        config: &SimConfig,
    ) -> RunReport {
        let mut s = ScenarioBuilder::new(seed);
        build(&mut s);
        let (p, spec) = s.build().unwrap();
        let mut sim = Simulator::new(&p, kind.make(&p, config), config);
        sim.run(Executor::new(&p, spec));
        sim.report()
    }

    fn hot_loop(s: &mut ScenarioBuilder) {
        let f = s.function("main", 0x1000);
        let lp = s.counted_loop(f, 3, 100_000);
        s.ret_from(f, lp.exit);
    }

    #[test]
    fn net_caches_a_hot_loop() {
        let r = run_kind(SelectorKind::Net, hot_loop, 1, &SimConfig::default());
        assert!(r.hit_rate() > 0.99, "hit rate {}", r.hit_rate());
        assert_eq!(r.region_count(), 1);
        assert!(r.regions[0].spans_cycle);
        assert!(r.regions[0].cycle_ends > 90_000);
        assert_eq!(r.cover_set_size(0.9), Some(1));
    }

    #[test]
    fn all_selectors_conserve_instructions() {
        for kind in SelectorKind::all() {
            let r = run_kind(kind, hot_loop, 1, &SimConfig::default());
            assert!(r.cache_insts <= r.total_insts, "{kind}");
            assert!(r.total_insts > 0, "{kind}");
        }
    }

    /// Paper Figure 2: a loop whose dominant path calls a function at a
    /// lower address. NET needs two traces; LEI spans the cycle in one.
    fn interproc_loop(s: &mut ScenarioBuilder) {
        let main = s.function("main", 0x4000);
        let callee = s.function("callee", 0x1000);
        let head = s.block(main, 2);
        let latch = s.block(main, 1);
        s.call(head, callee);
        s.branch_trips(latch, head, 50_000);
        let done = s.block(main, 0);
        s.ret(done);
        let c0 = s.block(callee, 2);
        s.ret(c0);
    }

    #[test]
    fn lei_spans_interprocedural_cycle_net_does_not() {
        let cfg = SimConfig::default();
        let net = run_kind(SelectorKind::Net, interproc_loop, 1, &cfg);
        let lei = run_kind(SelectorKind::Lei, interproc_loop, 1, &cfg);
        // NET splits the cycle into multiple traces, none spanning it.
        assert!(net.region_count() >= 2, "NET regions: {}", net.region_count());
        assert_eq!(net.regions.iter().filter(|r| r.spans_cycle).count(), 0);
        // LEI selects one cycle-spanning trace.
        assert!(lei.regions.iter().any(|r| r.spans_cycle));
        assert!(lei.region_count() < net.region_count());
        // Fewer regions, fewer transitions: better locality.
        assert!(lei.region_transitions < net.region_transitions);
        // Both execute almost everything from the cache.
        assert!(net.hit_rate() > 0.99);
        assert!(lei.hit_rate() > 0.99);
    }

    #[test]
    fn transitions_counted_between_regions() {
        let cfg = SimConfig::default();
        let net = run_kind(SelectorKind::Net, interproc_loop, 1, &cfg);
        // NET's two traces bounce between each other every iteration.
        assert!(net.region_transitions > 10_000);
    }

    #[test]
    fn bounded_cache_flushes_and_recovers() {
        let cfg = SimConfig { cache_capacity: Some(60), ..SimConfig::default() };
        let mut s = ScenarioBuilder::new(1);
        interproc_loop(&mut s);
        let (p, spec) = s.build().unwrap();
        let mut sim = Simulator::new(&p, SelectorKind::Net.make(&p, &cfg), &cfg);
        sim.run(Executor::new(&p, spec));
        let rep = sim.report();
        assert!(rep.cache_flushes > 0, "tiny capacity forces flushes");
        // Regions regenerate after each flush, so more are selected
        // than under an unbounded cache.
        let unbounded = run_kind(SelectorKind::Net, interproc_loop, 1, &SimConfig::default());
        assert_eq!(unbounded.cache_flushes, 0);
        assert!(rep.region_count() > unbounded.region_count());
        // Even while thrashing, the cache serves a nontrivial share of
        // execution between flushes.
        assert!(rep.hit_rate() > 0.3, "hit {:.3}", rep.hit_rate());
        // Live cache respects the capacity.
        assert!(sim.cache().size_estimate(cfg.stub_bytes) <= 60);
    }

    /// Indirect dispatch loop: head, indirect switch over two handlers,
    /// latch back to head.
    fn dispatch_loop(s: &mut ScenarioBuilder) {
        let f = s.function("main", 0x1000);
        let head = s.block(f, 1);
        let sw = s.block(f, 1);
        let h1 = s.block(f, 2);
        let h2 = s.block(f, 2);
        let latch = s.block(f, 1);
        let out = s.block(f, 0);
        let _ = head;
        s.indirect_jump_weighted(sw, vec![(h1, 9), (h2, 1)]);
        s.jump(h1, latch);
        s.jump(h2, latch);
        s.branch_trips(latch, head, 60_000);
        s.ret(out);
    }

    #[test]
    fn indirect_targets_match_and_mispredict_in_cache() {
        let cfg = SimConfig::default();
        let r = run_kind(SelectorKind::Net, dispatch_loop, 5, &cfg);
        // The hot handler's path is cached and runs from the cache; the
        // cold handler's indirect target mispredicts the embedded edge
        // and exits, so the cache still serves most execution.
        assert!(r.hit_rate() > 0.9, "hit {:.3}", r.hit_rate());
        assert!(r.region_count() >= 1);
        // Roughly 10% of iterations take the cold handler: they leave
        // the region (as a transition or an interpreter exit).
        assert!(r.region_transitions > 0 || r.interpreted_taken > 5_000);
    }

    #[test]
    fn page_crossings_never_exceed_transitions() {
        let cfg = SimConfig::default();
        for kind in SelectorKind::all() {
            let r = run_kind(kind, interproc_loop, 1, &cfg);
            assert!(r.transition_page_crossings <= r.region_transitions, "{kind}");
            if r.region_transitions > 0 {
                assert!(r.mean_transition_distance() >= 0.0);
            }
        }
    }

    #[test]
    fn extended_selectors_run_the_interproc_loop() {
        let cfg = SimConfig::default();
        for kind in SelectorKind::extended() {
            let r = run_kind(kind, interproc_loop, 1, &cfg);
            assert!(r.cache_insts <= r.total_insts, "{kind}");
            // Every algorithm eventually caches this scorching loop.
            assert!(r.region_count() >= 1, "{kind} selected nothing");
            assert!(r.hit_rate() > 0.5, "{kind} hit {:.3}", r.hit_rate());
        }
    }

    #[test]
    fn report_region_order_matches_cache() {
        let cfg = SimConfig::default();
        let mut s = ScenarioBuilder::new(1);
        interproc_loop(&mut s);
        let (p, spec) = s.build().unwrap();
        let mut sim = Simulator::new(&p, SelectorKind::Net.make(&p, &cfg), &cfg);
        sim.run(Executor::new(&p, spec));
        let rep = sim.report();
        for (i, (r, c)) in rep.regions.iter().zip(sim.cache().regions()).enumerate() {
            assert_eq!(r.entry, c.entry(), "region {i}");
        }
    }
}
