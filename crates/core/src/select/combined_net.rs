//! Trace combination over NET (paper §4, "combined NET").

use super::counters::CounterTable;
use super::form::TraceGrower;
use super::observe::ObservationStore;
use super::region_cfg::combine_traces;
use super::{Arrival, RegionSelector};
use crate::cache::{CodeCache, Region};
use crate::config::SimConfig;
use crate::fxhash::FxHashSet;
use rsel_program::{Addr, Program};
use rsel_trace::AddrWidth;

/// NET with trace combination (paper Figure 13).
///
/// Profiling begins at `T_start = net_threshold − T_prof`, so a region
/// is still selected after the same 50 interpreted executions as plain
/// NET. Each execution past `T_start` grows one *observed* trace (a
/// next-executing tail, stored compactly and not inserted into the
/// cache); when the `T_prof`-th observation completes, the observed
/// traces are combined into a single multi-path region.
#[derive(Debug)]
pub struct CombinedNetSelector<'p> {
    program: &'p Program,
    t_start: u32,
    t_prof: u32,
    t_min: u32,
    max_insts: usize,
    width: AddrWidth,
    counters: CounterTable,
    observers: Vec<TraceGrower>,
    combine_on_complete: FxHashSet<Addr>,
    store: ObservationStore,
    rejoin_iterations: u64,
}

impl<'p> CombinedNetSelector<'p> {
    /// Creates a combined-NET selector over `program`.
    pub fn new(program: &'p Program, config: &SimConfig) -> Self {
        CombinedNetSelector {
            program,
            t_start: config.net_t_start(),
            t_prof: config.t_prof,
            t_min: config.t_min,
            max_insts: config.max_trace_insts,
            width: config.addr_width,
            counters: CounterTable::new(),
            observers: Vec::new(),
            combine_on_complete: FxHashSet::default(),
            store: ObservationStore::new(),
            rejoin_iterations: 0,
        }
    }

    /// Number of active observation growers (for tests).
    pub fn active_observations(&self) -> usize {
        self.observers.len()
    }

    /// Total rejoin-marking iterations across all combinations.
    pub fn rejoin_iterations(&self) -> u64 {
        self.rejoin_iterations
    }

    /// Handles one completed observation; returns the combined region
    /// when this completion was the target's last.
    fn observation_done(
        &mut self,
        entry: Addr,
        compact: rsel_trace::CompactTrace,
    ) -> Option<Region> {
        self.store.add(entry, compact);
        if !self.combine_on_complete.remove(&entry) {
            return None;
        }
        let traces = self.store.take(entry);
        let res = combine_traces(self.program, entry, &traces, self.t_min)
            .expect("observed traces replay against their own program");
        self.rejoin_iterations += res.rejoin_iterations as u64;
        Some(res.region)
    }
}

impl RegionSelector for CombinedNetSelector<'_> {
    fn on_transfer(&mut self, cache: &CodeCache, src: Addr, tgt: Addr, taken: bool) -> Vec<Region> {
        let mut done = Vec::new();
        let mut still = Vec::with_capacity(self.observers.len());
        for mut g in std::mem::take(&mut self.observers) {
            match g.feed_transfer(cache, src, tgt, taken) {
                Some(t) => done.push((g.entry(), t.compact)),
                None => still.push(g),
            }
        }
        self.observers = still;
        done.into_iter()
            .filter_map(|(e, c)| self.observation_done(e, c))
            .collect()
    }

    fn on_arrival(&mut self, _cache: &CodeCache, a: Arrival) -> Vec<Region> {
        let backward = a.taken && a.src.is_some_and(|s| a.tgt.is_backward_from(s));
        if !(backward || a.from_cache_exit) {
            return Vec::new();
        }
        if self.combine_on_complete.contains(&a.tgt) {
            // Combination already scheduled; stop counting.
            return Vec::new();
        }
        let c = self.counters.increment(a.tgt);
        if c <= self.t_start {
            return Vec::new();
        }
        if c >= self.t_start + self.t_prof {
            self.counters.recycle(a.tgt);
            self.combine_on_complete.insert(a.tgt);
        }
        if !self.observers.iter().any(|g| g.entry() == a.tgt) {
            self.observers
                .push(TraceGrower::new(a.tgt, self.max_insts, self.width));
        }
        Vec::new()
    }

    fn on_block(&mut self, _cache: &CodeCache, start: Addr) -> Vec<Region> {
        let mut done = Vec::new();
        let mut still = Vec::with_capacity(self.observers.len());
        for mut g in std::mem::take(&mut self.observers) {
            match g.feed_block(self.program, start) {
                Some(t) => done.push((g.entry(), t.compact)),
                None => still.push(g),
            }
        }
        self.observers = still;
        done.into_iter()
            .filter_map(|(e, c)| self.observation_done(e, c))
            .collect()
    }

    fn on_fault(&mut self, fault: super::CounterFault) {
        match fault {
            super::CounterFault::Saturate => self.counters.saturate_all(),
            super::CounterFault::Reset => self.counters.reset_all(),
        }
    }

    fn counters_in_use(&self) -> usize {
        self.counters.in_use()
    }

    fn peak_counters(&self) -> usize {
        self.counters.peak()
    }

    fn observed_bytes(&self) -> usize {
        self.store.bytes()
    }

    fn peak_observed_bytes(&self) -> usize {
        self.store.peak_bytes()
    }

    fn name(&self) -> &'static str {
        "combined NET"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_program::ProgramBuilder;

    /// S(cond->T) ; F ; T ; J ; back(cond->S) ; X(ret); F jumps to J.
    fn diamond_loop() -> (Program, Vec<Addr>) {
        let mut b = ProgramBuilder::new();
        let f = b.function("f", 0x100);
        let s = b.block(f);
        let fall = b.block(f);
        let taken = b.block(f);
        let j = b.block(f);
        let back = b.block(f);
        let x = b.block_with(f, 0);
        b.cond_branch(s, taken);
        b.jump(fall, j);
        // taken falls into j; j falls into back
        b.cond_branch(back, s);
        b.ret(x);
        let p = b.build().unwrap();
        let addrs = [s, fall, taken, j, back, x]
            .iter()
            .map(|&id| p.block(id).start())
            .collect();
        (p, addrs)
    }

    /// Drives taken/fall alternating iterations of the loop through the
    /// selector, mimicking the simulator's event order.
    fn run_iterations(
        sel: &mut CombinedNetSelector<'_>,
        cache: &CodeCache,
        p: &Program,
        a: &[Addr],
        start: usize,
        n: usize,
    ) -> Vec<Region> {
        let term = |addr: Addr| p.block_at(addr).unwrap().terminator().addr();
        let mut out = Vec::new();
        for i in start..start + n {
            let take = i % 2 == 0;
            // back -> S (backward taken): arrival then blocks.
            out.extend(sel.on_transfer(cache, term(a[4]), a[0], true));
            out.extend(sel.on_arrival(
                cache,
                Arrival {
                    src: Some(term(a[4])),
                    tgt: a[0],
                    taken: true,
                    from_cache_exit: false,
                },
            ));
            out.extend(sel.on_block(cache, a[0]));
            if take {
                out.extend(sel.on_transfer(cache, term(a[0]), a[2], true));
                out.extend(sel.on_block(cache, a[2]));
                out.extend(sel.on_transfer(cache, term(a[2]), a[3], false));
            } else {
                out.extend(sel.on_transfer(cache, term(a[0]), a[1], false));
                out.extend(sel.on_block(cache, a[1]));
                out.extend(sel.on_transfer(cache, term(a[1]), a[3], true));
            }
            out.extend(sel.on_block(cache, a[3]));
            out.extend(sel.on_transfer(cache, term(a[3]), a[4], false));
            out.extend(sel.on_block(cache, a[4]));
        }
        out
    }

    fn config() -> SimConfig {
        SimConfig {
            net_threshold: 8,
            t_prof: 4,
            t_min: 2,
            ..SimConfig::default()
        }
    }

    #[test]
    fn observes_then_combines_both_sides() {
        let (p, a) = diamond_loop();
        let cfg = config();
        assert_eq!(cfg.net_t_start(), 4);
        let mut sel = CombinedNetSelector::new(&p, &cfg);
        let cache = CodeCache::new();
        // Drive iterations until the first combined region appears (in
        // the real simulator the cache hit would then stop profiling).
        let mut regions = Vec::new();
        for i in 0..20 {
            regions = run_iterations(&mut sel, &cache, &p, &a, i, 1);
            if !regions.is_empty() {
                break;
            }
        }
        assert_eq!(regions.len(), 1, "exactly one combined region for S");
        let r = &regions[0];
        assert_eq!(r.entry(), a[0]);
        // Both diamond sides were observed in >= t_min traces.
        assert!(r.contains_block(a[1]), "fall side kept");
        assert!(r.contains_block(a[2]), "taken side kept");
        assert!(r.contains_block(a[3]) && r.contains_block(a[4]));
        assert!(r.spans_cycle(), "back edge to S promoted to internal edge");
        // After combination, storage for S is released.
        assert_eq!(sel.observed_bytes(), 0);
        assert!(sel.peak_observed_bytes() > 0);
        // The same iteration's arrival may have restarted S's counter
        // after the combination fired; nothing else is profiled.
        assert!(sel.counters_in_use() <= 1);
    }

    #[test]
    fn no_observation_before_t_start() {
        let (p, a) = diamond_loop();
        let mut sel = CombinedNetSelector::new(&p, &config());
        let cache = CodeCache::new();
        run_iterations(&mut sel, &cache, &p, &a, 0, 4);
        assert_eq!(sel.active_observations(), 0);
        assert_eq!(sel.peak_observed_bytes(), 0);
    }

    #[test]
    fn observation_starts_after_t_start() {
        let (p, a) = diamond_loop();
        let mut sel = CombinedNetSelector::new(&p, &config());
        let cache = CodeCache::new();
        run_iterations(&mut sel, &cache, &p, &a, 0, 5);
        // The 5th backward arrival pushes the counter past T_start = 4.
        assert!(sel.active_observations() > 0 || sel.peak_observed_bytes() > 0);
    }
}
