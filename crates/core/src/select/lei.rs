//! Last-Executed Iteration (LEI) trace selection (paper §3, Figures 5–6).

use super::counters::CounterTable;
use super::history::HistoryBuffer;
use super::{Arrival, RegionSelector};
use crate::cache::{CodeCache, Region};
use crate::config::SimConfig;
use rsel_program::{Addr, InstKind, Program};
use rsel_trace::{AddrWidth, CompactTrace, TraceRecorder};
use std::collections::HashSet;

/// A trace formed from the history buffer by FORM-TRACE (Figure 6).
#[derive(Clone, Debug)]
pub struct FormedTrace {
    /// Block start addresses along the cyclic path, entry first.
    pub blocks: Vec<Addr>,
    /// Compact encoding of the path (used by combined LEI).
    pub compact: CompactTrace,
    /// Total instructions in the selected blocks.
    pub insts: usize,
}

/// Reconstructs the just-executed cyclic path from the history buffer
/// (paper Figure 6, FORM-TRACE).
///
/// Given the taken branches recorded after the previous occurrence of
/// `start`, the full path is rebuilt by appending the instructions on
/// the fall-through path from each branch target to the next branch
/// source. The trace ends when an instruction begins an existing region,
/// when the path returns to an instruction already in the trace (a
/// cycle is complete), or — a robustness addition for stale buffers —
/// when the recorded branches stop lining up with the program text.
///
/// Returns `None` when no consistent non-empty path can be formed.
pub fn form_lei_trace(
    program: &Program,
    cache: &CodeCache,
    buf: &HistoryBuffer,
    start: Addr,
    old_seq: u64,
    width: AddrWidth,
) -> Option<FormedTrace> {
    let branches: Vec<(Addr, Addr)> = buf
        .branches_after(old_seq)
        .map(|e| (e.src, e.tgt))
        .collect();
    form_trace_from_branches(program, cache, start, &branches, width)
}

/// Reconstructs a trace from an explicit sequence of `(src, tgt)` taken
/// branches starting at `start` — the core of FORM-TRACE, shared by LEI
/// (whose branches come from the history buffer) and the ADORE model
/// (whose branches come from sampled four-branch paths).
pub fn form_trace_from_branches(
    program: &Program,
    cache: &CodeCache,
    start: Addr,
    branches: &[(Addr, Addr)],
    width: AddrWidth,
) -> Option<FormedTrace> {
    let mut blocks = Vec::new();
    let mut in_trace: HashSet<Addr> = HashSet::new();
    let mut rec = TraceRecorder::new(start, width);
    let mut prev = start;
    let mut last_inst = start;
    'branches: for &(branch_src, branch_tgt) in branches {
        let mut cur = prev;
        loop {
            // Stop if the next instruction begins an existing trace
            // (Figure 6, line 7).
            if cache.contains(cur) {
                break 'branches;
            }
            // Cycle completed on a fall-through path (§3.1).
            if in_trace.contains(&cur) {
                break 'branches;
            }
            let Some(inst) = program.inst_at(cur) else {
                break 'branches;
            };
            in_trace.insert(cur);
            if program.block_at(cur).is_some() {
                blocks.push(cur);
            }
            last_inst = cur;
            if cur == branch_src {
                // The recorded transfer. Entries made for fall-through
                // exit-stub landings carry the fall-through address as
                // their target, so takenness is derived by comparing
                // the recorded target with the instruction; any other
                // mismatch means the buffer is stale.
                match inst.kind() {
                    InstKind::CondBranch { target } => {
                        if branch_tgt == target {
                            rec.record_cond(true);
                        } else if branch_tgt == inst.fallthrough_addr() {
                            rec.record_cond(false);
                        } else {
                            break 'branches; // stale buffer
                        }
                    }
                    InstKind::IndirectJump | InstKind::IndirectCall | InstKind::Ret => {
                        rec.record_indirect(branch_tgt)
                    }
                    InstKind::Jump { target } | InstKind::Call { target } => {
                        if branch_tgt != target {
                            break 'branches; // stale buffer
                        }
                    }
                    InstKind::Straight => {
                        if branch_tgt != inst.fallthrough_addr() {
                            break 'branches; // stale buffer
                        }
                        // A fall-through continuation recorded by an
                        // exit landing: no code needed.
                    }
                }
                break;
            }
            // Instructions between taken branches lie on a fall-through
            // path: straight code or not-taken conditionals.
            match inst.kind() {
                InstKind::Straight => {}
                InstKind::CondBranch { .. } => rec.record_cond(false),
                // An unconditional transfer before reaching the branch
                // source means the buffer does not describe a contiguous
                // interpreted path (control visited the cache in
                // between); end the trace here.
                _ => break 'branches,
            }
            cur = inst.fallthrough_addr();
        }
        // Stop if the branch forms a cycle (Figure 6, line 12).
        if in_trace.contains(&branch_tgt) {
            break;
        }
        prev = branch_tgt;
    }
    if blocks.is_empty() {
        return None;
    }
    let insts = in_trace.len();
    Some(FormedTrace {
        blocks,
        compact: rec.finish(last_inst),
        insts,
    })
}

/// The LEI selector (paper Figure 5).
///
/// Maintains a bounded history buffer of interpreted taken branches.
/// When a branch target already appears in the buffer, the just-executed
/// cycle is a selection candidate: if the completing branch is backward
/// or the previous occurrence followed a code-cache exit, the target's
/// counter is incremented, and at `T_cyc` the cyclic path is promoted to
/// a trace.
#[derive(Debug)]
pub struct LeiSelector<'p> {
    program: &'p Program,
    threshold: u32,
    width: AddrWidth,
    buf: HistoryBuffer,
    counters: CounterTable,
    pending_exit: bool,
}

impl<'p> LeiSelector<'p> {
    /// Creates an LEI selector over `program`.
    pub fn new(program: &'p Program, config: &SimConfig) -> Self {
        LeiSelector {
            program,
            threshold: config.lei_threshold,
            width: config.addr_width,
            buf: HistoryBuffer::new(config.history_size),
            counters: CounterTable::new(),
            pending_exit: false,
        }
    }

    /// The history buffer (for tests and diagnostics).
    pub fn history(&self) -> &HistoryBuffer {
        &self.buf
    }
}

impl RegionSelector for LeiSelector<'_> {
    fn on_transfer(&mut self, _: &CodeCache, _: Addr, _: Addr, _: bool) -> Vec<Region> {
        Vec::new() // LEI has no growth phase
    }

    fn on_arrival(&mut self, cache: &CodeCache, a: Arrival) -> Vec<Region> {
        // Exit-stub transfers are branches in the real system even when
        // the exit was the fall-through side of a conditional, so every
        // cache-exit landing enters the buffer (tagged `follows_exit`,
        // feeding line 9's second condition); otherwise only interpreted
        // taken branches do.
        if !(a.taken || a.from_cache_exit) {
            return Vec::new();
        }
        let Some(src) = a.src else { return Vec::new() };
        let follows_exit = a.from_cache_exit || std::mem::take(&mut self.pending_exit);
        // Figure 5 line 5: insert into the history buffer. A counter
        // only exists while its target stays in the buffer ("it must
        // also be in the history buffer of recently interpreted branch
        // targets", §3.2.4), so eviction releases the counter.
        let (new_seq, dropped) = self.buf.insert(src, a.tgt, follows_exit);
        if let Some(gone) = dropped {
            self.counters.recycle(gone);
        }
        // Line 6: does the target already appear in the buffer?
        let Some(old_seq) = self.buf.lookup(a.tgt) else {
            // Line 17.
            self.buf.update_hash(a.tgt, new_seq);
            return Vec::new();
        };
        let old_follows_exit = self
            .buf
            .entry(old_seq)
            .map(|e| e.follows_exit)
            .unwrap_or(false);
        // Line 8: point the hash at the new occurrence.
        self.buf.update_hash(a.tgt, new_seq);
        // Line 9: can this target begin a trace?
        if !(a.tgt.is_backward_from(src) || old_follows_exit) {
            return Vec::new();
        }
        // Lines 10–15.
        let c = self.counters.increment(a.tgt);
        if c < self.threshold {
            return Vec::new();
        }
        let formed = form_lei_trace(self.program, cache, &self.buf, a.tgt, old_seq, self.width);
        for gone in self.buf.truncate_after(old_seq) {
            self.counters.recycle(gone);
        }
        self.counters.recycle(a.tgt);
        match formed {
            Some(t) => vec![Region::trace(self.program, &t.blocks)],
            None => Vec::new(),
        }
    }

    fn on_block(&mut self, _: &CodeCache, _: Addr) -> Vec<Region> {
        Vec::new()
    }

    fn on_fault(&mut self, fault: super::CounterFault) {
        match fault {
            super::CounterFault::Saturate => self.counters.saturate_all(),
            super::CounterFault::Reset => self.counters.reset_all(),
        }
    }

    fn counters_in_use(&self) -> usize {
        self.counters.in_use()
    }

    fn distinct_targets_profiled(&self) -> usize {
        self.counters.distinct_ever()
    }

    fn peak_counters(&self) -> usize {
        self.counters.peak()
    }

    fn name(&self) -> &'static str {
        "LEI"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_program::ProgramBuilder;

    /// main at HIGH addresses: H(call E) ; L(latch, cond -> H) ; X(ret)
    /// callee E at LOW addresses: E(ret). The loop body spans the call:
    /// H -> E -> L -> H, an interprocedural cycle NET cannot span.
    fn interproc_program() -> (Program, [Addr; 4]) {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0x4000);
        let callee = b.function("callee", 0x100);
        let h = b.block(main);
        let l = b.block(main);
        let x = b.block_with(main, 0);
        b.call(h, callee);
        b.cond_branch(l, h);
        b.ret(x);
        let e = b.block(callee);
        b.ret(e);
        let p = b.build().unwrap();
        let hs = p.block(h).start();
        let ls = p.block(l).start();
        let es = p.block(e).start();
        let xs = p.block(x).start();
        (p, [hs, ls, es, xs])
    }

    fn lei_cfg(threshold: u32) -> SimConfig {
        SimConfig {
            lei_threshold: threshold,
            ..SimConfig::default()
        }
    }

    /// Drives one loop iteration's taken branches through the selector.
    fn iterate(
        lei: &mut LeiSelector<'_>,
        cache: &CodeCache,
        p: &Program,
        s: &[Addr; 4],
    ) -> Vec<Region> {
        let [h, l, e, _] = *s;
        let call_src = p.block_at(h).unwrap().terminator().addr();
        let ret_src = p.block_at(e).unwrap().terminator().addr();
        let latch_src = p.block_at(l).unwrap().terminator().addr();
        let mut out = Vec::new();
        for (src, tgt) in [(call_src, e), (ret_src, l), (latch_src, h)] {
            out.extend(lei.on_arrival(
                cache,
                Arrival {
                    src: Some(src),
                    tgt,
                    taken: true,
                    from_cache_exit: false,
                },
            ));
        }
        out
    }

    #[test]
    fn selects_interprocedural_cycle_at_threshold() {
        let (p, s) = interproc_program();
        let mut lei = LeiSelector::new(&p, &lei_cfg(3));
        let cache = CodeCache::new();
        let mut regions = Vec::new();
        let mut iters = 0;
        while regions.is_empty() && iters < 20 {
            regions = iterate(&mut lei, &cache, &p, &s);
            iters += 1;
        }
        // Both E (the backward call target) and H (the backward latch
        // target) are cycle heads; E's counter fires first within the
        // iteration, so the first region is the cycle rooted at E. In
        // the full simulator the cache hit at E would then stop H's
        // profiling; driving the selector bare also forms [H].
        let r = &regions[0];
        assert_eq!(r.entry(), s[2]);
        assert!(r.contains_block(s[0]) && r.contains_block(s[1]) && r.contains_block(s[2]));
        assert!(r.spans_cycle(), "cycle closes back at E");
        // The first cycle completes on iteration 2; counting starts
        // there, so threshold 3 fires on iteration 4.
        assert_eq!(iters, 4);
    }

    #[test]
    fn cycle_head_counter_only_for_backward_completion() {
        let (p, s) = interproc_program();
        let mut lei = LeiSelector::new(&p, &lei_cfg(50));
        let cache = CodeCache::new();
        // Forward-completing "cycles" (target above source) never get
        // counters: drive a forward branch to the same target twice.
        let hi_src = Addr::new(0x9000);
        for _ in 0..2 {
            lei.on_arrival(
                &cache,
                Arrival {
                    src: Some(hi_src),
                    tgt: Addr::new(0x9100),
                    taken: true,
                    from_cache_exit: false,
                },
            );
        }
        let _ = s;
        assert_eq!(lei.counters_in_use(), 0);
    }

    #[test]
    fn buffer_truncated_after_selection() {
        let (p, s) = interproc_program();
        let mut lei = LeiSelector::new(&p, &lei_cfg(2));
        let cache = CodeCache::new();
        let mut selected = Vec::new();
        for _ in 0..10 {
            selected.extend(iterate(&mut lei, &cache, &p, &s));
            if !selected.is_empty() {
                break;
            }
        }
        assert!(!selected.is_empty());
        // Each selection truncates the buffer back to the old occurrence
        // of the selected head, so far fewer than the 3-per-iteration
        // inserted branches remain.
        assert!(lei.history().len() <= 6, "len {}", lei.history().len());
    }

    #[test]
    fn formed_trace_instruction_count_matches_blocks() {
        let (p, s) = interproc_program();
        let mut lei = LeiSelector::new(&p, &lei_cfg(2));
        let cache = CodeCache::new();
        let mut regions = Vec::new();
        for _ in 0..10 {
            regions = iterate(&mut lei, &cache, &p, &s);
            if !regions.is_empty() {
                break;
            }
        }
        let r = &regions[0];
        let expected: u64 = r.blocks().iter().map(|b| u64::from(b.inst_count())).sum();
        assert_eq!(r.inst_count(), expected);
    }

    #[test]
    fn fallthrough_exit_entries_record_not_taken() {
        // An exit-stub landing on the fall-through side of a cond
        // branch enters the buffer with the fall-through address as
        // target; FORM-TRACE must record NOT-taken for it, so the
        // compact trace replays along the fall-through path.
        let mut b = ProgramBuilder::new();
        let f = b.function("f", 0x100);
        let s0 = b.block(f);
        let fall = b.block(f);
        let j = b.block(f);
        let x = b.block_with(f, 0);
        b.cond_branch(s0, j);
        // fall falls through into j, j into x.
        let _ = fall;
        b.cond_branch(j, s0); // backward, closes the cycle
        b.ret(x);
        let p = b.build().unwrap();
        let cache = CodeCache::new();
        let s0a = p.block(s0).start();
        let falla = p.block(fall).start();
        let cond = p.block(s0).branch_addr().unwrap();
        let back = p.block(j).branch_addr().unwrap();
        let mut buf = HistoryBuffer::new(16);
        let (old, _) = buf.insert(back, s0a, false);
        buf.update_hash(s0a, old);
        // Fall-through landing: target is s0's fall-through (fall).
        let (q, _) = buf.insert(cond, falla, true);
        buf.update_hash(falla, q);
        let (q, _) = buf.insert(back, s0a, false);
        buf.update_hash(s0a, q);
        let t = form_lei_trace(&p, &cache, &buf, s0a, old, AddrWidth::W32).unwrap();
        assert_eq!(
            t.blocks,
            vec![s0a, falla, p.block(j).start()],
            "path follows the fall-through side"
        );
        // The compact encoding replays to the same path.
        let decoded = t.compact.decode(&p).unwrap();
        assert_eq!(decoded.blocks, t.blocks);
    }

    #[test]
    fn form_trace_stops_at_cached_entry() {
        let (p, s) = interproc_program();
        let mut cache = CodeCache::new();
        // Cache a region at E: FORM-TRACE must stop before it.
        cache.insert(Region::trace(&p, &[s[2]]));
        let mut buf = HistoryBuffer::new(16);
        let call_src = p.block_at(s[0]).unwrap().terminator().addr();
        let ret_src = p.block_at(s[2]).unwrap().terminator().addr();
        let latch_src = p.block_at(s[1]).unwrap().terminator().addr();
        let (s0, _) = buf.insert(latch_src, s[0], false);
        buf.update_hash(s[0], s0);
        for (src, tgt) in [(call_src, s[2]), (ret_src, s[1]), (latch_src, s[0])] {
            let (q, _) = buf.insert(src, tgt, false);
            buf.update_hash(tgt, q);
        }
        let t = form_lei_trace(&p, &cache, &buf, s[0], s0, AddrWidth::W32).unwrap();
        assert_eq!(t.blocks, vec![s[0]], "stops before the cached callee");
    }
}
