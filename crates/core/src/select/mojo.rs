//! Mojo's trace selection (paper §5).
//!
//! Mojo is Microsoft's transparent optimization system for Windows,
//! "very similar to Dynamo. One main difference is that it uses one
//! threshold for backward-branch targets and a lower threshold for
//! trace exits. The authors claim that this lower threshold reduces the
//! impact of the rare case where the next-executing trace is a cold
//! path. In terms of our analysis, having a lower threshold for exit
//! targets also reduces the separation between related hot traces.
//! However, this approach still does not allow the related traces to be
//! optimized together."

use super::counters::CounterTable;
use super::form::TraceGrower;
use super::{Arrival, RegionSelector};
use crate::cache::{CodeCache, Region};
use crate::config::SimConfig;
use crate::fxhash::FxHashSet;
use rsel_program::{Addr, Program};
use rsel_trace::AddrWidth;

/// NET with Mojo's split thresholds: backward-branch targets use the
/// full threshold, code-cache exit targets a lower one.
#[derive(Debug)]
pub struct MojoSelector<'p> {
    program: &'p Program,
    backward_threshold: u32,
    exit_threshold: u32,
    max_trace_insts: usize,
    width: AddrWidth,
    counters: CounterTable,
    exit_targets: FxHashSet<Addr>,
    grower: Option<TraceGrower>,
}

impl<'p> MojoSelector<'p> {
    /// Creates a Mojo selector over `program`.
    pub fn new(program: &'p Program, config: &SimConfig) -> Self {
        MojoSelector {
            program,
            backward_threshold: config.net_threshold,
            exit_threshold: config.mojo_exit_threshold,
            max_trace_insts: config.max_trace_insts,
            width: config.addr_width,
            counters: CounterTable::new(),
            exit_targets: FxHashSet::default(),
            grower: None,
        }
    }

    /// Number of addresses known to be trace-exit targets (tests).
    pub fn exit_target_count(&self) -> usize {
        self.exit_targets.len()
    }
}

impl RegionSelector for MojoSelector<'_> {
    fn on_transfer(&mut self, cache: &CodeCache, src: Addr, tgt: Addr, taken: bool) -> Vec<Region> {
        let Some(g) = self.grower.as_mut() else {
            return Vec::new();
        };
        match g.feed_transfer(cache, src, tgt, taken) {
            Some(t) => {
                self.grower = None;
                vec![Region::trace(self.program, &t.blocks)]
            }
            None => Vec::new(),
        }
    }

    fn on_arrival(&mut self, _cache: &CodeCache, a: Arrival) -> Vec<Region> {
        if a.from_cache_exit {
            // Once an address is known as an exit target, it keeps the
            // lower threshold for the rest of the run.
            self.exit_targets.insert(a.tgt);
        }
        let backward = a.taken && a.src.is_some_and(|s| a.tgt.is_backward_from(s));
        if !(backward || a.from_cache_exit) {
            return Vec::new();
        }
        let c = self.counters.increment(a.tgt);
        let threshold = if self.exit_targets.contains(&a.tgt) {
            self.exit_threshold
        } else {
            self.backward_threshold
        };
        if c >= threshold && self.grower.is_none() {
            self.counters.recycle(a.tgt);
            self.grower = Some(TraceGrower::new(a.tgt, self.max_trace_insts, self.width));
        }
        Vec::new()
    }

    fn on_block(&mut self, _cache: &CodeCache, start: Addr) -> Vec<Region> {
        let Some(g) = self.grower.as_mut() else {
            return Vec::new();
        };
        match g.feed_block(self.program, start) {
            Some(t) => {
                self.grower = None;
                vec![Region::trace(self.program, &t.blocks)]
            }
            None => Vec::new(),
        }
    }

    fn on_fault(&mut self, fault: super::CounterFault) {
        match fault {
            super::CounterFault::Saturate => self.counters.saturate_all(),
            super::CounterFault::Reset => self.counters.reset_all(),
        }
    }

    fn counters_in_use(&self) -> usize {
        self.counters.in_use()
    }

    fn peak_counters(&self) -> usize {
        self.counters.peak()
    }

    fn distinct_targets_profiled(&self) -> usize {
        self.counters.distinct_ever()
    }

    fn name(&self) -> &'static str {
        "Mojo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_program::ProgramBuilder;

    fn program() -> Program {
        let mut b = ProgramBuilder::new();
        let f = b.function("f", 0x100);
        let a = b.block(f);
        let d = b.block_with(f, 0);
        b.cond_branch(a, a);
        b.ret(d);
        b.build().unwrap()
    }

    fn cfg() -> SimConfig {
        SimConfig {
            net_threshold: 10,
            mojo_exit_threshold: 3,
            ..SimConfig::default()
        }
    }

    #[test]
    fn exit_targets_use_the_lower_threshold() {
        let p = program();
        let mut mojo = MojoSelector::new(&p, &cfg());
        let cache = CodeCache::new();
        let d = p.blocks()[1].start();
        for i in 1..=3u32 {
            mojo.on_arrival(
                &cache,
                Arrival {
                    src: None,
                    tgt: d,
                    taken: false,
                    from_cache_exit: true,
                },
            );
            let growing = mojo.grower.is_some();
            assert_eq!(
                growing,
                i == 3,
                "exit threshold 3 fires on the third landing"
            );
        }
        assert_eq!(mojo.exit_target_count(), 1);
    }

    #[test]
    fn backward_targets_keep_the_full_threshold() {
        let p = program();
        let mut mojo = MojoSelector::new(&p, &cfg());
        let cache = CodeCache::new();
        let a = p.blocks()[0].start();
        let src = p.blocks()[0].terminator().addr();
        for _ in 0..9 {
            mojo.on_arrival(
                &cache,
                Arrival {
                    src: Some(src),
                    tgt: a,
                    taken: true,
                    from_cache_exit: false,
                },
            );
        }
        assert!(
            mojo.grower.is_none(),
            "nine backward arrivals stay below 10"
        );
        mojo.on_arrival(
            &cache,
            Arrival {
                src: Some(src),
                tgt: a,
                taken: true,
                from_cache_exit: false,
            },
        );
        assert!(mojo.grower.is_some());
    }

    #[test]
    fn exit_classification_is_sticky() {
        let p = program();
        let mut mojo = MojoSelector::new(&p, &cfg());
        let cache = CodeCache::new();
        let a = p.blocks()[0].start();
        let src = p.blocks()[0].terminator().addr();
        // One exit landing classifies `a` as an exit target...
        mojo.on_arrival(
            &cache,
            Arrival {
                src: Some(src),
                tgt: a,
                taken: true,
                from_cache_exit: true,
            },
        );
        // ...so two more backward arrivals reach the lower threshold.
        for _ in 0..2 {
            mojo.on_arrival(
                &cache,
                Arrival {
                    src: Some(src),
                    tgt: a,
                    taken: true,
                    from_cache_exit: false,
                },
            );
        }
        assert!(mojo.grower.is_some());
    }
}
