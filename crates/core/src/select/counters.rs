//! Profiling counters with recycling and peak tracking.

use crate::fxhash::{FxHashMap, FxHashSet};
use rsel_program::Addr;

/// The table of execution counters used by NET and LEI profiling.
///
/// Both algorithms associate a counter with a small subset of taken
/// branch targets and recycle the counter once its threshold is reached
/// (paper §3.2.4). The *maximum number of counters in use at any point*
/// is the profiling-memory metric of Figure 10, so the table tracks its
/// peak occupancy.
#[derive(Clone, Debug, Default)]
pub struct CounterTable {
    counts: FxHashMap<Addr, u32>,
    peak: usize,
    ever: FxHashSet<Addr>,
}

impl CounterTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        CounterTable::default()
    }

    /// Increments the counter for `addr` (creating it at 1) and returns
    /// the new value. Increments saturate at `u32::MAX` so a counter
    /// corrupted to the ceiling never wraps back below its threshold.
    pub fn increment(&mut self, addr: Addr) -> u32 {
        self.ever.insert(addr);
        let c = self.counts.entry(addr).or_insert(0);
        *c = c.saturating_add(1);
        let v = *c;
        self.peak = self.peak.max(self.counts.len());
        v
    }

    /// Forces every live counter to `u32::MAX` (a saturation fault:
    /// every profiled target looks scorching hot at once).
    pub fn saturate_all(&mut self) {
        for c in self.counts.values_mut() {
            *c = u32::MAX;
        }
    }

    /// Drops every live counter (a corruption fault: the profiling
    /// state is lost and accumulation starts over). The peak
    /// high-water mark survives.
    pub fn reset_all(&mut self) {
        self.counts.clear();
    }

    /// Current value of the counter for `addr`, if present.
    pub fn get(&self, addr: Addr) -> Option<u32> {
        self.counts.get(&addr).copied()
    }

    /// Recycles (removes) the counter for `addr`, returning its final
    /// value if it existed.
    pub fn recycle(&mut self, addr: Addr) -> Option<u32> {
        self.counts.remove(&addr)
    }

    /// Counters currently in use.
    pub fn in_use(&self) -> usize {
        self.counts.len()
    }

    /// Maximum counters in use at any point (Figure 10's metric).
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Iterates over the addresses currently holding counters.
    pub fn addresses(&self) -> impl Iterator<Item = Addr> + '_ {
        self.counts.keys().copied()
    }

    /// Number of distinct addresses ever profiled.
    pub fn distinct_ever(&self) -> usize {
        self.ever.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increments_accumulate() {
        let mut t = CounterTable::new();
        let a = Addr::new(0x10);
        assert_eq!(t.increment(a), 1);
        assert_eq!(t.increment(a), 2);
        assert_eq!(t.get(a), Some(2));
        assert_eq!(t.get(Addr::new(0x20)), None);
    }

    #[test]
    fn recycle_frees_slot_but_peak_persists() {
        let mut t = CounterTable::new();
        t.increment(Addr::new(1));
        t.increment(Addr::new(2));
        t.increment(Addr::new(3));
        assert_eq!(t.in_use(), 3);
        assert_eq!(t.peak(), 3);
        assert_eq!(t.recycle(Addr::new(2)), Some(1));
        assert_eq!(t.in_use(), 2);
        assert_eq!(t.peak(), 3, "peak is a high-water mark");
        assert_eq!(t.recycle(Addr::new(2)), None);
    }

    #[test]
    fn increment_saturates_at_max() {
        let mut t = CounterTable::new();
        let a = Addr::new(9);
        t.increment(a);
        t.saturate_all();
        assert_eq!(t.get(a), Some(u32::MAX));
        assert_eq!(t.increment(a), u32::MAX, "no wraparound");
    }

    #[test]
    fn reset_drops_counters_but_keeps_peak() {
        let mut t = CounterTable::new();
        t.increment(Addr::new(1));
        t.increment(Addr::new(2));
        t.reset_all();
        assert_eq!(t.in_use(), 0);
        assert_eq!(t.peak(), 2);
        assert_eq!(t.increment(Addr::new(1)), 1, "profiling starts over");
    }

    #[test]
    fn recycled_counter_restarts_at_one() {
        let mut t = CounterTable::new();
        let a = Addr::new(7);
        t.increment(a);
        t.increment(a);
        t.recycle(a);
        assert_eq!(t.increment(a), 1);
    }
}
