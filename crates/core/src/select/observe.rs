//! Storage for observed traces under trace combination (paper §4.2.1).

use crate::fxhash::FxHashMap;
use rsel_program::Addr;
use rsel_trace::CompactTrace;

/// Stores the compact observed traces per hot branch target, with the
/// byte accounting behind the paper's Figure 18.
///
/// "In order to delay all analysis until a region is selected, we store
/// each observed trace independently" (§4.2.1): traces are only decoded
/// and compared when the target's region is finally combined, at which
/// point [`ObservationStore::take`] removes them and releases their
/// memory.
#[derive(Clone, Debug, Default)]
pub struct ObservationStore {
    traces: FxHashMap<Addr, Vec<CompactTrace>>,
    bytes: usize,
    peak: usize,
}

impl ObservationStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ObservationStore::default()
    }

    /// Stores one observed trace for `target`.
    pub fn add(&mut self, target: Addr, trace: CompactTrace) {
        self.bytes += trace.byte_len();
        self.peak = self.peak.max(self.bytes);
        self.traces.entry(target).or_default().push(trace);
    }

    /// Number of traces currently stored for `target`.
    pub fn count(&self, target: Addr) -> usize {
        self.traces.get(&target).map_or(0, Vec::len)
    }

    /// Removes and returns all traces stored for `target`, releasing
    /// their memory.
    pub fn take(&mut self, target: Addr) -> Vec<CompactTrace> {
        let ts = self.traces.remove(&target).unwrap_or_default();
        self.bytes -= ts.iter().map(CompactTrace::byte_len).sum::<usize>();
        ts
    }

    /// Bytes currently used by stored traces.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Maximum bytes ever used (Figure 18's numerator).
    pub fn peak_bytes(&self) -> usize {
        self.peak
    }

    /// Number of targets with outstanding observations.
    pub fn targets(&self) -> usize {
        self.traces.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_trace::{AddrWidth, TraceRecorder};

    fn trace(n_conds: usize) -> CompactTrace {
        let mut r = TraceRecorder::new(Addr::new(0x100), AddrWidth::W32);
        for i in 0..n_conds {
            r.record_cond(i % 2 == 0);
        }
        r.finish(Addr::new(0x110))
    }

    #[test]
    fn bytes_track_additions_and_removals() {
        let mut s = ObservationStore::new();
        let t = trace(4);
        let per = t.byte_len();
        s.add(Addr::new(1), t.clone());
        s.add(Addr::new(1), t.clone());
        s.add(Addr::new(2), t);
        assert_eq!(s.bytes(), 3 * per);
        assert_eq!(s.peak_bytes(), 3 * per);
        assert_eq!(s.count(Addr::new(1)), 2);
        assert_eq!(s.targets(), 2);
        let taken = s.take(Addr::new(1));
        assert_eq!(taken.len(), 2);
        assert_eq!(s.bytes(), per);
        assert_eq!(s.peak_bytes(), 3 * per, "peak is a high-water mark");
        assert_eq!(s.count(Addr::new(1)), 0);
    }

    #[test]
    fn take_missing_target_is_empty() {
        let mut s = ObservationStore::new();
        assert!(s.take(Addr::new(9)).is_empty());
        assert_eq!(s.bytes(), 0);
    }
}
