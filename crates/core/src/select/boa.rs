//! BOA's trace selection (paper §5).
//!
//! "BOA is a binary translation system developed at IBM ... In its
//! emulation phase, BOA maintains counts for each conditional branch
//! that indicate how many times each target is taken. After the entry
//! point to an instruction sequence is emulated 15 times, a trace is
//! selected by following the target of each conditional branch with the
//! highest count."

use super::counters::CounterTable;
use super::profile::{EdgeProfile, majority_walk};
use super::{Arrival, RegionSelector};
use crate::cache::{CodeCache, Region};
use crate::config::SimConfig;
use rsel_program::{Addr, Program};

/// The BOA selector: continuous per-branch direction profiling plus a
/// low (15) entry threshold, with traces built from the profile rather
/// than from the next execution.
#[derive(Debug)]
pub struct BoaSelector<'p> {
    program: &'p Program,
    threshold: u32,
    max_trace_insts: usize,
    counters: CounterTable,
    profile: EdgeProfile,
}

impl<'p> BoaSelector<'p> {
    /// Creates a BOA selector over `program`.
    pub fn new(program: &'p Program, config: &SimConfig) -> Self {
        BoaSelector {
            program,
            threshold: config.boa_threshold,
            max_trace_insts: config.max_trace_insts,
            counters: CounterTable::new(),
            profile: EdgeProfile::new(),
        }
    }

    /// The branch profile gathered so far (for tests and diagnostics).
    pub fn profile(&self) -> &EdgeProfile {
        &self.profile
    }
}

impl RegionSelector for BoaSelector<'_> {
    fn on_transfer(
        &mut self,
        _cache: &CodeCache,
        src: Addr,
        tgt: Addr,
        taken: bool,
    ) -> Vec<Region> {
        // BOA's distinguishing feature: every emulated branch updates
        // the direction counts.
        self.profile.record(self.program, src, tgt, taken);
        Vec::new()
    }

    fn on_arrival(&mut self, cache: &CodeCache, a: Arrival) -> Vec<Region> {
        if let (Some(src), true) = (a.src, a.taken) {
            // Exit landings and fresh arrivals still profile the edge.
            self.profile.record(self.program, src, a.tgt, true);
        }
        let backward = a.taken && a.src.is_some_and(|s| a.tgt.is_backward_from(s));
        if !(backward || a.from_cache_exit) {
            return Vec::new();
        }
        let c = self.counters.increment(a.tgt);
        if c < self.threshold {
            return Vec::new();
        }
        self.counters.recycle(a.tgt);
        let blocks = majority_walk(
            self.program,
            cache,
            &self.profile,
            a.tgt,
            self.max_trace_insts,
        );
        if blocks.is_empty() {
            return Vec::new();
        }
        vec![Region::trace(self.program, &blocks)]
    }

    fn on_block(&mut self, _: &CodeCache, _: Addr) -> Vec<Region> {
        Vec::new()
    }

    fn on_fault(&mut self, fault: super::CounterFault) {
        match fault {
            super::CounterFault::Saturate => self.counters.saturate_all(),
            super::CounterFault::Reset => self.counters.reset_all(),
        }
    }

    fn counters_in_use(&self) -> usize {
        self.counters.in_use()
    }

    fn peak_counters(&self) -> usize {
        self.counters.peak()
    }

    fn distinct_targets_profiled(&self) -> usize {
        self.counters.distinct_ever()
    }

    fn name(&self) -> &'static str {
        "BOA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::SelectorKind;
    use crate::sim::Simulator;
    use rsel_program::Executor;
    use rsel_program::patterns::ScenarioBuilder;

    #[test]
    fn selects_the_dominant_direction() {
        // A loop with a 90/10 diamond: BOA's trace must follow the 90%
        // side even if the 10% side happened to execute at selection
        // time (NET's next-executing-tail weakness, §5).
        let mut s = ScenarioBuilder::new(3);
        let f = s.function("main", 0x1000);
        let head = s.block(f, 1);
        let d = s.diamond(f, 0.9, 2); // taken side is hot
        let latch = s.block(f, 1);
        s.branch_trips(latch, head, 5_000);
        let out = s.block(f, 0);
        s.ret(out);
        let (p, spec) = s.build().unwrap();
        let config = SimConfig::default();
        let mut sim = Simulator::new(
            &p,
            Box::new(BoaSelector::new(&p, &config)) as Box<dyn RegionSelector + Send>,
            &config,
        );
        sim.run(Executor::new(&p, spec));
        let taken_side = p.block(d.taken).start();
        let fall_side = p.block(d.fallthrough).start();
        let covering: Vec<_> = sim
            .cache()
            .regions()
            .iter()
            .filter(|r| r.contains_block(taken_side) || r.contains_block(fall_side))
            .collect();
        assert!(!covering.is_empty(), "the diamond got selected");
        // The first region through the diamond follows the hot side.
        assert!(
            covering[0].contains_block(taken_side),
            "BOA follows the 90% direction"
        );
        assert!(sim.report().hit_rate() > 0.9);
    }

    #[test]
    fn comparable_to_net_on_a_simple_loop() {
        let mut s = ScenarioBuilder::new(3);
        let f = s.function("main", 0x1000);
        let lp = s.counted_loop(f, 2, 20_000);
        s.ret_from(f, lp.exit);
        let (p, spec) = s.build().unwrap();
        let config = SimConfig::default();
        let mut boa = Simulator::new(
            &p,
            Box::new(BoaSelector::new(&p, &config)) as Box<dyn RegionSelector + Send>,
            &config,
        );
        boa.run(Executor::new(&p, spec.clone()));
        let mut net = Simulator::new(&p, SelectorKind::Net.make(&p, &config), &config);
        net.run(Executor::new(&p, spec));
        assert!(boa.report().hit_rate() > 0.99);
        // BOA's lower threshold (15 vs 50) warms up sooner.
        assert!(boa.report().cache_insts >= net.report().cache_insts);
    }
}
