//! Region-selection algorithms: NET, LEI, and trace combination.
//!
//! All selectors implement [`RegionSelector`] and are driven by the
//! [`Simulator`](crate::Simulator) with three kinds of events, mirroring
//! the structure of the paper's INTERPRETED-BRANCH-TAKEN procedures
//! (Figures 5 and 13):
//!
//! - [`RegionSelector::on_transfer`] — a control transfer observed while
//!   interpreting, *before* its target executes; this is where active
//!   trace growth evaluates its stop conditions;
//! - [`RegionSelector::on_arrival`] — an interpreter arrival whose
//!   target missed the code cache (every interpreted taken branch, plus
//!   landings from code-cache exits); this is where profiling counters
//!   live;
//! - [`RegionSelector::on_block`] — a basic block executed by the
//!   interpreter; active trace growth extends here.
//!
//! Any event may complete one or more regions, which the simulator
//! inserts into the cache immediately.

pub mod adore;
pub mod boa;
pub mod combined_lei;
pub mod combined_net;
pub mod counters;
pub mod form;
pub mod history;
pub mod lei;
pub mod mojo;
pub mod net;
pub mod observe;
pub mod profile;
pub mod region_cfg;
pub mod rejoin;
pub mod wiggins;

pub use adore::AdoreSelector;
pub use boa::BoaSelector;
pub use combined_lei::CombinedLeiSelector;
pub use combined_net::CombinedNetSelector;
pub use counters::CounterTable;
pub use form::{GrownTrace, TraceGrower};
pub use history::{HistoryBuffer, HistoryEntry};
pub use lei::LeiSelector;
pub use mojo::MojoSelector;
pub use net::NetSelector;
pub use observe::ObservationStore;
pub use profile::EdgeProfile;
pub use wiggins::WigginsRedstoneSelector;

use crate::cache::{CodeCache, Region};
use crate::config::SimConfig;
use crate::sim::faults::CounterFault;
use rsel_program::{Addr, Program};

/// An interpreter arrival at a block whose address missed the code
/// cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arrival {
    /// Address of the transferring instruction (`None` only for the
    /// run's first block).
    pub src: Option<Addr>,
    /// The arrival address (start of the block about to execute).
    pub tgt: Addr,
    /// Whether the arrival was via a taken branch (as opposed to the
    /// fall-through side of a code-cache exit).
    pub taken: bool,
    /// Whether control just left the code cache through an exit stub.
    pub from_cache_exit: bool,
}

/// A region-selection algorithm.
///
/// Implementations return the regions they have decided to promote to
/// the code cache; the simulator inserts them and, when the current
/// branch target is now cached, transfers control into the new region
/// (the "jump newT" of Figure 5).
pub trait RegionSelector {
    /// A control transfer observed while interpreting, before the
    /// target block executes. `taken` distinguishes taken branches from
    /// fall-through.
    fn on_transfer(&mut self, cache: &CodeCache, src: Addr, tgt: Addr, taken: bool) -> Vec<Region>;

    /// An interpreter arrival whose target missed the cache.
    fn on_arrival(&mut self, cache: &CodeCache, arrival: Arrival) -> Vec<Region>;

    /// A block executed by the interpreter.
    fn on_block(&mut self, cache: &CodeCache, start: Addr) -> Vec<Region>;

    /// A profiling-counter fault struck (see
    /// [`sim::faults`](crate::sim::faults)): the selector's counters
    /// were saturated or lost. Implementations must absorb either
    /// without panicking; profiling quality may degrade, correctness
    /// may not. The default ignores the fault (for selectors with no
    /// mutable profiling state).
    fn on_fault(&mut self, _fault: CounterFault) {}

    /// Profiling counters currently allocated.
    fn counters_in_use(&self) -> usize;

    /// Peak number of simultaneously allocated counters (Figure 10).
    fn peak_counters(&self) -> usize;

    /// Distinct branch targets ever profiled (diagnostics).
    fn distinct_targets_profiled(&self) -> usize {
        0
    }

    /// Bytes currently used to store observed traces (Figure 18);
    /// zero for non-combining selectors.
    fn observed_bytes(&self) -> usize {
        0
    }

    /// Peak bytes ever used to store observed traces (Figure 18).
    fn peak_observed_bytes(&self) -> usize {
        0
    }

    /// Short human-readable algorithm name.
    fn name(&self) -> &'static str;
}

/// The region-selection algorithms: the four the paper evaluates, plus
/// models of the four related systems its §5 discusses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SelectorKind {
    /// Next-Executing Tail (the Dynamo baseline).
    Net,
    /// Last-Executed Iteration (paper §3).
    Lei,
    /// NET with trace combination (paper §4).
    CombinedNet,
    /// LEI with trace combination (paper §4).
    CombinedLei,
    /// Mojo: NET with a lower threshold for trace-exit targets (§5).
    Mojo,
    /// BOA: per-branch direction counts, traces follow the majority
    /// direction (§5).
    Boa,
    /// Wiggins/Redstone: PC sampling plus branch instrumentation (§5).
    WigginsRedstone,
    /// ADORE: sampled four-branch paths from a PMU model (§5).
    Adore,
}

impl SelectorKind {
    /// The four algorithms of the paper's evaluation, in presentation
    /// order.
    pub fn all() -> [SelectorKind; 4] {
        [
            SelectorKind::Net,
            SelectorKind::Lei,
            SelectorKind::CombinedNet,
            SelectorKind::CombinedLei,
        ]
    }

    /// Every implemented algorithm, including the §5 related-work
    /// models.
    pub fn extended() -> [SelectorKind; 8] {
        [
            SelectorKind::Net,
            SelectorKind::Lei,
            SelectorKind::CombinedNet,
            SelectorKind::CombinedLei,
            SelectorKind::Mojo,
            SelectorKind::Boa,
            SelectorKind::WigginsRedstone,
            SelectorKind::Adore,
        ]
    }

    /// The algorithm's display name.
    pub fn name(self) -> &'static str {
        match self {
            SelectorKind::Net => "NET",
            SelectorKind::Lei => "LEI",
            SelectorKind::CombinedNet => "combined NET",
            SelectorKind::CombinedLei => "combined LEI",
            SelectorKind::Mojo => "Mojo",
            SelectorKind::Boa => "BOA",
            SelectorKind::WigginsRedstone => "Wiggins/Redstone",
            SelectorKind::Adore => "ADORE",
        }
    }

    /// Instantiates the selector over `program` with `config`.
    ///
    /// The returned selector is `Send`, so a simulator holding it can
    /// migrate between worker threads (the multi-tenant runtime moves
    /// sessions across a thread pool between epochs).
    pub fn make<'p>(
        self,
        program: &'p Program,
        config: &SimConfig,
    ) -> Box<dyn RegionSelector + Send + 'p> {
        config.validate();
        match self {
            SelectorKind::Net => Box::new(NetSelector::new(program, config)),
            SelectorKind::Lei => Box::new(LeiSelector::new(program, config)),
            SelectorKind::CombinedNet => Box::new(CombinedNetSelector::new(program, config)),
            SelectorKind::CombinedLei => Box::new(CombinedLeiSelector::new(program, config)),
            SelectorKind::Mojo => Box::new(MojoSelector::new(program, config)),
            SelectorKind::Boa => Box::new(BoaSelector::new(program, config)),
            SelectorKind::WigginsRedstone => {
                Box::new(WigginsRedstoneSelector::new(program, config))
            }
            SelectorKind::Adore => Box::new(AdoreSelector::new(program, config)),
        }
    }
}

impl std::fmt::Display for SelectorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_have_distinct_names() {
        let names: Vec<&str> = SelectorKind::extended().iter().map(|k| k.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(names.len(), 8);
        assert_eq!(dedup.len(), 8);
        assert_eq!(SelectorKind::Net.to_string(), "NET");
    }

    #[test]
    fn paper_kinds_are_a_prefix_of_extended() {
        assert_eq!(SelectorKind::extended()[..4], SelectorKind::all());
    }
}
