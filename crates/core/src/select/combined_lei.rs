//! Trace combination over LEI (paper §4, "combined LEI").

use super::counters::CounterTable;
use super::history::HistoryBuffer;
use super::lei::form_lei_trace;
use super::observe::ObservationStore;
use super::region_cfg::combine_traces;
use super::{Arrival, RegionSelector};
use crate::cache::{CodeCache, Region};
use crate::config::SimConfig;
use rsel_program::{Addr, Program};
use rsel_trace::AddrWidth;

/// LEI with trace combination.
///
/// Profiling begins at `T_start = lei_threshold − T_prof` cycle
/// completions. Each completion past `T_start` reconstructs the
/// just-executed cyclic path from the history buffer (an observed
/// trace, stored compactly); at `T_start + T_prof` the stored traces
/// are combined into one multi-path region. Because LEI forms its
/// observed traces instantly from the buffer, combination happens the
/// moment the final cycle completes — there is no in-flight observation
/// window as with NET.
#[derive(Debug)]
pub struct CombinedLeiSelector<'p> {
    program: &'p Program,
    t_start: u32,
    t_prof: u32,
    t_min: u32,
    width: AddrWidth,
    buf: HistoryBuffer,
    counters: CounterTable,
    store: ObservationStore,
    pending_exit: bool,
    rejoin_iterations: u64,
}

impl<'p> CombinedLeiSelector<'p> {
    /// Creates a combined-LEI selector over `program`.
    pub fn new(program: &'p Program, config: &SimConfig) -> Self {
        CombinedLeiSelector {
            program,
            t_start: config.lei_t_start(),
            t_prof: config.t_prof,
            t_min: config.t_min,
            width: config.addr_width,
            buf: HistoryBuffer::new(config.history_size),
            counters: CounterTable::new(),
            store: ObservationStore::new(),
            pending_exit: false,
            rejoin_iterations: 0,
        }
    }

    /// Total rejoin-marking iterations across all combinations.
    pub fn rejoin_iterations(&self) -> u64 {
        self.rejoin_iterations
    }
}

impl RegionSelector for CombinedLeiSelector<'_> {
    fn on_transfer(&mut self, _: &CodeCache, _: Addr, _: Addr, _: bool) -> Vec<Region> {
        Vec::new()
    }

    fn on_arrival(&mut self, cache: &CodeCache, a: Arrival) -> Vec<Region> {
        // As in `LeiSelector`: cache-exit landings enter the buffer even
        // when the exit was a fall-through, tagged `follows_exit`.
        if !(a.taken || a.from_cache_exit) {
            return Vec::new();
        }
        let Some(src) = a.src else { return Vec::new() };
        let follows_exit = a.from_cache_exit || std::mem::take(&mut self.pending_exit);
        // As in `LeiSelector`, counters live only while their target is
        // buffered; releasing one also releases any stranded observed
        // traces for that target.
        let (new_seq, dropped) = self.buf.insert(src, a.tgt, follows_exit);
        if let Some(gone) = dropped {
            if self.counters.recycle(gone).is_some() {
                let _ = self.store.take(gone);
            }
        }
        let Some(old_seq) = self.buf.lookup(a.tgt) else {
            self.buf.update_hash(a.tgt, new_seq);
            return Vec::new();
        };
        let old_follows_exit = self
            .buf
            .entry(old_seq)
            .map(|e| e.follows_exit)
            .unwrap_or(false);
        self.buf.update_hash(a.tgt, new_seq);
        if !(a.tgt.is_backward_from(src) || old_follows_exit) {
            return Vec::new();
        }
        let c = self.counters.increment(a.tgt);
        if c <= self.t_start {
            return Vec::new();
        }
        // Observe the just-executed cycle (Figure 13, line 8: "form a
        // trace t beginning at dest; store COMPACT-TRACE(t)").
        if let Some(t) = form_lei_trace(self.program, cache, &self.buf, a.tgt, old_seq, self.width)
        {
            self.store.add(a.tgt, t.compact);
        }
        if c < self.t_start + self.t_prof {
            return Vec::new();
        }
        // Final observation: combine.
        self.counters.recycle(a.tgt);
        for gone in self.buf.truncate_after(old_seq) {
            if self.counters.recycle(gone).is_some() {
                let _ = self.store.take(gone);
            }
        }
        let traces = self.store.take(a.tgt);
        if traces.is_empty() {
            return Vec::new();
        }
        let res = combine_traces(self.program, a.tgt, &traces, self.t_min)
            .expect("observed traces replay against their own program");
        self.rejoin_iterations += res.rejoin_iterations as u64;
        vec![res.region]
    }

    fn on_block(&mut self, _: &CodeCache, _: Addr) -> Vec<Region> {
        Vec::new()
    }

    fn on_fault(&mut self, fault: super::CounterFault) {
        match fault {
            super::CounterFault::Saturate => self.counters.saturate_all(),
            super::CounterFault::Reset => self.counters.reset_all(),
        }
    }

    fn counters_in_use(&self) -> usize {
        self.counters.in_use()
    }

    fn peak_counters(&self) -> usize {
        self.counters.peak()
    }

    fn observed_bytes(&self) -> usize {
        self.store.bytes()
    }

    fn peak_observed_bytes(&self) -> usize {
        self.store.peak_bytes()
    }

    fn name(&self) -> &'static str {
        "combined LEI"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_program::ProgramBuilder;

    /// Loop with a diamond: S(cond->T) ; F ; T ; J ; back(cond->S) ; X.
    fn diamond_loop() -> (Program, Vec<Addr>) {
        let mut b = ProgramBuilder::new();
        let f = b.function("f", 0x100);
        let s = b.block(f);
        let fall = b.block(f);
        let taken = b.block(f);
        let j = b.block(f);
        let back = b.block(f);
        let x = b.block_with(f, 0);
        b.cond_branch(s, taken);
        b.jump(fall, j);
        b.cond_branch(back, s);
        b.ret(x);
        let p = b.build().unwrap();
        let addrs = [s, fall, taken, j, back, x]
            .iter()
            .map(|&id| p.block(id).start())
            .collect();
        (p, addrs)
    }

    /// Drives the selector through `n` loop iterations, alternating the
    /// diamond direction.
    fn run_iterations(
        sel: &mut CombinedLeiSelector<'_>,
        cache: &CodeCache,
        p: &Program,
        a: &[Addr],
        start: usize,
        n: usize,
    ) -> Vec<Region> {
        let term = |addr: Addr| p.block_at(addr).unwrap().terminator().addr();
        let mut out = Vec::new();
        for i in start..start + n {
            // back -> S backward taken branch completes the cycle.
            out.extend(sel.on_arrival(
                cache,
                Arrival {
                    src: Some(term(a[4])),
                    tgt: a[0],
                    taken: true,
                    from_cache_exit: false,
                },
            ));
            if i % 2 == 0 {
                // S takes its branch to T.
                out.extend(sel.on_arrival(
                    cache,
                    Arrival {
                        src: Some(term(a[0])),
                        tgt: a[2],
                        taken: true,
                        from_cache_exit: false,
                    },
                ));
            } else {
                // S falls to F, which jumps to J.
                out.extend(sel.on_arrival(
                    cache,
                    Arrival {
                        src: Some(term(a[1])),
                        tgt: a[3],
                        taken: true,
                        from_cache_exit: false,
                    },
                ));
            }
        }
        out
    }

    fn config() -> SimConfig {
        SimConfig {
            lei_threshold: 7,
            t_prof: 4,
            t_min: 2,
            ..SimConfig::default()
        }
    }

    #[test]
    fn combines_both_sides_of_the_diamond() {
        let (p, a) = diamond_loop();
        let cfg = config();
        assert_eq!(cfg.lei_t_start(), 3);
        let mut sel = CombinedLeiSelector::new(&p, &cfg);
        let cache = CodeCache::new();
        // Drive iterations until the first combined region appears (in
        // the real simulator the cache hit would then stop profiling).
        let mut regions = Vec::new();
        for i in 0..30 {
            regions = run_iterations(&mut sel, &cache, &p, &a, i, 1);
            if !regions.is_empty() {
                break;
            }
        }
        assert_eq!(regions.len(), 1);
        let r = &regions[0];
        assert_eq!(r.entry(), a[0]);
        assert!(
            r.contains_block(a[2]) && r.contains_block(a[1]),
            "both sides kept"
        );
        assert!(r.spans_cycle());
        assert_eq!(sel.observed_bytes(), 0, "storage released after combine");
        assert!(sel.peak_observed_bytes() > 0);
    }

    #[test]
    fn no_region_before_threshold() {
        let (p, a) = diamond_loop();
        let mut sel = CombinedLeiSelector::new(&p, &config());
        let cache = CodeCache::new();
        // Threshold 7: first cycle completes on iteration 2, so fewer
        // than 8 iterations cannot select.
        let regions = run_iterations(&mut sel, &cache, &p, &a, 0, 7);
        assert!(regions.is_empty());
    }

    #[test]
    fn observations_accumulate_after_t_start() {
        let (p, a) = diamond_loop();
        let mut sel = CombinedLeiSelector::new(&p, &config());
        let cache = CodeCache::new();
        run_iterations(&mut sel, &cache, &p, &a, 0, 6);
        // Counter reaches 5 => two observations stored (c = 4, 5).
        assert!(sel.observed_bytes() > 0);
        assert_eq!(sel.counters_in_use(), 1);
    }
}
