//! Wiggins/Redstone's trace selection (paper §5).
//!
//! "Wiggins/Redstone is a transparent optimization system developed at
//! Compaq that uses a combination of hardware sampling and software
//! instrumentation. To identify the beginning of a trace, the program
//! counter is periodically sampled. From a starting instruction, a
//! trace is selected by adding instrumentation code that determines the
//! most frequent target of each selected branch."
//!
//! The model: every `wr_sample_period`-th interpreted block is a PC
//! sample; an address sampled `wr_sample_threshold` times becomes a
//! trace head, and the trace follows the most frequent direction of
//! each branch (the "instrumentation" is the continuously gathered
//! [`EdgeProfile`]).

use super::counters::CounterTable;
use super::profile::{EdgeProfile, majority_walk};
use super::{Arrival, RegionSelector};
use crate::cache::{CodeCache, Region};
use crate::config::SimConfig;
use rsel_program::{Addr, Program};

/// The Wiggins/Redstone-style sampling selector.
#[derive(Debug)]
pub struct WigginsRedstoneSelector<'p> {
    program: &'p Program,
    sample_period: u64,
    sample_threshold: u32,
    max_trace_insts: usize,
    blocks_seen: u64,
    samples: CounterTable,
    profile: EdgeProfile,
}

impl<'p> WigginsRedstoneSelector<'p> {
    /// Creates a Wiggins/Redstone selector over `program`.
    pub fn new(program: &'p Program, config: &SimConfig) -> Self {
        WigginsRedstoneSelector {
            program,
            sample_period: config.wr_sample_period,
            sample_threshold: config.wr_sample_threshold,
            max_trace_insts: config.max_trace_insts,
            blocks_seen: 0,
            samples: CounterTable::new(),
            profile: EdgeProfile::new(),
        }
    }
}

impl RegionSelector for WigginsRedstoneSelector<'_> {
    fn on_transfer(
        &mut self,
        _cache: &CodeCache,
        src: Addr,
        tgt: Addr,
        taken: bool,
    ) -> Vec<Region> {
        self.profile.record(self.program, src, tgt, taken);
        Vec::new()
    }

    fn on_arrival(&mut self, _: &CodeCache, a: Arrival) -> Vec<Region> {
        if let (Some(src), true) = (a.src, a.taken) {
            self.profile.record(self.program, src, a.tgt, true);
        }
        Vec::new()
    }

    fn on_block(&mut self, cache: &CodeCache, start: Addr) -> Vec<Region> {
        self.blocks_seen += 1;
        if !self.blocks_seen.is_multiple_of(self.sample_period) {
            return Vec::new();
        }
        // A PC sample landed on this block.
        let c = self.samples.increment(start);
        if c < self.sample_threshold || cache.contains(start) {
            return Vec::new();
        }
        self.samples.recycle(start);
        let blocks = majority_walk(
            self.program,
            cache,
            &self.profile,
            start,
            self.max_trace_insts,
        );
        if blocks.is_empty() {
            return Vec::new();
        }
        vec![Region::trace(self.program, &blocks)]
    }

    fn on_fault(&mut self, fault: super::CounterFault) {
        match fault {
            super::CounterFault::Saturate => self.samples.saturate_all(),
            super::CounterFault::Reset => self.samples.reset_all(),
        }
    }

    fn counters_in_use(&self) -> usize {
        self.samples.in_use()
    }

    fn peak_counters(&self) -> usize {
        self.samples.peak()
    }

    fn name(&self) -> &'static str {
        "Wiggins/Redstone"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use rsel_program::Executor;
    use rsel_program::patterns::ScenarioBuilder;

    #[test]
    fn sampling_finds_the_hot_loop() {
        let mut s = ScenarioBuilder::new(4);
        let f = s.function("main", 0x1000);
        let lp = s.counted_loop(f, 3, 100_000);
        s.ret_from(f, lp.exit);
        let (p, spec) = s.build().unwrap();
        let config = SimConfig::default();
        let mut sim = Simulator::new(
            &p,
            Box::new(WigginsRedstoneSelector::new(&p, &config)) as Box<dyn RegionSelector + Send>,
            &config,
        );
        sim.run(Executor::new(&p, spec));
        let rep = sim.report();
        assert!(rep.region_count() >= 1, "sampling selected the loop");
        assert!(rep.hit_rate() > 0.9, "hit rate {:.3}", rep.hit_rate());
    }

    #[test]
    fn cold_code_is_never_sampled_to_selection() {
        // A short run never accumulates enough samples anywhere.
        let mut s = ScenarioBuilder::new(4);
        let f = s.function("main", 0x1000);
        let lp = s.counted_loop(f, 3, 50);
        s.ret_from(f, lp.exit);
        let (p, spec) = s.build().unwrap();
        let config = SimConfig::default();
        let mut sim = Simulator::new(
            &p,
            Box::new(WigginsRedstoneSelector::new(&p, &config)) as Box<dyn RegionSelector + Send>,
            &config,
        );
        sim.run(Executor::new(&p, spec));
        assert_eq!(sim.report().region_count(), 0);
    }
}
