//! Edge profiling and majority-direction trace formation.
//!
//! The related-work selectors of the paper's §5 "profile more branches
//! in the hope of better identifying a hot trace": BOA keeps per-branch
//! direction counts, Wiggins/Redstone instruments selected branches for
//! their most frequent targets. Both then build a trace by following
//! the most frequent direction from a starting point. This module holds
//! the shared machinery.

use crate::cache::CodeCache;
use crate::fxhash::FxHashMap;
use rsel_program::{Addr, InstKind, Program};

/// Per-branch execution profile gathered while interpreting.
#[derive(Clone, Debug, Default)]
pub struct EdgeProfile {
    cond: FxHashMap<Addr, (u64, u64)>, // (taken, not taken)
    indirect: FxHashMap<Addr, FxHashMap<Addr, u64>>,
}

impl EdgeProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        EdgeProfile::default()
    }

    /// Records one interpreted transfer out of the instruction at
    /// `src` (classified against the program text).
    pub fn record(&mut self, program: &Program, src: Addr, tgt: Addr, taken: bool) {
        let Some(inst) = program.inst_at(src) else {
            return;
        };
        match inst.kind() {
            InstKind::CondBranch { .. } => {
                let e = self.cond.entry(src).or_insert((0, 0));
                if taken {
                    e.0 += 1;
                } else {
                    e.1 += 1;
                }
            }
            InstKind::IndirectJump | InstKind::IndirectCall | InstKind::Ret if taken => {
                *self
                    .indirect
                    .entry(src)
                    .or_default()
                    .entry(tgt)
                    .or_insert(0) += 1;
            }
            _ => {}
        }
    }

    /// The majority direction of the conditional branch at `src`
    /// (`None` if never observed; ties resolve to not-taken, the
    /// cheaper fall-through).
    pub fn majority_cond(&self, src: Addr) -> Option<bool> {
        let (t, nt) = self.cond.get(&src)?;
        Some(t > nt)
    }

    /// The most frequent observed target of the indirect branch at
    /// `src`.
    pub fn majority_indirect(&self, src: Addr) -> Option<Addr> {
        let targets = self.indirect.get(&src)?;
        targets
            .iter()
            .max_by_key(|(a, c)| (*c, std::cmp::Reverse(a.raw())))
            .map(|(a, _)| *a)
    }

    /// Number of profiled branch sites (diagnostics).
    pub fn sites(&self) -> usize {
        self.cond.len() + self.indirect.len()
    }
}

/// Builds a trace from `entry` by following the majority direction of
/// every branch, in the style of BOA: "a trace is selected by following
/// the target of each conditional branch with the highest count" (§5).
///
/// The walk ends — as under NET — when the chosen direction is a taken
/// backward branch (included), targets an existing region's entry,
/// revisits a block already in the trace, meets an unprofiled branch,
/// or reaches `max_insts`.
pub fn majority_walk(
    program: &Program,
    cache: &CodeCache,
    profile: &EdgeProfile,
    entry: Addr,
    max_insts: usize,
) -> Vec<Addr> {
    let mut blocks: Vec<Addr> = Vec::new();
    let mut insts = 0usize;
    let mut addr = entry;
    loop {
        if blocks.contains(&addr) || (cache.contains(addr) && addr != entry) {
            break;
        }
        let Some(block) = program.block_at(addr) else {
            break;
        };
        blocks.push(addr);
        insts += block.len();
        if insts >= max_insts {
            break;
        }
        let term = block.terminator();
        let src = term.addr();
        let (next, taken) = match term.kind() {
            InstKind::Straight => (block.fallthrough_addr(), false),
            InstKind::Jump { target } | InstKind::Call { target } => (target, true),
            InstKind::CondBranch { target } => match profile.majority_cond(src) {
                Some(true) => (target, true),
                Some(false) => (block.fallthrough_addr(), false),
                None => break,
            },
            InstKind::IndirectJump | InstKind::IndirectCall | InstKind::Ret => {
                match profile.majority_indirect(src) {
                    Some(t) => (t, true),
                    None => break,
                }
            }
        };
        if taken && next.is_backward_from(src) {
            break; // the trace ends with this backward branch
        }
        addr = next;
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_program::ProgramBuilder;

    /// A(cond->C) ; B ; C(cond->A) ; D(ret)
    fn program() -> Program {
        let mut b = ProgramBuilder::new();
        let f = b.function("f", 0x100);
        let a = b.block(f);
        let bb = b.block(f);
        let c = b.block(f);
        let d = b.block_with(f, 0);
        let _ = bb;
        b.cond_branch(a, c);
        b.cond_branch(c, a);
        b.ret(d);
        b.build().unwrap()
    }

    fn starts(p: &Program) -> Vec<Addr> {
        p.blocks().iter().map(|b| b.start()).collect()
    }

    #[test]
    fn record_and_majorities() {
        let p = program();
        let s = starts(&p);
        let a_branch = p.block_at(s[0]).unwrap().terminator().addr();
        let mut prof = EdgeProfile::new();
        prof.record(&p, a_branch, s[2], true);
        prof.record(&p, a_branch, s[2], true);
        prof.record(&p, a_branch, s[1], false);
        assert_eq!(prof.majority_cond(a_branch), Some(true));
        assert_eq!(prof.majority_cond(Addr::new(0x9999)), None);
        assert_eq!(prof.sites(), 1);
    }

    #[test]
    fn tie_resolves_to_not_taken() {
        let p = program();
        let s = starts(&p);
        let a_branch = p.block_at(s[0]).unwrap().terminator().addr();
        let mut prof = EdgeProfile::new();
        prof.record(&p, a_branch, s[2], true);
        prof.record(&p, a_branch, s[1], false);
        assert_eq!(prof.majority_cond(a_branch), Some(false));
    }

    #[test]
    fn walk_follows_majority_and_stops_at_backward() {
        let p = program();
        let s = starts(&p);
        let a_branch = p.block_at(s[0]).unwrap().terminator().addr();
        let c_branch = p.block_at(s[2]).unwrap().terminator().addr();
        let mut prof = EdgeProfile::new();
        // A mostly taken to C; C mostly taken back to A (backward).
        for _ in 0..3 {
            prof.record(&p, a_branch, s[2], true);
            prof.record(&p, c_branch, s[0], true);
        }
        let cache = CodeCache::new();
        let t = majority_walk(&p, &cache, &prof, s[0], 100);
        assert_eq!(t, vec![s[0], s[2]], "ends at C's backward branch");
    }

    #[test]
    fn walk_stops_at_unprofiled_branch() {
        let p = program();
        let s = starts(&p);
        let prof = EdgeProfile::new();
        let cache = CodeCache::new();
        let t = majority_walk(&p, &cache, &prof, s[0], 100);
        assert_eq!(t, vec![s[0]], "cannot pick a direction without counts");
    }

    #[test]
    fn walk_stops_at_cached_entry_and_size_limit() {
        let p = program();
        let s = starts(&p);
        let a_branch = p.block_at(s[0]).unwrap().terminator().addr();
        let mut prof = EdgeProfile::new();
        prof.record(&p, a_branch, s[1], false); // falls into B
        let mut cache = CodeCache::new();
        cache.insert(crate::cache::Region::trace(&p, &[s[1]]));
        let t = majority_walk(&p, &cache, &prof, s[0], 100);
        assert_eq!(t, vec![s[0]], "stops before the cached block B");
        // Size limit of 1 instruction stops after the first block.
        let cache2 = CodeCache::new();
        let t2 = majority_walk(&p, &cache2, &prof, s[0], 1);
        assert_eq!(t2, vec![s[0]]);
    }

    #[test]
    fn indirect_majority_target() {
        let mut b = ProgramBuilder::new();
        let f = b.function("f", 0x100);
        let sw = b.block(f);
        let t1 = b.block(f);
        let t2 = b.block(f);
        let d = b.block_with(f, 0);
        b.indirect_jump(sw);
        b.jump(t1, d);
        b.jump(t2, d);
        b.ret(d);
        let p = b.build().unwrap();
        let sw_branch = p.block(sw).branch_addr().unwrap();
        let t1s = p.block(t1).start();
        let t2s = p.block(t2).start();
        let mut prof = EdgeProfile::new();
        prof.record(&p, sw_branch, t1s, true);
        prof.record(&p, sw_branch, t2s, true);
        prof.record(&p, sw_branch, t2s, true);
        assert_eq!(prof.majority_indirect(sw_branch), Some(t2s));
    }
}
