//! Marking paths that rejoin frequently-occurring blocks
//! (paper Figure 15, MARK-REJOINING-PATHS).

use rsel_program::Addr;
use std::collections::{HashMap, HashSet};

/// The result of the rejoin-marking pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RejoinResult {
    /// All marked blocks (frequent blocks plus rejoining paths).
    pub marked: HashSet<Addr>,
    /// Number of whole-CFG iterations performed. The paper observes the
    /// post-order visit almost always converges in one iteration
    /// (§4.2.3: "roughly 0.1% of regions ... proceed to mark additional
    /// blocks in the second").
    pub iterations: usize,
}

/// Marks every block of the observed-trace CFG that lies on a path
/// rejoining an initially marked block.
///
/// Initially marked blocks are those occurring in at least `T_min`
/// observed traces. Every block of the CFG is reachable from the entry
/// (which is always marked), so a block belongs in the region exactly
/// when a marked block is reachable *from* it — marks therefore
/// propagate backward along edges: "if any successor of a block is
/// marked, the block is marked". Blocks are visited in post-order so
/// marks cross several blocks per iteration; iteration repeats until a
/// fixpoint.
pub fn mark_rejoining_paths(
    entry: Addr,
    nodes: &[Addr],
    edges: &HashMap<Addr, Vec<Addr>>,
    initially_marked: &HashSet<Addr>,
) -> RejoinResult {
    let mut marked = initially_marked.clone();
    let order = postorder(entry, nodes, edges);
    let mut iterations = 0;
    loop {
        iterations += 1;
        let mut changed = false;
        for &b in &order {
            if marked.contains(&b) {
                continue;
            }
            let has_marked_succ = edges
                .get(&b)
                .is_some_and(|succs| succs.iter().any(|s| marked.contains(s)));
            if has_marked_succ {
                marked.insert(b);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    RejoinResult { marked, iterations }
}

/// Post-order traversal of the CFG from `entry`; unreachable nodes (none
/// in practice — every observed block is reachable from the entry) are
/// appended afterwards in the given order.
fn postorder(entry: Addr, nodes: &[Addr], edges: &HashMap<Addr, Vec<Addr>>) -> Vec<Addr> {
    let mut out = Vec::with_capacity(nodes.len());
    let mut visited: HashSet<Addr> = HashSet::with_capacity(nodes.len());
    // Iterative DFS with an explicit (node, child-cursor) stack.
    let mut stack: Vec<(Addr, usize)> = vec![(entry, 0)];
    visited.insert(entry);
    const EMPTY: &[Addr] = &[];
    while let Some((node, cursor)) = stack.pop() {
        let succs = edges.get(&node).map(Vec::as_slice).unwrap_or(EMPTY);
        if cursor < succs.len() {
            stack.push((node, cursor + 1));
            let child = succs[cursor];
            if visited.insert(child) {
                stack.push((child, 0));
            }
        } else {
            out.push(node);
        }
    }
    for &n in nodes {
        if visited.insert(n) {
            out.push(n);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(x: u64) -> Addr {
        Addr::new(x)
    }

    fn edges(pairs: &[(u64, u64)]) -> HashMap<Addr, Vec<Addr>> {
        let mut m: HashMap<Addr, Vec<Addr>> = HashMap::new();
        for &(f, t) in pairs {
            m.entry(a(f)).or_default().push(a(t));
        }
        m
    }

    #[test]
    fn rejoining_path_is_marked() {
        // entry 1 -> 2 -> 4 (all frequent), 1 -> 3 -> 4 (3 infrequent).
        // Block 3 exits a marked block and rejoins 4, so it is marked.
        let nodes = vec![a(1), a(2), a(3), a(4)];
        let e = edges(&[(1, 2), (1, 3), (2, 4), (3, 4)]);
        let init: HashSet<Addr> = [a(1), a(2), a(4)].into_iter().collect();
        let r = mark_rejoining_paths(a(1), &nodes, &e, &init);
        assert!(r.marked.contains(&a(3)));
        assert_eq!(r.marked.len(), 4);
    }

    #[test]
    fn dead_end_side_path_is_not_marked() {
        // 1 -> 2 (frequent); 1 -> 3 -> 5, never rejoining.
        let nodes = vec![a(1), a(2), a(3), a(5)];
        let e = edges(&[(1, 2), (1, 3), (3, 5)]);
        let init: HashSet<Addr> = [a(1), a(2)].into_iter().collect();
        let r = mark_rejoining_paths(a(1), &nodes, &e, &init);
        assert!(!r.marked.contains(&a(3)));
        assert!(!r.marked.contains(&a(5)));
        assert_eq!(r.marked.len(), 2);
    }

    #[test]
    fn chain_of_infrequent_blocks_marks_in_one_iteration() {
        // 1 -> 2 -> 3 -> 4 -> 5(frequent): post-order visits 4 before 3
        // before 2, so the whole chain marks in a single pass.
        let nodes = vec![a(1), a(2), a(3), a(4), a(5)];
        let e = edges(&[(1, 2), (2, 3), (3, 4), (4, 5)]);
        let init: HashSet<Addr> = [a(1), a(5)].into_iter().collect();
        let r = mark_rejoining_paths(a(1), &nodes, &e, &init);
        assert_eq!(r.marked.len(), 5);
        // One productive iteration + one to detect the fixpoint.
        assert!(
            r.iterations <= 2,
            "post-order converges fast: {}",
            r.iterations
        );
    }

    #[test]
    fn back_edges_can_take_an_extra_iteration_but_terminate() {
        // A cycle of infrequent blocks around a frequent one.
        let nodes = vec![a(1), a(2), a(3), a(4)];
        let e = edges(&[(1, 2), (2, 3), (3, 2), (3, 4)]);
        let init: HashSet<Addr> = [a(1), a(4)].into_iter().collect();
        let r = mark_rejoining_paths(a(1), &nodes, &e, &init);
        assert!(r.marked.contains(&a(2)) && r.marked.contains(&a(3)));
        assert!(r.iterations <= 3);
    }

    #[test]
    fn no_marks_beyond_fixpoint() {
        // Nothing new to mark: single frequent entry, one dead-end succ.
        let nodes = vec![a(1), a(2)];
        let e = edges(&[(1, 2)]);
        let init: HashSet<Addr> = [a(1)].into_iter().collect();
        let r = mark_rejoining_paths(a(1), &nodes, &e, &init);
        assert_eq!(r.marked.len(), 1);
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn self_loop_terminates() {
        let nodes = vec![a(1), a(2)];
        let e = edges(&[(1, 1), (1, 2)]);
        let init: HashSet<Addr> = [a(1)].into_iter().collect();
        let r = mark_rejoining_paths(a(1), &nodes, &e, &init);
        assert!(r.marked.contains(&a(1)));
        assert!(!r.marked.contains(&a(2)));
    }
}
