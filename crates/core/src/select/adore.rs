//! ADORE's trace selection (paper §5).
//!
//! "ADORE is a transparent optimization system developed at the
//! University of Minnesota that uses performance counters built into
//! the target processor. Specifically, it samples registers from the
//! performance monitoring unit of the Intel Itanium 2 in order to
//! detect the four most recently taken branches. When a set of four
//! branches occurs frequently, the corresponding path is selected and
//! linked with other frequent paths to form a trace. Besides being
//! hardware-based and processor-specific, the main difference between
//! this algorithm and others discussed is that frequent branch targets
//! are identified by random sampling."
//!
//! The model: a sliding window of the four most recent interpreted
//! taken branches stands in for the PMU's branch trace buffer; every
//! `adore_sample_period`-th taken branch the window is sampled, and a
//! four-branch path seen `adore_path_threshold` times is materialized
//! into a trace with the shared FORM-TRACE walk.

use super::counters::CounterTable;
use super::lei::form_trace_from_branches;
use super::{Arrival, RegionSelector};
use crate::cache::{CodeCache, Region};
use crate::config::SimConfig;
use crate::fxhash::FxHashMap;
use rsel_program::{Addr, Program};
use rsel_trace::AddrWidth;
use std::collections::VecDeque;

/// The ADORE-style sampling selector.
#[derive(Debug)]
pub struct AdoreSelector<'p> {
    program: &'p Program,
    sample_period: u64,
    path_threshold: u32,
    width: AddrWidth,
    recent: VecDeque<(Addr, Addr)>,
    taken_seen: u64,
    path_counts: FxHashMap<[(Addr, Addr); 4], u32>,
    peak_paths: usize,
    // Counter bookkeeping reported through the selector interface: the
    // path table is ADORE's profiling memory.
    counters: CounterTable,
}

impl<'p> AdoreSelector<'p> {
    /// Creates an ADORE selector over `program`.
    pub fn new(program: &'p Program, config: &SimConfig) -> Self {
        AdoreSelector {
            program,
            sample_period: config.adore_sample_period,
            path_threshold: config.adore_path_threshold,
            width: config.addr_width,
            recent: VecDeque::with_capacity(4),
            taken_seen: 0,
            path_counts: FxHashMap::default(),
            peak_paths: 0,
            counters: CounterTable::new(),
        }
    }

    /// Distinct four-branch paths currently tracked (tests).
    pub fn tracked_paths(&self) -> usize {
        self.path_counts.len()
    }
}

impl RegionSelector for AdoreSelector<'_> {
    fn on_transfer(&mut self, _: &CodeCache, _: Addr, _: Addr, _: bool) -> Vec<Region> {
        Vec::new()
    }

    fn on_arrival(&mut self, cache: &CodeCache, a: Arrival) -> Vec<Region> {
        if !a.taken {
            return Vec::new();
        }
        let Some(src) = a.src else { return Vec::new() };
        if self.recent.len() == 4 {
            self.recent.pop_front();
        }
        self.recent.push_back((src, a.tgt));
        self.taken_seen += 1;
        if !self.taken_seen.is_multiple_of(self.sample_period) || self.recent.len() < 4 {
            return Vec::new();
        }
        // PMU sample: the four most recently taken branches.
        let mut key = [(Addr::NULL, Addr::NULL); 4];
        for (slot, &b) in key.iter_mut().zip(self.recent.iter()) {
            *slot = b;
        }
        let entry = key[0].1; // target of the oldest sampled branch
        if cache.contains(entry) {
            return Vec::new();
        }
        let c = self.path_counts.entry(key).or_insert(0);
        *c = c.saturating_add(1);
        let hot = *c >= self.path_threshold;
        self.peak_paths = self.peak_paths.max(self.path_counts.len());
        self.counters.increment(entry);
        if !hot {
            return Vec::new();
        }
        self.path_counts.remove(&key);
        self.counters.recycle(entry);
        // The path spans from the oldest branch's target across the
        // remaining three branches.
        let tail: Vec<(Addr, Addr)> = key[1..].to_vec();
        match form_trace_from_branches(self.program, cache, entry, &tail, self.width) {
            Some(t) => vec![Region::trace(self.program, &t.blocks)],
            None => Vec::new(),
        }
    }

    fn on_block(&mut self, _: &CodeCache, _: Addr) -> Vec<Region> {
        Vec::new()
    }

    fn on_fault(&mut self, fault: super::CounterFault) {
        match fault {
            super::CounterFault::Saturate => {
                self.counters.saturate_all();
                for c in self.path_counts.values_mut() {
                    *c = u32::MAX;
                }
            }
            super::CounterFault::Reset => {
                self.counters.reset_all();
                self.path_counts.clear();
            }
        }
    }

    fn counters_in_use(&self) -> usize {
        self.path_counts.len()
    }

    fn peak_counters(&self) -> usize {
        self.peak_paths
    }

    fn name(&self) -> &'static str {
        "ADORE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use rsel_program::Executor;
    use rsel_program::patterns::ScenarioBuilder;

    #[test]
    fn sampled_paths_become_traces_on_a_hot_loop() {
        let mut s = ScenarioBuilder::new(6);
        let f = s.function("main", 0x1000);
        let head = s.block(f, 2);
        let mid = s.block(f, 1);
        s.branch_trips(mid, head, 4); // small inner loop
        let latch = s.block(f, 1);
        s.branch_trips(latch, head, 200_000);
        let out = s.block(f, 0);
        s.ret(out);
        let (p, spec) = s.build().unwrap();
        let config = SimConfig::default();
        let mut sim = Simulator::new(
            &p,
            Box::new(AdoreSelector::new(&p, &config)) as Box<dyn RegionSelector + Send>,
            &config,
        );
        sim.run(Executor::new(&p, spec));
        let rep = sim.report();
        assert!(rep.region_count() >= 1, "sampling found the loop path");
        assert!(rep.hit_rate() > 0.8, "hit rate {:.3}", rep.hit_rate());
    }

    #[test]
    fn no_selection_without_enough_samples() {
        let mut s = ScenarioBuilder::new(6);
        let f = s.function("main", 0x1000);
        let lp = s.counted_loop(f, 2, 100);
        s.ret_from(f, lp.exit);
        let (p, spec) = s.build().unwrap();
        let config = SimConfig::default();
        let mut sel = AdoreSelector::new(&p, &config);
        {
            let mut sim = Simulator::new(
                &p,
                Box::new(AdoreSelector::new(&p, &config)) as Box<dyn RegionSelector + Send>,
                &config,
            );
            sim.run(Executor::new(&p, spec));
            assert_eq!(sim.report().region_count(), 0);
        }
        assert_eq!(sel.tracked_paths(), 0);
        let _ = &mut sel;
    }
}
