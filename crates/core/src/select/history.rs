//! LEI's circular branch-history buffer (paper Figure 5).

use crate::fxhash::{self, FxHashMap};
use rsel_program::Addr;
use std::collections::VecDeque;

/// One recorded taken branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistoryEntry {
    /// Sequence number (monotonically increasing across the run).
    pub seq: u64,
    /// Address of the branching instruction.
    pub src: Addr,
    /// The branch target.
    pub tgt: Addr,
    /// Whether this branch was recorded immediately after an exit from
    /// the code cache (the "follows exit from code cache" condition of
    /// Figure 5, line 9).
    pub follows_exit: bool,
}

/// The bounded history buffer of the most recently interpreted taken
/// branches, with a hash of the targets it currently contains.
///
/// Faithful to Figure 5's structure: insertion (line 5) does *not*
/// update the target hash — the caller looks up the previous occurrence
/// first (line 6) and then points the hash at the new entry (lines 8 and
/// 17). When a trace is selected, the entries after the old occurrence
/// are removed (line 13) via [`HistoryBuffer::truncate_after`].
#[derive(Clone, Debug)]
pub struct HistoryBuffer {
    capacity: usize,
    entries: VecDeque<HistoryEntry>,
    hash: FxHashMap<Addr, u64>,
    next_seq: u64,
}

impl HistoryBuffer {
    /// Creates a buffer retaining at most `capacity` taken branches.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "history buffer capacity must be positive");
        HistoryBuffer {
            capacity,
            entries: VecDeque::with_capacity(capacity),
            hash: fxhash::map_with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Inserts a taken branch, evicting the oldest entry when full.
    /// Returns the new entry's sequence number and, when the eviction
    /// removed a target's *last* occurrence, that target (so the caller
    /// can release its profiling counter — LEI counters only exist for
    /// targets currently in the buffer, §3.2.4). Does not touch the
    /// target hash (call [`HistoryBuffer::update_hash`] afterwards).
    pub fn insert(&mut self, src: Addr, tgt: Addr, follows_exit: bool) -> (u64, Option<Addr>) {
        let mut dropped = None;
        if self.entries.len() == self.capacity {
            let evicted = self.entries.pop_front().expect("buffer is full");
            if self.hash.get(&evicted.tgt) == Some(&evicted.seq) {
                self.hash.remove(&evicted.tgt);
                dropped = Some(evicted.tgt);
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push_back(HistoryEntry {
            seq,
            src,
            tgt,
            follows_exit,
        });
        (seq, dropped)
    }

    /// The sequence number of the most recent *hashed* occurrence of
    /// `tgt` in the buffer (Figure 5, line 6).
    pub fn lookup(&self, tgt: Addr) -> Option<u64> {
        self.hash.get(&tgt).copied()
    }

    /// Points the target hash at entry `seq` for `tgt` (Figure 5,
    /// lines 8 and 17).
    pub fn update_hash(&mut self, tgt: Addr, seq: u64) {
        self.hash.insert(tgt, seq);
    }

    /// The entry with sequence number `seq`, if still buffered.
    pub fn entry(&self, seq: u64) -> Option<&HistoryEntry> {
        let first = self.entries.front()?.seq;
        if seq < first || seq >= self.next_seq {
            return None;
        }
        let idx = (seq - first) as usize;
        self.entries.get(idx)
    }

    /// Iterates over entries with sequence numbers strictly greater
    /// than `seq`, oldest first — the branches of the just-completed
    /// cycle handed to FORM-TRACE (Figure 6).
    pub fn branches_after(&self, seq: u64) -> impl Iterator<Item = &HistoryEntry> {
        self.entries.iter().filter(move |e| e.seq > seq)
    }

    /// Removes all entries with sequence numbers strictly greater than
    /// `seq` (Figure 5, line 13), repairs the target hash so it again
    /// refers to the most recent remaining occurrence of each target,
    /// and returns the targets that no longer appear in the buffer at
    /// all (whose profiling counters should be released).
    pub fn truncate_after(&mut self, seq: u64) -> Vec<Addr> {
        let mut removed_tgts = Vec::new();
        while self.entries.back().is_some_and(|e| e.seq > seq) {
            let e = self.entries.pop_back().expect("checked non-empty");
            removed_tgts.push(e.tgt);
        }
        self.hash.clear();
        for e in &self.entries {
            self.hash.insert(e.tgt, e.seq); // later entries overwrite
        }
        removed_tgts.retain(|t| !self.hash.contains_key(t));
        removed_tgts.sort_unstable();
        removed_tgts.dedup();
        removed_tgts
    }

    /// Number of buffered branches.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(x: u64) -> Addr {
        Addr::new(x)
    }

    #[test]
    fn insert_then_hash_protocol() {
        let mut b = HistoryBuffer::new(4);
        let (s0, _) = b.insert(a(10), a(1), false);
        assert_eq!(b.lookup(a(1)), None, "hash not updated by insert");
        b.update_hash(a(1), s0);
        let (s1, _) = b.insert(a(20), a(1), false);
        // Lookup still sees the OLD occurrence before the update.
        assert_eq!(b.lookup(a(1)), Some(s0));
        b.update_hash(a(1), s1);
        assert_eq!(b.lookup(a(1)), Some(s1));
    }

    #[test]
    fn eviction_cleans_hash() {
        let mut b = HistoryBuffer::new(2);
        let (s0, none) = b.insert(a(10), a(1), false);
        assert_eq!(none, None);
        b.update_hash(a(1), s0);
        let (s1, _) = b.insert(a(20), a(2), false);
        b.update_hash(a(2), s1);
        let (s2, dropped) = b.insert(a(30), a(3), false); // evicts target 1
        b.update_hash(a(3), s2);
        assert_eq!(dropped, Some(a(1)), "last occurrence of 1 left the buffer");
        assert_eq!(b.lookup(a(1)), None);
        assert_eq!(b.lookup(a(2)), Some(s1));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn eviction_keeps_hash_for_newer_duplicate() {
        let mut b = HistoryBuffer::new(2);
        let (s0, _) = b.insert(a(10), a(1), false);
        b.update_hash(a(1), s0);
        let (s1, _) = b.insert(a(20), a(1), false);
        b.update_hash(a(1), s1);
        // Inserting a third entry evicts s0; the hash must keep s1 and
        // the target is NOT reported as dropped.
        let (s2, dropped) = b.insert(a(30), a(2), false);
        b.update_hash(a(2), s2);
        assert_eq!(dropped, None);
        assert_eq!(b.lookup(a(1)), Some(s1));
    }

    #[test]
    fn branches_after_returns_cycle_path() {
        let mut b = HistoryBuffer::new(8);
        let (s0, _) = b.insert(a(10), a(1), false);
        b.update_hash(a(1), s0);
        b.insert(a(20), a(2), false);
        b.insert(a(30), a(3), false);
        b.insert(a(40), a(1), false); // completes cycle at target 1
        let cycle: Vec<Addr> = b.branches_after(s0).map(|e| e.tgt).collect();
        assert_eq!(cycle, vec![a(2), a(3), a(1)]);
    }

    #[test]
    fn truncate_repairs_hash() {
        let mut b = HistoryBuffer::new(8);
        let (s0, _) = b.insert(a(10), a(1), false);
        b.update_hash(a(1), s0);
        let (s1, _) = b.insert(a(20), a(2), false);
        b.update_hash(a(2), s1);
        let (s2, _) = b.insert(a(30), a(2), false);
        b.update_hash(a(2), s2);
        let gone = b.truncate_after(s1);
        assert!(gone.is_empty(), "target 2 still has an older occurrence");
        assert_eq!(b.len(), 2);
        assert_eq!(
            b.lookup(a(2)),
            Some(s1),
            "hash points at surviving occurrence"
        );
        assert_eq!(b.lookup(a(1)), Some(s0));
        assert!(b.entry(s2).is_none());
        assert!(b.entry(s1).is_some());
    }

    #[test]
    fn entry_by_seq() {
        let mut b = HistoryBuffer::new(2);
        let (s0, _) = b.insert(a(10), a(1), true);
        let (s1, _) = b.insert(a(20), a(2), false);
        let (s2, _) = b.insert(a(30), a(3), false); // evicts s0
        assert!(b.entry(s0).is_none());
        assert_eq!(b.entry(s1).unwrap().tgt, a(2));
        assert!(b.entry(s2).unwrap().seq == s2);
        assert!(b.entry(99).is_none());
    }

    #[test]
    fn follows_exit_flag_round_trips() {
        let mut b = HistoryBuffer::new(2);
        let (s0, _) = b.insert(a(10), a(1), true);
        assert!(b.entry(s0).unwrap().follows_exit);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = HistoryBuffer::new(0);
    }
}
