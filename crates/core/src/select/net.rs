//! Next-Executing Tail (NET) trace selection — the Dynamo baseline.

use super::counters::CounterTable;
use super::form::TraceGrower;
use super::{Arrival, RegionSelector};
use crate::cache::{CodeCache, Region};
use crate::config::SimConfig;
use rsel_program::{Addr, Program};
use rsel_trace::AddrWidth;

/// The NET selector of Duesterwald and Bala, as used by Dynamo,
/// DynamoRIO and Mojo (paper §2.1).
///
/// A counter is associated with the target of every taken *backward*
/// branch and with the target of every exit from the code cache. When a
/// counter reaches the execution threshold (50 by default), the counter
/// is recycled and a trace is selected by interpreting and copying the
/// path that executes next (see [`TraceGrower`]).
#[derive(Debug)]
pub struct NetSelector<'p> {
    program: &'p Program,
    threshold: u32,
    max_trace_insts: usize,
    width: AddrWidth,
    counters: CounterTable,
    grower: Option<TraceGrower>,
}

impl<'p> NetSelector<'p> {
    /// Creates a NET selector over `program`.
    pub fn new(program: &'p Program, config: &SimConfig) -> Self {
        NetSelector {
            program,
            threshold: config.net_threshold,
            max_trace_insts: config.max_trace_insts,
            width: config.addr_width,
            counters: CounterTable::new(),
            grower: None,
        }
    }

    /// Whether a trace is currently being grown (for tests).
    pub fn is_growing(&self) -> bool {
        self.grower.is_some()
    }
}

impl RegionSelector for NetSelector<'_> {
    fn on_transfer(&mut self, cache: &CodeCache, src: Addr, tgt: Addr, taken: bool) -> Vec<Region> {
        let Some(g) = self.grower.as_mut() else {
            return Vec::new();
        };
        match g.feed_transfer(cache, src, tgt, taken) {
            Some(t) => {
                self.grower = None;
                vec![Region::trace(self.program, &t.blocks)]
            }
            None => Vec::new(),
        }
    }

    fn on_arrival(&mut self, _cache: &CodeCache, a: Arrival) -> Vec<Region> {
        // Profile targets of backward taken branches and of code-cache
        // exits.
        let backward = a.taken && a.src.is_some_and(|s| a.tgt.is_backward_from(s));
        if !(backward || a.from_cache_exit) {
            return Vec::new();
        }
        let c = self.counters.increment(a.tgt);
        if c >= self.threshold && self.grower.is_none() {
            self.counters.recycle(a.tgt);
            self.grower = Some(TraceGrower::new(a.tgt, self.max_trace_insts, self.width));
        }
        Vec::new()
    }

    fn on_block(&mut self, _cache: &CodeCache, start: Addr) -> Vec<Region> {
        let Some(g) = self.grower.as_mut() else {
            return Vec::new();
        };
        match g.feed_block(self.program, start) {
            Some(t) => {
                self.grower = None;
                vec![Region::trace(self.program, &t.blocks)]
            }
            None => Vec::new(),
        }
    }

    fn on_fault(&mut self, fault: super::CounterFault) {
        match fault {
            super::CounterFault::Saturate => self.counters.saturate_all(),
            super::CounterFault::Reset => self.counters.reset_all(),
        }
    }

    fn counters_in_use(&self) -> usize {
        self.counters.in_use()
    }

    fn distinct_targets_profiled(&self) -> usize {
        self.counters.distinct_ever()
    }

    fn peak_counters(&self) -> usize {
        self.counters.peak()
    }

    fn name(&self) -> &'static str {
        "NET"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_program::ProgramBuilder;

    fn program() -> Program {
        let mut b = ProgramBuilder::new();
        let f = b.function("f", 0x100);
        let a = b.block(f);
        let c = b.block(f);
        let d = b.block_with(f, 0);
        b.cond_branch(a, a);
        b.cond_branch(c, a);
        b.ret(d);
        b.build().unwrap()
    }

    fn cfg() -> SimConfig {
        SimConfig {
            net_threshold: 3,
            ..SimConfig::default()
        }
    }

    #[test]
    fn forward_branches_are_not_profiled() {
        let p = program();
        let mut net = NetSelector::new(&p, &cfg());
        let cache = CodeCache::new();
        let lo = Addr::new(0x100);
        let hi = Addr::new(0x200);
        for _ in 0..10 {
            net.on_arrival(
                &cache,
                Arrival {
                    src: Some(lo),
                    tgt: hi,
                    taken: true,
                    from_cache_exit: false,
                },
            );
        }
        assert_eq!(net.counters_in_use(), 0);
        assert!(!net.is_growing());
    }

    #[test]
    fn backward_target_reaches_threshold_and_grows() {
        let p = program();
        let mut net = NetSelector::new(&p, &cfg());
        let cache = CodeCache::new();
        let a = p.blocks()[0].start();
        let src = p.blocks()[0].terminator().addr();
        for i in 1..=3u32 {
            net.on_arrival(
                &cache,
                Arrival {
                    src: Some(src),
                    tgt: a,
                    taken: true,
                    from_cache_exit: false,
                },
            );
            assert_eq!(net.is_growing(), i == 3);
        }
        // Counter recycled when growth starts.
        assert_eq!(net.counters_in_use(), 0);
        // Growth: block A executes, then its backward self-branch ends
        // the trace.
        assert!(net.on_block(&cache, a).is_empty());
        let regions = net.on_transfer(&cache, src, a, true);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].entry(), a);
        assert!(regions[0].spans_cycle());
        assert!(!net.is_growing());
    }

    #[test]
    fn cache_exit_targets_are_profiled() {
        let p = program();
        let mut net = NetSelector::new(&p, &cfg());
        let cache = CodeCache::new();
        let d = p.blocks()[2].start();
        for _ in 0..2 {
            net.on_arrival(
                &cache,
                Arrival {
                    src: None,
                    tgt: d,
                    taken: false,
                    from_cache_exit: true,
                },
            );
        }
        assert_eq!(net.counters_in_use(), 1);
        net.on_arrival(
            &cache,
            Arrival {
                src: None,
                tgt: d,
                taken: false,
                from_cache_exit: true,
            },
        );
        assert!(net.is_growing(), "third exit landing reaches threshold");
    }

    #[test]
    fn only_one_trace_grows_at_a_time() {
        let p = program();
        let mut net = NetSelector::new(&p, &cfg());
        let cache = CodeCache::new();
        let a = p.blocks()[0].start();
        let c = p.blocks()[1].start();
        let src = Addr::new(0x500);
        for _ in 0..3 {
            net.on_arrival(
                &cache,
                Arrival {
                    src: Some(src),
                    tgt: a,
                    taken: true,
                    from_cache_exit: false,
                },
            );
        }
        assert!(net.is_growing());
        // Another target reaching threshold while growing does not
        // start a second grower (and keeps its counter).
        for _ in 0..4 {
            net.on_arrival(
                &cache,
                Arrival {
                    src: Some(src),
                    tgt: c,
                    taken: true,
                    from_cache_exit: false,
                },
            );
        }
        assert_eq!(net.counters_in_use(), 1);
        // `a`'s counter was recycled before `c`'s was created, so at
        // most one counter ever existed at a time.
        assert_eq!(net.peak_counters(), 1);
    }
}
