//! Next-executing-tail trace growth (NET's formation rule, paper §2.1).

use crate::cache::CodeCache;
use rsel_program::{Addr, InstKind, Program};
use rsel_trace::{AddrWidth, CompactTrace, TraceRecorder};

/// A completed next-executing-tail trace.
#[derive(Clone, Debug)]
pub struct GrownTrace {
    /// Block start addresses along the selected path, entry first.
    pub blocks: Vec<Addr>,
    /// The compact (Figure 14) encoding of the observed path.
    pub compact: CompactTrace,
    /// Total instructions in the selected blocks.
    pub insts: usize,
}

/// Grows a trace by watching the interpreted path that executes next.
///
/// Implements NET's formation rule: starting at the hot branch target,
/// the trace "continues to extend along the interpreted path until a
/// backward branch is taken, a branch is taken that targets the start of
/// another trace, or a size limit is reached" (§2.1). The same grower
/// also produces the *observed traces* stored by combined NET, which is
/// why it records a compact encoding as it goes.
#[derive(Clone, Debug)]
pub struct TraceGrower {
    entry: Addr,
    max_insts: usize,
    blocks: Vec<Addr>,
    insts: usize,
    recorder: Option<TraceRecorder>,
    last_term: Option<(Addr, InstKind)>,
}

impl TraceGrower {
    /// Starts growing a trace at `entry`.
    pub fn new(entry: Addr, max_insts: usize, width: AddrWidth) -> Self {
        TraceGrower {
            entry,
            max_insts,
            blocks: Vec::new(),
            insts: 0,
            recorder: Some(TraceRecorder::new(entry, width)),
            last_term: None,
        }
    }

    /// The trace-head address this grower was started for.
    pub fn entry(&self) -> Addr {
        self.entry
    }

    /// Number of blocks appended so far.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether no blocks have been appended yet.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Observes the control transfer leaving the most recently appended
    /// block, before its target executes. Records the branch outcome
    /// and evaluates NET's stop conditions.
    ///
    /// Returns the completed trace if a stop condition fired; the
    /// target's block is *not* part of the trace.
    pub fn feed_transfer(
        &mut self,
        cache: &CodeCache,
        src: Addr,
        tgt: Addr,
        taken: bool,
    ) -> Option<GrownTrace> {
        if self.blocks.is_empty() {
            return None;
        }
        // Record the outcome of the last block's terminator.
        let (_, kind) = self.last_term.expect("non-empty grower has a terminator");
        if let Some(rec) = self.recorder.as_mut() {
            match kind {
                InstKind::CondBranch { .. } => rec.record_cond(taken),
                InstKind::IndirectJump | InstKind::IndirectCall | InstKind::Ret => {
                    debug_assert!(taken, "indirect transfers are always taken");
                    rec.record_indirect(tgt);
                }
                InstKind::Straight | InstKind::Jump { .. } | InstKind::Call { .. } => {}
            }
        }
        if taken
            && (tgt.is_backward_from(src) // backward branch ends the trace
                || cache.contains(tgt)    // targets the start of another trace
                || tgt == self.entry)
        // completes a cycle at our own head
        {
            return Some(self.finish());
        }
        None
    }

    /// Appends the block at `start`, which the interpreter just began
    /// executing on the watched path. Returns the completed trace if
    /// the size limit was reached.
    ///
    /// # Panics
    ///
    /// Panics if `start` does not begin a program block.
    pub fn feed_block(&mut self, program: &Program, start: Addr) -> Option<GrownTrace> {
        let b = program
            .block_at(start)
            .unwrap_or_else(|| panic!("grower fed a non-block address {start}"));
        debug_assert!(
            !self.blocks.contains(&start),
            "NET paths cannot revisit a block without a backward branch"
        );
        self.blocks.push(start);
        self.insts += b.len();
        self.last_term = Some((b.terminator().addr(), b.terminator_kind()));
        if self.insts >= self.max_insts {
            return Some(self.finish());
        }
        None
    }

    fn finish(&mut self) -> GrownTrace {
        let (last_inst, _) = self.last_term.expect("finished grower has blocks");
        let recorder = self.recorder.take().expect("finish called once");
        GrownTrace {
            blocks: std::mem::take(&mut self.blocks),
            compact: recorder.finish(last_inst),
            insts: self.insts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Region;
    use rsel_program::ProgramBuilder;

    /// A(cond->C) ; B ; C(cond->A) ; D(ret)
    fn program() -> Program {
        let mut b = ProgramBuilder::new();
        let f = b.function("f", 0x100);
        let a = b.block(f);
        let bb = b.block(f);
        let c = b.block(f);
        let d = b.block_with(f, 0);
        let _ = bb;
        b.cond_branch(a, c);
        b.cond_branch(c, a);
        b.ret(d);
        b.build().unwrap()
    }

    fn starts(p: &Program) -> Vec<Addr> {
        p.blocks().iter().map(|b| b.start()).collect()
    }

    #[test]
    fn stops_at_backward_branch_and_spans_cycle() {
        let p = program();
        let s = starts(&p);
        let cache = CodeCache::new();
        let mut g = TraceGrower::new(s[0], 100, AddrWidth::W32);
        assert!(g.feed_block(&p, s[0]).is_none());
        // A takes its branch to C (forward): trace continues.
        let src_a = p.blocks()[0].terminator().addr();
        assert!(g.feed_transfer(&cache, src_a, s[2], true).is_none());
        assert!(g.feed_block(&p, s[2]).is_none());
        // C takes its backward branch to A: trace ends (and loops).
        let src_c = p.blocks()[2].terminator().addr();
        let t = g
            .feed_transfer(&cache, src_c, s[0], true)
            .expect("backward ends trace");
        assert_eq!(t.blocks, vec![s[0], s[2]]);
        let region = Region::trace(&p, &t.blocks);
        assert!(region.spans_cycle());
        // The compact encoding replays to the same block path.
        let decoded = t.compact.decode(&p).unwrap();
        assert_eq!(decoded.blocks, t.blocks);
        assert_eq!(decoded.exit_target, Some(s[0]));
    }

    #[test]
    fn stops_at_existing_region_entry() {
        let p = program();
        let s = starts(&p);
        let mut cache = CodeCache::new();
        cache.insert(Region::trace(&p, &[s[2]]));
        let mut g = TraceGrower::new(s[0], 100, AddrWidth::W32);
        g.feed_block(&p, s[0]);
        let src_a = p.blocks()[0].terminator().addr();
        let t = g
            .feed_transfer(&cache, src_a, s[2], true)
            .expect("hits cached entry");
        assert_eq!(t.blocks, vec![s[0]], "the cached block is excluded");
    }

    #[test]
    fn fallthrough_extends_and_records_not_taken() {
        let p = program();
        let s = starts(&p);
        let cache = CodeCache::new();
        let mut g = TraceGrower::new(s[0], 100, AddrWidth::W32);
        g.feed_block(&p, s[0]);
        let src_a = p.blocks()[0].terminator().addr();
        // A's branch not taken: falls into B.
        assert!(g.feed_transfer(&cache, src_a, s[1], false).is_none());
        g.feed_block(&p, s[1]);
        // B falls into C (straight terminator, no outcome recorded).
        let src_b = p.blocks()[1].terminator().addr();
        assert!(g.feed_transfer(&cache, src_b, s[2], false).is_none());
        g.feed_block(&p, s[2]);
        let src_c = p.blocks()[2].terminator().addr();
        let t = g.feed_transfer(&cache, src_c, s[0], true).unwrap();
        assert_eq!(t.blocks, vec![s[0], s[1], s[2]]);
        let decoded = t.compact.decode(&p).unwrap();
        assert_eq!(decoded.blocks, t.blocks);
    }

    #[test]
    fn size_limit_completes_trace() {
        let p = program();
        let s = starts(&p);
        let mut g = TraceGrower::new(s[0], 2, AddrWidth::W32);
        let t = g
            .feed_block(&p, s[0])
            .expect("limit of 2 insts hit by first block");
        assert_eq!(t.blocks, vec![s[0]]);
        assert!(t.insts >= 2);
    }

    #[test]
    fn insts_match_block_lengths() {
        let p = program();
        let s = starts(&p);
        let cache = CodeCache::new();
        let mut g = TraceGrower::new(s[0], 100, AddrWidth::W32);
        g.feed_block(&p, s[0]);
        let src_a = p.blocks()[0].terminator().addr();
        g.feed_transfer(&cache, src_a, s[2], true);
        g.feed_block(&p, s[2]);
        let src_c = p.blocks()[2].terminator().addr();
        let t = g.feed_transfer(&cache, src_c, s[0], true).unwrap();
        let expected: usize = t.blocks.iter().map(|&a| p.block_at(a).unwrap().len()).sum();
        assert_eq!(t.insts, expected);
    }
}
