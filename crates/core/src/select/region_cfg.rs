//! Combining observed traces into a multi-path region
//! (paper §4.2.2, "Constructing the CFG", and Figure 13 lines 12–17).

use super::rejoin::mark_rejoining_paths;
use crate::cache::Region;
use rsel_program::{Addr, Program};
use rsel_trace::{CompactTrace, DecodeError};
use std::collections::{HashMap, HashSet};

/// The CFG built incrementally from a target's observed traces.
///
/// "Rather than representing all possible branches, the CFG for a region
/// represents only those branches taken in an observed trace" (§4.2.2).
/// Each block is annotated with the number of observed traces in which
/// it occurs.
#[derive(Clone, Debug)]
pub struct ObservedCfg {
    entry: Addr,
    nodes: Vec<Addr>,
    edges: HashMap<Addr, Vec<Addr>>,
    occurrences: HashMap<Addr, u32>,
    trace_count: u32,
}

impl ObservedCfg {
    /// Builds the CFG by adding each observed trace in turn.
    ///
    /// # Errors
    ///
    /// Propagates a [`DecodeError`] if a stored trace does not replay
    /// against `program` (which indicates a bug, not a data condition).
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty or a trace does not start at `entry`.
    pub fn build(
        program: &Program,
        entry: Addr,
        traces: &[CompactTrace],
    ) -> Result<Self, DecodeError> {
        assert!(!traces.is_empty(), "combination needs observed traces");
        let mut cfg = ObservedCfg {
            entry,
            nodes: Vec::new(),
            edges: HashMap::new(),
            occurrences: HashMap::new(),
            trace_count: traces.len() as u32,
        };
        let mut known: HashSet<Addr> = HashSet::new();
        let mut edge_set: HashSet<(Addr, Addr)> = HashSet::new();
        for t in traces {
            assert_eq!(
                t.start(),
                entry,
                "observed trace starts at the region entry"
            );
            let path = t.decode(program)?;
            let mut seen_this_trace: HashSet<Addr> = HashSet::new();
            for &b in &path.blocks {
                if known.insert(b) {
                    cfg.nodes.push(b);
                }
                if seen_this_trace.insert(b) {
                    *cfg.occurrences.entry(b).or_insert(0) += 1;
                }
            }
            for w in path.blocks.windows(2) {
                if edge_set.insert((w[0], w[1])) {
                    cfg.edges.entry(w[0]).or_default().push(w[1]);
                }
            }
        }
        Ok(cfg)
    }

    /// The region entry (first block of every observed trace).
    pub fn entry(&self) -> Addr {
        self.entry
    }

    /// Blocks in first-observed order (entry first).
    pub fn nodes(&self) -> &[Addr] {
        &self.nodes
    }

    /// Observed edges.
    pub fn edges(&self) -> &HashMap<Addr, Vec<Addr>> {
        &self.edges
    }

    /// Number of observed traces containing `block`.
    pub fn occurrences(&self, block: Addr) -> u32 {
        self.occurrences.get(&block).copied().unwrap_or(0)
    }

    /// Number of observed traces.
    pub fn trace_count(&self) -> u32 {
        self.trace_count
    }
}

/// The outcome of combining a target's observed traces.
#[derive(Debug)]
pub struct CombineResult {
    /// The combined multi-path region.
    pub region: Region,
    /// Iterations taken by the rejoin-marking pass.
    pub rejoin_iterations: usize,
    /// Observed blocks dropped for occurring in fewer than `T_min`
    /// traces (and not lying on a rejoining path).
    pub dropped_blocks: usize,
}

/// Runs the full combination pipeline of Figure 13 (lines 12–17):
/// build the CFG, mark blocks occurring in at least `t_min` traces,
/// mark rejoining paths, drop everything unmarked, promote exits that
/// target kept blocks, and build the region.
///
/// When fewer than `t_min` traces were observed (possible when
/// observation windows overlap and some are skipped), the cut-off is
/// lowered to the number of traces so that the entry — present in every
/// trace — is always kept.
///
/// # Errors
///
/// Propagates a [`DecodeError`] from CFG construction.
pub fn combine_traces(
    program: &Program,
    entry: Addr,
    traces: &[CompactTrace],
    t_min: u32,
) -> Result<CombineResult, DecodeError> {
    let cfg = ObservedCfg::build(program, entry, traces)?;
    let cut = t_min.min(cfg.trace_count());
    let initially_marked: HashSet<Addr> = cfg
        .nodes()
        .iter()
        .copied()
        .filter(|&b| cfg.occurrences(b) >= cut)
        .collect();
    debug_assert!(
        initially_marked.contains(&entry),
        "the entry occurs in every observed trace"
    );
    let rejoin = mark_rejoining_paths(entry, cfg.nodes(), cfg.edges(), &initially_marked);
    let kept: Vec<Addr> = cfg
        .nodes()
        .iter()
        .copied()
        .filter(|b| rejoin.marked.contains(b))
        .collect();
    let dropped = cfg.nodes().len() - kept.len();
    let kept_set: HashSet<Addr> = kept.iter().copied().collect();
    let mut edge_pairs: Vec<(Addr, Addr)> = Vec::new();
    for (&from, succs) in cfg.edges() {
        if !kept_set.contains(&from) {
            continue;
        }
        for &to in succs {
            if kept_set.contains(&to) {
                edge_pairs.push((from, to));
            }
        }
    }
    // Deterministic ordering (HashMap iteration order is not).
    edge_pairs.sort();
    let region = Region::combined(program, &kept, &edge_pairs);
    Ok(CombineResult {
        region,
        rejoin_iterations: rejoin.iterations,
        dropped_blocks: dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_program::{BehaviorSpec, Executor, ProgramBuilder};
    use rsel_trace::{AddrWidth, TraceRecorder};

    /// split S(cond->T) ; F(fall side) ; T(taken side) ; J(join) ; X(ret)
    /// F jumps to J; T falls into J.
    fn diamond() -> (Program, [Addr; 5]) {
        let mut b = ProgramBuilder::new();
        let f = b.function("f", 0x100);
        let s = b.block(f);
        let fall = b.block(f);
        let taken = b.block(f);
        let j = b.block(f);
        let x = b.block_with(f, 0);
        b.cond_branch(s, taken);
        b.jump(fall, j);
        // taken falls into j
        b.ret(x);
        let p = b.build().unwrap();
        let addr = |id| p.block(id).start();
        (
            p.clone(),
            [addr(s), addr(fall), addr(taken), addr(j), addr(x)],
        )
    }

    /// Records a trace through the diamond, taking or falling at S.
    fn observe(p: &Program, s: &[Addr; 5], take: bool) -> CompactTrace {
        let mut r = TraceRecorder::new(s[0], AddrWidth::W32);
        r.record_cond(take);
        // J's terminator is straight (falls into X); trace ends at J.
        let j_end = p.block_at(s[3]).unwrap().terminator().addr();
        r.finish(j_end)
    }

    #[test]
    fn cfg_counts_occurrences_per_trace() {
        let (p, s) = diamond();
        let traces = vec![
            observe(&p, &s, true),
            observe(&p, &s, false),
            observe(&p, &s, true),
        ];
        let cfg = ObservedCfg::build(&p, s[0], &traces).unwrap();
        assert_eq!(cfg.occurrences(s[0]), 3);
        assert_eq!(cfg.occurrences(s[2]), 2); // taken side
        assert_eq!(cfg.occurrences(s[1]), 1); // fall side
        assert_eq!(cfg.occurrences(s[3]), 3); // join
        assert_eq!(cfg.trace_count(), 3);
        assert_eq!(cfg.nodes()[0], s[0]);
    }

    #[test]
    fn unbiased_branch_keeps_both_sides_without_duplication() {
        // Both sides occur >= t_min: the combined region is the whole
        // diamond, with no tail duplication (paper Figure 4's fix).
        let (p, s) = diamond();
        let traces = vec![
            observe(&p, &s, true),
            observe(&p, &s, false),
            observe(&p, &s, true),
            observe(&p, &s, false),
        ];
        let res = combine_traces(&p, s[0], &traces, 2).unwrap();
        let r = &res.region;
        assert!(r.contains_block(s[1]) && r.contains_block(s[2]));
        assert!(r.contains_block(s[3]));
        assert_eq!(res.dropped_blocks, 0);
        // Join appears once: no duplication of D/F blocks as under NET.
        assert_eq!(r.blocks().len(), 4);
        // The only exit is J's fall-through to X.
        assert_eq!(r.stub_count(), 1);
        assert_eq!(r.stubs()[0].target, Some(s[4]));
    }

    #[test]
    fn dominant_path_stays_a_single_trace() {
        // "If there is a single dominant path from a branch target,
        // trace combination selects only that path" (§4.2).
        let (p, s) = diamond();
        let traces: Vec<CompactTrace> = (0..5).map(|_| observe(&p, &s, true)).collect();
        let res = combine_traces(&p, s[0], &traces, 2).unwrap();
        let r = &res.region;
        assert!(r.contains_block(s[2]));
        assert!(!r.contains_block(s[1]), "never-taken side is excluded");
        assert_eq!(r.blocks().len(), 3);
    }

    #[test]
    fn rare_rejoining_path_is_kept() {
        // The fall side occurs once (< t_min) but rejoins the marked
        // join block, so it is kept (exit-dominated duplication fix).
        let (p, s) = diamond();
        let traces = vec![
            observe(&p, &s, true),
            observe(&p, &s, true),
            observe(&p, &s, true),
            observe(&p, &s, false),
        ];
        let res = combine_traces(&p, s[0], &traces, 3).unwrap();
        assert!(res.region.contains_block(s[1]), "rejoining path kept");
        assert_eq!(res.dropped_blocks, 0);
    }

    #[test]
    fn dead_end_rare_path_is_dropped() {
        // S(cond->T) ; F ; T... where F returns instead of rejoining.
        let mut b = ProgramBuilder::new();
        let f = b.function("f", 0x100);
        let sb = b.block(f);
        let fall = b.block_with(f, 0);
        let taken = b.block(f);
        let x = b.block_with(f, 0);
        b.cond_branch(sb, taken);
        b.ret(fall);
        // taken falls into x
        b.ret(x);
        let p = b.build().unwrap();
        let s0 = p.block(sb).start();
        let mk = |take: bool| {
            let mut r = TraceRecorder::new(s0, AddrWidth::W32);
            r.record_cond(take);
            let end = if take {
                p.block(x).terminator().addr()
            } else {
                p.block(fall).terminator().addr()
            };
            r.finish(end)
        };
        let traces = vec![mk(true), mk(true), mk(true), mk(false)];
        let res = combine_traces(&p, s0, &traces, 3).unwrap();
        assert!(!res.region.contains_block(p.block(fall).start()));
        assert_eq!(res.dropped_blocks, 1);
    }

    #[test]
    fn combined_region_replays_real_execution() {
        // Sanity: traces recorded from actual executor runs decode and
        // combine.
        let (p, s) = diamond();
        let mut spec = BehaviorSpec::new(3);
        let s_branch = p.block_at(s[0]).unwrap().terminator().addr();
        spec.bernoulli(s_branch, 0.5);
        let steps: Vec<_> = Executor::new(&p, spec).collect();
        assert!(steps.len() >= 4);
        let traces = vec![observe(&p, &s, true), observe(&p, &s, false)];
        let res = combine_traces(&p, s[0], &traces, 1).unwrap();
        assert!(res.region.spans_cycle() || res.region.stub_count() >= 1);
    }
}
