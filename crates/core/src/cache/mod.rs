//! The code cache model: regions, exit stubs and the entry index.

pub mod code_cache;
pub mod dot;
pub mod region;

pub use code_cache::{CodeCache, Removal};
pub use dot::{cache_to_dot, region_to_dot};
pub use region::{ExitStub, Region, RegionBlock, RegionId, RegionKind, TransferClass};
