//! The unbounded code cache holding selected regions.

use super::region::{Region, RegionId};
use crate::error::SimError;
use crate::fxhash::{FxHashMap, FxHashSet};
use rsel_program::Addr;

/// Bytes per page of the invalidation index (512 = 2⁹).
///
/// Self-modifying-code writes dirty small ranges (a couple of patched
/// instructions — [`FaultConfig::smc_max_span`](crate::FaultConfig)
/// defaults to 64 bytes), so a fine page keeps the per-write lookup to
/// one or two buckets while still amortizing index maintenance across
/// a block's bytes. 512 B is deliberately finer than the 4 KiB
/// virtual-memory page the locality metrics use: the index models the
/// dirty-tracking granularity of the code cache, not the MMU.
pub const INDEX_PAGE_BYTES: u64 = 512;

/// The outcome of removing regions from the cache (a self-modifying-code
/// invalidation or a cache-pressure eviction wave).
#[derive(Debug, Default)]
pub struct Removal {
    /// The regions removed, in selection order, with their final state.
    pub removed: Vec<Region>,
    /// Inter-region links severed because one endpoint was removed.
    pub severed_links: u64,
}

/// The simulated code cache.
///
/// The paper's framework "assumes an unbounded code cache" (§2.3) and
/// that is the default here. As an extension, a cache may be *bounded*:
/// when an insertion would exceed the capacity, the whole cache is
/// flushed (Dynamo's preemptive-flush policy) and selection starts
/// over — the experiment §2.3 predicts its algorithms help with,
/// "because our algorithms reduce code duplication and produce fewer
/// cached regions ... and \[regenerates\] fewer evicted regions".
///
/// Beyond the paper, the cache supports *partial* removal, which real
/// systems need to survive self-modifying code and memory pressure:
///
/// - [`CodeCache::invalidate_range`] removes every region whose copied
///   blocks overlap a dirtied byte range;
/// - [`CodeCache::evict_oldest`] removes the oldest regions under a
///   pressure wave.
///
/// Region ids are *stable*: they are assigned monotonically and keep
/// naming the same region until it is removed (they restart only at a
/// full [`CodeCache::flush`]). Inter-region links installed by lazy
/// linking are registered with [`CodeCache::record_link`] and severed
/// automatically when either endpoint is removed, so no link ever
/// dangles.
#[derive(Clone, Debug)]
pub struct CodeCache {
    /// Live regions in selection order.
    regions: Vec<Region>,
    /// Live entry address → region id.
    entries: FxHashMap<Addr, RegionId>,
    /// Live region id → index in `regions`.
    index_of: FxHashMap<RegionId, usize>,
    /// Page-granular invalidation index: page number (at
    /// [`INDEX_PAGE_BYTES`] per page) → ids of live regions with a
    /// copied block whose bytes touch that page. Regions register
    /// their pages at insert time and deregister on removal, so an
    /// SMC write resolves its doomed set in O(pages touched) instead
    /// of scanning every live region.
    page_index: FxHashMap<u64, Vec<RegionId>>,
    /// Next id to assign; monotonic until a full flush.
    next_id: u32,
    /// Lazy links installed between live regions.
    links_out: FxHashMap<RegionId, FxHashSet<RegionId>>,
    links_in: FxHashMap<RegionId, FxHashSet<RegionId>>,
    capacity: Option<u64>,
    stub_bytes: u64,
    flushes: u64,
    next_offset: u64,
}

impl Default for CodeCache {
    fn default() -> Self {
        CodeCache {
            regions: Vec::new(),
            entries: FxHashMap::default(),
            index_of: FxHashMap::default(),
            page_index: FxHashMap::default(),
            next_id: 0,
            links_out: FxHashMap::default(),
            links_in: FxHashMap::default(),
            capacity: None,
            stub_bytes: 10, // the paper's layout estimate (§4.3.4)
            flushes: 0,
            next_offset: 0,
        }
    }
}

impl CodeCache {
    /// Creates an empty, unbounded cache.
    pub fn new() -> Self {
        CodeCache::default()
    }

    /// Creates an empty cache bounded at `capacity` estimated bytes
    /// (instruction bytes plus `stub_bytes` per exit stub).
    pub fn bounded(capacity: u64, stub_bytes: u64) -> Self {
        CodeCache {
            capacity: Some(capacity),
            stub_bytes,
            ..CodeCache::default()
        }
    }

    /// The configured capacity, if bounded.
    pub fn capacity(&self) -> Option<u64> {
        self.capacity
    }

    /// Number of full flushes performed so far.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Whether inserting `region` would exceed a bounded capacity.
    pub fn would_overflow(&self, region: &Region) -> bool {
        match self.capacity {
            Some(cap) => {
                self.size_estimate(self.stub_bytes) + region.size_estimate(self.stub_bytes) > cap
            }
            None => false,
        }
    }

    /// Empties the cache (the bounded-cache flush policy). Region ids
    /// restart from zero and all links are dropped.
    pub fn flush(&mut self) {
        self.regions.clear();
        self.entries.clear();
        self.index_of.clear();
        self.page_index.clear();
        self.links_out.clear();
        self.links_in.clear();
        self.next_id = 0;
        self.flushes += 1;
        self.next_offset = 0;
    }

    /// Looks up the region entered at `addr`, if any.
    pub fn lookup(&self, addr: Addr) -> Option<RegionId> {
        self.entries.get(&addr).copied()
    }

    /// Whether some region is entered at `addr`.
    pub fn contains(&self, addr: Addr) -> bool {
        self.entries.contains_key(&addr)
    }

    /// Inserts a region, assigning its id (= selection order).
    ///
    /// # Panics
    ///
    /// Panics if a region with the same entry address already exists:
    /// selectors only select targets that miss the cache. Use
    /// [`CodeCache::try_insert`] where a duplicate must be tolerated
    /// (fault recovery can race a re-selection against a re-formation).
    pub fn insert(&mut self, region: Region) -> RegionId {
        match self.try_insert(region) {
            Ok(id) => id,
            Err(e) => panic!("duplicate region entry: {e}"),
        }
    }

    /// Inserts a region, assigning its id; rejects a duplicate entry
    /// address with [`SimError::DuplicateRegionEntry`] (the region is
    /// dropped).
    pub fn try_insert(&mut self, mut region: Region) -> Result<RegionId, SimError> {
        if self.entries.contains_key(&region.entry()) {
            return Err(SimError::DuplicateRegionEntry(region.entry()));
        }
        let id = RegionId(self.next_id);
        self.next_id += 1;
        region.set_id(id);
        region.set_cache_offset(self.next_offset);
        self.next_offset += region.size_estimate(self.stub_bytes);
        self.entries.insert(region.entry(), id);
        self.index_of.insert(id, self.regions.len());
        for page in region.pages_spanned(INDEX_PAGE_BYTES) {
            self.page_index.entry(page).or_default().push(id);
        }
        self.regions.push(region);
        Ok(id)
    }

    /// The region with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not name a live region. Use
    /// [`CodeCache::try_region`] where the id may have been
    /// invalidated.
    pub fn region(&self, id: RegionId) -> &Region {
        match self.try_region(id) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// The region with the given id, or [`SimError::UnknownRegion`] if
    /// it is not live (never existed, was invalidated, or was flushed).
    pub fn try_region(&self, id: RegionId) -> Result<&Region, SimError> {
        self.index_of
            .get(&id)
            .map(|&i| &self.regions[i])
            .ok_or(SimError::UnknownRegion(id))
    }

    /// The current index of a live region in [`CodeCache::regions`],
    /// or `None` if the id is not live. Indices shift on removal, so
    /// callers caching one as a hint must re-validate it against the
    /// region's id before use.
    #[inline]
    pub fn region_index(&self, id: RegionId) -> Option<usize> {
        self.index_of.get(&id).copied()
    }

    /// All live regions in selection order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Number of live regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Records a lazy link `from → to` (an exit stub of `from` patched
    /// to jump straight into `to`). Self-links are ignored; dead ids
    /// are ignored.
    pub fn record_link(&mut self, from: RegionId, to: RegionId) {
        if from == to || !self.index_of.contains_key(&from) || !self.index_of.contains_key(&to) {
            return;
        }
        if self.links_out.entry(from).or_default().insert(to) {
            self.links_in.entry(to).or_default().insert(from);
        }
    }

    /// Live inter-region links, as `(from, to)` pairs in unspecified
    /// order.
    pub fn links(&self) -> impl Iterator<Item = (RegionId, RegionId)> + '_ {
        self.links_out
            .iter()
            .flat_map(|(&from, tos)| tos.iter().map(move |&to| (from, to)))
    }

    /// Number of live inter-region links.
    pub fn link_count(&self) -> u64 {
        self.links_out.values().map(|s| s.len() as u64).sum()
    }

    /// Ids of the live regions whose copied blocks overlap the byte
    /// range `[lo, hi)`, in ascending id order, resolved through the
    /// page-granular invalidation index: only regions filed under a
    /// page the range touches are tested, so the cost scales with
    /// pages touched (plus candidates on them), not with the live
    /// region count.
    ///
    /// Degenerate ranges spanning more pages than the index holds
    /// (e.g. a whole-address-space probe) walk the index's occupied
    /// pages instead of the range, so the cost is also bounded by the
    /// cache's own footprint.
    pub fn regions_overlapping(&self, lo: Addr, hi: Addr) -> Vec<RegionId> {
        if lo >= hi {
            return Vec::new();
        }
        let first = lo.raw() / INDEX_PAGE_BYTES;
        let last = (hi.raw() - 1) / INDEX_PAGE_BYTES;
        let mut ids: Vec<RegionId> = Vec::new();
        let candidates = |page_ids: &[RegionId], ids: &mut Vec<RegionId>| {
            for &id in page_ids {
                if self.regions[self.index_of[&id]].overlaps_range(lo, hi) {
                    ids.push(id);
                }
            }
        };
        if last - first < self.page_index.len() as u64 {
            for page in first..=last {
                if let Some(page_ids) = self.page_index.get(&page) {
                    candidates(page_ids, &mut ids);
                }
            }
        } else {
            for (&page, page_ids) in &self.page_index {
                if (first..=last).contains(&page) {
                    candidates(page_ids, &mut ids);
                }
            }
        }
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// The pre-index implementation of [`CodeCache::regions_overlapping`]:
    /// a linear scan over every live region. Kept as the oracle the
    /// indexed path is checked against (a `debug_assert` on every
    /// invalidation, and property tests over arbitrary
    /// insert/invalidate/evict sequences).
    pub fn regions_overlapping_scan(&self, lo: Addr, hi: Addr) -> Vec<RegionId> {
        let mut ids: Vec<RegionId> = self
            .regions
            .iter()
            .filter(|r| r.overlaps_range(lo, hi))
            .map(Region::id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Removes every live region whose copied blocks overlap the byte
    /// range `[lo, hi)` — the recovery response to a self-modifying-code
    /// write. Links touching a removed region are severed. Doomed
    /// regions are resolved through the page index; debug builds
    /// cross-check the result against the linear-scan oracle.
    pub fn invalidate_range(&mut self, lo: Addr, hi: Addr) -> Removal {
        let indexed = self.regions_overlapping(lo, hi);
        debug_assert_eq!(
            indexed,
            self.regions_overlapping_scan(lo, hi),
            "page index diverged from the scan oracle for [{lo}, {hi})"
        );
        let doomed: FxHashSet<RegionId> = indexed.into_iter().collect();
        self.remove_ids(&doomed)
    }

    /// Removes the `count` oldest (earliest-selected) live regions —
    /// the recovery response to a cache-pressure flush wave. Links
    /// touching a removed region are severed.
    pub fn evict_oldest(&mut self, count: usize) -> Removal {
        let doomed: FxHashSet<RegionId> = self.regions.iter().take(count).map(Region::id).collect();
        self.remove_ids(&doomed)
    }

    /// Removes the named live regions (dead ids are ignored) — the
    /// hook an external cache-management policy uses to shed specific
    /// regions, e.g. the multi-tenant runtime's shard-pressure
    /// eviction. Links touching a removed region are severed.
    pub fn remove_regions(&mut self, ids: &[RegionId]) -> Removal {
        let doomed: FxHashSet<RegionId> = ids
            .iter()
            .copied()
            .filter(|id| self.index_of.contains_key(id))
            .collect();
        self.remove_ids(&doomed)
    }

    fn remove_ids(&mut self, doomed: &FxHashSet<RegionId>) -> Removal {
        if doomed.is_empty() {
            return Removal::default();
        }
        let mut severed = 0;
        for &id in doomed {
            severed += self.unlink(id);
        }
        let mut removed = Vec::with_capacity(doomed.len());
        let mut kept = Vec::with_capacity(self.regions.len() - doomed.len());
        for r in std::mem::take(&mut self.regions) {
            if doomed.contains(&r.id()) {
                self.entries.remove(&r.entry());
                self.index_of.remove(&r.id());
                for page in r.pages_spanned(INDEX_PAGE_BYTES) {
                    let bucket = self
                        .page_index
                        .get_mut(&page)
                        .expect("removed region was filed under its pages");
                    bucket.retain(|&id| id != r.id());
                    if bucket.is_empty() {
                        self.page_index.remove(&page);
                    }
                }
                removed.push(r);
            } else {
                kept.push(r);
            }
        }
        self.regions = kept;
        for (i, r) in self.regions.iter().enumerate() {
            self.index_of.insert(r.id(), i);
        }
        Removal {
            removed,
            severed_links: severed,
        }
    }

    /// Severs every link with `id` as an endpoint, returning how many
    /// were cut.
    fn unlink(&mut self, id: RegionId) -> u64 {
        let mut severed = 0;
        if let Some(outs) = self.links_out.remove(&id) {
            for o in outs {
                if let Some(ins) = self.links_in.get_mut(&o) {
                    ins.remove(&id);
                }
                severed += 1;
            }
        }
        if let Some(ins) = self.links_in.remove(&id) {
            for i in ins {
                if let Some(outs) = self.links_out.get_mut(&i) {
                    if outs.remove(&id) {
                        severed += 1;
                    }
                }
            }
        }
        severed
    }

    /// Total instructions copied into the cache (the paper's *code
    /// expansion* metric, §2.3); live regions only.
    pub fn insts_copied(&self) -> u64 {
        self.regions.iter().map(Region::inst_count).sum()
    }

    /// Total exit stubs across all live regions (Figure 19's metric).
    pub fn stub_count(&self) -> u64 {
        self.regions.iter().map(|r| r.stub_count() as u64).sum()
    }

    /// Estimated total cache size in bytes: instruction bytes plus
    /// `stub_bytes` per stub (paper §4.3.4); live regions only.
    pub fn size_estimate(&self, stub_bytes: u64) -> u64 {
        self.regions
            .iter()
            .map(|r| r.size_estimate(stub_bytes))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_program::ProgramBuilder;

    fn program() -> rsel_program::Program {
        let mut b = ProgramBuilder::new();
        let f = b.function("f", 0x100);
        let a = b.block(f);
        let c = b.block(f);
        let d = b.block_with(f, 0);
        b.cond_branch(a, a);
        b.cond_branch(c, a);
        b.ret(d);
        b.build().unwrap()
    }

    #[test]
    fn insert_and_lookup() {
        let p = program();
        let mut cache = CodeCache::new();
        assert!(cache.is_empty());
        let a = p.blocks()[0].start();
        let id = cache.insert(Region::trace(&p, &[a]));
        assert_eq!(cache.lookup(a), Some(id));
        assert!(cache.contains(a));
        assert!(!cache.contains(p.blocks()[1].start()));
        assert_eq!(cache.region(id).entry(), a);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn ids_follow_selection_order() {
        let p = program();
        let mut cache = CodeCache::new();
        let id0 = cache.insert(Region::trace(&p, &[p.blocks()[0].start()]));
        let id1 = cache.insert(Region::trace(&p, &[p.blocks()[1].start()]));
        assert!(id0 < id1);
        assert_eq!(cache.regions()[0].id(), id0);
        assert_eq!(cache.regions()[1].id(), id1);
    }

    #[test]
    #[should_panic(expected = "duplicate region entry")]
    fn duplicate_entry_rejected() {
        let p = program();
        let mut cache = CodeCache::new();
        let a = p.blocks()[0].start();
        cache.insert(Region::trace(&p, &[a]));
        cache.insert(Region::trace(&p, &[a]));
    }

    #[test]
    fn try_insert_reports_duplicates_gracefully() {
        let p = program();
        let mut cache = CodeCache::new();
        let a = p.blocks()[0].start();
        cache.try_insert(Region::trace(&p, &[a])).unwrap();
        let err = cache.try_insert(Region::trace(&p, &[a])).unwrap_err();
        assert_eq!(err, SimError::DuplicateRegionEntry(a));
        assert_eq!(cache.len(), 1, "the duplicate was dropped");
    }

    #[test]
    fn aggregates_sum_regions() {
        let p = program();
        let mut cache = CodeCache::new();
        cache.insert(Region::trace(&p, &[p.blocks()[0].start()]));
        cache.insert(Region::trace(
            &p,
            &[p.blocks()[1].start(), p.blocks()[0].start()],
        ));
        assert_eq!(
            cache.insts_copied(),
            cache.regions().iter().map(|r| r.inst_count()).sum::<u64>()
        );
        assert!(cache.stub_count() > 0);
        assert_eq!(
            cache.size_estimate(10),
            cache
                .regions()
                .iter()
                .map(|r| r.size_estimate(10))
                .sum::<u64>()
        );
    }

    #[test]
    fn invalidation_keeps_ids_stable() {
        let p = program();
        let mut cache = CodeCache::new();
        let s: Vec<Addr> = p.blocks().iter().map(|b| b.start()).collect();
        let id0 = cache.insert(Region::trace(&p, &[s[0]]));
        let id1 = cache.insert(Region::trace(&p, &[s[1]]));
        let id2 = cache.insert(Region::trace(&p, &[s[2]]));
        // Dirty block 1's bytes: only the middle region dies.
        let out = cache.invalidate_range(s[1], s[1].offset(1));
        assert_eq!(out.removed.len(), 1);
        assert_eq!(out.removed[0].id(), id1);
        assert_eq!(cache.len(), 2);
        // Survivors keep their ids and stay addressable.
        assert_eq!(cache.region(id0).entry(), s[0]);
        assert_eq!(cache.region(id2).entry(), s[2]);
        assert!(matches!(cache.try_region(id1), Err(SimError::UnknownRegion(i)) if i == id1));
        assert_eq!(cache.lookup(s[1]), None);
        // A later insertion continues the monotonic id sequence.
        let id3 = cache.insert(Region::trace(&p, &[s[1]]));
        assert!(id3 > id2);
    }

    #[test]
    fn invalidation_severs_links_both_ways() {
        let p = program();
        let mut cache = CodeCache::new();
        let s: Vec<Addr> = p.blocks().iter().map(|b| b.start()).collect();
        let id0 = cache.insert(Region::trace(&p, &[s[0]]));
        let id1 = cache.insert(Region::trace(&p, &[s[1]]));
        let id2 = cache.insert(Region::trace(&p, &[s[2]]));
        cache.record_link(id0, id1);
        cache.record_link(id1, id2);
        cache.record_link(id2, id0);
        cache.record_link(id2, id0); // duplicate: not double counted
        assert_eq!(cache.link_count(), 3);
        let out = cache.invalidate_range(s[1], s[1].offset(1));
        assert_eq!(out.severed_links, 2, "both links touching id1 cut");
        assert_eq!(cache.link_count(), 1);
        let remaining: Vec<_> = cache.links().collect();
        assert_eq!(remaining, vec![(id2, id0)]);
        // No link references a dead region.
        for (a, b) in cache.links() {
            assert!(cache.try_region(a).is_ok() && cache.try_region(b).is_ok());
        }
    }

    #[test]
    fn evict_oldest_removes_in_selection_order() {
        let p = program();
        let mut cache = CodeCache::new();
        let s: Vec<Addr> = p.blocks().iter().map(|b| b.start()).collect();
        let id0 = cache.insert(Region::trace(&p, &[s[0]]));
        let id1 = cache.insert(Region::trace(&p, &[s[1]]));
        let id2 = cache.insert(Region::trace(&p, &[s[2]]));
        let out = cache.evict_oldest(2);
        let gone: Vec<RegionId> = out.removed.iter().map(Region::id).collect();
        assert_eq!(gone, vec![id0, id1]);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.regions()[0].id(), id2);
        // Evicting more than live is harmless.
        let out = cache.evict_oldest(10);
        assert_eq!(out.removed.len(), 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn page_index_matches_the_scan_oracle() {
        let p = program();
        let mut cache = CodeCache::new();
        let s: Vec<Addr> = p.blocks().iter().map(|b| b.start()).collect();
        let id0 = cache.insert(Region::trace(&p, &[s[0]]));
        let id1 = cache.insert(Region::trace(&p, &[s[1], s[0]]));
        let id2 = cache.insert(Region::trace(&p, &[s[2]]));
        // Point probes, a multi-region span, and a miss.
        let probes = [
            (s[0], s[0].offset(1)),
            (s[0], s[2].offset(1)),
            (s[1], s[2]),
            (Addr::new(0), Addr::new(0x50)),
            (s[2], s[2]), // empty range
        ];
        for (lo, hi) in probes {
            assert_eq!(
                cache.regions_overlapping(lo, hi),
                cache.regions_overlapping_scan(lo, hi),
                "probe [{lo}, {hi})"
            );
        }
        assert_eq!(
            cache.regions_overlapping(s[0], s[0].offset(1)),
            vec![id0, id1]
        );
        // A whole-address-space probe takes the index-walk path and
        // still finds everything exactly once.
        assert_eq!(
            cache.regions_overlapping(Addr::new(0), Addr::new(u64::MAX)),
            vec![id0, id1, id2]
        );
        // Removal deregisters: the dead region disappears from every
        // probe, survivors stay findable.
        cache.invalidate_range(s[1], s[1].offset(1));
        assert_eq!(cache.regions_overlapping(s[0], s[0].offset(1)), vec![id0]);
        assert_eq!(
            cache.regions_overlapping(Addr::new(0), Addr::new(u64::MAX)),
            vec![id0, id2]
        );
        cache.evict_oldest(1);
        assert_eq!(
            cache.regions_overlapping(Addr::new(0), Addr::new(u64::MAX)),
            vec![id2]
        );
        cache.flush();
        assert!(
            cache
                .regions_overlapping(Addr::new(0), Addr::new(u64::MAX))
                .is_empty()
        );
    }

    #[test]
    fn flush_restarts_ids_and_drops_links() {
        let p = program();
        let mut cache = CodeCache::new();
        let s: Vec<Addr> = p.blocks().iter().map(|b| b.start()).collect();
        let id0 = cache.insert(Region::trace(&p, &[s[0]]));
        let id1 = cache.insert(Region::trace(&p, &[s[1]]));
        cache.record_link(id0, id1);
        cache.flush();
        assert!(cache.is_empty());
        assert_eq!(cache.link_count(), 0);
        assert_eq!(cache.flushes(), 1);
        let id = cache.insert(Region::trace(&p, &[s[0]]));
        assert_eq!(id.index(), 0, "ids restart after a full flush");
    }
}
