//! The unbounded code cache holding selected regions.

use super::region::{Region, RegionId};
use rsel_program::Addr;
use std::collections::HashMap;

/// The simulated code cache.
///
/// The paper's framework "assumes an unbounded code cache" (§2.3) and
/// that is the default here. As an extension, a cache may be *bounded*:
/// when an insertion would exceed the capacity, the whole cache is
/// flushed (Dynamo's preemptive-flush policy) and selection starts
/// over — the experiment §2.3 predicts its algorithms help with,
/// "because our algorithms reduce code duplication and produce fewer
/// cached regions ... and \[regenerates\] fewer evicted regions".
#[derive(Clone, Debug)]
pub struct CodeCache {
    regions: Vec<Region>,
    entries: HashMap<Addr, RegionId>,
    capacity: Option<u64>,
    stub_bytes: u64,
    flushes: u64,
    next_offset: u64,
}

impl Default for CodeCache {
    fn default() -> Self {
        CodeCache {
            regions: Vec::new(),
            entries: HashMap::new(),
            capacity: None,
            stub_bytes: 10, // the paper's layout estimate (§4.3.4)
            flushes: 0,
            next_offset: 0,
        }
    }
}

impl CodeCache {
    /// Creates an empty, unbounded cache.
    pub fn new() -> Self {
        CodeCache::default()
    }

    /// Creates an empty cache bounded at `capacity` estimated bytes
    /// (instruction bytes plus `stub_bytes` per exit stub).
    pub fn bounded(capacity: u64, stub_bytes: u64) -> Self {
        CodeCache {
            capacity: Some(capacity),
            stub_bytes,
            ..CodeCache::default()
        }
    }

    /// The configured capacity, if bounded.
    pub fn capacity(&self) -> Option<u64> {
        self.capacity
    }

    /// Number of full flushes performed so far.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Whether inserting `region` would exceed a bounded capacity.
    pub fn would_overflow(&self, region: &Region) -> bool {
        match self.capacity {
            Some(cap) => {
                self.size_estimate(self.stub_bytes) + region.size_estimate(self.stub_bytes)
                    > cap
            }
            None => false,
        }
    }

    /// Empties the cache (the bounded-cache flush policy). Region ids
    /// restart from zero.
    pub fn flush(&mut self) {
        self.regions.clear();
        self.entries.clear();
        self.flushes += 1;
        self.next_offset = 0;
    }

    /// Looks up the region entered at `addr`, if any.
    pub fn lookup(&self, addr: Addr) -> Option<RegionId> {
        self.entries.get(&addr).copied()
    }

    /// Whether some region is entered at `addr`.
    pub fn contains(&self, addr: Addr) -> bool {
        self.entries.contains_key(&addr)
    }

    /// Inserts a region, assigning its id (= selection order).
    ///
    /// # Panics
    ///
    /// Panics if a region with the same entry address already exists:
    /// selectors only select targets that miss the cache.
    pub fn insert(&mut self, mut region: Region) -> RegionId {
        let id = RegionId(self.regions.len() as u32);
        region.set_id(id);
        region.set_cache_offset(self.next_offset);
        self.next_offset += region.size_estimate(self.stub_bytes);
        let prev = self.entries.insert(region.entry(), id);
        assert!(prev.is_none(), "duplicate region entry {}", region.entry());
        self.regions.push(region);
        id
    }

    /// The region with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this cache.
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.index()]
    }

    /// All regions in selection order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Number of regions selected.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Total instructions copied into the cache (the paper's *code
    /// expansion* metric, §2.3).
    pub fn insts_copied(&self) -> u64 {
        self.regions.iter().map(Region::inst_count).sum()
    }

    /// Total exit stubs across all regions (Figure 19's metric).
    pub fn stub_count(&self) -> u64 {
        self.regions.iter().map(|r| r.stub_count() as u64).sum()
    }

    /// Estimated total cache size in bytes: instruction bytes plus
    /// `stub_bytes` per stub (paper §4.3.4).
    pub fn size_estimate(&self, stub_bytes: u64) -> u64 {
        self.regions.iter().map(|r| r.size_estimate(stub_bytes)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_program::ProgramBuilder;

    fn program() -> rsel_program::Program {
        let mut b = ProgramBuilder::new();
        let f = b.function("f", 0x100);
        let a = b.block(f);
        let c = b.block(f);
        let d = b.block_with(f, 0);
        b.cond_branch(a, a);
        b.cond_branch(c, a);
        b.ret(d);
        b.build().unwrap()
    }

    #[test]
    fn insert_and_lookup() {
        let p = program();
        let mut cache = CodeCache::new();
        assert!(cache.is_empty());
        let a = p.blocks()[0].start();
        let id = cache.insert(Region::trace(&p, &[a]));
        assert_eq!(cache.lookup(a), Some(id));
        assert!(cache.contains(a));
        assert!(!cache.contains(p.blocks()[1].start()));
        assert_eq!(cache.region(id).entry(), a);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn ids_follow_selection_order() {
        let p = program();
        let mut cache = CodeCache::new();
        let id0 = cache.insert(Region::trace(&p, &[p.blocks()[0].start()]));
        let id1 = cache.insert(Region::trace(&p, &[p.blocks()[1].start()]));
        assert!(id0 < id1);
        assert_eq!(cache.regions()[0].id(), id0);
        assert_eq!(cache.regions()[1].id(), id1);
    }

    #[test]
    #[should_panic(expected = "duplicate region entry")]
    fn duplicate_entry_rejected() {
        let p = program();
        let mut cache = CodeCache::new();
        let a = p.blocks()[0].start();
        cache.insert(Region::trace(&p, &[a]));
        cache.insert(Region::trace(&p, &[a]));
    }

    #[test]
    fn aggregates_sum_regions() {
        let p = program();
        let mut cache = CodeCache::new();
        cache.insert(Region::trace(&p, &[p.blocks()[0].start()]));
        cache.insert(Region::trace(&p, &[p.blocks()[1].start(), p.blocks()[0].start()]));
        assert_eq!(
            cache.insts_copied(),
            cache.regions().iter().map(|r| r.inst_count()).sum::<u64>()
        );
        assert!(cache.stub_count() > 0);
        assert_eq!(
            cache.size_estimate(10),
            cache.regions().iter().map(|r| r.size_estimate(10)).sum::<u64>()
        );
    }
}
