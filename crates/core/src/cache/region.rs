//! Regions: the unit of code caching and optimization.
//!
//! A region is a single-entry collection of copied basic blocks. A
//! *trace* region is an interprocedural superblock: blocks laid out
//! consecutively along one path, with an exit stub at every side exit
//! (paper §2.1). A *combined* region may contain multiple paths —
//! splits, joins and internal back edges — produced by the
//! trace-combination algorithm (paper §4.2).
//!
//! Control enters a region only at its entry address. A transfer from a
//! block inside the region stays inside when it follows an internal edge
//! or returns to the entry (completing a cycle); any other transfer
//! leaves through an exit stub, which either links directly to another
//! cached region or falls back to the interpreter.

use crate::error::SimError;
use rsel_program::{Addr, InstKind, Program};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Identifier of a region within a [`CodeCache`](crate::CodeCache);
/// doubles as the selection order (lower = selected earlier).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub(crate) u32);

impl RegionId {
    /// The raw index of this region in the cache.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// Whether a region is a single-path trace or a combined multi-path
/// region.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// An interprocedural superblock (NET or LEI trace).
    Trace,
    /// A multi-path region built by trace combination.
    Combined,
}

/// A basic block copied into a region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegionBlock {
    start: Addr,
    insts: u32,
    bytes: u64,
    term: InstKind,
    fallthrough: Addr,
}

impl RegionBlock {
    fn try_from_program(program: &Program, start: Addr) -> Result<Self, SimError> {
        let b = program
            .block_at(start)
            .ok_or(SimError::UnknownBlock(start))?;
        Ok(RegionBlock {
            start,
            insts: b.len() as u32,
            bytes: b.byte_size(),
            term: b.terminator_kind(),
            fallthrough: b.fallthrough_addr(),
        })
    }

    /// The block's original start address.
    pub fn start(&self) -> Addr {
        self.start
    }

    /// Number of instructions copied.
    pub fn inst_count(&self) -> u32 {
        self.insts
    }

    /// Bytes of instructions copied.
    pub fn byte_size(&self) -> u64 {
        self.bytes
    }

    /// The terminator kind of the block.
    pub fn terminator(&self) -> InstKind {
        self.term
    }

    /// The statically known continuations of this block: where control
    /// can go next, excluding dynamically-targeted transfers.
    pub fn static_continuations(&self) -> Vec<Addr> {
        match self.term {
            InstKind::Straight => vec![self.fallthrough],
            InstKind::CondBranch { target } => vec![target, self.fallthrough],
            InstKind::Jump { target } | InstKind::Call { target } => vec![target],
            InstKind::IndirectJump | InstKind::IndirectCall | InstKind::Ret => vec![],
        }
    }

    /// Whether the terminator's target is dynamic.
    pub fn has_indirect_terminator(&self) -> bool {
        self.term.is_indirect()
    }
}

/// An exit stub: the landing pad for one way control can leave a region.
///
/// Exit stubs cost code-cache space (charged at
/// [`SimConfig::stub_bytes`](crate::SimConfig::stub_bytes) each) and are
/// one of the paper's key cost metrics (Figure 19).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ExitStub {
    /// Start address of the region block the exit leaves from.
    pub from: Addr,
    /// The exit's target address; `None` for dynamically-targeted
    /// (indirect) exits.
    pub target: Option<Addr>,
}

/// How a transfer out of a region block is classified.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferClass {
    /// Control returns to the region entry, completing a cycle.
    Cycle,
    /// Control follows an internal edge to another block of the region.
    Internal,
    /// Control leaves the region (through an exit stub).
    Exit,
}

/// A single-entry cached region (trace or combined).
#[derive(Clone, Debug)]
pub struct Region {
    id: RegionId,
    kind: RegionKind,
    entry: Addr,
    blocks: Vec<RegionBlock>,
    index: HashMap<Addr, usize>,
    edges: HashMap<Addr, Vec<Addr>>,
    /// Slot-indexed mirror of `edges` in CSR form: block slot `s`'s
    /// internal successors are `succ[succ_off[s]..succ_off[s + 1]]`,
    /// each `(start address, successor slot)`. The simulator's hot
    /// loop classifies transfers against this table — a short linear
    /// scan over one contiguous array (regions rarely have more than
    /// two successors per block) instead of a hash lookup, with no
    /// per-slot heap indirection.
    succ_off: Vec<u32>,
    succ: Vec<(Addr, u32)>,
    stubs: Vec<ExitStub>,
    cache_offset: u64,
}

impl Region {
    /// Builds a trace region from the ordered path of block start
    /// addresses.
    ///
    /// Internal edges connect consecutive blocks; in addition, any block
    /// whose static continuation is the entry gets a loop-back edge (the
    /// "branch to the top of the trace" that makes the trace span a
    /// cycle, §3.2.1).
    ///
    /// # Panics
    ///
    /// Panics if `path` is empty, contains duplicates, or names
    /// addresses that do not start program blocks. Use
    /// [`Region::try_trace`] for a fallible variant.
    pub fn trace(program: &Program, path: &[Addr]) -> Self {
        Region::try_trace(program, path).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Region::trace`].
    pub fn try_trace(program: &Program, path: &[Addr]) -> Result<Self, SimError> {
        if path.is_empty() {
            return Err(SimError::EmptyRegion);
        }
        let mut blocks = Vec::with_capacity(path.len());
        for &a in path {
            blocks.push(RegionBlock::try_from_program(program, a)?);
        }
        let entry = path[0];
        let mut index = HashMap::with_capacity(blocks.len());
        for (i, b) in blocks.iter().enumerate() {
            if index.insert(b.start(), i).is_some() {
                return Err(SimError::DuplicateBlock(b.start()));
            }
        }
        let mut edges: HashMap<Addr, Vec<Addr>> = HashMap::new();
        for w in blocks.windows(2) {
            edges.entry(w[0].start()).or_default().push(w[1].start());
        }
        // Loop-back edges to the entry.
        for b in &blocks {
            if b.static_continuations().contains(&entry) {
                let e = edges.entry(b.start()).or_default();
                if !e.contains(&entry) {
                    e.push(entry);
                }
            }
        }
        let mut r = Region {
            id: RegionId(u32::MAX),
            kind: RegionKind::Trace,
            entry,
            blocks,
            index,
            edges,
            succ_off: Vec::new(),
            succ: Vec::new(),
            stubs: Vec::new(),
            cache_offset: 0,
        };
        r.derive_stubs();
        r.build_succ_slots();
        Ok(r)
    }

    /// Builds a combined multi-path region.
    ///
    /// `blocks` is the set of kept block addresses (entry first) and
    /// `observed_edges` the edges of the observed-trace CFG among them.
    /// Exits that statically target a kept block are promoted to
    /// internal edges, as in line 16 of the paper's Figure 13.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty, contains duplicates, its first
    /// element is not the entry of every path, or edges reference
    /// unknown blocks. Use [`Region::try_combined`] for a fallible
    /// variant.
    pub fn combined(program: &Program, blocks: &[Addr], observed_edges: &[(Addr, Addr)]) -> Self {
        Region::try_combined(program, blocks, observed_edges).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Region::combined`].
    pub fn try_combined(
        program: &Program,
        blocks: &[Addr],
        observed_edges: &[(Addr, Addr)],
    ) -> Result<Self, SimError> {
        if blocks.is_empty() {
            return Err(SimError::EmptyRegion);
        }
        let entry = blocks[0];
        let mut rblocks = Vec::with_capacity(blocks.len());
        for &a in blocks {
            rblocks.push(RegionBlock::try_from_program(program, a)?);
        }
        let mut index = HashMap::with_capacity(rblocks.len());
        for (i, b) in rblocks.iter().enumerate() {
            if index.insert(b.start(), i).is_some() {
                return Err(SimError::DuplicateBlock(b.start()));
            }
        }
        let mut edges: HashMap<Addr, Vec<Addr>> = HashMap::new();
        let mut seen: HashSet<(Addr, Addr)> = HashSet::new();
        for &(from, to) in observed_edges {
            if !index.contains_key(&from) {
                return Err(SimError::EdgeFromUnknownBlock(from));
            }
            if index.contains_key(&to) && seen.insert((from, to)) {
                edges.entry(from).or_default().push(to);
            }
        }
        // Promote static exits that target kept blocks to edges.
        for b in &rblocks {
            for c in b.static_continuations() {
                if index.contains_key(&c) && seen.insert((b.start(), c)) {
                    edges.entry(b.start()).or_default().push(c);
                }
            }
        }
        let mut r = Region {
            id: RegionId(u32::MAX),
            kind: RegionKind::Combined,
            entry,
            blocks: rblocks,
            index,
            edges,
            succ_off: Vec::new(),
            succ: Vec::new(),
            stubs: Vec::new(),
            cache_offset: 0,
        };
        r.derive_stubs();
        r.build_succ_slots();
        Ok(r)
    }

    /// Enumerates exit stubs: every continuation of every block that is
    /// not an internal edge, plus one stub per dynamically-targeted
    /// terminator (whose observed target may still be internal at run
    /// time).
    fn derive_stubs(&mut self) {
        let mut stubs = Vec::new();
        for b in &self.blocks {
            let from = b.start();
            let internal: &[Addr] = self.edges.get(&from).map(Vec::as_slice).unwrap_or(&[]);
            for c in b.static_continuations() {
                if !internal.contains(&c) {
                    stubs.push(ExitStub {
                        from,
                        target: Some(c),
                    });
                }
            }
            if b.has_indirect_terminator() {
                stubs.push(ExitStub { from, target: None });
            }
        }
        self.stubs = stubs;
    }

    /// Builds the slot-indexed successor table from `edges`. Every
    /// edge target is a member block (both constructors only create
    /// edges between kept blocks), so the slot lookup cannot fail.
    fn build_succ_slots(&mut self) {
        self.succ_off = Vec::with_capacity(self.blocks.len() + 1);
        self.succ = Vec::new();
        self.succ_off.push(0);
        for b in &self.blocks {
            if let Some(succs) = self.edges.get(&b.start()) {
                self.succ
                    .extend(succs.iter().map(|&t| (t, self.index[&t] as u32)));
            }
            self.succ_off.push(self.succ.len() as u32);
        }
    }

    pub(crate) fn set_id(&mut self, id: RegionId) {
        self.id = id;
    }

    pub(crate) fn set_cache_offset(&mut self, offset: u64) {
        self.cache_offset = offset;
    }

    /// Byte offset at which this region was placed in the code cache
    /// (regions are laid out in selection order — the layout that makes
    /// trace *separation* costly, §1: a related trace "is inserted far
    /// from the original trace, potentially on a separate virtual
    /// memory page").
    pub fn cache_offset(&self) -> u64 {
        self.cache_offset
    }

    /// This region's identifier (also its selection order).
    pub fn id(&self) -> RegionId {
        self.id
    }

    /// Trace or combined.
    pub fn kind(&self) -> RegionKind {
        self.kind
    }

    /// The single entry address.
    pub fn entry(&self) -> Addr {
        self.entry
    }

    /// The copied blocks.
    pub fn blocks(&self) -> &[RegionBlock] {
        &self.blocks
    }

    /// Whether the region contains a copy of the program block starting
    /// at `addr`.
    pub fn contains_block(&self, addr: Addr) -> bool {
        self.index.contains_key(&addr)
    }

    /// Whether an internal edge `from → to` exists.
    pub fn has_edge(&self, from: Addr, to: Addr) -> bool {
        self.edges.get(&from).is_some_and(|v| v.contains(&to))
    }

    /// The internal successors of the block starting at `from`.
    pub fn successors(&self, from: Addr) -> &[Addr] {
        self.edges.get(&from).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The exit stubs.
    pub fn stubs(&self) -> &[ExitStub] {
        &self.stubs
    }

    /// Number of exit stubs.
    pub fn stub_count(&self) -> usize {
        self.stubs.len()
    }

    /// Total instructions copied into this region (the paper's code
    /// expansion contribution).
    pub fn inst_count(&self) -> u64 {
        self.blocks.iter().map(|b| u64::from(b.inst_count())).sum()
    }

    /// Total instruction bytes copied.
    pub fn byte_size(&self) -> u64 {
        self.blocks.iter().map(|b| b.byte_size()).sum()
    }

    /// Estimated cache footprint: instruction bytes plus `stub_bytes`
    /// per exit stub (paper §4.3.4).
    pub fn size_estimate(&self, stub_bytes: u64) -> u64 {
        self.byte_size() + stub_bytes * self.stubs.len() as u64
    }

    /// Whether any copied block's original bytes intersect the address
    /// range `[lo, hi)` — the test a self-modifying-code write uses to
    /// decide which cached regions its dirtied range invalidates.
    pub fn overlaps_range(&self, lo: Addr, hi: Addr) -> bool {
        if lo >= hi {
            return false;
        }
        self.blocks.iter().any(|b| {
            let start = b.start().raw();
            let end = start.saturating_add(b.byte_size().max(1));
            start < hi.raw() && end > lo.raw()
        })
    }

    /// The sorted, deduplicated page numbers the region's copied
    /// blocks span, at `page_bytes` bytes per page — the keys under
    /// which the code cache's page-granular invalidation index files
    /// this region. A block occupies every page its byte range
    /// `[start, start + byte_size)` intersects (zero-byte blocks are
    /// charged one byte, matching [`Region::overlaps_range`]).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `page_bytes` is not a power of two.
    pub fn pages_spanned(&self, page_bytes: u64) -> Vec<u64> {
        debug_assert!(page_bytes.is_power_of_two(), "page size must be 2^k");
        let mut pages: Vec<u64> = Vec::with_capacity(self.blocks.len());
        for b in &self.blocks {
            let start = b.start().raw();
            let last = start.saturating_add(b.byte_size().max(1) - 1);
            for p in (start / page_bytes)..=(last / page_bytes) {
                pages.push(p);
            }
        }
        pages.sort_unstable();
        pages.dedup();
        pages
    }

    /// Whether the region contains a branch back to its entry — the
    /// static "spans a cycle" property of §3.2.1.
    pub fn spans_cycle(&self) -> bool {
        self.edges.values().any(|succs| succs.contains(&self.entry))
    }

    /// Classifies a transfer out of the block starting at `from`
    /// towards `target`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `from` is not a block of this region.
    pub fn classify(&self, from: Addr, target: Addr) -> TransferClass {
        debug_assert!(
            self.contains_block(from),
            "transfer from foreign block {from}"
        );
        if target == self.entry {
            TransferClass::Cycle
        } else if self.has_edge(from, target) {
            TransferClass::Internal
        } else {
            TransferClass::Exit
        }
    }

    /// The slot (index into [`Region::blocks`]) of the block starting
    /// at `addr`, if it is a member. The entry block is always slot 0.
    pub fn block_slot(&self, addr: Addr) -> Option<usize> {
        self.index.get(&addr).copied()
    }

    /// Hash-free variant of [`Region::classify`] for the simulator's
    /// hot loop: classifies a transfer out of the block at `from_slot`
    /// towards `target`, returning the class together with the target's
    /// slot (0 for a cycle back to the entry; unspecified for an exit).
    /// Equivalent to `classify(blocks[from_slot].start(), target)` —
    /// the classification order (cycle, then internal edge, then exit)
    /// is identical.
    ///
    /// # Panics
    ///
    /// Panics if `from_slot` is out of range.
    #[inline]
    pub fn classify_slot(&self, from_slot: u32, target: Addr) -> (TransferClass, u32) {
        if target == self.entry {
            return (TransferClass::Cycle, 0);
        }
        let lo = self.succ_off[from_slot as usize] as usize;
        let hi = self.succ_off[from_slot as usize + 1] as usize;
        for &(addr, slot) in &self.succ[lo..hi] {
            if addr == target {
                return (TransferClass::Internal, slot);
            }
        }
        (TransferClass::Exit, 0)
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({:?}) entry {} blocks {} stubs {}",
            self.id,
            self.kind,
            self.entry,
            self.blocks.len(),
            self.stubs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_program::ProgramBuilder;

    /// A(cond -> C) ; B ; C(cond -> A) ; D(ret)
    fn program() -> Program {
        let mut b = ProgramBuilder::new();
        let f = b.function("f", 0x100);
        let a = b.block(f);
        let bb = b.block(f);
        let c = b.block(f);
        let d = b.block_with(f, 0);
        let _ = bb;
        b.cond_branch(a, c);
        b.cond_branch(c, a);
        b.ret(d);
        b.build().unwrap()
    }

    fn starts(p: &Program) -> Vec<Addr> {
        p.blocks().iter().map(|b| b.start()).collect()
    }

    #[test]
    fn trace_linear_edges_and_stubs() {
        let p = program();
        let s = starts(&p);
        // Trace A -> C (taken direction of A's branch).
        let t = Region::trace(&p, &[s[0], s[2]]);
        assert!(t.has_edge(s[0], s[2]));
        assert!(t.contains_block(s[0]) && t.contains_block(s[2]));
        assert!(!t.contains_block(s[1]));
        // Stubs: A's fall-through to B; C's taken (to A = entry, which
        // is a loop-back edge instead) and C's fall-through to D.
        assert!(t.spans_cycle(), "C branches back to A, the entry");
        let stub_targets: Vec<Option<Addr>> = t.stubs().iter().map(|e| e.target).collect();
        assert!(stub_targets.contains(&Some(s[1])), "A's fall-through exits");
        assert!(stub_targets.contains(&Some(s[3])), "C's fall-through exits");
        assert_eq!(t.stub_count(), 2);
    }

    #[test]
    fn trace_without_loopback_does_not_span() {
        let p = program();
        let s = starts(&p);
        let t = Region::trace(&p, &[s[1], s[2]]); // B -> C, C's branch goes to A (outside)
        assert!(!t.spans_cycle());
        // C's stubs: taken to A, fall-through to D.
        assert_eq!(t.stub_count(), 2);
    }

    #[test]
    fn classify_cycle_internal_exit() {
        let p = program();
        let s = starts(&p);
        let t = Region::trace(&p, &[s[0], s[2]]);
        assert_eq!(t.classify(s[2], s[0]), TransferClass::Cycle);
        assert_eq!(t.classify(s[0], s[2]), TransferClass::Internal);
        assert_eq!(t.classify(s[0], s[1]), TransferClass::Exit);
        assert_eq!(t.classify(s[2], s[3]), TransferClass::Exit);
    }

    #[test]
    fn classify_slot_matches_classify() {
        let p = program();
        let s = starts(&p);
        for r in [
            Region::trace(&p, &[s[0], s[2]]),
            Region::combined(&p, &[s[0], s[1], s[2]], &[(s[0], s[2]), (s[0], s[1])]),
        ] {
            assert_eq!(r.block_slot(r.entry()), Some(0), "entry is slot 0");
            for (slot, b) in r.blocks().iter().enumerate() {
                for &target in &s {
                    let (class, tslot) = r.classify_slot(slot as u32, target);
                    assert_eq!(class, r.classify(b.start(), target), "{slot} -> {target}");
                    match class {
                        TransferClass::Cycle => assert_eq!(tslot, 0),
                        TransferClass::Internal => {
                            assert_eq!(r.blocks()[tslot as usize].start(), target)
                        }
                        TransferClass::Exit => {}
                    }
                }
            }
        }
    }

    #[test]
    fn single_block_self_loop_spans_cycle() {
        let mut b = ProgramBuilder::new();
        let f = b.function("f", 0x100);
        let spin = b.block(f);
        let done = b.block_with(f, 0);
        b.cond_branch(spin, spin);
        b.ret(done);
        let p = b.build().unwrap();
        let t = Region::trace(&p, &[p.block(spin).start()]);
        assert!(t.spans_cycle());
        assert_eq!(t.stub_count(), 1, "only the fall-through exits");
    }

    #[test]
    fn combined_region_promotes_exits_to_edges() {
        let p = program();
        let s = starts(&p);
        // Region with A, B, C: A->C (taken) and A->B (observed
        // fall-through), B->C falls through, C->A backward.
        let r = Region::combined(&p, &[s[0], s[1], s[2]], &[(s[0], s[2]), (s[0], s[1])]);
        assert!(r.has_edge(s[0], s[1]));
        assert!(r.has_edge(s[0], s[2]));
        // Promotion: B falls through to C even though unobserved.
        assert!(r.has_edge(s[1], s[2]));
        // C's backward branch to A (entry) promoted too.
        assert!(r.has_edge(s[2], s[0]));
        assert!(r.spans_cycle());
        // Only exit: C's fall-through to D.
        assert_eq!(r.stub_count(), 1);
        assert_eq!(r.stubs()[0].target, Some(s[3]));
        assert_eq!(r.kind(), RegionKind::Combined);
    }

    #[test]
    fn indirect_terminator_gets_unknown_stub() {
        let mut b = ProgramBuilder::new();
        let f = b.function("f", 0x100);
        let a = b.block(f);
        let t = b.block(f);
        let d = b.block_with(f, 0);
        b.indirect_jump(a);
        b.jump(t, d);
        b.ret(d);
        let p = b.build().unwrap();
        let r = Region::trace(&p, &[p.block(a).start(), p.block(t).start()]);
        // a -> t is the trace edge; the indirect terminator still needs
        // a stub for mispredicted targets.
        let unknown = r.stubs().iter().filter(|s| s.target.is_none()).count();
        assert_eq!(unknown, 1);
    }

    #[test]
    fn sizes_accumulate() {
        let p = program();
        let s = starts(&p);
        let t = Region::trace(&p, &[s[0], s[2]]);
        assert_eq!(t.inst_count(), 4); // 2 blocks x (straight + branch)
        assert!(t.byte_size() > 0);
        assert_eq!(t.size_estimate(10), t.byte_size() + 20);
    }

    #[test]
    fn overlap_tracks_block_byte_ranges() {
        let p = program();
        let s = starts(&p);
        let t = Region::trace(&p, &[s[0], s[2]]);
        let a_end = s[0].offset(p.block_at(s[0]).unwrap().byte_size());
        // A range inside block A overlaps; the gap block B does not.
        assert!(t.overlaps_range(s[0], s[0].offset(1)));
        assert!(t.overlaps_range(s[0].offset(1), a_end));
        assert!(!t.overlaps_range(s[1], s[1].offset(1)));
        // Empty and inverted ranges never overlap.
        assert!(!t.overlaps_range(s[0], s[0]));
        assert!(!t.overlaps_range(a_end, s[0]));
        // A range spanning the whole program overlaps everything.
        assert!(t.overlaps_range(Addr::new(0), Addr::new(u64::MAX)));
    }

    #[test]
    fn pages_spanned_covers_block_bytes() {
        let p = program();
        let s = starts(&p);
        let t = Region::trace(&p, &[s[0], s[2]]);
        // With a page as large as the whole layout, one page suffices.
        assert_eq!(t.pages_spanned(1 << 20), vec![0]);
        // At byte granularity every copied byte gets its own "page";
        // zero-byte blocks are charged one byte.
        let bytes: u64 = t.blocks().iter().map(|b| b.byte_size().max(1)).sum();
        assert_eq!(t.pages_spanned(1).len() as u64, bytes);
        // Pages come out sorted and deduplicated.
        let pages = t.pages_spanned(8);
        let mut sorted = pages.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(pages, sorted);
    }

    #[test]
    fn try_constructors_return_errors_not_panics() {
        use crate::error::SimError;
        let p = program();
        let s = starts(&p);
        assert!(matches!(
            Region::try_trace(&p, &[]),
            Err(SimError::EmptyRegion)
        ));
        assert!(matches!(
            Region::try_trace(&p, &[s[0], s[0]]),
            Err(SimError::DuplicateBlock(a)) if a == s[0]
        ));
        assert!(matches!(
            Region::try_trace(&p, &[Addr::new(0xdead)]),
            Err(SimError::UnknownBlock(_))
        ));
        assert!(matches!(
            Region::try_combined(&p, &[s[0]], &[(Addr::new(0xdead), s[0])]),
            Err(SimError::EdgeFromUnknownBlock(_))
        ));
        assert!(Region::try_trace(&p, &[s[0], s[2]]).is_ok());
    }

    #[test]
    #[should_panic(expected = "duplicate block")]
    fn duplicate_blocks_rejected() {
        let p = program();
        let s = starts(&p);
        let _ = Region::trace(&p, &[s[0], s[0]]);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn empty_trace_rejected() {
        let p = program();
        let _ = Region::trace(&p, &[]);
    }
}
