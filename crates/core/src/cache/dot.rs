//! Graphviz (DOT) rendering of cached regions.
//!
//! Visualizes what a selector actually built: internal edges (including
//! loop-backs to the entry), and exit stubs as small gray nodes — the
//! picture drawn by the paper's Figures 2–4.

use super::code_cache::CodeCache;
use super::region::Region;
use rsel_program::Addr;
use std::fmt::Write as _;

/// Renders one region as a DOT digraph.
pub fn region_to_dot(region: &Region) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", region.id());
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    render_region(&mut out, region, "");
    let _ = writeln!(out, "}}");
    out
}

/// Renders every region in the cache, one cluster per region.
pub fn cache_to_dot(cache: &CodeCache) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph cache {{");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for r in cache.regions() {
        let _ = writeln!(out, "  subgraph cluster_{} {{", r.id().index());
        let _ = writeln!(
            out,
            "    label=\"{} ({:?}, {} insts)\";",
            r.id(),
            r.kind(),
            r.inst_count()
        );
        render_region(&mut out, r, &format!("r{}_", r.id().index()));
        let _ = writeln!(out, "  }}");
    }
    let _ = writeln!(out, "}}");
    out
}

fn render_region(out: &mut String, region: &Region, prefix: &str) {
    let node = |a: Addr| format!("{prefix}b{:x}", a.raw());
    for b in region.blocks() {
        let style = if b.start() == region.entry() {
            ", penwidth=2" // the single entry
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  {} [label=\"{}\\n{} insts\"{}];",
            node(b.start()),
            b.start(),
            b.inst_count(),
            style
        );
        for &succ in region.successors(b.start()) {
            let loop_back = if succ == region.entry() {
                " [color=red]"
            } else {
                ""
            };
            let _ = writeln!(out, "  {} -> {}{};", node(b.start()), node(succ), loop_back);
        }
    }
    for (i, stub) in region.stubs().iter().enumerate() {
        let label = match stub.target {
            Some(t) => format!("to {t}"),
            None => "to *".to_string(),
        };
        let sn = format!("{prefix}stub{i}");
        let _ = writeln!(out, "  {sn} [label=\"{label}\", shape=note, color=gray];");
        let _ = writeln!(
            out,
            "  {} -> {sn} [style=dashed, color=gray];",
            node(stub.from)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_program::ProgramBuilder;

    fn cycle_region() -> (rsel_program::Program, Region) {
        let mut b = ProgramBuilder::new();
        let f = b.function("f", 0x100);
        let a = b.block(f);
        let c = b.block(f);
        let d = b.block_with(f, 0);
        b.cond_branch(a, c);
        b.cond_branch(c, a);
        b.ret(d);
        let p = b.build().unwrap();
        let r = Region::trace(&p, &[p.block(a).start(), p.block(c).start()]);
        (p, r)
    }

    #[test]
    fn region_dot_marks_entry_and_loopback() {
        let (_, r) = cycle_region();
        let dot = region_to_dot(&r);
        assert!(dot.contains("penwidth=2"), "entry is highlighted");
        assert!(dot.contains("[color=red]"), "loop-back edge is red");
        assert!(dot.contains("shape=note"), "stubs are notes");
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn cache_dot_clusters_regions() {
        let (p, r) = cycle_region();
        let mut cache = CodeCache::new();
        cache.insert(r);
        cache.insert(Region::trace(&p, &[p.blocks()[1].start()]));
        let dot = cache_to_dot(&cache);
        assert!(dot.contains("cluster_0"));
        assert!(dot.contains("cluster_1"));
        assert!(dot.contains("R0 (Trace"));
    }
}
