//! Typed errors for the cache and simulator hot paths.
//!
//! Policy (see `DESIGN.md`, "Error handling"): operations that can fail
//! because of *data* — a duplicate entry raced in by fault recovery, a
//! region id that was invalidated, an address that no longer starts a
//! block — return [`SimError`] through `try_*` constructors and are
//! handled gracefully by the simulator. Panics are reserved for true
//! internal invariants (a caller violating a documented precondition of
//! an infallible convenience wrapper).

use crate::cache::RegionId;
use rsel_program::Addr;
use std::fmt;

/// An error surfaced by the cache or simulator instead of a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A region with this entry address is already cached.
    DuplicateRegionEntry(Addr),
    /// The region id does not name a live region (never existed, was
    /// invalidated, or was flushed).
    UnknownRegion(RegionId),
    /// A region needs at least one block.
    EmptyRegion,
    /// The same block appears twice in one region.
    DuplicateBlock(Addr),
    /// The address does not start a block of the program.
    UnknownBlock(Addr),
    /// An observed edge references a block outside the region.
    EdgeFromUnknownBlock(Addr),
    /// A configuration parameter is out of range.
    InvalidConfig(&'static str),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DuplicateRegionEntry(a) => {
                write!(f, "a region entered at {a} is already cached")
            }
            SimError::UnknownRegion(id) => write!(f, "{id} is not a live region"),
            SimError::EmptyRegion => write!(f, "a region needs at least one block"),
            SimError::DuplicateBlock(a) => write!(f, "duplicate block {a} in region"),
            SimError::UnknownBlock(a) => write!(f, "{a} does not start a program block"),
            SimError::EdgeFromUnknownBlock(a) => {
                write!(f, "edge from block {a} outside the region")
            }
            SimError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_specific() {
        let a = Addr::new(0x40);
        assert!(
            SimError::DuplicateRegionEntry(a)
                .to_string()
                .contains("0x40")
        );
        assert!(SimError::UnknownBlock(a).to_string().contains("0x40"));
        assert!(
            SimError::InvalidConfig("net_threshold must be positive")
                .to_string()
                .contains("net_threshold")
        );
        // The error type is usable through the std trait object.
        let e: Box<dyn std::error::Error> = Box::new(SimError::EmptyRegion);
        assert!(e.to_string().contains("at least one block"));
    }
}
