//! Region selection for dynamic optimization systems.
//!
//! This crate implements the contribution of the MICRO 2005 paper
//! *Improving Region Selection in Dynamic Optimization Systems*
//! (Hiniker, Hazelwood, Smith):
//!
//! - a simulated Dynamo-style dynamic optimization system: an
//!   interpreter that profiles taken branches and an unbounded
//!   [`cache::CodeCache`] holding single-entry regions with
//!   exit stubs and lazy inter-region linking (paper §2.1);
//! - the **NET** (Next-Executing Tail) baseline selector
//!   ([`select::NetSelector`]);
//! - the **LEI** (Last-Executed Iteration) cyclic-trace selector built
//!   on a branch-history buffer ([`select::LeiSelector`], paper
//!   Figures 5–6);
//! - **trace combination** applied to either base
//!   ([`select::CombinedNetSelector`], [`select::CombinedLeiSelector`],
//!   paper Figures 13–15);
//! - every metric of the paper's evaluation ([`metrics`]): hit rate,
//!   code expansion, exit stubs, region transitions, spanned/executed
//!   cycle ratios, 90% cover sets, profiling-counter peaks,
//!   exit-domination analysis, and observed-trace memory overhead.
//!
//! # Quick start
//!
//! ```
//! use rsel_program::patterns::ScenarioBuilder;
//! use rsel_core::{sim::Simulator, select::SelectorKind, config::SimConfig};
//!
//! // A loop that calls a function on its dominant path (paper Fig. 2).
//! let mut s = ScenarioBuilder::new(7);
//! let main = s.function("main", 0x4000);
//! let callee = s.function("callee", 0x1000); // lower address
//! let head = s.block(main, 2);
//! let latch = s.block(main, 1);
//! s.call(head, callee);
//! s.branch_trips(latch, head, 5000);
//! let done = s.block(main, 0);
//! s.ret(done);
//! let c0 = s.block(callee, 2);
//! s.ret(c0);
//! let (program, spec) = s.build().unwrap();
//!
//! let config = SimConfig::default();
//! let mut sim = Simulator::new(&program, SelectorKind::Lei.make(&program, &config), &config);
//! sim.run(rsel_program::Executor::new(&program, spec));
//! let report = sim.report();
//! assert!(report.hit_rate() > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod error;
pub mod metrics;
pub mod select;
pub mod sim;

pub use cache::{CodeCache, Region, RegionId, RegionKind};
pub use config::SimConfig;
pub use error::SimError;
pub use metrics::{ResilienceStats, RunReport};
pub use rsel_program::fxhash;
pub use select::{RegionSelector, SelectorKind};
pub use sim::faults::FaultConfig;
pub use sim::{ReplayScratch, Simulator};
