//! Fast deterministic hashing for simulator hot paths.
//!
//! Re-exports the vendored FxHash-style hasher from
//! [`rsel_program::fxhash`] so every layer of the system — executor,
//! selectors, cache, simulator — shares one hasher with no per-instance
//! random state. See the source module for the algorithm and the
//! determinism argument.

pub use rsel_program::fxhash::{
    FxBuildHasher, FxHashMap, FxHashSet, FxHasher, map_with_capacity, set_with_capacity,
};
