//! Exit-domination analysis (paper §4.1).

use crate::cache::{CodeCache, RegionId};
use crate::fxhash::FxHashSet;
use rsel_program::{Addr, Program};

/// Aggregate exit-domination statistics for one run.
///
/// Region `R` *exit-dominates* region `S` when (paper §4.1):
///
/// 1. `S` begins at an exit from `R`;
/// 2. the exit block is the only predecessor of `S`'s entrance block
///    that executes and is not contained in `S`;
/// 3. `R` was selected before `S`.
///
/// Instructions appearing in both an exit-dominated region and its
/// dominator are *exit-dominated duplication*.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DominationStats {
    /// Number of regions that are exit-dominated (Figure 12's
    /// numerator).
    pub dominated_regions: usize,
    /// Instructions that are exit-dominated duplication (Figure 11's
    /// numerator): for each dominated region, the instructions of its
    /// blocks that also appear in the dominating region.
    pub duplicated_insts: u64,
    /// For each dominated region, its dominator.
    pub pairs: Vec<(RegionId, RegionId)>,
}

impl DominationStats {
    /// Fraction of regions that are exit-dominated.
    pub fn dominated_fraction(&self, total_regions: usize) -> f64 {
        if total_regions == 0 {
            0.0
        } else {
            self.dominated_regions as f64 / total_regions as f64
        }
    }

    /// Fraction of selected instructions that are exit-dominated
    /// duplication.
    pub fn duplication_fraction(&self, total_selected_insts: u64) -> f64 {
        if total_selected_insts == 0 {
            0.0
        } else {
            self.duplicated_insts as f64 / total_selected_insts as f64
        }
    }
}

/// Runs the §4.1 analysis over a finished simulation.
///
/// `exec_preds` holds, for each block of `program` (dense, indexed by
/// block index), the set of block starts that executed an edge into it
/// (the *executed* predecessor relation — footnote 5 explains why
/// unexecuted static edges are ignored). `exit_edges` holds, for each
/// block, the set of `(region, exit block)` pairs observed leaving the
/// cache towards it. Both tables are dense by block index, as the
/// simulator maintains them.
pub fn analyze_domination(
    program: &Program,
    cache: &CodeCache,
    exec_preds: &[FxHashSet<Addr>],
    exit_edges: &[FxHashSet<(RegionId, Addr)>],
) -> DominationStats {
    let mut stats = DominationStats::default();
    for s in cache.regions() {
        let entry = s.entry();
        let Some(idx) = program.block_at(entry).map(|b| b.id().index()) else {
            continue;
        };
        let Some(candidates) = exit_edges.get(idx).filter(|c| !c.is_empty()) else {
            continue;
        };
        // Condition 2: executed predecessors of S's entry outside S.
        let outside: Vec<Addr> = exec_preds
            .get(idx)
            .into_iter()
            .flatten()
            .copied()
            .filter(|p| !s.contains_block(*p))
            .collect();
        let [only] = outside.as_slice() else { continue };
        // Conditions 1 and 3: some earlier *live* region exits from
        // that block to S's entry (fault invalidation can leave exit
        // observations whose region is gone; they cannot dominate).
        let dominator = candidates
            .iter()
            .filter(|(rid, fb)| *rid < s.id() && fb == only && cache.try_region(*rid).is_ok())
            .map(|(rid, _)| *rid)
            .min();
        let Some(rid) = dominator else { continue };
        stats.dominated_regions += 1;
        stats.pairs.push((rid, s.id()));
        let r = cache.region(rid);
        let dup: u64 = s
            .blocks()
            .iter()
            .filter(|b| r.contains_block(b.start()))
            .map(|b| u64::from(b.inst_count()))
            .sum();
        stats.duplicated_insts += dup;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Region;
    use rsel_program::{Program, ProgramBuilder};

    /// A(cond->C) ; B ; C ; D(ret): A's fall-through goes to B, B falls
    /// to C, C falls to D.
    fn program() -> Program {
        let mut b = ProgramBuilder::new();
        let f = b.function("f", 0x100);
        let a = b.block(f);
        let bb = b.block(f);
        let c = b.block(f);
        let d = b.block_with(f, 0);
        let _ = (bb, c);
        b.cond_branch(a, c);
        b.ret(d);
        b.build().unwrap()
    }

    fn starts(p: &Program) -> Vec<Addr> {
        p.blocks().iter().map(|b| b.start()).collect()
    }

    type PredTable = Vec<FxHashSet<Addr>>;
    type ExitTable = Vec<FxHashSet<(RegionId, Addr)>>;

    /// Empty dense tables sized for `p` (one slot per block).
    fn tables(p: &Program) -> (PredTable, ExitTable) {
        let n = p.blocks().len();
        (vec![FxHashSet::default(); n], vec![FxHashSet::default(); n])
    }

    #[test]
    fn detects_exit_domination_with_duplication() {
        let p = program();
        let s = starts(&p);
        let mut cache = CodeCache::new();
        // R = [A, C] selected first; S = [B, C] begins at R's
        // fall-through exit from A and shares block C.
        let r_id = cache.insert(Region::trace(&p, &[s[0], s[2]]));
        let s_id = cache.insert(Region::trace(&p, &[s[1], s[2]]));
        let (mut preds, mut exits) = tables(&p);
        preds[1].insert(s[0]); // only A reaches B
        exits[1].insert((r_id, s[0]));
        let stats = analyze_domination(&p, &cache, &preds, &exits);
        assert_eq!(stats.dominated_regions, 1);
        assert_eq!(stats.pairs, vec![(r_id, s_id)]);
        // Shared block C's instructions are duplication.
        let c_insts = u64::from(p.block_at(s[2]).unwrap().len() as u32);
        assert_eq!(stats.duplicated_insts, c_insts);
        assert!(stats.dominated_fraction(2) > 0.49);
    }

    #[test]
    fn second_executed_predecessor_defeats_domination() {
        let p = program();
        let s = starts(&p);
        let mut cache = CodeCache::new();
        let r_id = cache.insert(Region::trace(&p, &[s[0], s[2]]));
        cache.insert(Region::trace(&p, &[s[1], s[2]]));
        let (mut preds, mut exits) = tables(&p);
        // B is also entered from D (some other executed path).
        preds[1].extend([s[0], s[3]]);
        exits[1].insert((r_id, s[0]));
        let stats = analyze_domination(&p, &cache, &preds, &exits);
        assert_eq!(stats.dominated_regions, 0);
    }

    #[test]
    fn later_regions_cannot_dominate_earlier_ones() {
        let p = program();
        let s = starts(&p);
        let mut cache = CodeCache::new();
        // S selected FIRST, R second: condition 3 fails.
        cache.insert(Region::trace(&p, &[s[1], s[2]]));
        let r_id = cache.insert(Region::trace(&p, &[s[0], s[2]]));
        let (mut preds, mut exits) = tables(&p);
        preds[1].insert(s[0]);
        exits[1].insert((r_id, s[0]));
        let stats = analyze_domination(&p, &cache, &preds, &exits);
        assert_eq!(stats.dominated_regions, 0);
    }

    #[test]
    fn predecessor_inside_s_is_ignored() {
        let p = program();
        let s = starts(&p);
        let mut cache = CodeCache::new();
        // S = [B, C] with an internal cycle pred C -> B would not count.
        let r_id = cache.insert(Region::trace(&p, &[s[0], s[2]]));
        cache.insert(Region::trace(&p, &[s[1], s[2]]));
        let (mut preds, mut exits) = tables(&p);
        preds[1].extend([s[0], s[2]]); // C is inside S
        exits[1].insert((r_id, s[0]));
        let stats = analyze_domination(&p, &cache, &preds, &exits);
        assert_eq!(stats.dominated_regions, 1);
    }

    #[test]
    fn empty_inputs_mean_no_domination() {
        let p = program();
        let cache = CodeCache::new();
        let stats = analyze_domination(&p, &cache, &[], &[]);
        assert_eq!(stats, DominationStats::default());
        assert_eq!(stats.dominated_fraction(0), 0.0);
        assert_eq!(stats.duplication_fraction(0), 0.0);
    }
}
