//! The X% cover set metric (paper §2.3).

/// Computes the size of the X% cover set: the smallest set of regions
/// whose executed instructions comprise at least `frac` of the whole
/// program's executed instructions.
///
/// The paper adopts this "trace quality metric" from the Dynamo
/// implementers, who "found that the 90% cover sets were a perfect
/// predictor of performance: a smaller 90% cover set implied a smaller
/// execution time" (§2.3).
///
/// Returns `None` when even all regions together fall short of the
/// fraction (possible when much of execution stayed in the
/// interpreter).
///
/// # Panics
///
/// Panics if `frac` is not within `0.0..=1.0`.
pub fn cover_set_size(per_region_insts: &[u64], total_insts: u64, frac: f64) -> Option<usize> {
    assert!((0.0..=1.0).contains(&frac), "fraction out of range: {frac}");
    let goal = (total_insts as f64) * frac;
    let mut sorted: Vec<u64> = per_region_insts.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut sum = 0u64;
    for (i, insts) in sorted.iter().enumerate() {
        sum += insts;
        if sum as f64 >= goal {
            return Some(i + 1);
        }
    }
    if goal == 0.0 {
        return Some(0);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_largest_regions_first() {
        // 100 total; regions execute 50, 30, 15, 5.
        let per = vec![5, 50, 15, 30];
        assert_eq!(cover_set_size(&per, 100, 0.9), Some(3)); // 50+30+15 = 95
        assert_eq!(cover_set_size(&per, 100, 0.8), Some(2)); // 50+30 = 80
        assert_eq!(cover_set_size(&per, 100, 0.5), Some(1));
    }

    #[test]
    fn unattainable_fraction_is_none() {
        assert_eq!(cover_set_size(&[10, 10], 100, 0.9), None);
    }

    #[test]
    fn zero_goal_is_empty_set() {
        assert_eq!(cover_set_size(&[], 100, 0.0), Some(0));
        assert_eq!(cover_set_size(&[], 0, 0.9), Some(0));
    }

    #[test]
    fn exact_boundary_counts() {
        assert_eq!(cover_set_size(&[90, 10], 100, 0.9), Some(1));
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_fraction_panics() {
        let _ = cover_set_size(&[1], 1, 1.5);
    }
}
