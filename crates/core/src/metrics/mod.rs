//! The evaluation metrics of the paper (§2.3 and §4.1).

pub mod cover;
pub mod domination;
pub mod optimization;
pub mod report;

pub use cover::cover_set_size;
pub use domination::{DominationStats, analyze_domination};
pub use optimization::{OptimizationOpportunities, analyze_optimization, analyze_region};
pub use report::{RegionReport, ResilienceStats, RunReport};
