//! Optimization-opportunity analysis of selected regions (paper §4.4).
//!
//! The paper argues that multi-path regions enable optimizations that
//! traces cannot express:
//!
//! - "When a region contains both sides of an if-else statement,
//!   redundancy elimination does not need to produce compensation
//!   code" — measured here as *internal joins* (blocks with two or more
//!   internal predecessors);
//! - "When a region contains a cycle, loop optimizations can be
//!   performed ... Loop-invariant code motion is an especially
//!   important example ... even a trace that spans a cycle cannot
//!   perform this optimization, because it has nowhere outside the
//!   cycle to move an instruction" — measured as *hoistable cycles*:
//!   cyclic strongly connected components that have at least one region
//!   block outside them on a path to the cycle (a preheader position).

use crate::cache::{CodeCache, Region};
use rsel_program::Addr;
use std::collections::HashMap;

/// Counts of optimization opportunities over a set of regions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptimizationOpportunities {
    /// Regions analyzed.
    pub regions: usize,
    /// Blocks with two or more internal predecessors (join points
    /// usable by compensation-free redundancy elimination).
    pub internal_joins: u64,
    /// Blocks with two or more internal successors (split points the
    /// optimizer can lay out by frequency).
    pub internal_splits: u64,
    /// Regions containing at least one internal cycle.
    pub cyclic_regions: usize,
    /// Regions with a cycle *and* a block outside it that reaches it —
    /// a preheader position for loop-invariant code motion.
    pub hoistable_cycles: usize,
}

impl OptimizationOpportunities {
    /// Merges counts from another analysis.
    pub fn merge(&mut self, other: &OptimizationOpportunities) {
        self.regions += other.regions;
        self.internal_joins += other.internal_joins;
        self.internal_splits += other.internal_splits;
        self.cyclic_regions += other.cyclic_regions;
        self.hoistable_cycles += other.hoistable_cycles;
    }
}

/// Analyzes one region.
pub fn analyze_region(region: &Region) -> OptimizationOpportunities {
    let nodes: Vec<Addr> = region.blocks().iter().map(|b| b.start()).collect();
    let mut preds: HashMap<Addr, u32> = HashMap::new();
    let mut splits = 0u64;
    for &n in &nodes {
        let succs = region.successors(n);
        if succs.len() >= 2 {
            splits += 1;
        }
        for &s in succs {
            *preds.entry(s).or_insert(0) += 1;
        }
    }
    let joins = preds.values().filter(|&&c| c >= 2).count() as u64;

    let sccs = tarjan_sccs(&nodes, region);
    // A component is cyclic if it has >1 node, or a single node with a
    // self edge.
    let mut comp_of: HashMap<Addr, usize> = HashMap::new();
    for (i, comp) in sccs.iter().enumerate() {
        for &n in comp {
            comp_of.insert(n, i);
        }
    }
    let cyclic: Vec<usize> = sccs
        .iter()
        .enumerate()
        .filter(|(_, comp)| comp.len() > 1 || region.has_edge(comp[0], comp[0]))
        .map(|(i, _)| i)
        .collect();
    // Hoistable: some cyclic component has an incoming edge from a
    // different component (a preheader position exists inside the
    // region).
    let mut hoistable = false;
    for &n in &nodes {
        for &s in region.successors(n) {
            let (cn, cs) = (comp_of[&n], comp_of[&s]);
            if cn != cs && cyclic.contains(&cs) {
                hoistable = true;
            }
        }
    }
    OptimizationOpportunities {
        regions: 1,
        internal_joins: joins,
        internal_splits: splits,
        cyclic_regions: usize::from(!cyclic.is_empty()),
        hoistable_cycles: usize::from(hoistable),
    }
}

/// Analyzes every region in the cache.
pub fn analyze_optimization(cache: &CodeCache) -> OptimizationOpportunities {
    let mut total = OptimizationOpportunities::default();
    for r in cache.regions() {
        total.merge(&analyze_region(r));
    }
    total
}

/// Iterative Tarjan strongly-connected components over a region's
/// internal edges.
fn tarjan_sccs(nodes: &[Addr], region: &Region) -> Vec<Vec<Addr>> {
    #[derive(Clone, Copy)]
    struct NodeState {
        index: u32,
        lowlink: u32,
        on_stack: bool,
    }
    let mut state: HashMap<Addr, NodeState> = HashMap::new();
    let mut stack: Vec<Addr> = Vec::new();
    let mut sccs: Vec<Vec<Addr>> = Vec::new();
    let mut next_index = 0u32;

    for &root in nodes {
        if state.contains_key(&root) {
            continue;
        }
        // Explicit DFS: (node, child cursor).
        let mut dfs: Vec<(Addr, usize)> = vec![(root, 0)];
        state.insert(
            root,
            NodeState {
                index: next_index,
                lowlink: next_index,
                on_stack: true,
            },
        );
        stack.push(root);
        next_index += 1;
        while let Some(&mut (v, ref mut cursor)) = dfs.last_mut() {
            let succs = region.successors(v);
            if *cursor < succs.len() {
                let w = succs[*cursor];
                *cursor += 1;
                match state.get(&w) {
                    None => {
                        state.insert(
                            w,
                            NodeState {
                                index: next_index,
                                lowlink: next_index,
                                on_stack: true,
                            },
                        );
                        stack.push(w);
                        next_index += 1;
                        dfs.push((w, 0));
                    }
                    Some(sw) if sw.on_stack => {
                        let wi = sw.index;
                        let sv = state.get_mut(&v).expect("visited");
                        sv.lowlink = sv.lowlink.min(wi);
                    }
                    Some(_) => {}
                }
            } else {
                dfs.pop();
                let (vi, vl) = {
                    let sv = state[&v];
                    (sv.index, sv.lowlink)
                };
                if let Some(&mut (parent, _)) = dfs.last_mut() {
                    let sp = state.get_mut(&parent).expect("visited");
                    sp.lowlink = sp.lowlink.min(vl);
                }
                if vi == vl {
                    // v is an SCC root: pop the component.
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("stack holds the component");
                        state.get_mut(&w).expect("visited").on_stack = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(comp);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_program::{Program, ProgramBuilder};

    /// A(cond->C) ; B ; C(cond->A) ; D(ret)
    fn program() -> Program {
        let mut b = ProgramBuilder::new();
        let f = b.function("f", 0x100);
        let a = b.block(f);
        let bb = b.block(f);
        let c = b.block(f);
        let d = b.block_with(f, 0);
        let _ = bb;
        b.cond_branch(a, c);
        b.cond_branch(c, a);
        b.ret(d);
        b.build().unwrap()
    }

    fn starts(p: &Program) -> Vec<Addr> {
        p.blocks().iter().map(|b| b.start()).collect()
    }

    #[test]
    fn pure_cycle_trace_is_cyclic_but_not_hoistable() {
        // The paper's point: a trace that IS the cycle has nowhere to
        // hoist to.
        let p = program();
        let s = starts(&p);
        let t = Region::trace(&p, &[s[0], s[2]]); // A -> C -> back to A
        let opp = analyze_region(&t);
        assert_eq!(opp.cyclic_regions, 1);
        assert_eq!(opp.hoistable_cycles, 0, "no preheader inside the trace");
    }

    #[test]
    fn straightline_trace_has_no_opportunities() {
        let p = program();
        let s = starts(&p);
        let t = Region::trace(&p, &[s[1], s[2]]);
        let opp = analyze_region(&t);
        assert_eq!(opp.cyclic_regions, 0);
        assert_eq!(opp.internal_joins, 0);
        assert_eq!(opp.internal_splits, 0);
    }

    #[test]
    fn diamond_region_has_split_and_join() {
        // S(cond->T) ; F(jump J) ; T ; J(ret)
        let mut b = ProgramBuilder::new();
        let f = b.function("f", 0x100);
        let sp = b.block(f);
        let fall = b.block(f);
        let taken = b.block(f);
        let j = b.block_with(f, 0);
        b.cond_branch(sp, taken);
        b.jump(fall, j);
        b.ret(j);
        let p = b.build().unwrap();
        let at = |id| p.block(id).start();
        let r = Region::combined(
            &p,
            &[at(sp), at(fall), at(taken), at(j)],
            &[
                (at(sp), at(fall)),
                (at(sp), at(taken)),
                (at(fall), at(j)),
                (at(taken), at(j)),
            ],
        );
        let opp = analyze_region(&r);
        assert_eq!(opp.internal_splits, 1, "S splits");
        assert_eq!(opp.internal_joins, 1, "J joins");
        assert_eq!(opp.cyclic_regions, 0);
    }

    #[test]
    fn combined_region_with_inner_cycle_is_hoistable() {
        // entry E falls into loop head H; H cond-branches back to H
        // (self cycle); exit X. A combined region holding E, H has a
        // preheader (E) for the cycle at H.
        let mut b = ProgramBuilder::new();
        let f = b.function("f", 0x100);
        let e = b.block(f);
        let h = b.block(f);
        let x = b.block_with(f, 0);
        b.cond_branch(h, h);
        b.ret(x);
        let p = b.build().unwrap();
        let at = |id| p.block(id).start();
        let r = Region::combined(&p, &[at(e), at(h)], &[(at(e), at(h)), (at(h), at(h))]);
        let opp = analyze_region(&r);
        assert_eq!(opp.cyclic_regions, 1);
        assert_eq!(opp.hoistable_cycles, 1, "E is a preheader for H's cycle");
    }

    #[test]
    fn analyze_cache_merges_regions() {
        let p = program();
        let s = starts(&p);
        let mut cache = CodeCache::new();
        cache.insert(Region::trace(&p, &[s[0], s[2]]));
        cache.insert(Region::trace(&p, &[s[1]]));
        let opp = analyze_optimization(&cache);
        assert_eq!(opp.regions, 2);
        assert_eq!(opp.cyclic_regions, 1);
    }

    #[test]
    fn tarjan_handles_nested_sccs() {
        // Two independent self-loops in one combined region.
        let mut b = ProgramBuilder::new();
        let f = b.function("f", 0x100);
        let a = b.block(f);
        let c = b.block(f);
        let x = b.block_with(f, 0);
        b.cond_branch(a, a);
        b.cond_branch(c, c);
        b.ret(x);
        let p = b.build().unwrap();
        let at = |id| p.block(id).start();
        let r = Region::combined(
            &p,
            &[at(a), at(c)],
            &[(at(a), at(a)), (at(a), at(c)), (at(c), at(c))],
        );
        let opp = analyze_region(&r);
        assert_eq!(opp.cyclic_regions, 1);
        // c's cycle is entered from a's component: hoistable.
        assert_eq!(opp.hoistable_cycles, 1);
    }
}
