//! The aggregated per-run report covering every paper metric.

use super::cover::cover_set_size;
use super::domination::DominationStats;
use crate::cache::RegionKind;
use rsel_program::Addr;
use std::fmt;

/// Per-region facts gathered during a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionReport {
    /// The region's entry address.
    pub entry: Addr,
    /// Trace or combined.
    pub kind: RegionKind,
    /// Instructions copied into the region.
    pub insts_copied: u64,
    /// Instruction bytes copied.
    pub bytes: u64,
    /// Exit stubs.
    pub stubs: usize,
    /// Whether the region contains a branch back to its entry.
    pub spans_cycle: bool,
    /// Executions: entries from outside plus cycle re-entries.
    pub executions: u64,
    /// Executions that ended by branching back to the region top.
    pub cycle_ends: u64,
    /// Instructions executed while control was in this region.
    pub insts_executed: u64,
}

/// Fault-injection and recovery statistics for one run (see
/// [`sim::faults`](crate::sim::faults)). All zeros when the fault layer
/// is inert (the default).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Self-modifying-code write events that struck.
    pub smc_events: u64,
    /// Cache-pressure flush waves that struck.
    pub flush_waves: u64,
    /// Profiling-counter faults delivered to the selector.
    pub counter_faults: u64,
    /// Regions invalidated by self-modifying-code writes.
    pub invalidated_regions: u64,
    /// Regions evicted by pressure waves (beyond bounded-cache
    /// flushes, which [`RunReport::cache_flushes`] counts).
    pub pressure_evicted_regions: u64,
    /// Inter-region links severed because an endpoint was removed.
    pub severed_links: u64,
    /// Regions re-formed at an entry address that had previously been
    /// invalidated or evicted.
    pub reformations: u64,
    /// Selections dropped because their entry was blacklisted.
    pub blacklist_hits: u64,
    /// Entry addresses ever demoted to the blacklist.
    pub blacklisted_targets: u64,
    /// Times execution fell back from a removed region to the
    /// interpreter mid-flight.
    pub recovery_transitions: u64,
    /// Snapshot of [`RunReport::total_insts`] when the first fault
    /// struck; `None` when no fault ever struck.
    pub total_insts_at_first_fault: Option<u64>,
    /// Snapshot of [`RunReport::cache_insts`] when the first fault
    /// struck.
    pub cache_insts_at_first_fault: Option<u64>,
}

impl ResilienceStats {
    /// Total fault events of any class.
    pub fn fault_events(&self) -> u64 {
        self.smc_events + self.flush_waves + self.counter_faults
    }
}

/// Everything measured over one simulated run; produced by
/// [`Simulator::report`](crate::Simulator::report).
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Selector name ("NET", "LEI", ...).
    pub selector: String,
    /// Total instructions the program executed.
    pub total_insts: u64,
    /// Instructions executed from the code cache.
    pub cache_insts: u64,
    /// Interpreted taken branches (selector invocations).
    pub interpreted_taken: u64,
    /// Jumps between distinct cached regions (the locality metric).
    pub region_transitions: u64,
    /// Per-region details, in selection order.
    pub regions: Vec<RegionReport>,
    /// Peak profiling counters in use (Figure 10).
    pub peak_counters: usize,
    /// Peak bytes of stored observed traces (Figure 18).
    pub peak_observed_bytes: usize,
    /// Estimated cache size: instruction bytes + 10 B per stub (§4.3.4).
    pub cache_size_estimate: u64,
    /// Exit-domination analysis results (§4.1); live regions only when
    /// the cache is bounded.
    pub domination: DominationStats,
    /// Full cache flushes performed (always zero for the paper's
    /// unbounded setting).
    pub cache_flushes: u64,
    /// Sum of cache-layout distances over all region transitions
    /// (regions are laid out in selection order; §1 argues separation
    /// puts related traces "potentially on a separate virtual memory
    /// page").
    pub transition_distance_sum: u64,
    /// Region transitions whose endpoints lie on different 4 KiB pages
    /// of the cache layout.
    pub transition_page_crossings: u64,
    /// Fault-injection and recovery statistics (all zeros without
    /// faults).
    pub resilience: ResilienceStats,
}

impl RunReport {
    /// Fraction of executed instructions that ran from the cache
    /// (the paper's *hit rate*, §2.3).
    pub fn hit_rate(&self) -> f64 {
        if self.total_insts == 0 {
            0.0
        } else {
            self.cache_insts as f64 / self.total_insts as f64
        }
    }

    /// Number of regions selected.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Instructions copied into the cache (*code expansion*, §2.3).
    pub fn insts_copied(&self) -> u64 {
        self.regions.iter().map(|r| r.insts_copied).sum()
    }

    /// Total exit stubs (Figure 19).
    pub fn stub_count(&self) -> u64 {
        self.regions.iter().map(|r| r.stubs as u64).sum()
    }

    /// Mean instructions per selected region (§3.2.2 reports 14.8 for
    /// NET vs. 18.3 for LEI).
    pub fn avg_region_insts(&self) -> f64 {
        if self.regions.is_empty() {
            0.0
        } else {
            self.insts_copied() as f64 / self.regions.len() as f64
        }
    }

    /// Fraction of selected regions containing a branch to their top
    /// (*spanned cycle ratio*, §3.2.1).
    pub fn spanned_cycle_ratio(&self) -> f64 {
        if self.regions.is_empty() {
            return 0.0;
        }
        let spanned = self.regions.iter().filter(|r| r.spans_cycle).count();
        spanned as f64 / self.regions.len() as f64
    }

    /// Fraction of region executions that ended by branching back to
    /// the region top (*executed cycle ratio*, §3.2.1).
    pub fn executed_cycle_ratio(&self) -> f64 {
        let execs: u64 = self.regions.iter().map(|r| r.executions).sum();
        if execs == 0 {
            return 0.0;
        }
        let cycles: u64 = self.regions.iter().map(|r| r.cycle_ends).sum();
        cycles as f64 / execs as f64
    }

    /// Size of the `frac` cover set (paper uses 0.90); `None` when the
    /// cache never covered that much execution.
    pub fn cover_set_size(&self, frac: f64) -> Option<usize> {
        let per: Vec<u64> = self.regions.iter().map(|r| r.insts_executed).collect();
        cover_set_size(&per, self.total_insts, frac)
    }

    /// Peak observed-trace memory as a fraction of the estimated cache
    /// size (Figure 18's y-axis).
    pub fn observed_memory_fraction(&self) -> f64 {
        if self.cache_size_estimate == 0 {
            0.0
        } else {
            self.peak_observed_bytes as f64 / self.cache_size_estimate as f64
        }
    }

    /// Fraction of regions that are exit-dominated (Figure 12).
    pub fn exit_dominated_fraction(&self) -> f64 {
        self.domination.dominated_fraction(self.regions.len())
    }

    /// Fraction of selected instructions that are exit-dominated
    /// duplication (Figure 11).
    pub fn exit_dominated_duplication_fraction(&self) -> f64 {
        self.domination.duplication_fraction(self.insts_copied())
    }

    /// Mean cache-layout distance of a region transition, in bytes.
    pub fn mean_transition_distance(&self) -> f64 {
        if self.region_transitions == 0 {
            0.0
        } else {
            self.transition_distance_sum as f64 / self.region_transitions as f64
        }
    }

    /// Fraction of region transitions that cross a 4 KiB page of the
    /// cache layout.
    pub fn page_crossing_fraction(&self) -> f64 {
        if self.region_transitions == 0 {
            0.0
        } else {
            self.transition_page_crossings as f64 / self.region_transitions as f64
        }
    }

    /// Hit rate over the part of the run at or after the first injected
    /// fault — how well the system kept serving execution from the
    /// cache while being disrupted. `None` when no fault ever struck.
    pub fn hit_rate_under_faults(&self) -> Option<f64> {
        let t0 = self.resilience.total_insts_at_first_fault?;
        let c0 = self.resilience.cache_insts_at_first_fault?;
        let total = self.total_insts.saturating_sub(t0);
        if total == 0 {
            return Some(0.0);
        }
        Some(self.cache_insts.saturating_sub(c0) as f64 / total as f64)
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} ===", self.selector)?;
        writeln!(
            f,
            "hit rate {:6.2}%  regions {:5}  copied {:8} insts  stubs {:6}",
            100.0 * self.hit_rate(),
            self.region_count(),
            self.insts_copied(),
            self.stub_count()
        )?;
        writeln!(
            f,
            "transitions {:8}  spanned {:5.1}%  executed-cycles {:5.1}%  avg size {:5.1}",
            self.region_transitions,
            100.0 * self.spanned_cycle_ratio(),
            100.0 * self.executed_cycle_ratio(),
            self.avg_region_insts()
        )?;
        write!(
            f,
            "90% cover {:?}  peak counters {}  exit-dominated {:4.1}% of regions",
            self.cover_set_size(0.9),
            self.peak_counters,
            100.0 * self.exit_dominated_fraction()
        )?;
        if self.resilience.fault_events() > 0 {
            let r = &self.resilience;
            write!(
                f,
                "\nfaults {:5} (smc {} waves {} ctr {})  invalidated {:4}  evicted {:4}  \
                 reformed {:4}  blacklist hits {:3}  hit-under-faults {}",
                r.fault_events(),
                r.smc_events,
                r.flush_waves,
                r.counter_faults,
                r.invalidated_regions,
                r.pressure_evicted_regions,
                r.reformations,
                r.blacklist_hits,
                match self.hit_rate_under_faults() {
                    Some(h) => format!("{:5.2}%", 100.0 * h),
                    None => "n/a".to_string(),
                }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(insts: u64, executed: u64, spans: bool, execs: u64, cycles: u64) -> RegionReport {
        RegionReport {
            entry: Addr::new(0x100),
            kind: RegionKind::Trace,
            insts_copied: insts,
            bytes: insts * 3,
            stubs: 2,
            spans_cycle: spans,
            executions: execs,
            cycle_ends: cycles,
            insts_executed: executed,
        }
    }

    fn report() -> RunReport {
        RunReport {
            selector: "NET".to_string(),
            total_insts: 1000,
            cache_insts: 950,
            interpreted_taken: 40,
            region_transitions: 12,
            regions: vec![
                region(10, 800, true, 100, 90),
                region(20, 150, false, 20, 0),
            ],
            peak_counters: 5,
            peak_observed_bytes: 30,
            cache_size_estimate: 130,
            domination: DominationStats::default(),
            cache_flushes: 0,
            transition_distance_sum: 2400,
            transition_page_crossings: 3,
            resilience: ResilienceStats::default(),
        }
    }

    #[test]
    fn derived_metrics() {
        let r = report();
        assert!((r.hit_rate() - 0.95).abs() < 1e-9);
        assert_eq!(r.insts_copied(), 30);
        assert_eq!(r.stub_count(), 4);
        assert!((r.avg_region_insts() - 15.0).abs() < 1e-9);
        assert!((r.spanned_cycle_ratio() - 0.5).abs() < 1e-9);
        assert!((r.executed_cycle_ratio() - 0.75).abs() < 1e-9);
        assert_eq!(r.cover_set_size(0.9), Some(2));
        assert_eq!(r.cover_set_size(0.8), Some(1));
        assert!((r.observed_memory_fraction() - 30.0 / 130.0).abs() < 1e-9);
        assert!((r.mean_transition_distance() - 200.0).abs() < 1e-9);
        assert!((r.page_crossing_fraction() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = RunReport {
            selector: "LEI".to_string(),
            total_insts: 0,
            cache_insts: 0,
            interpreted_taken: 0,
            region_transitions: 0,
            regions: vec![],
            peak_counters: 0,
            peak_observed_bytes: 0,
            cache_size_estimate: 0,
            domination: DominationStats::default(),
            cache_flushes: 0,
            transition_distance_sum: 0,
            transition_page_crossings: 0,
            resilience: ResilienceStats::default(),
        };
        assert_eq!(r.hit_rate(), 0.0);
        assert_eq!(r.avg_region_insts(), 0.0);
        assert_eq!(r.spanned_cycle_ratio(), 0.0);
        assert_eq!(r.executed_cycle_ratio(), 0.0);
        assert_eq!(r.observed_memory_fraction(), 0.0);
        assert_eq!(r.mean_transition_distance(), 0.0);
        assert_eq!(r.page_crossing_fraction(), 0.0);
    }

    #[test]
    fn display_mentions_selector() {
        let text = report().to_string();
        assert!(text.contains("NET"));
        assert!(text.contains("hit rate"));
        // No faults: the resilience line is omitted.
        assert!(!text.contains("faults"));
    }

    #[test]
    fn hit_rate_under_faults_uses_the_first_fault_snapshot() {
        let mut r = report();
        assert_eq!(r.hit_rate_under_faults(), None, "no faults, no rate");
        r.resilience.smc_events = 1;
        r.resilience.total_insts_at_first_fault = Some(500);
        r.resilience.cache_insts_at_first_fault = Some(550);
        // After the fault: 500 insts total, 400 from the cache.
        let h = r.hit_rate_under_faults().unwrap();
        assert!((h - 0.8).abs() < 1e-9, "{h}");
        assert!(r.to_string().contains("faults"));
        // Fault on the very last instruction: defined, zero.
        r.resilience.total_insts_at_first_fault = Some(r.total_insts);
        r.resilience.cache_insts_at_first_fault = Some(r.cache_insts);
        assert_eq!(r.hit_rate_under_faults(), Some(0.0));
    }
}
