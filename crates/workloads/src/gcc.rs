//! `gcc`-like workload: path-rich code with unbiased branches and
//! phase behaviour.
//!
//! 176.gcc is the paper's canonical hard case: "large applications with
//! many important procedures and a mix of biased and unbiased branches
//! (e.g., 176.gcc)" (§6). It has by far the largest 90% cover set in
//! Figure 9 and the lowest hit rates in §3.2/§4.3. This model gives it:
//!
//! - many mid-sized functions (compiler passes) full of unbiased
//!   diamonds, so execution spreads over many paths;
//! - phased guards, so the set of hot functions changes over the run
//!   (§4.3.1 cites phase behaviour as a limit on combination);
//! - both backward and forward calls.

use crate::spec::Scale;
use crate::synth::{self, AddrAlloc};
use rsel_program::behavior::CondBehavior;
use rsel_program::patterns::ScenarioBuilder;
use rsel_program::{BehaviorSpec, Program};

const PASSES: usize = 24;

/// Builds the workload.
pub fn build(seed: u64, scale: Scale) -> (Program, BehaviorSpec) {
    let mut rng = synth::build_rng(seed);
    let mut s = ScenarioBuilder::new(seed);
    s.set_block_scale(3);
    let mut alloc = AddrAlloc::new();

    // Compiler passes: branchy functions with plenty of unbiased
    // decisions; alternate low/high placement.
    let mut passes = Vec::with_capacity(PASSES);
    for i in 0..PASSES {
        let base = if i % 2 == 0 {
            alloc.low()
        } else {
            alloc.high()
        };
        let depth = 3 + i % 4;
        // Roughly one unbiased decision per three; the rest biased, as
        // in real compiler code (even gcc keeps a 99% hit rate in the
        // paper).
        let p1 = synth::unbiased_prob(&mut rng);
        let p2 = synth::biased_prob(&mut rng);
        let p3 = synth::biased_prob(&mut rng);
        let name = format!("pass_{i}");
        passes.push(synth::branchy(&mut s, &name, base, depth, &[p2, p1, p3]));
    }

    let trips = scale.trips(12_000);
    let phase_len = u64::from(trips) / 3;
    let d = synth::begin_driver(&mut s, "compile_file", 2);
    for (i, &pass) in passes.iter().enumerate() {
        // Guard: taken = skip the pass. Each pass is hot in one of
        // three phases and mostly idle in the others.
        let guard = s.block(d.f, 1);
        let call = s.block(d.f, 0);
        s.call(call, pass);
        let after = s.block(d.f, 1);
        let hot_phase = i % 3;
        let mut phases = Vec::new();
        for ph in 0..3 {
            let skip_prob = if ph == hot_phase { 0.1 } else { 0.92 };
            phases.push((phase_len, CondBehavior::Bernoulli(skip_prob)));
        }
        s.branch_custom(guard, after, CondBehavior::Phased(phases));
        let _ = after;
    }
    synth::end_driver(&mut s, d, trips);

    s.build().expect("gcc workload is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_program::Executor;
    use std::collections::HashMap;

    #[test]
    fn has_many_functions_and_wide_execution() {
        let (p, spec) = build(5, Scale::Test);
        assert_eq!(p.functions().len(), PASSES + 1);
        let mut counts: HashMap<_, u64> = HashMap::new();
        for st in Executor::new(&p, spec) {
            *counts.entry(st.block).or_insert(0) += 1;
        }
        // Execution is spread over many blocks (path-rich).
        let hot_blocks = counts.values().filter(|&&c| c > 50).count();
        assert!(hot_blocks > 60, "hot blocks {hot_blocks}");
    }

    #[test]
    fn phases_shift_the_hot_set() {
        let (p, spec) = build(5, Scale::Test);
        let steps: Vec<_> = Executor::new(&p, spec).collect();
        let third = steps.len() / 3;
        let early: std::collections::HashSet<_> = steps[..third].iter().map(|s| s.block).collect();
        let late: std::collections::HashSet<_> = steps[steps.len() - third..]
            .iter()
            .map(|s| s.block)
            .collect();
        let only_late = late.difference(&early).count();
        assert!(
            only_late > 3,
            "phase change introduces new blocks: {only_late}"
        );
    }
}
