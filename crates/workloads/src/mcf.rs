//! `mcf`-like workload: pointer-chase loops that call helpers —
//! interprocedural cycles on the dominant path.
//!
//! 181.mcf's network-simplex kernel iterates over arcs calling small
//! comparison/pricing helpers inside its hottest loops — exactly the
//! paper's Figure 2 situation: a loop with a (backward) function call on
//! its dominant path, which NET cannot span but LEI can. The paper
//! singles mcf out as one of two benchmarks whose hit rate moves
//! noticeably under LEI (99.80% → 98.31%, §3.2).

use crate::spec::Scale;
use crate::synth::{self, AddrAlloc};
use rsel_program::patterns::ScenarioBuilder;
use rsel_program::{BehaviorSpec, Program};

/// Builds the workload.
pub fn build(seed: u64, scale: Scale) -> (Program, BehaviorSpec) {
    let rng = synth::build_rng(seed);
    let mut s = ScenarioBuilder::new(seed);
    s.set_block_scale(3);
    let mut alloc = AddrAlloc::new();

    // Helpers at LOW addresses: the calls are backward branches.
    let compare = synth::leaf(&mut s, "arc_compare", alloc.low(), 3);
    let price = synth::leaf(&mut s, "compute_red_cost", alloc.low(), 4);
    let refresh = synth::worker(&mut s, "refresh_potential", alloc.low(), 2, 18);

    let d = synth::begin_driver(&mut s, "primal_net_simplex", 2);

    // Arc-scan loop: inner loop whose body calls `compare` every
    // iteration (the Figure 2 pattern).
    let scan_head = s.block(d.f, 1);
    let scan_call = s.block(d.f, 0);
    s.call(scan_call, compare);
    let scan_latch = s.block(d.f, 1);
    s.branch_trips(scan_latch, scan_head, 40);

    // Basket update with a pricing call and an unbiased-ish admission
    // check.
    let update = s.block(d.f, 1);
    s.call(update, price);
    let admit = s.diamond(d.f, 0.35 + 0.2 * (seed % 3) as f64 / 10.0, 2);
    let _ = admit;
    let _ = rng;

    // Occasional potential refresh.
    let guard = s.block(d.f, 1);
    let call_r = s.block(d.f, 0);
    s.call(call_r, refresh);
    let after = s.block(d.f, 1);
    s.branch_p(guard, after, 0.9); // usually skip
    let _ = after;

    synth::end_driver(&mut s, d, scale.trips(16_000));
    s.build().expect("mcf workload is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_program::{Entry, Executor};

    #[test]
    fn dominant_path_has_backward_calls() {
        let (p, spec) = build(1, Scale::Test);
        let mut backward_calls = 0u64;
        let mut steps = 0u64;
        for st in Executor::new(&p, spec) {
            steps += 1;
            if let Entry::Taken {
                src,
                kind: rsel_program::BranchKind::Call,
            } = st.entry
            {
                if st.start.is_backward_from(src) {
                    backward_calls += 1;
                }
            }
        }
        // The inner scan loop calls compare ~40x per driver iteration.
        assert!(
            backward_calls * 4 > steps / 10,
            "backward calls {backward_calls} of {steps}"
        );
    }
}
