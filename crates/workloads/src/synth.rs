//! Shared generators for the synthetic workloads.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rsel_program::patterns::ScenarioBuilder;
use rsel_program::{BlockId, FunctionId};

/// Address layout for a workload: `main` sits in the middle of the
/// address space so callees can be placed *below* it (making calls
/// backward branches, as in the paper's Figure 2) or *above* it (making
/// the returns backward instead).
#[derive(Debug)]
pub struct AddrAlloc {
    next_low: u64,
    next_high: u64,
}

/// Base address used for the `main` function of every workload.
pub const MAIN_BASE: u64 = 0x40_0000;

impl Default for AddrAlloc {
    fn default() -> Self {
        AddrAlloc::new()
    }
}

impl AddrAlloc {
    /// Creates the allocator with the standard layout.
    pub fn new() -> Self {
        AddrAlloc {
            next_low: 0x1000,
            next_high: 0x80_0000,
        }
    }

    /// Allocates a function base below `main` (calls to it are
    /// backward branches).
    pub fn low(&mut self) -> u64 {
        let a = self.next_low;
        self.next_low += 0x1000;
        assert!(self.next_low < MAIN_BASE, "low address space exhausted");
        a
    }

    /// Allocates a function base above `main` (returns from it are
    /// backward branches).
    pub fn high(&mut self) -> u64 {
        let a = self.next_high;
        self.next_high += 0x1000;
        a
    }
}

/// A driver loop under construction: create with [`begin_driver`], add
/// body blocks/calls to `f`, then close with [`end_driver`].
#[derive(Clone, Copy, Debug)]
pub struct Driver {
    /// The function holding the loop.
    pub f: FunctionId,
    /// The loop head (target of the backward latch branch).
    pub head: BlockId,
}

/// Opens a `main`-style function with a loop head at [`MAIN_BASE`].
pub fn begin_driver(s: &mut ScenarioBuilder, name: &str, head_work: u32) -> Driver {
    let f = s.function(name, MAIN_BASE);
    s.set_entry(f);
    let head = s.block(f, head_work);
    Driver { f, head }
}

/// Closes a driver loop: adds the backward latch branch (executed
/// `trips` times per program run) and a returning exit block.
pub fn end_driver(s: &mut ScenarioBuilder, d: Driver, trips: u32) {
    let latch = s.block(d.f, 1);
    s.branch_trips(latch, d.head, trips);
    let exit = s.block(d.f, 0);
    s.ret(exit);
}

/// A leaf function: `work` straight instructions and a return.
pub fn leaf(s: &mut ScenarioBuilder, name: &str, base: u64, work: u32) -> FunctionId {
    let f = s.function(name, base);
    let b = s.block(f, work);
    s.ret(b);
    f
}

/// A worker function containing its own counted inner loop.
pub fn worker(
    s: &mut ScenarioBuilder,
    name: &str,
    base: u64,
    work: u32,
    inner_trips: u32,
) -> FunctionId {
    let f = s.function(name, base);
    let head = s.block(f, work);
    let latch = s.block(f, 1);
    s.branch_trips(latch, head, inner_trips);
    let out = s.block(f, 0);
    s.ret(out);
    f
}

/// A function that is a chain of `depth` if/else diamonds with the
/// given taken-probabilities (cycled), then returns.
pub fn branchy(
    s: &mut ScenarioBuilder,
    name: &str,
    base: u64,
    depth: usize,
    probs: &[f64],
) -> FunctionId {
    let f = s.function(name, base);
    let (_, last_join) = s.diamond_chain(f, depth, probs);
    s.ret_from(f, last_join);
    f
}

/// Adds a call-site block in `d.f` that calls `callee` and falls
/// through to whatever the caller adds next.
pub fn call_site(
    s: &mut ScenarioBuilder,
    d: Driver,
    callee: FunctionId,
    lead_work: u32,
) -> BlockId {
    let b = s.block(d.f, lead_work);
    s.call(b, callee);
    b
}

/// A deterministic build-time RNG for structural choices (trip counts,
/// probabilities) so the *program*, not just its execution, varies with
/// the seed.
pub fn build_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ 0x5eed_5eed_5eed_5eed)
}

/// A random probability biased away from 0.5 (a "biased branch").
pub fn biased_prob(rng: &mut SmallRng) -> f64 {
    if rng.gen_bool(0.5) {
        rng.gen_range(0.02..0.15)
    } else {
        rng.gen_range(0.85..0.98)
    }
}

/// A random probability near 0.5 (an "unbiased branch", §2.2).
pub fn unbiased_prob(rng: &mut SmallRng) -> f64 {
    rng.gen_range(0.4..0.6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_program::{BehaviorSpec, Executor, Program};

    fn run(p: &Program, spec: BehaviorSpec) -> usize {
        Executor::new(p, spec).take(2_000_000).count()
    }

    #[test]
    fn driver_with_leaf_terminates() {
        let mut s = ScenarioBuilder::new(1);
        let mut alloc = AddrAlloc::new();
        let lf = leaf(&mut s, "leaf", alloc.low(), 3);
        let d = begin_driver(&mut s, "main", 1);
        call_site(&mut s, d, lf, 1);
        end_driver(&mut s, d, 100);
        let (p, spec) = s.build().unwrap();
        let n = run(&p, spec);
        assert!(n > 300 && n < 2_000_000, "steps {n}");
    }

    #[test]
    fn worker_inner_loop_executes() {
        let mut s = ScenarioBuilder::new(1);
        let mut alloc = AddrAlloc::new();
        let w = worker(&mut s, "w", alloc.high(), 2, 10);
        let d = begin_driver(&mut s, "main", 1);
        call_site(&mut s, d, w, 1);
        end_driver(&mut s, d, 50);
        let (p, spec) = s.build().unwrap();
        // 50 outer x ~10 inner iterations plus overhead.
        let n = run(&p, spec);
        assert!(n > 50 * 10, "steps {n}");
    }

    #[test]
    fn low_and_high_allocations_bracket_main() {
        let mut alloc = AddrAlloc::new();
        assert!(alloc.low() < MAIN_BASE);
        assert!(alloc.high() > MAIN_BASE);
        assert_ne!(alloc.low(), alloc.low());
    }

    #[test]
    fn probabilities_in_range() {
        let mut rng = build_rng(9);
        for _ in 0..100 {
            let b = biased_prob(&mut rng);
            assert!(!(0.15..0.85).contains(&b), "biased {b}");
            let u = unbiased_prob(&mut rng);
            assert!((0.4..0.6).contains(&u), "unbiased {u}");
        }
    }

    #[test]
    fn branchy_function_returns() {
        let mut s = ScenarioBuilder::new(2);
        let mut alloc = AddrAlloc::new();
        let bf = branchy(&mut s, "b", alloc.low(), 4, &[0.5, 0.9]);
        let d = begin_driver(&mut s, "main", 1);
        call_site(&mut s, d, bf, 1);
        end_driver(&mut s, d, 30);
        let (p, spec) = s.build().unwrap();
        let n = run(&p, spec);
        assert!(n > 30 * 5, "steps {n}");
    }
}
