//! `parser`-like workload: many small functions and moderate
//! branching.
//!
//! 197.parser (link grammar) walks dictionaries through layers of small
//! helper functions. Like crafty, it is one of the two benchmarks where
//! LEI's locality gain is smallest (Figure 8: region transitions no
//! better than NET) because its hot paths already fit in short
//! intraprocedural traces.

use crate::spec::Scale;
use crate::synth::{self, AddrAlloc};
use rsel_program::patterns::ScenarioBuilder;
use rsel_program::{BehaviorSpec, Program};

/// Builds the workload.
pub fn build(seed: u64, scale: Scale) -> (Program, BehaviorSpec) {
    let mut rng = synth::build_rng(seed);
    let mut s = ScenarioBuilder::new(seed);
    s.set_block_scale(3);
    let mut alloc = AddrAlloc::new();

    // Two tiers of helpers, all at HIGH addresses with the leaves
    // topmost: every call (main -> helper -> leaf) is a forward branch,
    // so only the returns are backward — short intraprocedural hot
    // paths, which is what keeps LEI's gains small on parser.
    let mut leaves = Vec::new();
    for i in 0..6 {
        let name = format!("hash_{i}");
        leaves.push(synth::leaf(
            &mut s,
            &name,
            0x100_0000 + 0x1000 * i as u64,
            2 + i % 3,
        ));
    }
    let mut helpers = Vec::new();
    for i in 0..8 {
        let name = format!("match_{i}");
        let f = s.function(&name, alloc.high());
        let entry = s.block(f, 2);
        s.call(entry, leaves[i % leaves.len()]);
        // A short scan loop: these small intraprocedural cycles are the
        // hot spots that get cached first, keeping every later trace —
        // NET tail or LEI cycle — short.
        let scan = s.block(f, 2);
        let scan_latch = s.block(f, 1);
        s.branch_trips(scan_latch, scan, 3 + (i % 4) as u32);
        let mid = s.diamond(f, synth::biased_prob(&mut rng), 1);
        let _ = mid;
        let out = s.block(f, 1);
        s.ret(out);
        helpers.push(f);
    }

    let d = synth::begin_driver(&mut s, "parse", 2);
    for (i, &h) in helpers.iter().enumerate() {
        let guard = s.block(d.f, 1);
        let call = s.block(d.f, 0);
        s.call(call, h);
        let after = s.block(d.f, 1);
        // Parser's loop body is stable: nearly every helper runs every
        // iteration, so there is one dominant path with little variance
        // (which is why LEI has so little to add on this benchmark).
        let skip = if i % 3 == 0 { 0.12 } else { 0.04 };
        s.branch_p(guard, after, skip);
        let _ = after;
    }
    synth::end_driver(&mut s, d, scale.trips(18_000));

    s.build().expect("parser workload is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_program::Executor;

    #[test]
    fn two_tier_call_structure_executes() {
        let (p, spec) = build(4, Scale::Test);
        assert_eq!(p.functions().len(), 6 + 8 + 1);
        let mut depth2 = false;
        let mut ex = Executor::new(&p, spec);
        for _ in 0..200_000 {
            if ex.next().is_none() {
                break;
            }
            if ex.stack_depth() >= 2 {
                depth2 = true;
            }
        }
        assert!(depth2, "helpers call leaves (depth 2 reached)");
    }
}
