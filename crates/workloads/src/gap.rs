//! `gap`-like workload: arithmetic kernels behind forward calls.
//!
//! 254.gap (computational group theory) alternates between a handful of
//! bag-allocation and arithmetic kernels, each with its own counted
//! inner loop. Hot cycles are mostly intraprocedural but sit behind a
//! layer of calls, so LEI picks up the kernels' loops while NET starts
//! traces at their back edges.

use crate::spec::Scale;
use crate::synth::{self, AddrAlloc};
use rsel_program::patterns::ScenarioBuilder;
use rsel_program::{BehaviorSpec, Program};

/// Builds the workload.
pub fn build(seed: u64, scale: Scale) -> (Program, BehaviorSpec) {
    let mut rng = synth::build_rng(seed);
    let mut s = ScenarioBuilder::new(seed);
    s.set_block_scale(3);
    let mut alloc = AddrAlloc::new();

    let kernels = [
        synth::worker(&mut s, "prod_int", alloc.high(), 3, 20),
        synth::worker(&mut s, "sum_vec", alloc.high(), 2, 45),
        synth::worker(&mut s, "quo_int", alloc.high(), 3, 9),
        synth::worker(&mut s, "collect_garbage", alloc.high(), 4, 30),
    ];
    let new_bag = synth::leaf(&mut s, "new_bag", alloc.low(), 3);

    let d = synth::begin_driver(&mut s, "eval_loop", 2);
    synth::call_site(&mut s, d, new_bag, 1);
    for (i, &k) in kernels.iter().enumerate() {
        let guard = s.block(d.f, 1);
        let call = s.block(d.f, 0);
        s.call(call, k);
        let after = s.block(d.f, 1);
        let skip = match i {
            3 => 0.95, // garbage collection is rare
            _ => synth::biased_prob(&mut rng).min(0.3),
        };
        s.branch_p(guard, after, skip);
        let _ = after;
    }
    synth::end_driver(&mut s, d, scale.trips(14_000));

    s.build().expect("gap workload is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_program::Executor;

    #[test]
    fn kernels_dominate_execution() {
        let (p, spec) = build(9, Scale::Test);
        // Main occupies [MAIN_BASE, 0x80_0000); kernels live above.
        let mut in_main = 0u64;
        let mut total = 0u64;
        for st in Executor::new(&p, spec) {
            total += 1;
            if (synth::MAIN_BASE..0x80_0000).contains(&st.start.raw()) {
                in_main += 1;
            }
        }
        // Most block executions happen inside the kernels, not main.
        assert!(in_main * 2 < total, "main blocks {in_main} of {total}");
    }
}
