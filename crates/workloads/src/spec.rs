//! Workload descriptors and the benchmark suite.

use rsel_program::{BehaviorSpec, Program};

/// How long a workload runs.
///
/// `Full` approximates a benchmark run long enough for every selection
/// threshold and phase change to play out (tens of millions of executed
/// instructions); `Test` shrinks the driver loops for fast unit tests
/// while preserving the control-flow shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Small driver loops for tests (~10⁵ executed blocks).
    Test,
    /// Full experiment scale (~10⁷ executed blocks).
    Full,
}

impl Scale {
    /// Scales a full-size driver-loop trip count.
    pub fn trips(self, full: u32) -> u32 {
        match self {
            Scale::Full => full,
            Scale::Test => (full / 64).max(8),
        }
    }
}

/// A named synthetic benchmark.
#[derive(Clone)]
pub struct Workload {
    name: &'static str,
    summary: &'static str,
    builder: fn(u64, Scale) -> (Program, BehaviorSpec),
}

impl Workload {
    pub(crate) fn new(
        name: &'static str,
        summary: &'static str,
        builder: fn(u64, Scale) -> (Program, BehaviorSpec),
    ) -> Self {
        Workload {
            name,
            summary,
            builder,
        }
    }

    /// The SPECint2000 name this workload models.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description of the control-flow character modelled.
    pub fn summary(&self) -> &'static str {
        self.summary
    }

    /// Builds the program and its branch behaviours.
    pub fn build(&self, seed: u64, scale: Scale) -> (Program, BehaviorSpec) {
        (self.builder)(seed, scale)
    }
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .finish()
    }
}

/// The full twelve-benchmark suite, in the paper's figure order.
pub fn suite() -> Vec<Workload> {
    vec![
        Workload::new(
            "gzip",
            "few very hot biased compression loops",
            crate::gzip::build,
        ),
        Workload::new(
            "vpr",
            "placement loops with moderate diamonds",
            crate::vpr::build,
        ),
        Workload::new(
            "gcc",
            "path-rich code: many functions, unbiased branches, phases",
            crate::gcc::build,
        ),
        Workload::new(
            "mcf",
            "pointer-chase loops calling helpers: interprocedural cycles",
            crate::mcf::build,
        ),
        Workload::new(
            "crafty",
            "deep biased forward logic; few additional cycles for LEI",
            crate::crafty::build,
        ),
        Workload::new(
            "parser",
            "many small functions, moderate branching",
            crate::parser::build,
        ),
        Workload::new(
            "eon",
            "hot shared constructors called from many sites (exit-domination outlier)",
            crate::eon::build,
        ),
        Workload::new(
            "perlbmk",
            "bytecode interpreter dispatch via indirect jumps",
            crate::perlbmk::build,
        ),
        Workload::new(
            "gap",
            "arithmetic kernels with forward calls",
            crate::gap::build,
        ),
        Workload::new(
            "vortex",
            "many medium-frequency blocks across wide call fan-out",
            crate::vortex::build,
        ),
        Workload::new(
            "bzip2",
            "nested-loop dominated sorting kernels",
            crate::bzip2::build,
        ),
        Workload::new(
            "twolf",
            "annealing loop with unbiased accept/reject diamonds",
            crate::twolf::build,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_shrinks_but_keeps_minimum() {
        assert_eq!(Scale::Full.trips(6400), 6400);
        assert_eq!(Scale::Test.trips(6400), 100);
        assert_eq!(Scale::Test.trips(100), 8, "clamped at the minimum");
    }

    #[test]
    fn workload_debug_shows_name() {
        let w = &suite()[0];
        assert!(format!("{w:?}").contains("gzip"));
        assert!(!w.summary().is_empty());
    }
}
