//! `vpr`-like workload: placement loops with moderate diamonds.
//!
//! 175.vpr (FPGA place & route) alternates a hot swap-evaluation loop
//! with cost computations. Its branches are a mix of biased checks and
//! a few unbiased decisions, giving it mid-pack behaviour in all of the
//! paper's figures.

use crate::spec::Scale;
use crate::synth::{self, AddrAlloc};
use rsel_program::patterns::ScenarioBuilder;
use rsel_program::{BehaviorSpec, Program};

/// Builds the workload.
pub fn build(seed: u64, scale: Scale) -> (Program, BehaviorSpec) {
    let mut rng = synth::build_rng(seed);
    let mut s = ScenarioBuilder::new(seed);
    s.set_block_scale(3);
    let mut alloc = AddrAlloc::new();

    // Cost helpers: one below main (backward call), one above.
    let net_cost = synth::worker(&mut s, "net_cost", alloc.low(), 2, 6);
    let timing = synth::leaf(&mut s, "timing_driven_cost", alloc.high(), 5);
    let find_to = synth::branchy(&mut s, "find_to", alloc.high(), 3, &[0.7, 0.5]);

    let d = synth::begin_driver(&mut s, "try_swap", 2);
    synth::call_site(&mut s, d, find_to, 1);
    synth::call_site(&mut s, d, net_cost, 1);
    // Swap accepted? Moderately unbiased.
    let accept = s.diamond(d.f, synth::unbiased_prob(&mut rng), 2);
    let _ = accept;
    // Timing update happens on most iterations.
    let guard = s.block(d.f, 1);
    let call_t = s.block(d.f, 0);
    s.call(call_t, timing);
    let after = s.block(d.f, 1);
    s.branch_p(guard, after, 0.2);
    let _ = after;
    // A second, biased diamond (bounds check).
    let bounds = s.diamond(d.f, synth::biased_prob(&mut rng), 1);
    let _ = bounds;
    synth::end_driver(&mut s, d, scale.trips(40_000));

    s.build().expect("vpr workload is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_program::Executor;

    #[test]
    fn both_diamond_sides_execute() {
        let (p, spec) = build(3, Scale::Test);
        let steps: Vec<_> = Executor::new(&p, spec).collect();
        assert!(steps.len() > 10_000, "steps {}", steps.len());
        // The accept diamond is unbiased: both sides run.
        let counts = steps
            .iter()
            .fold(std::collections::HashMap::new(), |mut m, st| {
                *m.entry(st.block).or_insert(0u32) += 1;
                m
            });
        let executed_blocks = counts.len();
        assert!(executed_blocks > 15, "blocks {executed_blocks}");
    }
}
