//! `eon`-like workload: hot shared constructors called from many
//! sites — the paper's exit-domination outlier.
//!
//! 252.eon (C++ ray tracer) constructs `ggPoint3`-style objects
//! everywhere. The paper explains its Figure 12 spike: "three of these
//! exit-dominating traces correspond to constructors of the widely used
//! ggPoint3 class. Once a trace is selected for such a constructor, an
//! exit-dominated trace will be selected for each frequently executed
//! function that calls it" (§4.1). This model has three tiny
//! constructor functions shared by a dozen hot callers, each caller
//! reached from a distinct driver call site.

use crate::spec::Scale;
use crate::synth::{self, AddrAlloc};
use rsel_program::patterns::ScenarioBuilder;
use rsel_program::{BehaviorSpec, Program};

const CALLERS: usize = 12;

/// Builds the workload.
pub fn build(seed: u64, scale: Scale) -> (Program, BehaviorSpec) {
    let mut rng = synth::build_rng(seed);
    let mut s = ScenarioBuilder::new(seed);
    s.set_block_scale(3);
    let mut alloc = AddrAlloc::new();

    // The three shared constructors, at LOW addresses so the calls are
    // backward branches (loop-like to NET's profiler).
    let ctor3 = synth::leaf(&mut s, "ggPoint3_ctor", alloc.low(), 3);
    let ctor_vec = synth::leaf(&mut s, "ggVector3_ctor", alloc.low(), 3);
    let ctor_ray = synth::leaf(&mut s, "ggRay3_ctor", alloc.low(), 4);
    let ctors = [ctor3, ctor_vec, ctor_ray];

    // A dozen shading/intersection functions, each calling two
    // constructors and doing some biased work.
    let mut callers = Vec::with_capacity(CALLERS);
    for i in 0..CALLERS {
        let name = format!("shade_{i}");
        let f = s.function(&name, alloc.high());
        let entry = s.block(f, 2);
        s.call(entry, ctors[i % 3]);
        let mid = s.block(f, 2);
        s.call(mid, ctors[(i + 1) % 3]);
        let dia = s.diamond(f, synth::biased_prob(&mut rng), 1);
        let _ = dia;
        let out = s.block(f, 1);
        s.ret(out);
        callers.push(f);
    }

    let d = synth::begin_driver(&mut s, "render", 2);
    for (i, &c) in callers.iter().enumerate() {
        let guard = s.block(d.f, 1);
        let call = s.block(d.f, 0);
        s.call(call, c);
        let after = s.block(d.f, 1);
        // All callers are hot (that is what makes eon the outlier).
        let skip = 0.1 + 0.02 * (i % 4) as f64;
        s.branch_p(guard, after, skip);
        let _ = after;
    }
    synth::end_driver(&mut s, d, scale.trips(10_000));

    s.build().expect("eon workload is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_program::{BranchKind, Entry, Executor};
    use std::collections::HashSet;

    #[test]
    fn constructors_have_many_distinct_callers() {
        let (p, spec) = build(6, Scale::Test);
        let ctor_entries: HashSet<_> = p.functions().iter().take(3).map(|f| f.entry()).collect();
        let mut call_srcs: HashSet<_> = HashSet::new();
        for st in Executor::new(&p, spec) {
            if let Entry::Taken {
                src,
                kind: BranchKind::Call,
            } = st.entry
            {
                if ctor_entries.contains(&st.start) {
                    call_srcs.insert(src);
                }
            }
        }
        assert!(
            call_srcs.len() >= 12,
            "distinct ctor call sites: {}",
            call_srcs.len()
        );
    }
}
