//! The twelve SPECint2000-like synthetic workloads.
//!
//! The paper evaluates region selection on the SPECint2000 suite run to
//! completion on its test inputs (§2.3). Region-selection behaviour is a
//! function of *dynamic control-flow shape* — branch bias, loop
//! structure, call structure — not of the computation performed, so each
//! workload here is a synthetic program constructed to exhibit the
//! control-flow character the paper attributes to its namesake:
//!
//! | workload | character modelled |
//! |---|---|
//! | [`gzip`] | few very hot biased loops, tiny hot set |
//! | [`vpr`] | placement loops with moderate diamonds |
//! | [`gcc`] | path-rich: many functions, unbiased branches, phases |
//! | [`mcf`] | pointer-chase loops calling helpers (interproc. cycles) |
//! | [`crafty`] | deep biased forward logic, few extra cycles for LEI |
//! | [`parser`] | many small functions, moderate branching |
//! | [`eon`] | hot shared constructors ⇒ exit-domination outlier |
//! | [`perlbmk`] | interpreter dispatch via indirect jumps |
//! | [`gap`] | arithmetic kernels with forward calls |
//! | [`vortex`] | many medium-frequency blocks and call sites |
//! | [`bzip2`] | nested-loop dominated (paper Figure 3's pattern) |
//! | [`twolf`] | annealing loop with unbiased accept/reject diamonds |
//!
//! Every workload is a deterministic function of its seed and
//! [`Scale`], so experiments are exactly reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bzip2;
pub mod crafty;
pub mod eon;
pub mod gap;
pub mod gcc;
pub mod gzip;
pub mod mcf;
pub mod parser;
pub mod perlbmk;
pub mod spec;
pub mod synth;
pub mod twolf;
pub mod vortex;
pub mod vpr;

pub use spec::{Scale, Workload, suite};

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_program::Executor;

    #[test]
    fn suite_has_twelve_distinct_workloads() {
        let s = suite();
        assert_eq!(s.len(), 12);
        let mut names: Vec<&str> = s.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn every_workload_builds_and_terminates_at_test_scale() {
        for w in suite() {
            let (program, spec) = w.build(42, Scale::Test);
            let mut steps = 0u64;
            let limit = 60_000_000;
            for _ in Executor::new(&program, spec) {
                steps += 1;
                assert!(steps < limit, "{} did not terminate", w.name());
            }
            assert!(steps > 1_000, "{} too short: {steps} steps", w.name());
        }
    }

    #[test]
    fn workloads_are_seed_deterministic() {
        for w in suite().into_iter().take(3) {
            let (p1, s1) = w.build(7, Scale::Test);
            let (p2, s2) = w.build(7, Scale::Test);
            let run1: Vec<_> = Executor::new(&p1, s1).take(5_000).collect();
            let run2: Vec<_> = Executor::new(&p2, s2).take(5_000).collect();
            assert_eq!(run1, run2, "{}", w.name());
        }
    }
}
