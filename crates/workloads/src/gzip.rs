//! `gzip`-like workload: a few very hot, biased compression loops.
//!
//! 164.gzip spends nearly all of its time in a handful of tight loops
//! (deflate's match scanner, the CRC loop) with strongly biased
//! branches. The paper's Figure 9 shows it with one of the smallest 90%
//! cover sets (23 traces under NET), and Figure 17's only cover-set
//! regression is a trivial 23 → 24 for combined NET on gzip — there is
//! simply very little path diversity to combine.

use crate::spec::Scale;
use crate::synth::{self, AddrAlloc};
use rsel_program::patterns::ScenarioBuilder;
use rsel_program::{BehaviorSpec, Program};

/// Builds the workload.
pub fn build(seed: u64, scale: Scale) -> (Program, BehaviorSpec) {
    let mut rng = synth::build_rng(seed);
    let mut s = ScenarioBuilder::new(seed);
    s.set_block_scale(3);
    let mut alloc = AddrAlloc::new();

    // Hot helpers: the match scanner has its own counted inner loop.
    let longest_match = synth::worker(&mut s, "longest_match", alloc.low(), 3, 24);
    let crc = synth::leaf(&mut s, "updcrc", alloc.low(), 4);
    let flush = synth::leaf(&mut s, "flush_block", alloc.high(), 6);

    let d = synth::begin_driver(&mut s, "deflate", 2);
    // Scan loop body: call the matcher, then a strongly biased
    // "match found?" diamond.
    synth::call_site(&mut s, d, longest_match, 1);
    let found = s.diamond(d.f, synth::biased_prob(&mut rng), 2);
    let _ = found;
    synth::call_site(&mut s, d, crc, 1);
    // Rare block flush.
    let guard = s.block(d.f, 1);
    let call_flush = s.block(d.f, 0);
    s.call(call_flush, flush);
    let after = s.block(d.f, 1);
    s.branch_p(guard, after, 0.97); // taken = skip the flush
    let _ = after;
    synth::end_driver(&mut s, d, scale.trips(60_000));

    s.build().expect("gzip workload is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_program::Executor;

    #[test]
    fn runs_hot_and_small() {
        let (p, spec) = build(1, Scale::Test);
        // Small static footprint: a handful of functions.
        assert_eq!(p.functions().len(), 4);
        let steps = Executor::new(&p, spec).count();
        // Inner matcher loop multiplies the driver trips.
        assert!(steps > 20_000, "steps {steps}");
    }

    #[test]
    fn different_seeds_change_biases_not_structure() {
        let (p1, _) = build(1, Scale::Test);
        let (p2, _) = build(2, Scale::Test);
        assert_eq!(p1.blocks().len(), p2.blocks().len());
        assert_eq!(p1.inst_count(), p2.inst_count());
    }
}
