//! `bzip2`-like workload: nested-loop dominated sorting kernels.
//!
//! 256.bzip2's block-sort and Huffman stages are textbook loop nests —
//! the paper's Figure 3 situation, where NET duplicates the inner loop
//! inside the outer loop's trace while an ideal selector keeps the
//! nests separate. Figure 17 calls out bzip2 as the benchmark whose
//! cover set is already so small under LEI that combination helps LEI
//! less than NET.

use crate::spec::Scale;
use crate::synth::{self, AddrAlloc};
use rsel_program::patterns::ScenarioBuilder;
use rsel_program::{BehaviorSpec, Program};

/// Builds the workload.
pub fn build(seed: u64, scale: Scale) -> (Program, BehaviorSpec) {
    let mut rng = synth::build_rng(seed);
    let mut s = ScenarioBuilder::new(seed);
    s.set_block_scale(3);
    let mut alloc = AddrAlloc::new();

    // Block-sort helper with its own deep nest.
    let sort = {
        let f = s.function("qsort3", alloc.low());
        let outer_head = s.block(f, 2);
        let inner_head = s.block(f, 2);
        let inner_latch = s.block(f, 1);
        s.branch_trips(inner_latch, inner_head, 16);
        let outer_latch = s.block(f, 1);
        s.branch_trips(outer_latch, outer_head, 6);
        let out = s.block(f, 0);
        s.ret(out);
        f
    };

    let d = synth::begin_driver(&mut s, "compress_block", 2);
    // An inline two-deep nest in the driver body (Figure 3's shape):
    // inner single-block cycle inside a mid loop inside the driver.
    let mid_head = s.block(d.f, 1);
    let inner = s.block(d.f, 1);
    s.branch_custom(
        inner,
        inner,
        rsel_program::behavior::CondBehavior::Trips(24),
    );
    let mid_latch = s.block(d.f, 1);
    s.branch_trips(mid_latch, mid_head, 10);
    // Occasional full sort.
    let guard = s.block(d.f, 1);
    let call = s.block(d.f, 0);
    s.call(call, sort);
    let after = s.block(d.f, 1);
    s.branch_p(guard, after, 0.8);
    let _ = after;
    // One biased MTF diamond.
    let dia = s.diamond(d.f, synth::biased_prob(&mut rng), 1);
    let _ = dia;
    synth::end_driver(&mut s, d, scale.trips(6_000));

    s.build().expect("bzip2 workload is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_program::{Entry, Executor};

    #[test]
    fn inner_cycles_dominate() {
        let (p, spec) = build(11, Scale::Test);
        let mut self_loops = 0u64;
        let mut taken = 0u64;
        for st in Executor::new(&p, spec) {
            if let Entry::Taken { src, .. } = st.entry {
                taken += 1;
                if st.start.is_backward_from(src) {
                    self_loops += 1;
                }
            }
        }
        // Nested counted loops make backward branches the majority of
        // taken branches.
        assert!(self_loops * 2 > taken, "backward {self_loops} of {taken}");
    }
}
