//! `crafty`-like workload: deep biased forward logic, little for LEI
//! to add.
//!
//! 186.crafty (chess) burns its time in long stretches of biased
//! intraprocedural forward control — attack tables, move ordering —
//! rather than in compact interprocedural cycles. It is the paper's
//! counterexample benchmark: Figure 7 shows LEI spanning the fewest
//! additional cycles on crafty, and in Figure 8 crafty is the only
//! benchmark where LEI's code expansion is no better than NET's.

use crate::spec::Scale;
use crate::synth::{self, AddrAlloc};
use rsel_program::patterns::ScenarioBuilder;
use rsel_program::{BehaviorSpec, Program};

/// Builds the workload.
pub fn build(seed: u64, scale: Scale) -> (Program, BehaviorSpec) {
    let mut rng = synth::build_rng(seed);
    let mut s = ScenarioBuilder::new(seed);
    s.set_block_scale(3);
    let mut alloc = AddrAlloc::new();

    // A rarely-taken evaluator at a high address (forward call).
    let evaluate = synth::branchy(&mut s, "evaluate", alloc.high(), 6, &[0.9, 0.85]);

    let d = synth::begin_driver(&mut s, "search", 2);
    // The hot path: three long chains of biased forward diamonds,
    // entirely inside `search` — no calls, no inner back edges.
    for _ in 0..3 {
        let p1 = synth::biased_prob(&mut rng);
        let p2 = synth::biased_prob(&mut rng);
        let (_, _join) = s.diamond_chain(d.f, 4, &[p1, p2]);
    }
    // Evaluation happens on a small fraction of iterations.
    let guard = s.block(d.f, 1);
    let call_e = s.block(d.f, 0);
    s.call(call_e, evaluate);
    let after = s.block(d.f, 1);
    s.branch_p(guard, after, 0.88);
    let _ = after;
    synth::end_driver(&mut s, d, scale.trips(30_000));

    s.build().expect("crafty workload is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_program::{BranchKind, Entry, Executor};

    #[test]
    fn hot_path_is_call_free_forward_logic() {
        let (p, spec) = build(2, Scale::Test);
        let mut calls = 0u64;
        let mut taken = 0u64;
        for st in Executor::new(&p, spec) {
            if let Entry::Taken { kind, .. } = st.entry {
                taken += 1;
                if matches!(kind, BranchKind::Call | BranchKind::IndirectCall) {
                    calls += 1;
                }
            }
        }
        assert!(taken > 1_000);
        // Calls are a small minority of taken branches.
        assert!(calls * 5 < taken, "calls {calls} of {taken}");
    }
}
