//! `vortex`-like workload: many medium-frequency blocks across wide
//! call fan-out.
//!
//! 255.vortex (OO database) touches a large number of moderately hot
//! routines rather than a few scorching ones. The paper notes vortex as
//! the one benchmark where combined NET slightly *increases* region
//! transitions, because the `T_min` cut can keep only parts of each
//! observed trace when block frequencies hover near the threshold
//! (§4.3.2). The model therefore spreads execution thinly: sixteen
//! object-manager routines with middling guard probabilities and small
//! internal diamonds.

use crate::spec::Scale;
use crate::synth::{self, AddrAlloc};
use rand::Rng;
use rsel_program::patterns::ScenarioBuilder;
use rsel_program::{BehaviorSpec, Program};

const ROUTINES: usize = 16;

/// Builds the workload.
pub fn build(seed: u64, scale: Scale) -> (Program, BehaviorSpec) {
    let mut rng = synth::build_rng(seed);
    let mut s = ScenarioBuilder::new(seed);
    s.set_block_scale(3);
    let mut alloc = AddrAlloc::new();

    let mem_get = synth::leaf(&mut s, "mem_get_word", alloc.low(), 2);

    let mut routines = Vec::with_capacity(ROUTINES);
    for i in 0..ROUTINES {
        let name = format!("chunk_{i}");
        let base = if i % 2 == 0 {
            alloc.low()
        } else {
            alloc.high()
        };
        let f = s.function(&name, base);
        let entry = s.block(f, 2);
        s.call(entry, mem_get);
        // Near-threshold branch frequencies are vortex's signature.
        let dia = s.diamond(f, rng.gen_range(0.25..0.75), 1);
        let _ = dia;
        let out = s.block(f, 1);
        s.ret(out);
        routines.push(f);
    }

    let d = synth::begin_driver(&mut s, "do_transaction", 2);
    for &r in &routines {
        let guard = s.block(d.f, 1);
        let call = s.block(d.f, 0);
        s.call(call, r);
        let after = s.block(d.f, 1);
        // Medium frequency: each routine runs on 30–70% of iterations.
        s.branch_p(guard, after, rng.gen_range(0.3..0.7));
        let _ = after;
    }
    synth::end_driver(&mut s, d, scale.trips(12_000));

    s.build().expect("vortex workload is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_program::Executor;
    use std::collections::HashMap;

    #[test]
    fn frequencies_are_medium_not_bimodal() {
        let (p, spec) = build(10, Scale::Test);
        let mut counts: HashMap<_, u64> = HashMap::new();
        let mut total = 0u64;
        for st in Executor::new(&p, spec) {
            *counts.entry(st.block).or_insert(0) += 1;
            total += 1;
        }
        // Many blocks execute between 10% and 90% of the driver trips.
        let trips = Scale::Test.trips(12_000) as u64;
        let medium = counts
            .values()
            .filter(|&&c| c > trips / 10 && c < trips * 9 / 10)
            .count();
        assert!(
            medium > 30,
            "medium-frequency blocks: {medium} (total {total})"
        );
    }
}
