//! `perlbmk`-like workload: bytecode interpreter dispatch through
//! indirect jumps.
//!
//! 253.perlbmk runs Perl's opcode loop: an indirect dispatch whose
//! handlers share a common loop back edge. A few opcodes dominate, many
//! execute occasionally — giving region selection a hot indirect branch
//! whose observed targets differ from trace to trace.

use crate::spec::Scale;
use crate::synth::{self, AddrAlloc};
use rand::Rng;
use rsel_program::patterns::ScenarioBuilder;
use rsel_program::{BehaviorSpec, Program};

const HANDLERS: usize = 14;

/// Builds the workload.
pub fn build(seed: u64, scale: Scale) -> (Program, BehaviorSpec) {
    let mut rng = synth::build_rng(seed);
    let mut s = ScenarioBuilder::new(seed);
    s.set_block_scale(3);
    let mut alloc = AddrAlloc::new();

    let sv_new = synth::leaf(&mut s, "sv_newmortal", alloc.low(), 3);
    let hash_fetch = synth::worker(&mut s, "hv_fetch", alloc.low(), 2, 6);

    // Hand-rolled driver: head, dispatch, handlers, latch, exit.
    let f = s.function("runops", synth::MAIN_BASE);
    s.set_entry(f);
    let head = s.block(f, 2);
    let _ = head;
    let dispatch = s.block(f, 1);
    let mut handlers = Vec::with_capacity(HANDLERS);
    for i in 0..HANDLERS {
        let h = s.block(f, 2 + (i % 4) as u32);
        handlers.push(h);
    }
    let latch = s.block(f, 1);
    let exit = s.block(f, 0);
    s.ret(exit);

    // Two handlers call helpers; the rest are straight-line.
    for (i, &h) in handlers.iter().enumerate() {
        match i {
            2 => s.call(h, sv_new),
            5 => s.call(h, hash_fetch),
            _ => s.jump(h, latch),
        }
    }
    // Handlers that called helpers fall through to the next handler
    // block after the call returns — realistic opcode fallthrough; all
    // others jump straight to the latch.

    // Dispatch weights: three hot opcodes, a tail of cold ones.
    let mut targets = Vec::with_capacity(HANDLERS);
    for (i, &h) in handlers.iter().enumerate() {
        let w = match i {
            0 | 2 | 7 => 25 + rng.gen_range(0u32..10),
            _ => 1 + rng.gen_range(0u32..2),
        };
        targets.push((h, w));
    }
    s.indirect_jump_weighted(dispatch, targets);

    let trips = scale.trips(50_000);
    s.branch_trips(latch, head, trips);

    s.build().expect("perlbmk workload is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_program::{BranchKind, Entry, Executor};
    use std::collections::HashMap;

    #[test]
    fn dispatch_spreads_over_handlers_with_hot_heads() {
        let (p, spec) = build(8, Scale::Test);
        let mut targets: HashMap<_, u64> = HashMap::new();
        for st in Executor::new(&p, spec) {
            if let Entry::Taken {
                kind: BranchKind::IndirectJump,
                ..
            } = st.entry
            {
                *targets.entry(st.start).or_insert(0) += 1;
            }
        }
        assert!(
            targets.len() >= 10,
            "distinct handlers hit: {}",
            targets.len()
        );
        let max = targets.values().max().copied().unwrap_or(0);
        let min = targets.values().min().copied().unwrap_or(0);
        assert!(max > 8 * min.max(1), "hot/cold skew: {max} vs {min}");
    }
}
