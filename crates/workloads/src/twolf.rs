//! `twolf`-like workload: annealing loop with unbiased accept/reject
//! diamonds.
//!
//! 300.twolf's simulated-annealing placer decides accept/reject with
//! temperature-dependent randomness — unbiased branches followed by a
//! shared cost-update tail, the paper's Figure 4 situation where NET
//! duplicates the tail in both traces and trace combination removes the
//! duplication.

use crate::spec::Scale;
use crate::synth::{self, AddrAlloc};
use rsel_program::patterns::ScenarioBuilder;
use rsel_program::{BehaviorSpec, Program};

/// Builds the workload.
pub fn build(seed: u64, scale: Scale) -> (Program, BehaviorSpec) {
    let mut rng = synth::build_rng(seed);
    let mut s = ScenarioBuilder::new(seed);
    s.set_block_scale(3);
    let mut alloc = AddrAlloc::new();

    // Cost helper below main: the call is a backward branch on the
    // dominant path (an interprocedural cycle for LEI).
    let cost = synth::worker(&mut s, "new_dbox", alloc.low(), 2, 8);
    let pick = synth::leaf(&mut s, "pick_cell", alloc.low(), 3);

    let d = synth::begin_driver(&mut s, "uloop", 2);
    synth::call_site(&mut s, d, pick, 1);
    synth::call_site(&mut s, d, cost, 1);
    // The unbiased accept/reject diamond followed by a *shared* tail
    // (Figure 4: unbiased branch, then a biased one at the join).
    let accept = s.diamond(d.f, synth::unbiased_prob(&mut rng), 2);
    let _ = accept;
    let tail = s.diamond(d.f, synth::biased_prob(&mut rng), 1);
    let _ = tail;
    // Second unbiased decision (orientation flip).
    let flip = s.diamond(d.f, synth::unbiased_prob(&mut rng), 1);
    let _ = flip;
    synth::end_driver(&mut s, d, scale.trips(24_000));

    s.build().expect("twolf workload is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_program::Executor;
    use std::collections::HashMap;

    #[test]
    fn accept_and_reject_sides_both_hot() {
        let (p, spec) = build(12, Scale::Test);
        let mut counts: HashMap<_, u64> = HashMap::new();
        for st in Executor::new(&p, spec) {
            *counts.entry(st.block).or_insert(0) += 1;
        }
        let trips = Scale::Test.trips(24_000) as u64;
        // At least four blocks run at 30–70% of the driver frequency
        // (the two unbiased diamonds' sides).
        let halfish = counts
            .values()
            .filter(|&&c| c > trips * 3 / 10 && c < trips * 7 / 10)
            .count();
        assert!(halfish >= 4, "half-frequency blocks: {halfish}");
    }
}
