//! Property tests for the decode-once stream: a [`DecodedStream`]
//! must be an exact, byte-identical reconstruction of the recording it
//! was decoded from, for arbitrary recorded behaviors.

use proptest::prelude::*;
use rsel_program::{BehaviorSpec, Executor, Program, ProgramBuilder};
use rsel_trace::{CompactStream, DecodedStream};

/// A looping program with conditional, indirect, and return branches,
/// so recorded streams exercise every entry-tag kind. `trips` and the
/// indirect weights vary the stream's shape and periodicity.
fn program(seed: u64, trips: u32, w1: u32, w2: u32) -> (Program, BehaviorSpec) {
    let mut b = ProgramBuilder::new();
    let f = b.function("main", 0x1000);
    let head = b.block(f);
    let sw = b.block(f);
    let h1 = b.block(f);
    let h2 = b.block(f);
    let latch = b.block(f);
    let out = b.block_with(f, 0);
    let _ = head;
    b.indirect_jump(sw);
    b.jump(h1, latch);
    b.jump(h2, latch);
    b.cond_branch(latch, head);
    b.ret(out);
    let p = b.build().unwrap();
    let mut spec = BehaviorSpec::new(seed);
    spec.indirect_weighted(
        p.block(sw).branch_addr().unwrap(),
        vec![(p.block(h1).start(), w1), (p.block(h2).start(), w2)],
    );
    spec.loop_trips(p.block(latch).branch_addr().unwrap(), trips);
    (p, spec)
}

proptest! {
    /// Decoding then re-materializing steps reproduces the compact
    /// replay exactly — block, start address, and entry (including the
    /// taken-branch source and kind) for every step.
    #[test]
    fn decoded_steps_round_trip(
        seed in 0u64..100,
        trips in 1u32..200,
        w1 in 1u32..8,
        w2 in 1u32..8,
    ) {
        let (p, spec) = program(seed, trips, w1, w2);
        let stream = CompactStream::record(Executor::new(&p, spec));
        let n_steps = stream.len();
        let decoded = DecodedStream::decode(stream, &p);
        prop_assert_eq!(decoded.len(), n_steps);
        let mut n = 0usize;
        for (i, expected) in decoded.compact().replay(&p).enumerate() {
            let got = decoded.step_at(i);
            prop_assert_eq!(got.block, expected.block, "step {}", i);
            prop_assert_eq!(got.start, expected.start, "step {}", i);
            prop_assert_eq!(got.entry, expected.entry, "step {}", i);
            n += 1;
        }
        prop_assert_eq!(n, decoded.len());
    }

    /// The decode-time statistics equal the stats of a step walk, and
    /// detected spin phases are sorted, disjoint, in bounds, and
    /// genuinely periodic in the decoded step sequence.
    #[test]
    fn stats_and_phases_are_consistent(
        seed in 0u64..100,
        trips in 1u32..400,
        w1 in 1u32..4,
        w2 in 1u32..4,
    ) {
        let (p, spec) = program(seed, trips, w1, w2);
        let stream = CompactStream::record(Executor::new(&p, spec));
        let decoded = DecodedStream::decode(stream, &p);
        let steps: Vec<_> = decoded.compact().replay(&p).collect();
        let walked = rsel_trace::StreamStats::collect(&p, &steps);
        prop_assert_eq!(decoded.stats(), walked);
        let mut prev_end = 0usize;
        for ph in decoded.phases() {
            let (start, end) = (ph.start as usize, ph.end());
            prop_assert!(ph.period >= 1);
            prop_assert!(ph.reps >= 4, "phases shorter than MIN_REPS");
            prop_assert!(start >= prev_end, "phases overlap");
            prop_assert!(end <= decoded.len(), "phase out of bounds");
            for i in start + ph.period as usize..end {
                let a = decoded.step_at(i);
                let b = decoded.step_at(i - ph.period as usize);
                prop_assert_eq!(a.block, b.block);
                prop_assert_eq!(a.entry, b.entry);
            }
            prev_end = end;
        }
    }
}
