//! Property tests for the compact (v2) stream loader's robustness.
//!
//! `load_compact_stream` is fed corrupted inputs — truncations at every
//! possible length and single-bit flips at arbitrary positions — and
//! must always either return a typed [`StreamIoError`] or a stream that
//! is fully valid against the program. It must never panic, and it must
//! never silently yield a *short* stream: a corrupted byte count that
//! drops steps is detected via the trailing-data check.

use proptest::prelude::*;
use rsel_program::{BehaviorSpec, Executor, Program, ProgramBuilder};
use rsel_trace::{CompactStream, load_compact_stream, save_compact_stream};

/// A looping program with conditional, indirect, and return branches,
/// so recorded streams exercise every entry-tag kind.
fn program(seed: u64) -> (Program, BehaviorSpec) {
    let mut b = ProgramBuilder::new();
    let f = b.function("main", 0x1000);
    let head = b.block(f);
    let sw = b.block(f);
    let h1 = b.block(f);
    let h2 = b.block(f);
    let latch = b.block(f);
    let out = b.block_with(f, 0);
    let _ = head;
    b.indirect_jump(sw);
    b.jump(h1, latch);
    b.jump(h2, latch);
    b.cond_branch(latch, head);
    b.ret(out);
    let p = b.build().unwrap();
    let mut spec = BehaviorSpec::new(seed);
    spec.indirect_weighted(
        p.block(sw).branch_addr().unwrap(),
        vec![(p.block(h1).start(), 3), (p.block(h2).start(), 1)],
    );
    spec.loop_trips(p.block(latch).branch_addr().unwrap(), 40);
    (p, spec)
}

fn recorded_bytes(seed: u64) -> (Program, CompactStream, Vec<u8>) {
    let (p, spec) = program(seed);
    let stream = CompactStream::record(Executor::new(&p, spec));
    let mut buf = Vec::new();
    save_compact_stream(&stream, &mut buf).unwrap();
    (p, stream, buf)
}

proptest! {
    /// Every proper prefix of a v2 file is rejected with a typed error;
    /// no truncation parses as a shorter-but-valid stream.
    #[test]
    fn truncation_always_errors(seed in 0u64..50, cut in 0usize..400) {
        let (p, _, buf) = recorded_bytes(seed);
        let cut = cut % buf.len();
        let err = load_compact_stream(&p, &buf[..cut]);
        prop_assert!(err.is_err(), "prefix of {cut} bytes must not parse");
    }

    /// A single flipped bit anywhere in the file never panics the
    /// loader, and whatever parses is fully valid: the same length as
    /// the original and replayable against the program without panics.
    #[test]
    fn bit_flips_error_or_stay_fully_valid(
        seed in 0u64..50,
        byte in 0usize..4096,
        bit in 0u8..8,
    ) {
        let (p, original, mut buf) = recorded_bytes(seed);
        let byte = byte % buf.len();
        buf[byte] ^= 1 << bit;
        match load_compact_stream(&p, buf.as_slice()) {
            Err(_) => {} // typed rejection is always acceptable
            Ok(loaded) => {
                // The flip was in a payload byte the format cannot
                // distinguish from legitimate data (another valid block
                // index, a different branch source). The stream must
                // still be complete and replayable.
                prop_assert_eq!(loaded.len(), original.len(),
                    "accepted stream silently changed length");
                prop_assert_eq!(loaded.replay(&p).count(), original.len());
            }
        }
    }

    /// Appending garbage after a well-formed stream is detected: a
    /// corrupted count field can never make the loader stop early and
    /// accept the rest as slack.
    #[test]
    fn trailing_bytes_rejected(seed in 0u64..50, extra in 1usize..16) {
        let (p, _, mut buf) = recorded_bytes(seed);
        buf.extend(vec![0u8; extra]);
        let err = load_compact_stream(&p, buf.as_slice());
        prop_assert!(err.is_err(), "trailing {extra} bytes must be rejected");
    }
}

#[test]
fn pristine_file_still_round_trips() {
    let (p, stream, buf) = recorded_bytes(7);
    let loaded = load_compact_stream(&p, buf.as_slice()).unwrap();
    assert_eq!(loaded, stream);
}
