//! A bit-packed append-only buffer with sequential reads.

use std::fmt;

/// An append-only sequence of bits, packed into bytes.
///
/// Bits are appended most-significant-first within each pushed value and
/// read back in the same order by a [`BitReader`]. The byte length
/// reported by [`BitString::byte_len`] is the storage the paper charges
/// when accounting for observed-trace memory (§4.3.4).
///
/// ```
/// use rsel_trace::BitString;
/// let mut b = BitString::new();
/// b.push_bits(0b10, 2);
/// b.push_bits(0xabcd, 16);
/// assert_eq!(b.bit_len(), 18);
/// assert_eq!(b.byte_len(), 3);
/// let mut r = b.reader();
/// assert_eq!(r.read_bits(2), Some(0b10));
/// assert_eq!(r.read_bits(16), Some(0xabcd));
/// assert_eq!(r.read_bits(1), None);
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BitString {
    bytes: Vec<u8>,
    bit_len: usize,
}

impl BitString {
    /// Creates an empty bit string.
    pub fn new() -> Self {
        BitString::default()
    }

    /// Appends the low `n` bits of `value`, most-significant-first.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn push_bits(&mut self, value: u64, n: u32) {
        assert!(n <= 64, "cannot push more than 64 bits at once");
        for i in (0..n).rev() {
            let bit = (value >> i) & 1 == 1;
            self.push_bit(bit);
        }
    }

    /// Appends a single bit.
    pub fn push_bit(&mut self, bit: bool) {
        let byte_idx = self.bit_len / 8;
        let bit_idx = 7 - (self.bit_len % 8);
        if byte_idx == self.bytes.len() {
            self.bytes.push(0);
        }
        if bit {
            self.bytes[byte_idx] |= 1 << bit_idx;
        }
        self.bit_len += 1;
    }

    /// Number of bits stored.
    pub fn bit_len(&self) -> usize {
        self.bit_len
    }

    /// Whether no bits are stored.
    pub fn is_empty(&self) -> bool {
        self.bit_len == 0
    }

    /// Number of bytes of storage (bits rounded up to whole bytes).
    pub fn byte_len(&self) -> usize {
        self.bit_len.div_ceil(8)
    }

    /// A sequential reader positioned at the first bit.
    pub fn reader(&self) -> BitReader<'_> {
        BitReader {
            bits: self,
            pos: 0,
            end: self.bit_len,
        }
    }

    /// A sequential reader over the bit range `start..end`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > bit_len()`.
    pub fn range_reader(&self, start: usize, end: usize) -> BitReader<'_> {
        assert!(
            start <= end && end <= self.bit_len,
            "bit range out of bounds"
        );
        BitReader {
            bits: self,
            pos: start,
            end,
        }
    }

    /// Reads `n` bits starting at bit position `pos` without a reader.
    ///
    /// Returns `None` if the range extends past the end.
    pub fn bits_at(&self, pos: usize, n: u32) -> Option<u64> {
        if pos + n as usize > self.bit_len {
            return None;
        }
        self.range_reader(pos, pos + n as usize).read_bits(n)
    }
}

impl fmt::Debug for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitString[{} bits:", self.bit_len)?;
        let shown = self.bit_len.min(64);
        f.write_str(" ")?;
        let mut r = self.reader();
        for _ in 0..shown {
            let bit = r.read_bit().expect("within bit_len");
            f.write_str(if bit { "1" } else { "0" })?;
        }
        if self.bit_len > shown {
            f.write_str("…")?;
        }
        f.write_str("]")
    }
}

/// Sequential reader over a [`BitString`].
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    bits: &'a BitString,
    pos: usize,
    end: usize,
}

impl BitReader<'_> {
    /// Reads one bit; `None` when exhausted.
    pub fn read_bit(&mut self) -> Option<bool> {
        if self.pos >= self.end {
            return None;
        }
        let byte = self.bits.bytes[self.pos / 8];
        let bit = (byte >> (7 - self.pos % 8)) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    /// Reads `n` bits as a most-significant-first integer; `None` if
    /// fewer than `n` bits remain (the reader position is unspecified
    /// afterwards in that case).
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn read_bits(&mut self, n: u32) -> Option<u64> {
        assert!(n <= 64, "cannot read more than 64 bits at once");
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | u64::from(self.read_bit()?);
        }
        Some(v)
    }

    /// Number of bits remaining.
    pub fn remaining(&self) -> usize {
        self.end - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_widths() {
        let mut b = BitString::new();
        b.push_bits(0b1, 1);
        b.push_bits(0b01, 2);
        b.push_bits(0xdead_beef, 32);
        b.push_bits(0x1234_5678_9abc_def0, 64);
        let mut r = b.reader();
        assert_eq!(r.read_bits(1), Some(1));
        assert_eq!(r.read_bits(2), Some(1));
        assert_eq!(r.read_bits(32), Some(0xdead_beef));
        assert_eq!(r.read_bits(64), Some(0x1234_5678_9abc_def0));
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn byte_len_rounds_up() {
        let mut b = BitString::new();
        assert_eq!(b.byte_len(), 0);
        assert!(b.is_empty());
        b.push_bit(true);
        assert_eq!(b.byte_len(), 1);
        b.push_bits(0, 7);
        assert_eq!(b.byte_len(), 1);
        b.push_bit(false);
        assert_eq!(b.byte_len(), 2);
        assert_eq!(b.bit_len(), 9);
    }

    #[test]
    fn reading_past_end_returns_none() {
        let mut b = BitString::new();
        b.push_bits(0b101, 3);
        let mut r = b.reader();
        assert_eq!(r.read_bits(3), Some(0b101));
        assert_eq!(r.read_bit(), None);
        let mut r2 = b.reader();
        assert_eq!(r2.read_bits(4), None, "partial read fails");
    }

    #[test]
    fn bit_order_is_msb_first() {
        let mut b = BitString::new();
        b.push_bits(0b10, 2);
        let mut r = b.reader();
        assert_eq!(r.read_bit(), Some(true));
        assert_eq!(r.read_bit(), Some(false));
    }

    #[test]
    fn debug_shows_bits() {
        let mut b = BitString::new();
        b.push_bits(0b1010, 4);
        assert_eq!(format!("{b:?}"), "BitString[4 bits: 1010]");
    }

    #[test]
    #[should_panic(expected = "64 bits")]
    fn oversized_push_panics() {
        BitString::new().push_bits(0, 65);
    }
}
