//! Recording and replaying executor event streams.

use rsel_program::{BranchKind, Entry, Program, Step};

/// A recorded execution: the full [`Step`] stream of one run.
///
/// Recording lets the same dynamic execution be fed to several
/// region-selection algorithms, guaranteeing an identical input stream —
/// the property the paper gets by abstracting "all details of region
/// selection ... out of the framework" (§2.3, footnote 4).
///
/// ```
/// use rsel_program::{ProgramBuilder, BehaviorSpec, Executor};
/// use rsel_trace::RecordedStream;
///
/// let mut b = ProgramBuilder::new();
/// let f = b.function("main", 0x100);
/// let bb = b.block(f);
/// let ex = b.block_with(f, 0);
/// b.cond_branch(bb, bb);
/// b.ret(ex);
/// let p = b.build().unwrap();
/// let mut spec = BehaviorSpec::new(1);
/// spec.loop_trips(p.block(bb).branch_addr().unwrap(), 3);
/// let rec = RecordedStream::record(Executor::new(&p, spec));
/// assert_eq!(rec.len(), rec.replay().count());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecordedStream {
    steps: Vec<Step>,
}

impl RecordedStream {
    /// Records every step of `source` to completion.
    pub fn record<I: IntoIterator<Item = Step>>(source: I) -> Self {
        RecordedStream {
            steps: source.into_iter().collect(),
        }
    }

    /// Records at most `limit` steps of `source`.
    pub fn record_bounded<I: IntoIterator<Item = Step>>(source: I, limit: usize) -> Self {
        RecordedStream {
            steps: source.into_iter().take(limit).collect(),
        }
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The recorded steps.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Iterates over the recorded steps by value.
    pub fn replay(&self) -> impl Iterator<Item = Step> + '_ {
        self.steps.iter().copied()
    }
}

impl FromIterator<Step> for RecordedStream {
    fn from_iter<I: IntoIterator<Item = Step>>(iter: I) -> Self {
        RecordedStream::record(iter)
    }
}

impl Extend<Step> for RecordedStream {
    fn extend<I: IntoIterator<Item = Step>>(&mut self, iter: I) {
        self.steps.extend(iter);
    }
}

pub(crate) fn kind_to_tag(kind: BranchKind) -> u8 {
    match kind {
        BranchKind::Cond => 0,
        BranchKind::Jump => 1,
        BranchKind::IndirectJump => 2,
        BranchKind::Call => 3,
        BranchKind::IndirectCall => 4,
        BranchKind::Ret => 5,
    }
}

pub(crate) fn tag_to_kind(tag: u8) -> Option<BranchKind> {
    Some(match tag {
        0 => BranchKind::Cond,
        1 => BranchKind::Jump,
        2 => BranchKind::IndirectJump,
        3 => BranchKind::Call,
        4 => BranchKind::IndirectCall,
        5 => BranchKind::Ret,
        _ => return None,
    })
}

const ENTRY_START: u8 = 0;
const ENTRY_FALLTHROUGH: u8 = 1;
const ENTRY_TAKEN_BASE: u8 = 2;

/// A compactly recorded execution: one `u32` block index and one tag
/// byte per step, with taken-branch sources in a side table.
///
/// [`RecordedStream`] stores 32 bytes per step (a full [`Step`]).
/// Because a step's `start` is always the start address of its block,
/// the stream is fully determined by the block-index sequence, the
/// entry tags, and — for taken entries only — the branch source. The
/// compact form stores exactly that, cutting the per-step footprint to
/// 5 bytes plus 8 per taken branch, so an entire workload matrix worth
/// of executions fits comfortably in memory and can be replayed once
/// per selector instead of re-executing the program.
///
/// Replay requires the [`Program`] the stream was recorded from: block
/// indices are resolved back to [`Step`]s against it.
///
/// ```
/// use rsel_program::{ProgramBuilder, BehaviorSpec, Executor, Step};
/// use rsel_trace::{CompactStream, RecordedStream};
///
/// let mut b = ProgramBuilder::new();
/// let f = b.function("main", 0x100);
/// let bb = b.block(f);
/// let ex = b.block_with(f, 0);
/// b.cond_branch(bb, bb);
/// b.ret(ex);
/// let p = b.build().unwrap();
/// let mut spec = BehaviorSpec::new(1);
/// spec.loop_trips(p.block(bb).branch_addr().unwrap(), 3);
/// let live: Vec<Step> = Executor::new(&p, spec.clone()).collect();
/// let compact = CompactStream::record(Executor::new(&p, spec));
/// let replayed: Vec<Step> = compact.replay(&p).collect();
/// assert_eq!(replayed, live);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompactStream {
    /// Block index of each step, in execution order.
    blocks: Vec<u32>,
    /// Entry tag of each step: 0 start, 1 fall-through, 2 + kind tag
    /// for taken entries.
    tags: Vec<u8>,
    /// Branch source of each taken entry, in execution order.
    taken_srcs: Vec<rsel_program::Addr>,
}

impl CompactStream {
    /// Records every step of `source` to completion.
    pub fn record<I: IntoIterator<Item = Step>>(source: I) -> Self {
        let mut s = CompactStream::default();
        s.extend(source);
        s
    }

    /// Records at most `limit` steps of `source`.
    pub fn record_bounded<I: IntoIterator<Item = Step>>(source: I, limit: usize) -> Self {
        CompactStream::record(source.into_iter().take(limit))
    }

    /// Compacts an already-recorded stream.
    pub fn from_recorded(rec: &RecordedStream) -> Self {
        CompactStream::record(rec.replay())
    }

    /// Expands back into a full [`RecordedStream`].
    pub fn to_recorded(&self, program: &Program) -> RecordedStream {
        self.replay(program).collect()
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Number of taken-branch entries recorded.
    pub fn taken_count(&self) -> usize {
        self.taken_srcs.len()
    }

    /// Payload bytes held by the compact encoding (excluding `Vec`
    /// headers and spare capacity) — 5 per step plus 8 per taken
    /// branch.
    pub fn byte_size(&self) -> usize {
        self.blocks.len() * 4 + self.tags.len() + self.taken_srcs.len() * 8
    }

    /// Iterates the recorded steps, reconstructing each [`Step`]
    /// against `program`.
    ///
    /// # Panics
    ///
    /// Panics if a recorded block index is out of range for `program`
    /// (i.e. the stream was recorded from a different program).
    pub fn replay<'p>(&'p self, program: &'p Program) -> impl Iterator<Item = Step> + 'p {
        let mut srcs = self.taken_srcs.iter();
        self.blocks
            .iter()
            .zip(self.tags.iter())
            .map(move |(&idx, &tag)| {
                let block = program.blocks()[idx as usize].id();
                let entry = match tag {
                    ENTRY_START => Entry::Start,
                    ENTRY_FALLTHROUGH => Entry::Fallthrough,
                    t => Entry::Taken {
                        src: *srcs.next().expect("taken entry has a recorded source"),
                        kind: tag_to_kind(t - ENTRY_TAKEN_BASE)
                            .expect("recorded tag encodes a branch kind"),
                    },
                };
                Step {
                    block,
                    start: program.block(block).start(),
                    entry,
                }
            })
    }

    pub(crate) fn raw_parts(&self) -> (&[u32], &[u8], &[rsel_program::Addr]) {
        (&self.blocks, &self.tags, &self.taken_srcs)
    }

    pub(crate) fn from_raw_parts(
        blocks: Vec<u32>,
        tags: Vec<u8>,
        taken_srcs: Vec<rsel_program::Addr>,
    ) -> Self {
        CompactStream {
            blocks,
            tags,
            taken_srcs,
        }
    }
}

impl FromIterator<Step> for CompactStream {
    fn from_iter<I: IntoIterator<Item = Step>>(iter: I) -> Self {
        CompactStream::record(iter)
    }
}

impl Extend<Step> for CompactStream {
    fn extend<I: IntoIterator<Item = Step>>(&mut self, iter: I) {
        for step in iter {
            self.blocks
                .push(u32::try_from(step.block.index()).expect("block index fits in 32 bits"));
            match step.entry {
                Entry::Start => self.tags.push(ENTRY_START),
                Entry::Fallthrough => self.tags.push(ENTRY_FALLTHROUGH),
                Entry::Taken { src, kind } => {
                    self.tags.push(ENTRY_TAKEN_BASE + kind_to_tag(kind));
                    self.taken_srcs.push(src);
                }
            }
        }
    }
}

/// Summary statistics of an execution stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Basic blocks executed.
    pub blocks: u64,
    /// Instructions executed.
    pub instructions: u64,
    /// Taken branches observed.
    pub taken_branches: u64,
    /// Taken branches whose target is at or below the source
    /// (*backward* branches, the NET/LEI profiling trigger).
    pub backward_taken: u64,
}

impl StreamStats {
    /// Computes statistics for `steps` executed over `program` in one
    /// pass.
    pub fn collect<'a>(program: &Program, steps: impl IntoIterator<Item = &'a Step>) -> Self {
        let mut s = StreamStats::default();
        for step in steps {
            s.blocks += 1;
            s.instructions += program.block(step.block).len() as u64;
            if let Entry::Taken { src, .. } = step.entry {
                s.taken_branches += 1;
                if step.start.is_backward_from(src) {
                    s.backward_taken += 1;
                }
            }
        }
        s
    }

    /// Computes statistics for a compact stream in one pass over its
    /// raw arrays, without materializing a single [`Step`]. Equal to
    /// [`StreamStats::collect`] over the replayed steps.
    ///
    /// # Panics
    ///
    /// Panics if a recorded block index is out of range for `program`.
    pub fn collect_compact(program: &Program, stream: &CompactStream) -> Self {
        let mut s = StreamStats::default();
        let blocks = program.blocks();
        let mut srcs = stream.taken_srcs.iter();
        for (&idx, &tag) in stream.blocks.iter().zip(&stream.tags) {
            let b = &blocks[idx as usize];
            s.blocks += 1;
            s.instructions += b.len() as u64;
            if tag >= ENTRY_TAKEN_BASE {
                let src = *srcs.next().expect("taken entry has a recorded source");
                s.taken_branches += 1;
                if b.start().is_backward_from(src) {
                    s.backward_taken += 1;
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_program::{BehaviorSpec, Executor, ProgramBuilder};

    fn run() -> (Program, RecordedStream) {
        let mut b = ProgramBuilder::new();
        let f = b.function("main", 0x100);
        let head = b.block(f);
        let body = b.block(f);
        let exit = b.block_with(f, 0);
        let _ = head;
        b.cond_branch(body, head);
        b.ret(exit);
        let p = b.build().unwrap();
        let mut spec = BehaviorSpec::new(1);
        spec.loop_trips(p.block(body).branch_addr().unwrap(), 4);
        let rec = RecordedStream::record(Executor::new(&p, spec));
        (p, rec)
    }

    #[test]
    fn replay_matches_recording() {
        let (_, rec) = run();
        let replayed: Vec<Step> = rec.replay().collect();
        assert_eq!(replayed.as_slice(), rec.steps());
        assert!(!rec.is_empty());
    }

    #[test]
    fn stats_count_backward_branches() {
        let (p, rec) = run();
        let stats = StreamStats::collect(&p, rec.steps());
        // 4 iterations -> 3 backward taken branches (the 4th falls out).
        assert_eq!(stats.backward_taken, 3);
        assert_eq!(stats.blocks, rec.len() as u64);
        assert!(stats.instructions >= stats.blocks);
    }

    #[test]
    fn bounded_recording_truncates() {
        let mut b = ProgramBuilder::new();
        let f = b.function("main", 0x100);
        let spin = b.block(f);
        let exit = b.block_with(f, 0);
        b.cond_branch(spin, spin);
        b.ret(exit);
        let p = b.build().unwrap();
        let mut spec = BehaviorSpec::new(0);
        spec.always(p.block(spin).branch_addr().unwrap());
        let rec = RecordedStream::record_bounded(Executor::new(&p, spec), 10);
        assert_eq!(rec.len(), 10);
    }

    #[test]
    fn collect_from_iterator() {
        let (_, rec) = run();
        let again: RecordedStream = rec.replay().collect();
        assert_eq!(again, rec);
    }

    #[test]
    fn compact_replay_is_bit_identical() {
        let (p, rec) = run();
        let compact = CompactStream::from_recorded(&rec);
        let replayed: Vec<Step> = compact.replay(&p).collect();
        assert_eq!(replayed.as_slice(), rec.steps());
        assert_eq!(compact.to_recorded(&p), rec);
        assert_eq!(compact.len(), rec.len());
    }

    #[test]
    fn compact_is_smaller_than_full_steps() {
        let (_, rec) = run();
        let compact = CompactStream::from_recorded(&rec);
        assert!(!compact.is_empty());
        assert!(compact.byte_size() < rec.len() * std::mem::size_of::<Step>());
    }

    #[test]
    fn compact_taken_sources_preserved() {
        let (p, rec) = run();
        let compact = CompactStream::from_recorded(&rec);
        // One zipped pass over both streams: every live taken entry
        // replays with the same source and kind.
        let mut live_taken = 0usize;
        for (live, replayed) in rec.replay().zip(compact.replay(&p)) {
            match (live.entry, replayed.entry) {
                (Entry::Taken { src: a, kind: ka }, Entry::Taken { src: b, kind: kb }) => {
                    assert_eq!((a, ka), (b, kb));
                    live_taken += 1;
                }
                (l, r) => assert!(!l.is_taken() && !r.is_taken(), "{l:?} vs {r:?}"),
            }
        }
        assert_eq!(compact.taken_count(), live_taken);
    }

    #[test]
    fn compact_stats_match_step_stats() {
        let (p, rec) = run();
        let compact = CompactStream::from_recorded(&rec);
        assert_eq!(
            StreamStats::collect_compact(&p, &compact),
            StreamStats::collect(&p, rec.steps())
        );
    }

    #[test]
    fn compact_bounded_recording_truncates() {
        let mut b = ProgramBuilder::new();
        let f = b.function("main", 0x100);
        let spin = b.block(f);
        let exit = b.block_with(f, 0);
        b.cond_branch(spin, spin);
        b.ret(exit);
        let p = b.build().unwrap();
        let mut spec = BehaviorSpec::new(0);
        spec.always(p.block(spin).branch_addr().unwrap());
        let rec = CompactStream::record_bounded(Executor::new(&p, spec), 10);
        assert_eq!(rec.len(), 10);
        assert_eq!(rec.replay(&p).count(), 10);
    }

    #[test]
    fn compact_collects_from_iterator() {
        let (p, rec) = run();
        let compact: CompactStream = rec.replay().collect();
        assert_eq!(compact.to_recorded(&p), rec);
    }
}
