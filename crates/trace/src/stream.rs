//! Recording and replaying executor event streams.

use rsel_program::{Entry, Program, Step};

/// A recorded execution: the full [`Step`] stream of one run.
///
/// Recording lets the same dynamic execution be fed to several
/// region-selection algorithms, guaranteeing an identical input stream —
/// the property the paper gets by abstracting "all details of region
/// selection ... out of the framework" (§2.3, footnote 4).
///
/// ```
/// use rsel_program::{ProgramBuilder, BehaviorSpec, Executor};
/// use rsel_trace::RecordedStream;
///
/// let mut b = ProgramBuilder::new();
/// let f = b.function("main", 0x100);
/// let bb = b.block(f);
/// let ex = b.block_with(f, 0);
/// b.cond_branch(bb, bb);
/// b.ret(ex);
/// let p = b.build().unwrap();
/// let mut spec = BehaviorSpec::new(1);
/// spec.loop_trips(p.block(bb).branch_addr().unwrap(), 3);
/// let rec = RecordedStream::record(Executor::new(&p, spec));
/// assert_eq!(rec.len(), rec.replay().count());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecordedStream {
    steps: Vec<Step>,
}

impl RecordedStream {
    /// Records every step of `source` to completion.
    pub fn record<I: IntoIterator<Item = Step>>(source: I) -> Self {
        RecordedStream {
            steps: source.into_iter().collect(),
        }
    }

    /// Records at most `limit` steps of `source`.
    pub fn record_bounded<I: IntoIterator<Item = Step>>(source: I, limit: usize) -> Self {
        RecordedStream {
            steps: source.into_iter().take(limit).collect(),
        }
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The recorded steps.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Iterates over the recorded steps by value.
    pub fn replay(&self) -> impl Iterator<Item = Step> + '_ {
        self.steps.iter().copied()
    }
}

impl FromIterator<Step> for RecordedStream {
    fn from_iter<I: IntoIterator<Item = Step>>(iter: I) -> Self {
        RecordedStream::record(iter)
    }
}

impl Extend<Step> for RecordedStream {
    fn extend<I: IntoIterator<Item = Step>>(&mut self, iter: I) {
        self.steps.extend(iter);
    }
}

/// Summary statistics of an execution stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Basic blocks executed.
    pub blocks: u64,
    /// Instructions executed.
    pub instructions: u64,
    /// Taken branches observed.
    pub taken_branches: u64,
    /// Taken branches whose target is at or below the source
    /// (*backward* branches, the NET/LEI profiling trigger).
    pub backward_taken: u64,
}

impl StreamStats {
    /// Computes statistics for `steps` executed over `program`.
    pub fn collect<'a>(program: &Program, steps: impl IntoIterator<Item = &'a Step>) -> Self {
        let mut s = StreamStats::default();
        for step in steps {
            s.blocks += 1;
            s.instructions += program.block(step.block).len() as u64;
            if let Entry::Taken { src, .. } = step.entry {
                s.taken_branches += 1;
                if step.start.is_backward_from(src) {
                    s.backward_taken += 1;
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_program::{BehaviorSpec, Executor, ProgramBuilder};

    fn run() -> (Program, RecordedStream) {
        let mut b = ProgramBuilder::new();
        let f = b.function("main", 0x100);
        let head = b.block(f);
        let body = b.block(f);
        let exit = b.block_with(f, 0);
        let _ = head;
        b.cond_branch(body, head);
        b.ret(exit);
        let p = b.build().unwrap();
        let mut spec = BehaviorSpec::new(1);
        spec.loop_trips(p.block(body).branch_addr().unwrap(), 4);
        let rec = RecordedStream::record(Executor::new(&p, spec));
        (p, rec)
    }

    #[test]
    fn replay_matches_recording() {
        let (_, rec) = run();
        let replayed: Vec<Step> = rec.replay().collect();
        assert_eq!(replayed.as_slice(), rec.steps());
        assert!(!rec.is_empty());
    }

    #[test]
    fn stats_count_backward_branches() {
        let (p, rec) = run();
        let stats = StreamStats::collect(&p, rec.steps());
        // 4 iterations -> 3 backward taken branches (the 4th falls out).
        assert_eq!(stats.backward_taken, 3);
        assert_eq!(stats.blocks, rec.len() as u64);
        assert!(stats.instructions >= stats.blocks);
    }

    #[test]
    fn bounded_recording_truncates() {
        let mut b = ProgramBuilder::new();
        let f = b.function("main", 0x100);
        let spin = b.block(f);
        let exit = b.block_with(f, 0);
        b.cond_branch(spin, spin);
        b.ret(exit);
        let p = b.build().unwrap();
        let mut spec = BehaviorSpec::new(0);
        spec.always(p.block(spin).branch_addr().unwrap());
        let rec = RecordedStream::record_bounded(Executor::new(&p, spec), 10);
        assert_eq!(rec.len(), 10);
    }

    #[test]
    fn collect_from_iterator() {
        let (_, rec) = run();
        let again: RecordedStream = rec.replay().collect();
        assert_eq!(again, rec);
    }
}
