//! Binary serialization of recorded execution streams.
//!
//! Record a workload's execution once and replay it offline against any
//! number of selectors — what the paper's framework does by replaying
//! Pin-collected block streams. The format is a small fixed-width
//! little-endian encoding (magic, version, step count, then one record
//! per step); loading validates every address against the program, so a
//! stream can never desynchronize silently from the binary it claims to
//! describe.

use crate::stream::{CompactStream, RecordedStream, kind_to_tag, tag_to_kind};
use rsel_program::{Addr, BranchKind, Entry, Program, Step};
use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"RSEL";
const VERSION: u16 = 1;
const COMPACT_VERSION: u16 = 2;

const TAG_START: u8 = 0;
const TAG_FALLTHROUGH: u8 = 1;
const TAG_TAKEN: u8 = 2;

/// An error loading a recorded stream.
#[derive(Debug)]
#[non_exhaustive]
pub enum StreamIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input does not start with the stream magic.
    BadMagic,
    /// The format version is not supported.
    BadVersion(u16),
    /// A structural tag byte is invalid.
    BadTag(u8),
    /// A step names an address that is not a block start in the
    /// program.
    UnknownBlock(Addr),
    /// The input continues past the end of a well-formed stream — a
    /// corrupted length field would otherwise be parsed as a silently
    /// shorter stream.
    TrailingData,
    /// The taken-branch source count does not match the entry tags.
    TakenCountMismatch {
        /// Count stored in the stream header.
        header: u64,
        /// Taken entries implied by the tag array.
        tags: u64,
    },
}

impl fmt::Display for StreamIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamIoError::Io(e) => write!(f, "stream i/o failed: {e}"),
            StreamIoError::BadMagic => write!(f, "not a recorded stream (bad magic)"),
            StreamIoError::BadVersion(v) => write!(f, "unsupported stream version {v}"),
            StreamIoError::BadTag(t) => write!(f, "invalid record tag {t}"),
            StreamIoError::UnknownBlock(a) => {
                write!(f, "stream references unknown block {a}")
            }
            StreamIoError::TrailingData => {
                write!(f, "input continues past the end of the stream")
            }
            StreamIoError::TakenCountMismatch { header, tags } => {
                write!(
                    f,
                    "header claims {header} taken branches but tags encode {tags}"
                )
            }
        }
    }
}

impl Error for StreamIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StreamIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StreamIoError {
    fn from(e: io::Error) -> Self {
        StreamIoError::Io(e)
    }
}

fn kind_tag(kind: BranchKind) -> u8 {
    kind_to_tag(kind)
}

fn tag_kind(tag: u8) -> Result<BranchKind, StreamIoError> {
    tag_to_kind(tag).ok_or(StreamIoError::BadTag(tag))
}

/// Writes `stream` to `writer` (a `&mut` reference works too, as for
/// all `W: Write` APIs).
///
/// # Errors
///
/// Propagates any I/O error from the writer.
pub fn save_stream<W: Write>(stream: &RecordedStream, mut writer: W) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    writer.write_all(&(stream.len() as u64).to_le_bytes())?;
    for step in stream.steps() {
        writer.write_all(&step.start.raw().to_le_bytes())?;
        match step.entry {
            Entry::Start => writer.write_all(&[TAG_START])?,
            Entry::Fallthrough => writer.write_all(&[TAG_FALLTHROUGH])?,
            Entry::Taken { src, kind } => {
                writer.write_all(&[TAG_TAKEN, kind_tag(kind)])?;
                writer.write_all(&src.raw().to_le_bytes())?;
            }
        }
    }
    Ok(())
}

/// Reads a stream from `reader`, resolving every block against
/// `program`.
///
/// # Errors
///
/// Returns a [`StreamIoError`] on I/O failure, malformed input, or an
/// address that is not a block start of `program`.
pub fn load_stream<R: Read>(
    program: &Program,
    mut reader: R,
) -> Result<RecordedStream, StreamIoError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(StreamIoError::BadMagic);
    }
    let mut u16b = [0u8; 2];
    reader.read_exact(&mut u16b)?;
    let version = u16::from_le_bytes(u16b);
    if version != VERSION {
        return Err(StreamIoError::BadVersion(version));
    }
    let mut u64b = [0u8; 8];
    reader.read_exact(&mut u64b)?;
    let count = u64::from_le_bytes(u64b);
    let mut steps = Vec::with_capacity(count.min(1 << 24) as usize);
    for _ in 0..count {
        reader.read_exact(&mut u64b)?;
        let start = Addr::new(u64::from_le_bytes(u64b));
        let block = program
            .block_at(start)
            .ok_or(StreamIoError::UnknownBlock(start))?
            .id();
        let mut tag = [0u8; 1];
        reader.read_exact(&mut tag)?;
        let entry = match tag[0] {
            TAG_START => Entry::Start,
            TAG_FALLTHROUGH => Entry::Fallthrough,
            TAG_TAKEN => {
                let mut kt = [0u8; 1];
                reader.read_exact(&mut kt)?;
                let kind = tag_kind(kt[0])?;
                reader.read_exact(&mut u64b)?;
                Entry::Taken {
                    src: Addr::new(u64::from_le_bytes(u64b)),
                    kind,
                }
            }
            t => return Err(StreamIoError::BadTag(t)),
        };
        steps.push(Step {
            block,
            start,
            entry,
        });
    }
    Ok(steps.into_iter().collect())
}

/// Writes `stream` in the compact (version 2) on-disk format: block
/// indices, entry tags, and taken-branch sources as three contiguous
/// little-endian arrays.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
pub fn save_compact_stream<W: Write>(stream: &CompactStream, mut writer: W) -> io::Result<()> {
    let (blocks, tags, srcs) = stream.raw_parts();
    writer.write_all(MAGIC)?;
    writer.write_all(&COMPACT_VERSION.to_le_bytes())?;
    writer.write_all(&(blocks.len() as u64).to_le_bytes())?;
    writer.write_all(&(srcs.len() as u64).to_le_bytes())?;
    for b in blocks {
        writer.write_all(&b.to_le_bytes())?;
    }
    writer.write_all(tags)?;
    for s in srcs {
        writer.write_all(&s.raw().to_le_bytes())?;
    }
    Ok(())
}

/// Reads a compact (version 2) stream from `reader`, validating every
/// block index and entry tag against `program`.
///
/// # Errors
///
/// Returns a [`StreamIoError`] on I/O failure, malformed input, a
/// block index out of range for `program`, or a taken-source count
/// that does not match the tags.
pub fn load_compact_stream<R: Read>(
    program: &Program,
    mut reader: R,
) -> Result<CompactStream, StreamIoError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(StreamIoError::BadMagic);
    }
    let mut u16b = [0u8; 2];
    reader.read_exact(&mut u16b)?;
    let version = u16::from_le_bytes(u16b);
    if version != COMPACT_VERSION {
        return Err(StreamIoError::BadVersion(version));
    }
    let mut u64b = [0u8; 8];
    reader.read_exact(&mut u64b)?;
    let count = u64::from_le_bytes(u64b) as usize;
    reader.read_exact(&mut u64b)?;
    let taken = u64::from_le_bytes(u64b) as usize;
    let block_count = program.blocks().len();
    let mut blocks = Vec::with_capacity(count.min(1 << 24));
    let mut u32b = [0u8; 4];
    for _ in 0..count {
        reader.read_exact(&mut u32b)?;
        let idx = u32::from_le_bytes(u32b);
        if idx as usize >= block_count {
            // Out-of-range indices have no address to report; surface
            // the raw index as an address-shaped diagnostic.
            return Err(StreamIoError::UnknownBlock(Addr::new(u64::from(idx))));
        }
        blocks.push(idx);
    }
    let mut tags = vec![0u8; count];
    reader.read_exact(&mut tags)?;
    let mut expected_taken = 0usize;
    for &t in &tags {
        match t {
            TAG_START | TAG_FALLTHROUGH => {}
            t if (2..8).contains(&t) => expected_taken += 1,
            t => return Err(StreamIoError::BadTag(t)),
        }
    }
    if expected_taken != taken {
        return Err(StreamIoError::TakenCountMismatch {
            header: taken as u64,
            tags: expected_taken as u64,
        });
    }
    let mut srcs = Vec::with_capacity(taken.min(1 << 24));
    for _ in 0..taken {
        reader.read_exact(&mut u64b)?;
        srcs.push(Addr::new(u64::from_le_bytes(u64b)));
    }
    // A well-formed stream consumes the input exactly; anything left
    // means a corrupted length field shrank the parse, and accepting it
    // would silently yield a short stream.
    let mut probe = [0u8; 1];
    match reader.read(&mut probe) {
        Ok(0) => {}
        Ok(_) => return Err(StreamIoError::TrailingData),
        Err(e) => return Err(StreamIoError::Io(e)),
    }
    Ok(CompactStream::from_raw_parts(blocks, tags, srcs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_program::{BehaviorSpec, Executor, ProgramBuilder};

    fn program_and_stream() -> (Program, RecordedStream) {
        let mut b = ProgramBuilder::new();
        let f = b.function("main", 0x100);
        let head = b.block(f);
        let body = b.block(f);
        let exit = b.block_with(f, 0);
        let _ = head;
        b.cond_branch(body, head);
        b.ret(exit);
        let p = b.build().unwrap();
        let mut spec = BehaviorSpec::new(1);
        spec.loop_trips(p.block(body).branch_addr().unwrap(), 20);
        let stream = RecordedStream::record(Executor::new(&p, spec));
        (p, stream)
    }

    #[test]
    fn round_trip() {
        let (p, stream) = program_and_stream();
        let mut buf = Vec::new();
        save_stream(&stream, &mut buf).unwrap();
        let loaded = load_stream(&p, buf.as_slice()).unwrap();
        assert_eq!(loaded, stream);
    }

    #[test]
    fn bad_magic_rejected() {
        let (p, _) = program_and_stream();
        let err = load_stream(&p, b"NOPE".as_slice()).unwrap_err();
        assert!(matches!(err, StreamIoError::BadMagic), "{err}");
    }

    #[test]
    fn truncated_input_is_an_io_error() {
        let (p, stream) = program_and_stream();
        let mut buf = Vec::new();
        save_stream(&stream, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let err = load_stream(&p, buf.as_slice()).unwrap_err();
        assert!(matches!(err, StreamIoError::Io(_)), "{err}");
    }

    #[test]
    fn wrong_program_detected() {
        let (_, stream) = program_and_stream();
        let mut buf = Vec::new();
        save_stream(&stream, &mut buf).unwrap();
        // A different program whose blocks sit elsewhere.
        let mut b = ProgramBuilder::new();
        let f = b.function("other", 0x9000);
        let x = b.block(f);
        b.ret(x);
        let other = b.build().unwrap();
        let err = load_stream(&other, buf.as_slice()).unwrap_err();
        assert!(matches!(err, StreamIoError::UnknownBlock(_)), "{err}");
    }

    #[test]
    fn version_mismatch_detected() {
        let (p, stream) = program_and_stream();
        let mut buf = Vec::new();
        save_stream(&stream, &mut buf).unwrap();
        buf[4] = 0xff; // corrupt the version field
        let err = load_stream(&p, buf.as_slice()).unwrap_err();
        assert!(matches!(err, StreamIoError::BadVersion(_)), "{err}");
    }

    #[test]
    fn compact_round_trip() {
        let (p, stream) = program_and_stream();
        let compact = CompactStream::from_recorded(&stream);
        let mut buf = Vec::new();
        save_compact_stream(&compact, &mut buf).unwrap();
        let loaded = load_compact_stream(&p, buf.as_slice()).unwrap();
        assert_eq!(loaded, compact);
        assert_eq!(loaded.to_recorded(&p), stream);
    }

    #[test]
    fn compact_is_denser_on_disk() {
        let (_, stream) = program_and_stream();
        let compact = CompactStream::from_recorded(&stream);
        let mut full = Vec::new();
        save_stream(&stream, &mut full).unwrap();
        let mut small = Vec::new();
        save_compact_stream(&compact, &mut small).unwrap();
        assert!(small.len() < full.len());
    }

    #[test]
    fn compact_rejects_foreign_program() {
        let (_, stream) = program_and_stream();
        let compact = CompactStream::from_recorded(&stream);
        let mut buf = Vec::new();
        save_compact_stream(&compact, &mut buf).unwrap();
        let mut b = ProgramBuilder::new();
        let f = b.function("other", 0x9000);
        let x = b.block(f);
        b.ret(x);
        let other = b.build().unwrap();
        let err = load_compact_stream(&other, buf.as_slice()).unwrap_err();
        assert!(matches!(err, StreamIoError::UnknownBlock(_)), "{err}");
    }

    #[test]
    fn compact_version_field_distinguishes_formats() {
        let (p, stream) = program_and_stream();
        let compact = CompactStream::from_recorded(&stream);
        let mut buf = Vec::new();
        save_compact_stream(&compact, &mut buf).unwrap();
        // The v1 loader refuses a compact stream and vice versa.
        let err = load_stream(&p, buf.as_slice()).unwrap_err();
        assert!(matches!(err, StreamIoError::BadVersion(2)), "{err}");
        let mut v1 = Vec::new();
        save_stream(&stream, &mut v1).unwrap();
        let err = load_compact_stream(&p, v1.as_slice()).unwrap_err();
        assert!(matches!(err, StreamIoError::BadVersion(1)), "{err}");
    }

    #[test]
    fn replayed_stream_drives_identical_simulation() {
        // The serialized stream is byte-for-byte sufficient to drive a
        // simulation to the same result as the live executor.
        let (p, stream) = program_and_stream();
        let mut buf = Vec::new();
        save_stream(&stream, &mut buf).unwrap();
        let loaded = load_stream(&p, buf.as_slice()).unwrap();
        assert_eq!(loaded.steps(), stream.steps());
    }
}
