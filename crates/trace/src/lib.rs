//! Event streams and the compact trace codec.
//!
//! This crate supplies the pieces of the paper's framework that deal
//! with *recorded execution*:
//!
//! - [`BitString`]: a bit-packed append/read buffer;
//! - [`CompactTrace`]: the exact compact trace representation of the
//!   paper's Figure 14 (two bits for most branches, explicit targets for
//!   indirect branches, a terminator code plus the trace-end address),
//!   with faithful byte accounting so the observed-trace memory overhead
//!   of Figure 18 can be measured;
//! - [`CompactTrace::decode`]: reconstruction of the recorded path
//!   against a [`Program`](rsel_program::Program), as used when
//!   combining observed traces into a region (paper §4.2.2);
//! - [`stream`]: recording/replaying executor streams and summary
//!   statistics;
//! - [`decoded`]: the decode-once struct-of-arrays execution format
//!   ([`DecodedStream`]) with spin-phase detection, the input of the
//!   simulator's batch replay path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitstring;
pub mod compact;
pub mod decoded;
pub mod paths;
pub mod stream;
pub mod stream_io;

pub use bitstring::{BitReader, BitString};
pub use compact::{AddrWidth, CompactTrace, DecodeError, DecodedPath, TraceRecorder};
pub use decoded::{DecodedStream, SpinPhase};
pub use paths::PathProfile;
pub use stream::{CompactStream, RecordedStream, StreamStats};
pub use stream_io::{
    StreamIoError, load_compact_stream, load_stream, save_compact_stream, save_stream,
};
