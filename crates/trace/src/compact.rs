//! The compact trace representation of the paper's Figure 14.
//!
//! Trace combination (paper §4.2.1) stores every observed trace until a
//! region is selected. To keep that memory overhead low, a trace is
//! stored as a sequence of two-bit branch-outcome codes:
//!
//! - `01` + target address — taken branch with an unknown (indirect)
//!   target;
//! - `10` — conditional branch, not taken;
//! - `11` — conditional branch, taken;
//! - direct unconditional jumps and calls consume no bits at all;
//! - the stream ends with `00` followed by the address of the last
//!   instruction in the trace.
//!
//! Decoding replays the codes against the program, reconstructing the
//! exact instruction (and basic-block) path — the optimizer "must
//! already decode each instruction and identify all branch targets", so
//! the representation "leads to a simple CFG construction algorithm that
//! decodes each instruction at most once".

use crate::bitstring::{BitReader, BitString};
use rsel_program::{Addr, InstKind, Program};
use std::error::Error;
use std::fmt;

/// Width used to store explicit addresses in a compact trace.
///
/// The paper notes indirect targets require "an additional 32 or 64
/// bits"; the default is 32, matching the IA-32 setting of the original
/// evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum AddrWidth {
    /// 32-bit addresses.
    #[default]
    W32,
    /// 64-bit addresses.
    W64,
}

impl AddrWidth {
    /// Number of bits per stored address.
    pub fn bits(self) -> u32 {
        match self {
            AddrWidth::W32 => 32,
            AddrWidth::W64 => 64,
        }
    }
}

const CODE_INDIRECT: u64 = 0b01;
const CODE_NOT_TAKEN: u64 = 0b10;
const CODE_TAKEN: u64 = 0b11;
const CODE_END: u64 = 0b00;

/// Incremental encoder used while *observing* a trace.
///
/// The selector drives it as execution unfolds: call
/// [`TraceRecorder::record_cond`] at each conditional branch,
/// [`TraceRecorder::record_indirect`] at each indirect branch or return,
/// nothing at direct jumps/calls, and [`TraceRecorder::finish`] with the
/// address of the trace's final instruction.
#[derive(Clone, Debug)]
pub struct TraceRecorder {
    start: Addr,
    width: AddrWidth,
    bits: BitString,
}

impl TraceRecorder {
    /// Starts recording a trace whose first instruction is at `start`.
    pub fn new(start: Addr, width: AddrWidth) -> Self {
        TraceRecorder {
            start,
            width,
            bits: BitString::new(),
        }
    }

    fn push_addr(&mut self, addr: Addr) {
        let raw = addr.raw();
        if self.width == AddrWidth::W32 {
            assert!(
                raw <= u64::from(u32::MAX),
                "address {addr} exceeds 32-bit width"
            );
        }
        self.bits.push_bits(raw, self.width.bits());
    }

    /// Records the outcome of a conditional branch.
    pub fn record_cond(&mut self, taken: bool) {
        self.bits
            .push_bits(if taken { CODE_TAKEN } else { CODE_NOT_TAKEN }, 2);
    }

    /// Records a taken branch whose target is not statically known.
    pub fn record_indirect(&mut self, target: Addr) {
        self.bits.push_bits(CODE_INDIRECT, 2);
        self.push_addr(target);
    }

    /// Finishes the trace, noting its final instruction address.
    pub fn finish(mut self, last_inst: Addr) -> CompactTrace {
        self.bits.push_bits(CODE_END, 2);
        self.push_addr(last_inst);
        CompactTrace {
            start: self.start,
            width: self.width,
            bits: self.bits,
        }
    }
}

/// A fully encoded observed trace (paper Figure 14).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompactTrace {
    start: Addr,
    width: AddrWidth,
    bits: BitString,
}

/// The path reconstructed from a [`CompactTrace`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodedPath {
    /// Every instruction address on the path, in execution order.
    pub insts: Vec<Addr>,
    /// The start address of every basic block entered, in order
    /// (including the first).
    pub blocks: Vec<Addr>,
    /// Where control went after the final instruction, when the trace
    /// recorded it (the final branch's outcome, if it was a branch with
    /// a recorded outcome).
    pub exit_target: Option<Addr>,
}

/// An error reconstructing a compact trace against a program.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The path reached an address holding no instruction.
    UnknownInstruction(Addr),
    /// The bit stream ended before the path did.
    OutOfBits,
    /// An indirect branch was reached but the next code was not an
    /// indirect-target code.
    UnexpectedCode {
        /// Address of the branch being decoded.
        at: Addr,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownInstruction(a) => {
                write!(f, "no instruction at {a} while decoding trace")
            }
            DecodeError::OutOfBits => write!(f, "compact trace ended prematurely"),
            DecodeError::UnexpectedCode { at } => {
                write!(f, "unexpected branch code at {at}")
            }
        }
    }
}

impl Error for DecodeError {}

impl CompactTrace {
    /// The address of the first instruction.
    pub fn start(&self) -> Addr {
        self.start
    }

    /// Bytes of storage this trace occupies (code bits rounded up, plus
    /// the start address), as charged by the Figure 18 memory
    /// accounting.
    pub fn byte_len(&self) -> usize {
        self.bits.byte_len() + (self.width.bits() as usize) / 8
    }

    /// Reconstructs the instruction and block path against `program`.
    ///
    /// The terminator and end address sit at a fixed position at the
    /// tail of the bit stream, so decoding first splits the stream into
    /// `codes ++ [00] ++ end-address`, then replays the codes from the
    /// trace start until the walk reaches the end address. Any codes
    /// left over at that point describe the final instruction's own
    /// outcome (where the observed execution *exited* the trace) and are
    /// surfaced as [`DecodedPath::exit_target`].
    ///
    /// Traces produced by NET, LEI and trace-combination observation
    /// never visit the same instruction twice (cycles close *at* the
    /// final branch), which is what makes the stop-at-end-address rule
    /// unambiguous.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the program does not match the
    /// recording (different program, or corrupted bits).
    pub fn decode(&self, program: &Program) -> Result<DecodedPath, DecodeError> {
        let aw = self.width.bits();
        let total = self.bits.bit_len();
        if total < aw as usize + 2 {
            return Err(DecodeError::OutOfBits);
        }
        let end_addr = Addr::new(
            self.bits
                .bits_at(total - aw as usize, aw)
                .ok_or(DecodeError::OutOfBits)?,
        );
        let term = self
            .bits
            .bits_at(total - aw as usize - 2, 2)
            .ok_or(DecodeError::OutOfBits)?;
        if term != CODE_END {
            return Err(DecodeError::UnexpectedCode { at: self.start });
        }
        let mut r = self.bits.range_reader(0, total - aw as usize - 2);

        let mut insts = Vec::new();
        let mut blocks = Vec::new();
        let mut addr = self.start;
        loop {
            let inst = program
                .inst_at(addr)
                .ok_or(DecodeError::UnknownInstruction(addr))?;
            insts.push(addr);
            if program.block_at(addr).is_some() {
                blocks.push(addr);
            }
            if addr == end_addr {
                let exit_target =
                    self.read_exit(&mut r, inst.kind(), inst.fallthrough_addr(), addr)?;
                return Ok(DecodedPath {
                    insts,
                    blocks,
                    exit_target,
                });
            }
            addr = match inst.kind() {
                InstKind::Straight => inst.fallthrough_addr(),
                InstKind::Jump { target } | InstKind::Call { target } => target,
                InstKind::CondBranch { target } => {
                    match r.read_bits(2).ok_or(DecodeError::OutOfBits)? {
                        CODE_TAKEN => target,
                        CODE_NOT_TAKEN => inst.fallthrough_addr(),
                        _ => return Err(DecodeError::UnexpectedCode { at: addr }),
                    }
                }
                InstKind::IndirectJump | InstKind::IndirectCall | InstKind::Ret => {
                    match r.read_bits(2).ok_or(DecodeError::OutOfBits)? {
                        CODE_INDIRECT => Addr::new(r.read_bits(aw).ok_or(DecodeError::OutOfBits)?),
                        _ => return Err(DecodeError::UnexpectedCode { at: addr }),
                    }
                }
            };
        }
    }

    /// Parses any leftover code bits as the final instruction's outcome.
    fn read_exit(
        &self,
        r: &mut BitReader<'_>,
        last_kind: InstKind,
        fallthrough: Addr,
        end: Addr,
    ) -> Result<Option<Addr>, DecodeError> {
        if r.remaining() == 0 {
            return Ok(None);
        }
        let code = r.read_bits(2).ok_or(DecodeError::OutOfBits)?;
        let exit = match code {
            CODE_TAKEN => last_kind.static_target(),
            CODE_NOT_TAKEN => Some(fallthrough),
            CODE_INDIRECT => Some(Addr::new(
                r.read_bits(self.width.bits())
                    .ok_or(DecodeError::OutOfBits)?,
            )),
            _ => return Err(DecodeError::UnexpectedCode { at: end }),
        };
        if r.remaining() != 0 {
            return Err(DecodeError::UnexpectedCode { at: end });
        }
        Ok(exit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_program::ProgramBuilder;

    /// Program: b0 (cond -> b2), b1 (straight), b2 (indirect jump), b3 (ret)
    fn program() -> Program {
        let mut b = ProgramBuilder::new();
        let f = b.function("f", 0x100);
        let b0 = b.block(f);
        let b1 = b.block(f);
        let b2 = b.block(f);
        let b3 = b.block_with(f, 0);
        b.cond_branch(b0, b2);
        // b1 falls through into b2.
        let _ = b1;
        b.indirect_jump(b2);
        b.ret(b3);
        b.build().unwrap()
    }

    #[test]
    fn round_trip_taken_then_indirect() {
        let p = program();
        let b0 = &p.blocks()[0];
        let b2 = &p.blocks()[2];
        let b3 = &p.blocks()[3];
        let mut rec = TraceRecorder::new(b0.start(), AddrWidth::W32);
        rec.record_cond(true); // b0 -> b2
        rec.record_indirect(b3.start()); // b2 -> b3
        let ct = rec.finish(b3.terminator().addr());
        let path = ct.decode(&p).unwrap();
        assert_eq!(path.blocks, vec![b0.start(), b2.start(), b3.start()]);
        assert_eq!(path.exit_target, None);
        assert_eq!(*path.insts.last().unwrap(), b3.terminator().addr());
    }

    #[test]
    fn round_trip_not_taken_walks_fallthrough() {
        let p = program();
        let b0 = &p.blocks()[0];
        let b1 = &p.blocks()[1];
        let b2 = &p.blocks()[2];
        let mut rec = TraceRecorder::new(b0.start(), AddrWidth::W32);
        rec.record_cond(false); // falls into b1, then b2
        let ct = rec.finish(b2.terminator().addr());
        let path = ct.decode(&p).unwrap();
        assert_eq!(path.blocks, vec![b0.start(), b1.start(), b2.start()]);
    }

    #[test]
    fn final_branch_outcome_is_exposed() {
        let p = program();
        let b0 = &p.blocks()[0];
        let b2 = &p.blocks()[2];
        let mut rec = TraceRecorder::new(b0.start(), AddrWidth::W32);
        rec.record_cond(true);
        // The trace ends at b2's indirect jump, but we observed where it
        // went before finishing.
        rec.record_indirect(p.blocks()[3].start());
        let ct = rec.finish(b2.terminator().addr());
        let path = ct.decode(&p).unwrap();
        assert_eq!(*path.blocks.last().unwrap(), b2.start());
        assert_eq!(path.exit_target, Some(p.blocks()[3].start()));
    }

    #[test]
    fn single_block_trace() {
        let p = program();
        let b3 = &p.blocks()[3];
        let rec = TraceRecorder::new(b3.start(), AddrWidth::W32);
        let ct = rec.finish(b3.terminator().addr());
        let path = ct.decode(&p).unwrap();
        assert_eq!(path.blocks, vec![b3.start()]);
        assert_eq!(path.insts.len(), 1);
    }

    #[test]
    fn byte_len_matches_figure14_accounting() {
        let p = program();
        let b0 = &p.blocks()[0];
        let mut rec = TraceRecorder::new(b0.start(), AddrWidth::W32);
        rec.record_cond(true);
        let ct = rec.finish(p.blocks()[2].terminator().addr());
        // bits: 2 (cond) + 2 (end) + 32 (end addr) = 36 -> 5 bytes,
        // plus 4 bytes for the start address.
        assert_eq!(ct.byte_len(), 5 + 4);
    }

    #[test]
    fn end_mismatch_detected() {
        let p = program();
        let b0 = &p.blocks()[0];
        let mut rec = TraceRecorder::new(b0.start(), AddrWidth::W32);
        rec.record_cond(true);
        let ct = rec.finish(Addr::new(0x9999)); // bogus end
        // The walk follows codes; once bits run down to the tail the
        // terminator's address will not match where the walk stands.
        let err = ct.decode(&p).unwrap_err();
        assert!(matches!(
            err,
            DecodeError::OutOfBits | DecodeError::UnknownInstruction(_)
        ));
    }

    #[test]
    fn wrong_program_detected() {
        let p = program();
        let b0 = &p.blocks()[0];
        let mut rec = TraceRecorder::new(b0.start(), AddrWidth::W32);
        rec.record_cond(true);
        rec.record_indirect(Addr::new(0xfff0)); // not an instruction
        let ct = rec.finish(Addr::new(0xfff0));
        assert!(matches!(
            ct.decode(&p),
            Err(DecodeError::UnknownInstruction(_))
        ));
    }

    #[test]
    fn w64_addresses_round_trip() {
        let p = program();
        let b0 = &p.blocks()[0];
        let b2 = &p.blocks()[2];
        let mut rec = TraceRecorder::new(b0.start(), AddrWidth::W64);
        rec.record_cond(true);
        let ct = rec.finish(b2.terminator().addr());
        let path = ct.decode(&p).unwrap();
        assert_eq!(path.blocks.len(), 2);
    }
}
