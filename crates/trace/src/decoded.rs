//! Decode-once struct-of-arrays replay streams.
//!
//! [`CompactStream`] is the *storage* format: 5 bytes per step plus a
//! taken-source side table. Replaying it reconstructs a full
//! [`Step`] per event, paying a block-table hash lookup and an
//! enum rebuild on every step — and the benchmark matrix replays the
//! same recording once per selector, so that decode cost is paid eight
//! times per workload.
//!
//! [`DecodedStream`] is the *execution* format: the compact stream's
//! dense per-step arrays (block index, entry tag, taken sources —
//! taken over from the compact form it consumes, never copied)
//! augmented with a prefix index into the taken-source table and
//! per-block tables (start address, instruction count, terminator
//! address, [`BlockId`]) resolved against the program up front. The
//! simulator's batch replay path iterates the arrays directly — no
//! per-step hashing, no `Step` materialization — and any consumer can
//! still materialize [`Step`]s via [`DecodedStream::steps`],
//! bit-identical to [`CompactStream::replay`] on the owned stream
//! (exposed again by [`DecodedStream::compact`]).
//!
//! Decoding also runs a *spin-phase* detector (in the spirit of
//! gamegirl's waitloop optimization): maximal runs where the stream
//! repeats the same short step cycle are recorded as [`SpinPhase`]s, so
//! a replay engine can verify one period and fast-forward the rest in
//! O(1) — see `rsel_core`'s guarded fast-forward for the conditions
//! under which that is byte-identical.

use crate::stream::{CompactStream, StreamStats, tag_to_kind};
use rsel_program::{Addr, BlockId, Entry, Program, Step};

const ENTRY_START: u8 = 0;
const ENTRY_FALLTHROUGH: u8 = 1;
const ENTRY_TAKEN_BASE: u8 = 2;

/// Longest step cycle the spin detector recognises. Spin phases worth
/// skipping are tight loops (a handful of blocks per iteration); a
/// small bound keeps detection linear-ish and the verify cost per
/// phase trivial.
const MAX_PERIOD: usize = 64;

/// Minimum whole repetitions for a periodic run to be recorded. The
/// fast-forward path spends two periods (warm-up + verify) before it
/// can skip, so shorter runs cannot profit.
const MIN_REPS: usize = 4;

/// A maximal periodic run in a decoded stream: starting at step
/// `start`, the `period`-step cycle repeats `reps` whole times
/// (step-for-step identical, including entry kinds and branch
/// sources).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpinPhase {
    /// Index of the first step of the first repetition.
    pub start: u32,
    /// Steps per repetition.
    pub period: u32,
    /// Whole repetitions (`>= 4`).
    pub reps: u32,
}

impl SpinPhase {
    /// Index one past the last step covered by the whole repetitions.
    pub fn end(&self) -> usize {
        self.start as usize + self.period as usize * self.reps as usize
    }
}

/// A recorded execution decoded once into dense, directly-iterable
/// arrays (see the module docs).
///
/// ```
/// use rsel_program::{ProgramBuilder, BehaviorSpec, Executor, Step};
/// use rsel_trace::{CompactStream, DecodedStream};
///
/// let mut b = ProgramBuilder::new();
/// let f = b.function("main", 0x100);
/// let bb = b.block(f);
/// let ex = b.block_with(f, 0);
/// b.cond_branch(bb, bb);
/// b.ret(ex);
/// let p = b.build().unwrap();
/// let mut spec = BehaviorSpec::new(1);
/// spec.loop_trips(p.block(bb).branch_addr().unwrap(), 8);
/// let live: Vec<Step> = Executor::new(&p, spec.clone()).collect();
/// let compact = CompactStream::record(Executor::new(&p, spec));
/// let decoded = DecodedStream::decode(compact, &p);
/// let steps: Vec<Step> = decoded.steps().collect();
/// assert_eq!(steps, live);
/// assert!(!decoded.phases().is_empty(), "the spin loop is detected");
/// ```
#[derive(Clone, Debug)]
pub struct DecodedStream {
    /// The storage form this stream was decoded from. Its per-step
    /// arrays (block indices, entry tags, taken sources) *are* the
    /// decoded stream's per-step arrays — decoding takes ownership
    /// instead of duplicating hundreds of megabytes at Full scale.
    stream: CompactStream,
    /// Prefix count of taken entries: `taken_prefix[i]` is the number
    /// of taken steps before step `i`, so a taken step's source is
    /// `srcs[taken_prefix[i]]` — O(1) random access into the side
    /// table a sequential iterator would otherwise have to thread.
    taken_prefix: Vec<u32>,
    // Per-block tables, indexed by program block index.
    ids: Vec<BlockId>,
    starts: Vec<Addr>,
    lens: Vec<u32>,
    term_addrs: Vec<Addr>,
    /// Detected spin phases, sorted by `start`, non-overlapping.
    phases: Vec<SpinPhase>,
    stats: StreamStats,
}

impl DecodedStream {
    /// Decodes `stream` against `program`: resolves every block index
    /// through the program tables once, builds the prefix index into
    /// the taken-source table, detects spin phases, and accumulates
    /// the stream statistics — all in a single pass over the steps.
    /// The stream is consumed, not copied; [`DecodedStream::compact`]
    /// hands it back.
    ///
    /// # Panics
    ///
    /// Panics if a recorded block index is out of range for `program`
    /// (the stream was recorded from a different program), matching
    /// [`CompactStream::replay`].
    pub fn decode(stream: CompactStream, program: &Program) -> Self {
        let (blocks, tags, srcs) = stream.raw_parts();
        let pblocks = program.blocks();
        let mut ids = Vec::with_capacity(pblocks.len());
        let mut starts = Vec::with_capacity(pblocks.len());
        let mut lens = Vec::with_capacity(pblocks.len());
        let mut term_addrs = Vec::with_capacity(pblocks.len());
        for b in pblocks {
            ids.push(b.id());
            starts.push(b.start());
            lens.push(b.len() as u32);
            term_addrs.push(b.terminator().addr());
        }

        let mut taken_prefix = Vec::with_capacity(blocks.len());
        let mut stats = StreamStats::default();
        let mut taken = 0u32;
        for (&idx, &tag) in blocks.iter().zip(tags) {
            let idx = idx as usize;
            assert!(
                idx < pblocks.len(),
                "recorded block index {idx} out of range for program"
            );
            taken_prefix.push(taken);
            stats.blocks += 1;
            stats.instructions += u64::from(lens[idx]);
            if tag >= ENTRY_TAKEN_BASE {
                stats.taken_branches += 1;
                if starts[idx].is_backward_from(srcs[taken as usize]) {
                    stats.backward_taken += 1;
                }
                taken += 1;
            }
        }

        let phases = detect_phases(blocks, tags, &taken_prefix, srcs);
        DecodedStream {
            stream,
            taken_prefix,
            ids,
            starts,
            lens,
            term_addrs,
            phases,
            stats,
        }
    }

    /// The compact storage form this stream was decoded from.
    pub fn compact(&self) -> &CompactStream {
        &self.stream
    }

    /// Number of decoded steps.
    pub fn len(&self) -> usize {
        self.stream.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.stream.is_empty()
    }

    /// The program block index executed at step `i`.
    #[inline]
    pub fn block_index(&self, i: usize) -> usize {
        self.stream.raw_parts().0[i] as usize
    }

    /// How control arrived at step `i`.
    #[inline]
    pub fn entry_at(&self, i: usize) -> Entry {
        let (_, tags, srcs) = self.stream.raw_parts();
        match tags[i] {
            ENTRY_START => Entry::Start,
            ENTRY_FALLTHROUGH => Entry::Fallthrough,
            t => Entry::Taken {
                src: srcs[self.taken_prefix[i] as usize],
                kind: tag_to_kind(t - ENTRY_TAKEN_BASE)
                    .expect("recorded tag encodes a branch kind"),
            },
        }
    }

    /// The id of program block `bidx`.
    #[inline]
    pub fn block_id(&self, bidx: usize) -> BlockId {
        self.ids[bidx]
    }

    /// The start address of program block `bidx`.
    #[inline]
    pub fn block_start(&self, bidx: usize) -> Addr {
        self.starts[bidx]
    }

    /// The instruction count of program block `bidx`.
    #[inline]
    pub fn block_len(&self, bidx: usize) -> u32 {
        self.lens[bidx]
    }

    /// The terminator address of program block `bidx` — the
    /// fall-through source a replay engine attributes to a sequential
    /// entry, without a per-step block lookup.
    #[inline]
    pub fn term_addr(&self, bidx: usize) -> Addr {
        self.term_addrs[bidx]
    }

    /// The detected spin phases, sorted by start index. Phases never
    /// overlap each other's whole repetitions.
    pub fn phases(&self) -> &[SpinPhase] {
        &self.phases
    }

    /// Stream statistics accumulated during the single decode pass —
    /// no second walk over the steps.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Materializes step `i`, bit-identical to the `i`-th item of
    /// [`CompactStream::replay`].
    #[inline]
    pub fn step_at(&self, i: usize) -> Step {
        let bidx = self.block_index(i);
        Step {
            block: self.ids[bidx],
            start: self.starts[bidx],
            entry: self.entry_at(i),
        }
    }

    /// Iterates the stream as full [`Step`]s (bit-identical to
    /// [`CompactStream::replay`] on the source stream).
    pub fn steps(&self) -> impl Iterator<Item = Step> + '_ {
        (0..self.len()).map(|i| self.step_at(i))
    }
}

/// Whether steps `a` and `b` are identical: same block, same entry
/// kind, and (for taken entries) the same branch source.
#[inline]
fn step_eq(
    blocks: &[u32],
    tags: &[u8],
    taken_prefix: &[u32],
    srcs: &[Addr],
    a: usize,
    b: usize,
) -> bool {
    blocks[a] == blocks[b]
        && tags[a] == tags[b]
        && (tags[a] < ENTRY_TAKEN_BASE
            || srcs[taken_prefix[a] as usize] == srcs[taken_prefix[b] as usize])
}

/// Finds maximal periodic runs: at each step whose block last occurred
/// `p <= MAX_PERIOD` steps ago with an identical step, extends the
/// period-`p` match as far as it holds and records the run when it
/// covers at least [`MIN_REPS`] whole repetitions.
///
/// Failed extensions are bounded by a global work budget (2x the
/// stream length) so adversarially near-periodic streams cannot make
/// decoding quadratic: when the budget runs out, detection stops and
/// the remaining stream simply replays step by step (a performance
/// fallback, never a correctness concern).
fn detect_phases(
    blocks: &[u32],
    tags: &[u8],
    taken_prefix: &[u32],
    srcs: &[Addr],
) -> Vec<SpinPhase> {
    let n = blocks.len();
    let mut phases = Vec::new();
    if n < 2 * MIN_REPS {
        return phases;
    }
    let max_block = blocks.iter().copied().max().unwrap_or(0) as usize;
    // Last occurrence of each block index, for O(1) period candidates.
    let mut last = vec![usize::MAX; max_block + 1];
    let eq = |a: usize, b: usize| step_eq(blocks, tags, taken_prefix, srcs, a, b);
    let mut budget = 2 * n;
    let mut i = 0usize;
    while i < n {
        let b = blocks[i] as usize;
        let prev = last[b];
        last[b] = i;
        if prev != usize::MAX && i - prev <= MAX_PERIOD && budget > 0 && eq(i, prev) {
            let p = i - prev;
            let mut j = i + 1;
            while j < n && eq(j, j - p) {
                j += 1;
            }
            budget = budget.saturating_sub(j - i);
            // A later candidate can start inside the previous phase's
            // covered range; clamp it — any suffix of a periodic run
            // is still periodic — so phases stay disjoint.
            let last_end = phases.last().map(SpinPhase::end).unwrap_or(0);
            let s = prev.max(last_end);
            let reps = j.saturating_sub(s) / p;
            if reps >= MIN_REPS {
                phases.push(SpinPhase {
                    start: s as u32,
                    period: p as u32,
                    reps: reps as u32,
                });
                // Resume after the run; refresh the last-occurrence
                // table with the final period so detection right after
                // the run still sees its blocks.
                for k in (j - p)..j {
                    last[blocks[k] as usize] = k;
                }
                i = j;
                continue;
            }
        }
        i += 1;
    }
    phases
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_program::{BehaviorSpec, Executor, ProgramBuilder};

    fn spin_run(trips: u32) -> (Program, CompactStream) {
        let mut b = ProgramBuilder::new();
        let f = b.function("main", 0x100);
        let head = b.block(f);
        let body = b.block(f);
        let exit = b.block_with(f, 0);
        let _ = head;
        b.cond_branch(body, head);
        b.ret(exit);
        let p = b.build().unwrap();
        let mut spec = BehaviorSpec::new(1);
        spec.loop_trips(p.block(body).branch_addr().unwrap(), trips);
        let stream = CompactStream::record(Executor::new(&p, spec));
        (p, stream)
    }

    #[test]
    fn decoded_steps_match_compact_replay() {
        let (p, stream) = spin_run(50);
        let n = stream.len();
        let decoded = DecodedStream::decode(stream, &p);
        let a: Vec<Step> = decoded.steps().collect();
        let b: Vec<Step> = decoded.compact().replay(&p).collect();
        assert_eq!(a, b);
        assert_eq!(decoded.len(), n);
    }

    #[test]
    fn stats_match_step_walk() {
        let (p, stream) = spin_run(50);
        let decoded = DecodedStream::decode(stream, &p);
        let steps: Vec<Step> = decoded.compact().replay(&p).collect();
        assert_eq!(decoded.stats(), StreamStats::collect(&p, &steps));
    }

    #[test]
    fn spin_phase_detected_and_covers_the_loop() {
        let (p, stream) = spin_run(1000);
        let decoded = DecodedStream::decode(stream, &p);
        let phases = decoded.phases();
        assert!(!phases.is_empty(), "a 1000-trip loop is a spin phase");
        let ph = phases[0];
        assert!(ph.reps as usize >= MIN_REPS);
        assert!(ph.end() <= decoded.len());
        // Every covered step really repeats with the phase period.
        for k in (ph.start as usize + ph.period as usize)..ph.end() {
            assert_eq!(
                decoded.step_at(k),
                decoded.step_at(k - ph.period as usize),
                "step {k}"
            );
        }
    }

    #[test]
    fn phases_are_sorted_and_disjoint() {
        let (p, stream) = spin_run(200);
        let decoded = DecodedStream::decode(stream, &p);
        let phases = decoded.phases();
        for w in phases.windows(2) {
            assert!(w[0].end() <= w[1].start as usize, "{w:?}");
        }
    }

    #[test]
    fn short_runs_are_not_phases() {
        let (p, stream) = spin_run(2);
        let decoded = DecodedStream::decode(stream, &p);
        assert!(decoded.phases().is_empty(), "below MIN_REPS");
    }
}
