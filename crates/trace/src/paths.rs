//! Hot-path diversity statistics over an execution stream.
//!
//! The paper's motivation leans on Ball and Larus ("Programs Follow
//! Paths"): "the number of paths that comprise 90% of execution in
//! modern commercial software is often one to two orders of magnitude
//! greater than in the standard benchmark programs used to develop NET"
//! (§1). This module measures exactly that over our streams: fixed-
//! length block paths (n-grams of the executed block sequence) and the
//! number of distinct hot paths needed to cover a fraction of all path
//! occurrences — the knob our synthetic workloads turn to model gzip
//! (few paths) vs. gcc (many).

use rsel_program::{Addr, Step};
use std::collections::HashMap;

/// Distribution of fixed-length paths in one execution.
#[derive(Clone, Debug)]
pub struct PathProfile {
    length: usize,
    counts: HashMap<Vec<Addr>, u64>,
    total: u64,
}

impl PathProfile {
    /// Collects the profile of block paths of `length` consecutive
    /// blocks from `steps`.
    ///
    /// # Panics
    ///
    /// Panics if `length` is zero.
    pub fn collect<'a>(length: usize, steps: impl IntoIterator<Item = &'a Step>) -> Self {
        assert!(length > 0, "path length must be positive");
        let mut window: Vec<Addr> = Vec::with_capacity(length);
        let mut counts: HashMap<Vec<Addr>, u64> = HashMap::new();
        let mut total = 0u64;
        for step in steps {
            window.push(step.start);
            if window.len() > length {
                window.remove(0);
            }
            if window.len() == length {
                *counts.entry(window.clone()).or_insert(0) += 1;
                total += 1;
            }
        }
        PathProfile {
            length,
            counts,
            total,
        }
    }

    /// The path length this profile was collected at.
    pub fn length(&self) -> usize {
        self.length
    }

    /// Number of distinct paths observed.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Total path occurrences (stream length − length + 1 for a single
    /// uninterrupted stream).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The smallest number of distinct paths whose occurrences comprise
    /// at least `frac` of all path occurrences — the Ball–Larus-style
    /// "paths that comprise X% of execution" count.
    ///
    /// # Panics
    ///
    /// Panics if `frac` is not within `0.0..=1.0`.
    pub fn hot_path_count(&self, frac: f64) -> usize {
        assert!((0.0..=1.0).contains(&frac), "fraction out of range: {frac}");
        let goal = self.total as f64 * frac;
        let mut sorted: Vec<u64> = self.counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let mut sum = 0u64;
        for (i, c) in sorted.iter().enumerate() {
            sum += c;
            if sum as f64 >= goal {
                return i + 1;
            }
        }
        sorted.len()
    }

    /// The most frequent path and its occurrence count.
    pub fn hottest(&self) -> Option<(&[Addr], u64)> {
        self.counts
            .iter()
            .max_by_key(|(p, c)| (**c, std::cmp::Reverse(p.as_slice())))
            .map(|(p, c)| (p.as_slice(), *c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_program::{BehaviorSpec, Executor, ProgramBuilder};

    fn looped_diamond(p_taken: f64, trips: u32, seed: u64) -> Vec<Step> {
        let mut b = ProgramBuilder::new();
        let f = b.function("main", 0x100);
        let head = b.block(f);
        let fall = b.block(f);
        let taken = b.block(f);
        let join = b.block(f);
        let latch = b.block(f);
        let out = b.block_with(f, 0);
        let _ = head;
        b.cond_branch(head, taken);
        b.jump(fall, join);
        // taken falls into join; join falls into latch
        b.cond_branch(latch, head);
        b.ret(out);
        let prog = b.build().unwrap();
        let mut spec = BehaviorSpec::new(seed);
        spec.bernoulli(prog.block(head).branch_addr().unwrap(), p_taken);
        spec.loop_trips(prog.block(latch).branch_addr().unwrap(), trips);
        Executor::new(&prog, spec).collect()
    }

    #[test]
    fn single_dominant_path_means_one_hot_path() {
        let steps = looped_diamond(1.0, 500, 1); // always the taken side
        let prof = PathProfile::collect(4, &steps);
        assert_eq!(prof.length(), 4);
        // A single 4-block cyclic path shows up as its four sliding
        // rotations, each equally frequent.
        assert_eq!(prof.hot_path_count(0.9), 4);
        // Four rotations plus the one-off loop-exit window.
        assert!(prof.distinct() <= 6, "distinct {}", prof.distinct());
        assert!(prof.total() > 400);
    }

    #[test]
    fn unbiased_branch_doubles_path_diversity() {
        let biased = PathProfile::collect(4, &looped_diamond(0.98, 2_000, 1));
        let unbiased = PathProfile::collect(4, &looped_diamond(0.5, 2_000, 1));
        // The unbiased branch splits the hot set across both diamond
        // sides; the biased one concentrates it (its rare side appears
        // among the distinct paths but not among the hot ones).
        assert!(
            unbiased.hot_path_count(0.9) > biased.hot_path_count(0.9),
            "unbiased {} vs biased {}",
            unbiased.hot_path_count(0.9),
            biased.hot_path_count(0.9)
        );
    }

    #[test]
    fn hottest_path_has_max_count() {
        let steps = looped_diamond(0.5, 1_000, 3);
        let prof = PathProfile::collect(3, &steps);
        let (_, hottest) = prof.hottest().expect("non-empty");
        assert!(prof.counts.values().all(|&c| c <= hottest));
    }

    #[test]
    fn short_stream_has_no_paths() {
        let steps = looped_diamond(0.5, 1, 1);
        let prof = PathProfile::collect(50, &steps);
        assert_eq!(prof.total(), 0);
        assert_eq!(prof.hot_path_count(0.9), 0);
        assert!(prof.hottest().is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_rejected() {
        let _ = PathProfile::collect(0, &[]);
    }
}
