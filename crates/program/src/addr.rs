//! Byte addresses in the simulated program's address space.

use std::fmt;

/// A byte address in the simulated program.
///
/// Addresses matter to region selection: NET and LEI both classify a taken
/// branch as *backward* when its target address is less than or equal to
/// its source address, and the paper's Figure 2 relies on functions being
/// laid out at lower or higher addresses than their callers.
///
/// ```
/// use rsel_program::Addr;
/// let a = Addr::new(0x1000);
/// assert!(a < a + 4);
/// assert_eq!((a + 4) - a, 4);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// The null address; never occupied by an instruction.
    pub const NULL: Addr = Addr(0);

    /// Creates an address from a raw byte offset.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte offset.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns `true` if a taken branch from `src` to `self` is a
    /// *backward* branch in the sense used by NET and LEI
    /// (`target <= source`).
    pub fn is_backward_from(self, src: Addr) -> bool {
        self <= src
    }

    /// Returns the address advanced by `bytes`.
    #[must_use]
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

impl std::ops::Add<u64> for Addr {
    type Output = Addr;
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0 + rhs)
    }
}

impl std::ops::Sub<Addr> for Addr {
    type Output = u64;
    fn sub(self, rhs: Addr) -> u64 {
        self.0 - rhs.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = Addr::new(0x100);
        let b = a + 0x10;
        assert!(a < b);
        assert_eq!(b - a, 0x10);
        assert_eq!(a.offset(0x10), b);
    }

    #[test]
    fn backwardness_matches_paper_definition() {
        let src = Addr::new(0x200);
        assert!(Addr::new(0x100).is_backward_from(src));
        assert!(
            Addr::new(0x200).is_backward_from(src),
            "self-branch is backward"
        );
        assert!(!Addr::new(0x201).is_backward_from(src));
    }

    #[test]
    fn conversions_round_trip() {
        let a = Addr::from(42u64);
        assert_eq!(u64::from(a), 42);
        assert_eq!(a.raw(), 42);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Addr::new(0x1a2b).to_string(), "0x1a2b");
        assert_eq!(format!("{:x}", Addr::new(255)), "ff");
    }

    #[test]
    fn null_is_zero_and_minimal() {
        assert_eq!(Addr::NULL.raw(), 0);
        assert!(Addr::NULL <= Addr::new(1));
        assert_eq!(Addr::default(), Addr::NULL);
    }
}
