//! A fast, deterministic hasher for hot-path tables.
//!
//! The per-step tables of the executor and simulator are keyed by small
//! fixed-width values ([`Addr`](crate::Addr), block ids, region ids).
//! The standard library's default SipHash is DoS-resistant but costs
//! tens of cycles per lookup, which dominates the simulator's arrival
//! loop. This module vendors an FxHash-style multiply-rotate hasher
//! (the algorithm used by rustc's internal tables): one rotate, one
//! xor and one multiply per word, with no per-instance random state —
//! so iteration order is identical across runs, keeping every
//! experiment bit-reproducible.
//!
//! None of these tables are exposed to untrusted input, so hash-flood
//! resistance is not needed.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the golden ratio, as used by FxHash/rustc-hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash word-at-a-time hasher state.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A [`std::hash::BuildHasher`] producing [`FxHasher`]s; zero-sized and
/// state-free, so maps built with it iterate identically across runs.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// An empty [`FxHashMap`] with room for `cap` entries.
pub fn map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

/// An empty [`FxHashSet`] with room for `cap` entries.
pub fn set_with_capacity<T>(cap: usize) -> FxHashSet<T> {
    FxHashSet::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Addr;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_instances() {
        let a = Addr::new(0xdead_beef);
        assert_eq!(hash_of(&a), hash_of(&a));
        assert_eq!(hash_of(&(a, 3usize)), hash_of(&(a, 3usize)));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let h1 = hash_of(&Addr::new(0x1000));
        let h2 = hash_of(&Addr::new(0x1001));
        assert_ne!(h1, h2);
    }

    #[test]
    fn byte_stream_matches_word_writes() {
        // write() folds 8-byte chunks the same way write_u64 does.
        let mut a = FxHasher::default();
        a.write(&42u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn short_tails_are_hashed() {
        let mut a = FxHasher::default();
        a.write(b"abc");
        let mut b = FxHasher::default();
        b.write(b"abd");
        assert_ne!(a.finish(), b.finish());
        assert_ne!(a.finish(), 0);
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<Addr, u32> = map_with_capacity(8);
        m.insert(Addr::new(1), 10);
        m.insert(Addr::new(2), 20);
        assert_eq!(m.get(&Addr::new(1)), Some(&10));
        let mut s: FxHashSet<Addr> = set_with_capacity(8);
        assert!(s.insert(Addr::new(7)));
        assert!(!s.insert(Addr::new(7)));
        assert!(s.contains(&Addr::new(7)));
    }

    #[test]
    fn iteration_order_is_stable_across_maps() {
        let build = |keys: &[u64]| -> Vec<u64> {
            let mut m: FxHashMap<u64, ()> = FxHashMap::default();
            for &k in keys {
                m.insert(k, ());
            }
            m.keys().copied().collect()
        };
        let keys: Vec<u64> = (0..100).map(|i| i * 977).collect();
        assert_eq!(build(&keys), build(&keys));
    }
}
