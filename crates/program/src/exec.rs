//! The execution engine: walks a program under a behaviour spec.

use crate::addr::Addr;
use crate::behavior::{BehaviorSpec, CondBehavior, IndirectBehavior};
use crate::block::BlockId;
use crate::event::{BranchKind, Entry, Step};
use crate::fxhash::FxHashMap;
use crate::inst::InstKind;
use crate::program::Program;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Key for per-branch mutable state: the branch address plus the phase
/// index it belongs to (`usize::MAX` for non-phased behaviours).
type StateKey = (Addr, usize);

/// Deterministic execution engine.
///
/// Yields the stream of executed basic blocks ([`Step`]s) that a dynamic
/// optimization system observes — the stand-in for Pin in the paper's
/// methodology (§2.3). The walk is fully determined by the program, the
/// [`BehaviorSpec`] and its seed, so every experiment is reproducible.
///
/// Execution ends when the outermost function returns (a `ret` with an
/// empty call stack). Use [`Iterator::take`] to bound runs on programs
/// that loop forever.
///
/// # Panics
///
/// The iterator panics if an indirect jump or call executes without
/// configured targets, or if the behaviour names a target address that
/// is not the start of a basic block.
#[derive(Debug)]
pub struct Executor<'p> {
    program: &'p Program,
    spec: BehaviorSpec,
    rng: SmallRng,
    /// Call stack: the return address plus its pre-resolved block id
    /// (`None` when the address starts no block — the panic is
    /// deferred to the `ret` that would actually jump there).
    stack: Vec<(Addr, Option<BlockId>)>,
    cur: Option<BlockId>,
    entry: Entry,
    trips: FxHashMap<StateKey, u32>,
    cursors: FxHashMap<StateKey, usize>,
    // Executions of each block's conditional branch, dense by block
    // index (every conditional branch is a block terminator).
    executions: Vec<u64>,
    // Dense per-block successor and behavior tables, resolved once at
    // construction so the per-step loop does no hash lookups for
    // static control flow: the terminator's static target, the block's
    // fall-through, and the conditional behavior attached to the
    // terminator. `None` ids defer the unknown-block panic to the step
    // that would actually jump there.
    target_ids: Vec<Option<BlockId>>,
    fall_ids: Vec<Option<BlockId>>,
    conds: Vec<Option<CondBehavior>>,
    // Trip counters for non-phased `CondBehavior::Trips`, dense by
    // block index (phased trips stay in the `trips` map, keyed by
    // phase).
    plain_trips: Vec<u32>,
}

impl<'p> Executor<'p> {
    /// Creates an executor positioned at the program entry.
    pub fn new(program: &'p Program, spec: BehaviorSpec) -> Self {
        let rng = SmallRng::seed_from_u64(spec.seed());
        let cur = program.block_at(program.entry()).map(|b| b.id());
        let n = program.blocks().len();
        let mut target_ids = Vec::with_capacity(n);
        let mut fall_ids = Vec::with_capacity(n);
        let mut conds = Vec::with_capacity(n);
        for b in program.blocks() {
            let term = b.terminator();
            let target = match term.kind() {
                InstKind::CondBranch { target }
                | InstKind::Jump { target }
                | InstKind::Call { target } => Some(target),
                _ => None,
            };
            target_ids.push(target.and_then(|t| program.block_at(t).map(|b| b.id())));
            fall_ids.push(program.block_at(b.fallthrough_addr()).map(|b| b.id()));
            conds.push(match term.kind() {
                InstKind::CondBranch { .. } => spec.cond(term.addr()).cloned(),
                _ => None,
            });
        }
        Executor {
            program,
            spec,
            rng,
            stack: Vec::new(),
            cur,
            entry: Entry::Start,
            trips: FxHashMap::default(),
            cursors: FxHashMap::default(),
            executions: vec![0; n],
            target_ids,
            fall_ids,
            conds,
            plain_trips: vec![0; n],
        }
    }

    /// The program being executed.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Current call-stack depth (for tests and diagnostics).
    pub fn stack_depth(&self) -> usize {
        self.stack.len()
    }

    fn indirect_target(&mut self, addr: Addr) -> Addr {
        let behavior = self
            .spec
            .indirect(addr)
            .unwrap_or_else(|| panic!("indirect branch at {addr} has no configured targets"))
            .clone();
        match behavior {
            IndirectBehavior::Weighted(targets) => {
                let total: u64 = targets.iter().map(|(_, w)| u64::from(*w)).sum();
                let mut x = self.rng.gen_range(0..total);
                for (t, w) in &targets {
                    let w = u64::from(*w);
                    if x < w {
                        return *t;
                    }
                    x -= w;
                }
                targets.last().expect("non-empty").0
            }
            IndirectBehavior::RoundRobin(targets) => {
                let cursor = self.cursors.entry((addr, usize::MAX)).or_insert(0);
                let t = targets[*cursor % targets.len()];
                *cursor = (*cursor + 1) % targets.len();
                t
            }
        }
    }

    fn block_id_at(&self, addr: Addr) -> BlockId {
        self.program
            .block_at(addr)
            .unwrap_or_else(|| panic!("no basic block starts at {addr}"))
            .id()
    }

    /// Pushes a call's return address with its pre-resolved block id
    /// (the caller's fall-through in the common case, so the matching
    /// `ret` pops straight to an id without hashing).
    fn push_return(&mut self, idx: usize, block: &crate::block::BasicBlock, ra: Addr) {
        let rid = if ra == block.fallthrough_addr() {
            self.fall_ids[idx]
        } else {
            self.program.block_at(ra).map(|b| b.id())
        };
        self.stack.push((ra, rid));
    }
}

/// Mutable decision state split out of [`Executor`] so a decision can
/// borrow the behavior table immutably while mutating counters and the
/// RNG. The RNG call sequence is identical to deciding through `&mut
/// Executor`, so recorded streams are unaffected by the split.
#[allow(clippy::too_many_arguments)]
fn decide(
    rng: &mut SmallRng,
    trips: &mut FxHashMap<StateKey, u32>,
    cursors: &mut FxHashMap<StateKey, usize>,
    plain_trips: &mut [u32],
    block_idx: usize,
    addr: Addr,
    behavior: &CondBehavior,
    phase: usize,
    count: u64,
) -> bool {
    match behavior {
        CondBehavior::Taken => true,
        CondBehavior::NotTaken => false,
        CondBehavior::Bernoulli(p) => rng.gen_bool(*p),
        CondBehavior::Trips(n) => {
            // The hot case: a non-phased counted loop keeps its trip
            // counter in the dense per-block table instead of the map.
            let c = if phase == usize::MAX {
                &mut plain_trips[block_idx]
            } else {
                trips.entry((addr, phase)).or_insert(0)
            };
            if *c + 1 < *n {
                *c += 1;
                true
            } else {
                *c = 0;
                false
            }
        }
        CondBehavior::Pattern(pat) => {
            let cursor = cursors.entry((addr, phase)).or_insert(0);
            let taken = pat[*cursor % pat.len()];
            *cursor = (*cursor + 1) % pat.len();
            taken
        }
        CondBehavior::Phased(phases) => {
            let mut cumulative = 0u64;
            let mut chosen = phases.len() - 1;
            for (i, (len, _)) in phases.iter().enumerate() {
                cumulative += len;
                if count < cumulative {
                    chosen = i;
                    break;
                }
            }
            decide(
                rng,
                trips,
                cursors,
                plain_trips,
                block_idx,
                addr,
                &phases[chosen].1,
                chosen,
                count,
            )
        }
    }
}

impl Iterator for Executor<'_> {
    type Item = Step;

    fn next(&mut self) -> Option<Step> {
        let id = self.cur?;
        let idx = id.index();
        let block = self.program.block(id);
        let step = Step {
            block: id,
            start: block.start(),
            entry: self.entry,
        };

        // Compute the successor. Static edges resolve through the
        // dense id tables; only dynamically-targeted transfers (and
        // addresses the tables could not resolve, which panic exactly
        // as the address walk did) fall back to the address hash.
        enum Next {
            End,
            Id(BlockId),
            At(Addr),
        }
        let id_or = |id: Option<BlockId>, addr: Addr| id.map(Next::Id).unwrap_or(Next::At(addr));
        let term = block.terminator();
        let src = term.addr();
        let (next, entry) = match term.kind() {
            InstKind::Straight => (
                id_or(self.fall_ids[idx], block.fallthrough_addr()),
                Entry::Fallthrough,
            ),
            InstKind::CondBranch { target } => {
                // Phase selection reads the execution count *before*
                // this execution, so the count is incremented after
                // deciding.
                let count = self.executions[idx];
                let taken = match &self.conds[idx] {
                    Some(b) => decide(
                        &mut self.rng,
                        &mut self.trips,
                        &mut self.cursors,
                        &mut self.plain_trips,
                        idx,
                        src,
                        b,
                        usize::MAX,
                        count,
                    ),
                    None => self.rng.gen_bool(0.5),
                };
                self.executions[idx] += 1;
                if taken {
                    (
                        id_or(self.target_ids[idx], target),
                        Entry::Taken {
                            src,
                            kind: BranchKind::Cond,
                        },
                    )
                } else {
                    (
                        id_or(self.fall_ids[idx], block.fallthrough_addr()),
                        Entry::Fallthrough,
                    )
                }
            }
            InstKind::Jump { target } => (
                id_or(self.target_ids[idx], target),
                Entry::Taken {
                    src,
                    kind: BranchKind::Jump,
                },
            ),
            InstKind::IndirectJump => {
                let t = self.indirect_target(src);
                (
                    Next::At(t),
                    Entry::Taken {
                        src,
                        kind: BranchKind::IndirectJump,
                    },
                )
            }
            InstKind::Call { target } => {
                self.push_return(idx, block, term.fallthrough_addr());
                (
                    id_or(self.target_ids[idx], target),
                    Entry::Taken {
                        src,
                        kind: BranchKind::Call,
                    },
                )
            }
            InstKind::IndirectCall => {
                self.push_return(idx, block, term.fallthrough_addr());
                let t = self.indirect_target(src);
                (
                    Next::At(t),
                    Entry::Taken {
                        src,
                        kind: BranchKind::IndirectCall,
                    },
                )
            }
            InstKind::Ret => match self.stack.pop() {
                Some((ra, rid)) => (
                    rid.map(Next::Id).unwrap_or(Next::At(ra)),
                    Entry::Taken {
                        src,
                        kind: BranchKind::Ret,
                    },
                ),
                None => (Next::End, Entry::Start),
            },
        };
        self.cur = match next {
            Next::End => None,
            Next::Id(id) => Some(id),
            Next::At(a) => Some(self.block_id_at(a)),
        };
        self.entry = entry;
        Some(step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    /// main: A(loop head) -> B -> ret; B cond-branches back to A.
    fn looping_program() -> (Program, Addr) {
        let mut b = ProgramBuilder::new();
        let f = b.function("main", 0x100);
        let head = b.block(f);
        let body = b.block(f);
        let exit = b.block_with(f, 0);
        let _ = head;
        b.cond_branch(body, head);
        b.ret(exit);
        let p = b.build().unwrap();
        let back = p.block(body).branch_addr().unwrap();
        (p, back)
    }

    #[test]
    fn counted_loop_runs_exact_trips() {
        let (p, back) = looping_program();
        let mut spec = BehaviorSpec::new(1);
        spec.loop_trips(back, 5);
        let steps: Vec<Step> = Executor::new(&p, spec).collect();
        // head+body five times, then exit.
        let bodies = steps.iter().filter(|s| s.block.index() == 1).count();
        assert_eq!(bodies, 5);
        let heads = steps.iter().filter(|s| s.block.index() == 0).count();
        assert_eq!(heads, 5);
        assert_eq!(steps.last().unwrap().block.index(), 2);
        assert_eq!(steps[0].entry, Entry::Start);
    }

    #[test]
    fn taken_entries_carry_src() {
        let (p, back) = looping_program();
        let mut spec = BehaviorSpec::new(1);
        spec.loop_trips(back, 2);
        let steps: Vec<Step> = Executor::new(&p, spec).collect();
        let taken: Vec<&Step> = steps.iter().filter(|s| s.entry.is_taken()).collect();
        assert_eq!(taken.len(), 1);
        assert_eq!(taken[0].entry.taken_src(), Some(back));
        assert_eq!(taken[0].block.index(), 0, "loop-back targets the head");
    }

    #[test]
    fn calls_and_returns_balance() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0x1000);
        let callee = b.function("leaf", 0x100);
        let m0 = b.block(main);
        let m1 = b.block_with(main, 0);
        b.call(m0, callee);
        b.ret(m1);
        let c0 = b.block(callee);
        b.ret(c0);
        let p = b.build().unwrap();
        let steps: Vec<Step> = Executor::new(&p, BehaviorSpec::new(0)).collect();
        // m0 -> (call) c0 -> (ret) m1 -> program end
        assert_eq!(steps.len(), 3);
        assert!(matches!(
            steps[1].entry,
            Entry::Taken {
                kind: BranchKind::Call,
                ..
            }
        ));
        assert!(matches!(
            steps[2].entry,
            Entry::Taken {
                kind: BranchKind::Ret,
                ..
            }
        ));
    }

    #[test]
    fn pattern_behaviour_is_cyclic() {
        let (p, back) = looping_program();
        let mut spec = BehaviorSpec::new(1);
        spec.pattern(back, vec![true, true, false]);
        let steps: Vec<Step> = Executor::new(&p, spec).take(50).collect();
        let bodies = steps.iter().filter(|s| s.block.index() == 1).count();
        assert_eq!(bodies, 3, "pattern exits after third body execution");
    }

    #[test]
    fn round_robin_indirect_targets() {
        let mut b = ProgramBuilder::new();
        let f = b.function("main", 0x100);
        let sw = b.block(f);
        let t1 = b.block(f);
        let t2 = b.block(f);
        let exit = b.block_with(f, 0);
        b.indirect_jump(sw);
        b.jump(t1, exit);
        b.jump(t2, exit);
        b.ret(exit);
        let p = b.build().unwrap();
        let sw_addr = p.block(sw).branch_addr().unwrap();
        let mut spec = BehaviorSpec::new(0);
        spec.indirect_round_robin(sw_addr, vec![p.block(t1).start(), p.block(t2).start()]);
        let steps: Vec<Step> = Executor::new(&p, spec).take(3).collect();
        assert_eq!(steps[1].block, t1);
        // Program ends after exit's ret; a fresh executor alternates.
        assert!(matches!(
            steps[1].entry,
            Entry::Taken {
                kind: BranchKind::IndirectJump,
                ..
            }
        ));
    }

    #[test]
    #[should_panic(expected = "no configured targets")]
    fn unconfigured_indirect_panics() {
        let mut b = ProgramBuilder::new();
        let f = b.function("main", 0x100);
        let sw = b.block(f);
        b.indirect_jump(sw);
        let p = b.build().unwrap();
        let _: Vec<Step> = Executor::new(&p, BehaviorSpec::new(0)).take(5).collect();
    }

    #[test]
    fn bernoulli_is_seed_deterministic() {
        let (p, back) = looping_program();
        let run = |seed| {
            let mut spec = BehaviorSpec::new(seed);
            spec.bernoulli(back, 0.7);
            Executor::new(&p, spec)
                .take(100)
                .map(|s| s.block)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn phased_behaviour_switches() {
        let (p, back) = looping_program();
        let mut spec = BehaviorSpec::new(1);
        spec.set_cond(
            back,
            CondBehavior::Phased(vec![(4, CondBehavior::Taken), (1, CondBehavior::NotTaken)]),
        );
        let steps: Vec<Step> = Executor::new(&p, spec).take(40).collect();
        // Taken 4 times then not taken: 5 bodies before exit.
        let bodies = steps.iter().filter(|s| s.block.index() == 1).count();
        assert_eq!(bodies, 5);
        assert_eq!(steps.last().unwrap().block.index(), 2);
    }

    #[test]
    fn trips_one_never_takes() {
        let (p, back) = looping_program();
        let mut spec = BehaviorSpec::new(1);
        spec.loop_trips(back, 1);
        let steps: Vec<Step> = Executor::new(&p, spec).collect();
        assert_eq!(steps.len(), 3); // head, body, exit
    }
}
