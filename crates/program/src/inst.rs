//! Instructions of the simulated ISA.

use crate::addr::Addr;
use std::fmt;

/// The control-flow kind of an [`Instruction`].
///
/// The simulated ISA distinguishes exactly the cases that matter to the
/// paper's region-selection algorithms: whether an instruction can
/// transfer control, whether the transfer is conditional, and whether the
/// target is encoded in the instruction (direct) or only known at run
/// time (indirect). Calls and returns are modelled explicitly because NET
/// treats a call to a lower address or a return to a higher address as a
/// backward branch (paper §2.2, Figure 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InstKind {
    /// A non-control-flow instruction; execution falls through.
    Straight,
    /// A conditional branch: taken to `target`, or falls through.
    CondBranch {
        /// Address executed when the branch is taken.
        target: Addr,
    },
    /// An unconditional direct jump to `target`.
    Jump {
        /// Address always executed next.
        target: Addr,
    },
    /// An unconditional indirect jump; the target is chosen dynamically.
    IndirectJump,
    /// A direct call to `target` (pushes the return address).
    Call {
        /// Entry address of the callee.
        target: Addr,
    },
    /// An indirect call; the callee is chosen dynamically.
    IndirectCall,
    /// A return to the address saved by the matching call.
    Ret,
}

impl InstKind {
    /// Returns `true` if the instruction always transfers control
    /// (i.e. never falls through).
    pub fn is_unconditional_transfer(self) -> bool {
        !matches!(self, InstKind::Straight | InstKind::CondBranch { .. })
    }

    /// Returns `true` if the instruction may transfer control somewhere
    /// other than the next sequential instruction.
    pub fn is_branch(self) -> bool {
        !matches!(self, InstKind::Straight)
    }

    /// Returns `true` if the dynamic target is not encoded in the
    /// instruction (indirect jump/call and return).
    pub fn is_indirect(self) -> bool {
        matches!(
            self,
            InstKind::IndirectJump | InstKind::IndirectCall | InstKind::Ret
        )
    }

    /// Returns the statically known taken-target, if any.
    pub fn static_target(self) -> Option<Addr> {
        match self {
            InstKind::CondBranch { target }
            | InstKind::Jump { target }
            | InstKind::Call { target } => Some(target),
            _ => None,
        }
    }
}

/// One instruction of the simulated program.
///
/// Instructions occupy `size` bytes starting at `addr`; the byte size is
/// used by the code-cache size estimate exactly as in the paper (§4.3.4:
/// "for all benchmarks the average size of a selected instruction is
/// between three and four bytes").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Instruction {
    addr: Addr,
    size: u8,
    kind: InstKind,
}

impl Instruction {
    /// Creates an instruction.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(addr: Addr, size: u8, kind: InstKind) -> Self {
        assert!(size > 0, "instruction size must be nonzero");
        Instruction { addr, size, kind }
    }

    /// The instruction's address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// The instruction's size in bytes.
    pub fn size(&self) -> u8 {
        self.size
    }

    /// The instruction's control-flow kind.
    pub fn kind(&self) -> InstKind {
        self.kind
    }

    /// Address of the next sequential instruction.
    pub fn fallthrough_addr(&self) -> Addr {
        self.addr + u64::from(self.size)
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            InstKind::Straight => write!(f, "{}: op", self.addr),
            InstKind::CondBranch { target } => write!(f, "{}: jcc {}", self.addr, target),
            InstKind::Jump { target } => write!(f, "{}: jmp {}", self.addr, target),
            InstKind::IndirectJump => write!(f, "{}: jmp *r", self.addr),
            InstKind::Call { target } => write!(f, "{}: call {}", self.addr, target),
            InstKind::IndirectCall => write!(f, "{}: call *r", self.addr),
            InstKind::Ret => write!(f, "{}: ret", self.addr),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fallthrough_address_uses_size() {
        let i = Instruction::new(Addr::new(0x10), 4, InstKind::Straight);
        assert_eq!(i.fallthrough_addr(), Addr::new(0x14));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_size_rejected() {
        let _ = Instruction::new(Addr::new(0x10), 0, InstKind::Straight);
    }

    #[test]
    fn kind_classification() {
        assert!(!InstKind::Straight.is_branch());
        assert!(InstKind::Ret.is_branch());
        assert!(InstKind::Ret.is_indirect());
        assert!(InstKind::Ret.is_unconditional_transfer());
        assert!(
            !InstKind::CondBranch {
                target: Addr::new(1)
            }
            .is_unconditional_transfer()
        );
        assert!(
            InstKind::Jump {
                target: Addr::new(1)
            }
            .is_unconditional_transfer()
        );
        assert!(
            !InstKind::Call {
                target: Addr::new(1)
            }
            .is_indirect()
        );
        assert!(InstKind::IndirectCall.is_indirect());
    }

    #[test]
    fn static_targets() {
        let t = Addr::new(0x99);
        assert_eq!(InstKind::CondBranch { target: t }.static_target(), Some(t));
        assert_eq!(InstKind::Jump { target: t }.static_target(), Some(t));
        assert_eq!(InstKind::Call { target: t }.static_target(), Some(t));
        assert_eq!(InstKind::Ret.static_target(), None);
        assert_eq!(InstKind::IndirectJump.static_target(), None);
        assert_eq!(InstKind::Straight.static_target(), None);
    }

    #[test]
    fn display_forms() {
        let t = Addr::new(0x20);
        let d = |k| Instruction::new(Addr::new(0x10), 2, k).to_string();
        assert_eq!(d(InstKind::Straight), "0x10: op");
        assert_eq!(d(InstKind::CondBranch { target: t }), "0x10: jcc 0x20");
        assert_eq!(d(InstKind::Ret), "0x10: ret");
    }
}
