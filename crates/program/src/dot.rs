//! Graphviz (DOT) rendering of program control-flow graphs.
//!
//! Handy when designing workloads or debugging selection: render the
//! static CFG with `dot -Tsvg`, with functions as clusters and edge
//! styles distinguishing fall-through, conditional, call and return
//! flow.

use crate::addr::Addr;
use crate::inst::InstKind;
use crate::program::Program;
use std::fmt::Write as _;

/// Renders the whole program as a DOT digraph.
///
/// Every basic block is a node (labelled with its address and
/// instruction count); functions become subgraph clusters. Conditional
/// taken edges are solid, fall-through edges dashed, calls dotted with
/// an open arrowhead, and the (static) return edge is omitted — returns
/// are dynamic.
pub fn program_to_dot(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph program {{");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for f in program.functions() {
        let _ = writeln!(out, "  subgraph cluster_{} {{", f.id().index());
        let _ = writeln!(out, "    label=\"{}\";", escape(f.name()));
        for &bid in f.blocks() {
            let b = program.block(bid);
            let _ = writeln!(
                out,
                "    {} [label=\"{}\\n{} insts\"];",
                node(b.start()),
                b.start(),
                b.len()
            );
        }
        let _ = writeln!(out, "  }}");
    }
    for b in program.blocks() {
        let from = node(b.start());
        match b.terminator_kind() {
            InstKind::Straight => {
                if program.block_at(b.fallthrough_addr()).is_some() {
                    let _ = writeln!(
                        out,
                        "  {from} -> {} [style=dashed];",
                        node(b.fallthrough_addr())
                    );
                }
            }
            InstKind::CondBranch { target } => {
                let _ = writeln!(out, "  {from} -> {};", node(target));
                if program.block_at(b.fallthrough_addr()).is_some() {
                    let _ = writeln!(
                        out,
                        "  {from} -> {} [style=dashed];",
                        node(b.fallthrough_addr())
                    );
                }
            }
            InstKind::Jump { target } => {
                let _ = writeln!(out, "  {from} -> {} [color=blue];", node(target));
            }
            InstKind::Call { target } => {
                let _ = writeln!(
                    out,
                    "  {from} -> {} [style=dotted, arrowhead=open];",
                    node(target)
                );
            }
            InstKind::IndirectJump | InstKind::IndirectCall => {
                let _ = writeln!(
                    out,
                    "  {from} -> indirect_{} [style=dotted, color=gray];",
                    b.start().raw()
                );
                let _ = writeln!(
                    out,
                    "  indirect_{} [label=\"*\", shape=circle, color=gray];",
                    b.start().raw()
                );
            }
            InstKind::Ret => {}
        }
    }
    let _ = writeln!(out, "}}");
    out
}

fn node(a: Addr) -> String {
    format!("b{:x}", a.raw())
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn program() -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0x1000);
        let callee = b.function("leaf\"x\"", 0x100);
        let m0 = b.block(main);
        let m1 = b.block(main);
        let m2 = b.block_with(main, 0);
        b.call(m0, callee);
        b.cond_branch(m1, m0);
        b.ret(m2);
        let c0 = b.block(callee);
        b.ret(c0);
        b.build().unwrap()
    }

    #[test]
    fn renders_clusters_nodes_and_edges() {
        let p = program();
        let dot = program_to_dot(&p);
        assert!(dot.starts_with("digraph program {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.contains("label=\"main\""));
        // Call edge is dotted with an open arrowhead.
        assert!(dot.contains("style=dotted, arrowhead=open"));
        // The conditional's fall-through edge is dashed.
        assert!(dot.contains("style=dashed"));
        // One node per block.
        for b in p.blocks() {
            assert!(dot.contains(&format!("b{:x} [label=", b.start().raw())));
        }
    }

    #[test]
    fn quotes_in_names_are_escaped() {
        let dot = program_to_dot(&program());
        assert!(dot.contains("label=\"leaf\\\"x\\\"\""));
    }

    #[test]
    fn indirect_branches_get_a_star_node() {
        let mut b = ProgramBuilder::new();
        let f = b.function("main", 0x100);
        let sw = b.block(f);
        let t = b.block_with(f, 0);
        b.indirect_jump(sw);
        b.ret(t);
        let p = b.build().unwrap();
        let dot = program_to_dot(&p);
        assert!(dot.contains("shape=circle"));
    }
}
