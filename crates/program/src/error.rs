//! Errors reported while constructing programs.

use crate::addr::Addr;
use std::error::Error;
use std::fmt;

/// An error detected while validating a program under construction.
///
/// Returned by [`ProgramBuilder::build`](crate::ProgramBuilder::build).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// Two instructions occupy overlapping byte ranges.
    OverlappingAddresses {
        /// Address at which the overlap was detected.
        addr: Addr,
    },
    /// A direct branch targets an address with no instruction.
    DanglingTarget {
        /// Address of the branching instruction.
        src: Addr,
        /// The target address that has no instruction.
        target: Addr,
    },
    /// A branch targets the middle of a basic block rather than its start.
    MidBlockTarget {
        /// Address of the branching instruction.
        src: Addr,
        /// The offending target address.
        target: Addr,
    },
    /// A block that can fall through has no block at its fall-through
    /// address.
    DanglingFallthrough {
        /// End address of the falling-through block.
        from: Addr,
    },
    /// The program has no functions.
    Empty,
    /// A function has no blocks.
    EmptyFunction {
        /// Name of the empty function.
        name: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::OverlappingAddresses { addr } => {
                write!(f, "instructions overlap at {addr}")
            }
            BuildError::DanglingTarget { src, target } => {
                write!(
                    f,
                    "branch at {src} targets {target}, which holds no instruction"
                )
            }
            BuildError::MidBlockTarget { src, target } => {
                write!(f, "branch at {src} targets mid-block address {target}")
            }
            BuildError::DanglingFallthrough { from } => {
                write!(f, "block ending at {from} falls through to no block")
            }
            BuildError::Empty => write!(f, "program has no functions"),
            BuildError::EmptyFunction { name } => {
                write!(f, "function `{name}` has no blocks")
            }
        }
    }
}

impl Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_specific() {
        let e = BuildError::DanglingTarget {
            src: Addr::new(1),
            target: Addr::new(2),
        };
        let msg = e.to_string();
        assert!(msg.contains("0x1") && msg.contains("0x2"));
        assert!(msg.chars().next().unwrap().is_lowercase());
        assert_eq!(BuildError::Empty.to_string(), "program has no functions");
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn Error> = Box::new(BuildError::Empty);
        assert!(e.source().is_none());
    }
}
