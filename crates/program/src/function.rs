//! Functions (procedures) of the simulated program.

use crate::addr::Addr;
use crate::block::BlockId;
use std::fmt;

/// Identifier of a function within a [`Program`](crate::Program).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FunctionId(pub(crate) u32);

impl FunctionId {
    /// The raw index of this function in the program's function table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FunctionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F{}", self.0)
    }
}

/// A procedure: a named, contiguous range of basic blocks.
///
/// Function placement matters: the paper's Figure 2 places a callee at a
/// *lower* address than its caller so the call is a backward branch,
/// which is what prevents NET from spanning the interprocedural cycle.
/// [`ProgramBuilder`](crate::ProgramBuilder) lets workloads choose the
/// base address of every function for exactly this reason.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Function {
    id: FunctionId,
    name: String,
    entry: Addr,
    blocks: Vec<BlockId>,
}

impl Function {
    pub(crate) fn new(id: FunctionId, name: String, entry: Addr, blocks: Vec<BlockId>) -> Self {
        Function {
            id,
            name,
            entry,
            blocks,
        }
    }

    /// This function's identifier.
    pub fn id(&self) -> FunctionId {
        self.id
    }

    /// The function's name (for diagnostics and reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The entry address (address of the first block).
    pub fn entry(&self) -> Addr {
        self.entry
    }

    /// The blocks of the function, in address order.
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.name, self.entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let f = Function::new(
            FunctionId(2),
            "main".to_string(),
            Addr::new(0x400),
            vec![BlockId(0), BlockId(1)],
        );
        assert_eq!(f.id().index(), 2);
        assert_eq!(f.name(), "main");
        assert_eq!(f.entry(), Addr::new(0x400));
        assert_eq!(f.blocks().len(), 2);
        assert_eq!(f.to_string(), "main@0x400");
        assert_eq!(f.id().to_string(), "F2");
    }
}
