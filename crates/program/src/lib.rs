//! Program model and execution engine for the `regionsel` workspace.
//!
//! This crate is the substrate standing in for the Pin-instrumented
//! SPECint2000 binaries used by the paper *Improving Region Selection in
//! Dynamic Optimization Systems* (MICRO 2005). It provides:
//!
//! - an ISA-like static program model: [`Instruction`]s with concrete
//!   byte [`Addr`]esses grouped into [`BasicBlock`]s, [`Function`]s and a
//!   whole [`Program`];
//! - a [`ProgramBuilder`] for laying out control-flow graphs at concrete
//!   addresses (so forward vs. backward branches are meaningful, as they
//!   are to the NET and LEI trace-selection algorithms);
//! - per-branch dynamic [`behavior`] specifications (branch bias, loop
//!   trip counts, periodic patterns, weighted indirect targets);
//! - an [`Executor`] that walks a program under a behaviour specification
//!   and yields the executed basic-block stream — exactly the event
//!   stream the paper's simulation framework obtains from Pin.
//!
//! # Example
//!
//! ```
//! use rsel_program::{ProgramBuilder, behavior::BehaviorSpec, Executor};
//!
//! // A single function that loops ten times and returns.
//! let mut b = ProgramBuilder::new();
//! let f = b.function("main", 0x1000);
//! let head = b.block(f);          // falls through to body
//! let body = b.block(f);
//! let exit = b.block_with(f, 0);
//! b.cond_branch(body, head);     // backward branch closing the loop
//! b.ret(exit);
//! let program = b.build().unwrap();
//!
//! let mut spec = BehaviorSpec::new(7);
//! spec.loop_trips(program.block(body).branch_addr().unwrap(), 10);
//! let steps: Vec<_> = Executor::new(&program, spec).collect();
//! // 10 × (head, body), then exit.
//! assert_eq!(steps.len(), 21);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod behavior;
pub mod block;
pub mod builder;
pub mod dot;
pub mod error;
pub mod event;
pub mod exec;
pub mod function;
pub mod fxhash;
pub mod inst;
pub mod patterns;
pub mod program;

pub use addr::Addr;
pub use behavior::BehaviorSpec;
pub use block::{BasicBlock, BlockId};
pub use builder::ProgramBuilder;
pub use dot::program_to_dot;
pub use error::BuildError;
pub use event::{BranchKind, Entry, Step};
pub use exec::Executor;
pub use function::{Function, FunctionId};
pub use fxhash::{FxHashMap, FxHashSet};
pub use inst::{InstKind, Instruction};
pub use program::Program;
