//! The whole-program container with address-indexed lookups.

use crate::addr::Addr;
use crate::block::{BasicBlock, BlockId};
use crate::error::BuildError;
use crate::function::{Function, FunctionId};
use crate::fxhash::{self, FxHashMap};
use crate::inst::Instruction;

/// A validated, immutable program: functions, basic blocks and
/// address-indexed lookup tables.
///
/// Construct with [`ProgramBuilder`](crate::ProgramBuilder). Validation
/// guarantees that every direct branch target and every reachable
/// fall-through address is the start of a basic block, so the execution
/// engine and the trace-formation algorithms can navigate by address
/// without error handling at every step.
#[derive(Clone, Debug)]
pub struct Program {
    blocks: Vec<BasicBlock>,
    functions: Vec<Function>,
    entry: Addr,
    by_start: FxHashMap<Addr, BlockId>,
    by_inst: FxHashMap<Addr, BlockId>,
}

impl Program {
    pub(crate) fn validated(
        blocks: Vec<BasicBlock>,
        functions: Vec<Function>,
        entry: Addr,
    ) -> Result<Self, BuildError> {
        if functions.is_empty() {
            return Err(BuildError::Empty);
        }
        for f in &functions {
            if f.blocks().is_empty() {
                return Err(BuildError::EmptyFunction {
                    name: f.name().to_string(),
                });
            }
        }
        let mut by_start = fxhash::map_with_capacity(blocks.len());
        let mut by_inst = FxHashMap::default();
        for b in &blocks {
            by_start.insert(b.start(), b.id());
            for i in b.instructions() {
                if by_inst.insert(i.addr(), b.id()).is_some() {
                    return Err(BuildError::OverlappingAddresses { addr: i.addr() });
                }
            }
        }
        // Byte-range overlap: every instruction's bytes must not cross
        // into the next instruction's start address.
        {
            let mut addrs: Vec<&Instruction> =
                blocks.iter().flat_map(|b| b.instructions()).collect();
            addrs.sort_by_key(|i| i.addr());
            for w in addrs.windows(2) {
                if w[0].fallthrough_addr() > w[1].addr() {
                    return Err(BuildError::OverlappingAddresses { addr: w[1].addr() });
                }
            }
        }
        for b in &blocks {
            if let Some(target) = b.taken_target() {
                if !by_inst.contains_key(&target) {
                    return Err(BuildError::DanglingTarget {
                        src: b.terminator().addr(),
                        target,
                    });
                }
                if !by_start.contains_key(&target) {
                    return Err(BuildError::MidBlockTarget {
                        src: b.terminator().addr(),
                        target,
                    });
                }
            }
            if b.can_fall_through() && !by_start.contains_key(&b.fallthrough_addr()) {
                return Err(BuildError::DanglingFallthrough {
                    from: b.fallthrough_addr(),
                });
            }
        }
        Ok(Program {
            blocks,
            functions,
            entry,
            by_start,
            by_inst,
        })
    }

    /// The program's entry address (start of the first function built).
    pub fn entry(&self) -> Addr {
        self.entry
    }

    /// All basic blocks, in creation order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// All functions, in creation order.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// The function with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this program.
    pub fn function(&self, id: FunctionId) -> &Function {
        &self.functions[id.index()]
    }

    /// The block starting exactly at `addr`, if any.
    pub fn block_at(&self, addr: Addr) -> Option<&BasicBlock> {
        self.by_start.get(&addr).map(|id| self.block(*id))
    }

    /// The block containing the instruction at `addr`, if any.
    pub fn block_containing(&self, addr: Addr) -> Option<&BasicBlock> {
        self.by_inst.get(&addr).map(|id| self.block(*id))
    }

    /// The instruction at exactly `addr`, if any.
    pub fn inst_at(&self, addr: Addr) -> Option<&Instruction> {
        let b = self.block_containing(addr)?;
        b.instructions().iter().find(|i| i.addr() == addr)
    }

    /// Iterates over instructions along the fall-through path starting at
    /// `addr`, crossing block boundaries, until a block terminator that
    /// cannot fall through (or a dangling address) is passed.
    ///
    /// This is the walk used by LEI's FORM-TRACE (paper Figure 6) to copy
    /// "each inst in fall-through path from *prev* to *branch.src*".
    pub fn fallthrough_walk(&self, addr: Addr) -> FallthroughWalk<'_> {
        FallthroughWalk {
            program: self,
            next: Some(addr),
        }
    }

    /// Total number of instructions in the program.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.len()).sum()
    }

    /// Total byte size of all instructions.
    pub fn byte_size(&self) -> u64 {
        self.blocks.iter().map(|b| b.byte_size()).sum()
    }
}

/// Iterator over the fall-through instruction path from an address.
///
/// Produced by [`Program::fallthrough_walk`].
#[derive(Debug)]
pub struct FallthroughWalk<'p> {
    program: &'p Program,
    next: Option<Addr>,
}

impl<'p> Iterator for FallthroughWalk<'p> {
    type Item = &'p Instruction;

    fn next(&mut self) -> Option<Self::Item> {
        let addr = self.next?;
        let inst = self.program.inst_at(addr)?;
        self.next = if inst.kind().is_unconditional_transfer() {
            None
        } else {
            Some(inst.fallthrough_addr())
        };
        Some(inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn two_block_program() -> Program {
        let mut b = ProgramBuilder::new();
        let f = b.function("f", 0x100);
        let b0 = b.block_with(f, 2);
        let b1 = b.block(f);
        b.fallthrough(b0, b1);
        b.ret(b1);
        b.build().unwrap()
    }

    #[test]
    fn lookup_by_start_and_inst() {
        let p = two_block_program();
        let b0 = &p.blocks()[0];
        assert_eq!(p.block_at(b0.start()).unwrap().id(), b0.id());
        let second_inst = b0.instructions()[1].addr();
        assert!(p.block_at(second_inst).is_none());
        assert_eq!(p.block_containing(second_inst).unwrap().id(), b0.id());
        assert_eq!(p.inst_at(second_inst).unwrap().addr(), second_inst);
        assert!(p.inst_at(Addr::new(0x9999)).is_none());
    }

    #[test]
    fn fallthrough_walk_crosses_blocks_and_stops_at_ret() {
        let p = two_block_program();
        let walked: Vec<Addr> = p.fallthrough_walk(p.entry()).map(|i| i.addr()).collect();
        // 2 instructions in b0 + straight + ret in b1.
        assert_eq!(walked.len(), 4);
        assert_eq!(walked[0], p.entry());
    }

    #[test]
    fn inst_count_and_bytes() {
        let p = two_block_program();
        assert_eq!(p.inst_count(), 4);
        assert!(p.byte_size() >= 3);
    }

    #[test]
    fn entry_is_first_function() {
        let p = two_block_program();
        assert_eq!(p.entry(), Addr::new(0x100));
        assert_eq!(p.functions().len(), 1);
        assert_eq!(p.function(p.functions()[0].id()).name(), "f");
    }
}
