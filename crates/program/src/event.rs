//! Events emitted by the execution engine.

use crate::addr::Addr;
use crate::block::BlockId;
use std::fmt;

/// The kind of taken control transfer that entered a block.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// A conditional branch that was taken.
    Cond,
    /// An unconditional direct jump.
    Jump,
    /// An indirect jump.
    IndirectJump,
    /// A direct call.
    Call,
    /// An indirect call.
    IndirectCall,
    /// A return.
    Ret,
}

impl BranchKind {
    /// Returns `true` when the dynamic target of this transfer is not
    /// statically encoded in the instruction.
    pub fn is_indirect(self) -> bool {
        matches!(
            self,
            BranchKind::IndirectJump | BranchKind::IndirectCall | BranchKind::Ret
        )
    }
}

impl fmt::Display for BranchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchKind::Cond => "cond",
            BranchKind::Jump => "jump",
            BranchKind::IndirectJump => "ijump",
            BranchKind::Call => "call",
            BranchKind::IndirectCall => "icall",
            BranchKind::Ret => "ret",
        };
        f.write_str(s)
    }
}

/// How control arrived at an executed block.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Entry {
    /// The first block of the run.
    Start,
    /// Sequential fall-through from the previous block (including the
    /// not-taken direction of a conditional branch).
    Fallthrough,
    /// A taken branch.
    Taken {
        /// Address of the branching instruction.
        src: Addr,
        /// The kind of transfer.
        kind: BranchKind,
    },
}

impl Entry {
    /// Returns the source address if this entry was a taken branch.
    pub fn taken_src(self) -> Option<Addr> {
        match self {
            Entry::Taken { src, .. } => Some(src),
            _ => None,
        }
    }

    /// Returns `true` for [`Entry::Taken`].
    pub fn is_taken(self) -> bool {
        matches!(self, Entry::Taken { .. })
    }
}

/// One executed basic block, as reported by the execution engine.
///
/// This mirrors what the paper's framework receives from Pin: "the
/// sequence of basic blocks executed by a program" (§2.3), along with
/// enough information to recognise each taken branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Step {
    /// The executed block.
    pub block: BlockId,
    /// Start address of the executed block (the branch target when
    /// `entry` is a taken branch).
    pub start: Addr,
    /// How control arrived here.
    pub entry: Entry,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taken_src_extraction() {
        let e = Entry::Taken {
            src: Addr::new(5),
            kind: BranchKind::Cond,
        };
        assert_eq!(e.taken_src(), Some(Addr::new(5)));
        assert!(e.is_taken());
        assert_eq!(Entry::Fallthrough.taken_src(), None);
        assert!(!Entry::Start.is_taken());
    }

    #[test]
    fn indirectness() {
        assert!(BranchKind::Ret.is_indirect());
        assert!(BranchKind::IndirectJump.is_indirect());
        assert!(BranchKind::IndirectCall.is_indirect());
        assert!(!BranchKind::Cond.is_indirect());
        assert!(!BranchKind::Call.is_indirect());
        assert!(!BranchKind::Jump.is_indirect());
    }

    #[test]
    fn display_names() {
        assert_eq!(BranchKind::Cond.to_string(), "cond");
        assert_eq!(BranchKind::Ret.to_string(), "ret");
    }
}
