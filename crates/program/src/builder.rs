//! Incremental construction of [`Program`]s.

use crate::addr::Addr;
use crate::block::{BasicBlock, BlockId};
use crate::error::BuildError;
use crate::function::{Function, FunctionId};
use crate::inst::{InstKind, Instruction};
use crate::program::Program;

/// Byte size assigned to branch instructions.
const BRANCH_SIZE: u8 = 2;
/// Byte sizes cycled through for straight-line instructions, giving the
/// 3–4 byte average the paper reports for selected instructions (§4.3.4).
const STRAIGHT_SIZES: [u8; 2] = [4, 3];

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Term {
    /// Fall through to the next block laid out.
    Fallthrough,
    CondBranch(BlockId),
    Jump(BlockId),
    IndirectJump,
    Call(FunctionId),
    IndirectCall,
    Ret,
}

#[derive(Debug)]
struct BlockDraft {
    function: FunctionId,
    straight: u32,
    term: Term,
    term_set: bool,
}

#[derive(Debug)]
struct FunctionDraft {
    name: String,
    base: Addr,
    blocks: Vec<BlockId>,
}

/// Builder for [`Program`]s.
///
/// Functions are placed at explicit base addresses (or immediately after
/// the previous function with [`ProgramBuilder::function_auto`]); blocks
/// within a function are laid out contiguously in creation order. A block
/// without an explicit terminator falls through to the next block created
/// in the same function.
///
/// # Example
///
/// ```
/// use rsel_program::ProgramBuilder;
///
/// let mut b = ProgramBuilder::new();
/// let f = b.function("f", 0x1000);
/// let hot = b.block(f);
/// let exit = b.block_with(f, 0);
/// b.cond_branch(hot, hot); // self-loop while taken
/// b.ret(exit);
/// let program = b.build()?;
/// assert_eq!(program.entry(), 0x1000.into());
/// # Ok::<(), rsel_program::BuildError>(())
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    functions: Vec<FunctionDraft>,
    blocks: Vec<BlockDraft>,
    next_auto: u64,
    entry: Option<FunctionId>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder {
            functions: Vec::new(),
            blocks: Vec::new(),
            next_auto: 0x1000,
            entry: None,
        }
    }

    /// Makes `f` the program entry point (default: the first function
    /// declared).
    pub fn set_entry(&mut self, f: FunctionId) {
        self.entry = Some(f);
    }

    /// Declares a function named `name` with its entry at `base`.
    ///
    /// The first function declared provides the program entry point.
    pub fn function(&mut self, name: &str, base: u64) -> FunctionId {
        let id = FunctionId(self.functions.len() as u32);
        self.functions.push(FunctionDraft {
            name: name.to_string(),
            base: Addr::new(base),
            blocks: Vec::new(),
        });
        self.next_auto = self.next_auto.max(base);
        id
    }

    /// Declares a function placed after everything declared so far, with
    /// `gap` padding bytes before its entry.
    pub fn function_auto(&mut self, name: &str, gap: u64) -> FunctionId {
        // Upper bound on bytes already laid out: every instruction is at
        // most 4 bytes.
        let laid: u64 = self
            .blocks
            .iter()
            .map(|b| u64::from(b.straight) * 4 + u64::from(BRANCH_SIZE))
            .sum();
        let base = self.next_auto + laid + gap;
        self.function(name, base)
    }

    /// Adds a block with one straight-line instruction to `f`.
    pub fn block(&mut self, f: FunctionId) -> BlockId {
        self.block_with(f, 1)
    }

    /// Adds a block with `straight` straight-line instructions to `f`.
    ///
    /// A terminator may be attached later with one of the terminator
    /// methods; otherwise the block falls through. A block with zero
    /// straight instructions must receive a branching terminator.
    pub fn block_with(&mut self, f: FunctionId, straight: u32) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BlockDraft {
            function: f,
            straight,
            term: Term::Fallthrough,
            term_set: false,
        });
        self.functions[f.index()].blocks.push(id);
        id
    }

    fn set_term(&mut self, b: BlockId, term: Term) {
        let d = &mut self.blocks[b.index()];
        assert!(!d.term_set, "terminator of {b} set twice");
        d.term = term;
        d.term_set = true;
    }

    /// Marks `b` as falling through to the next block (the default).
    ///
    /// # Panics
    ///
    /// Panics if `b` already has a terminator.
    pub fn fallthrough(&mut self, b: BlockId, _next: BlockId) {
        self.set_term(b, Term::Fallthrough);
    }

    /// Ends `b` with a conditional branch to `target` (falls through when
    /// not taken).
    ///
    /// # Panics
    ///
    /// Panics if `b` already has a terminator.
    pub fn cond_branch(&mut self, b: BlockId, target: BlockId) {
        self.set_term(b, Term::CondBranch(target));
    }

    /// Ends `b` with an unconditional jump to `target`.
    ///
    /// # Panics
    ///
    /// Panics if `b` already has a terminator.
    pub fn jump(&mut self, b: BlockId, target: BlockId) {
        self.set_term(b, Term::Jump(target));
    }

    /// Ends `b` with an indirect jump (targets supplied by behaviour).
    ///
    /// # Panics
    ///
    /// Panics if `b` already has a terminator.
    pub fn indirect_jump(&mut self, b: BlockId) {
        self.set_term(b, Term::IndirectJump);
    }

    /// Ends `b` with a direct call to function `callee`; execution
    /// resumes at `b`'s fall-through address when the callee returns.
    ///
    /// # Panics
    ///
    /// Panics if `b` already has a terminator.
    pub fn call(&mut self, b: BlockId, callee: FunctionId) {
        self.set_term(b, Term::Call(callee));
    }

    /// Ends `b` with an indirect call (callee supplied by behaviour).
    ///
    /// # Panics
    ///
    /// Panics if `b` already has a terminator.
    pub fn indirect_call(&mut self, b: BlockId) {
        self.set_term(b, Term::IndirectCall);
    }

    /// Ends `b` with a return.
    ///
    /// # Panics
    ///
    /// Panics if `b` already has a terminator.
    pub fn ret(&mut self, b: BlockId) {
        self.set_term(b, Term::Ret);
    }

    /// Lays out all functions and blocks, resolves branch targets, and
    /// validates the program.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] if instructions overlap, a branch targets
    /// a non-block address, a fall-through dangles, or the program or a
    /// function is empty.
    pub fn build(self) -> Result<Program, BuildError> {
        // Pass 1: assign addresses to every block.
        let mut starts = vec![Addr::NULL; self.blocks.len()];
        let mut term_addrs = vec![Addr::NULL; self.blocks.len()];
        for f in &self.functions {
            let mut cursor = f.base;
            for &bid in &f.blocks {
                let d = &self.blocks[bid.index()];
                starts[bid.index()] = cursor;
                for k in 0..d.straight {
                    cursor = cursor + u64::from(STRAIGHT_SIZES[k as usize % 2]);
                }
                term_addrs[bid.index()] = cursor;
                let has_branch = d.term_set && d.term != Term::Fallthrough;
                if has_branch {
                    cursor = cursor + u64::from(BRANCH_SIZE);
                }
            }
        }
        // Pass 2: materialize instructions with resolved targets.
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for (idx, d) in self.blocks.iter().enumerate() {
            let bid = BlockId(idx as u32);
            let mut instrs = Vec::with_capacity(d.straight as usize + 1);
            let mut cursor = starts[idx];
            for k in 0..d.straight {
                let size = STRAIGHT_SIZES[k as usize % 2];
                instrs.push(Instruction::new(cursor, size, InstKind::Straight));
                cursor = cursor + u64::from(size);
            }
            let term_kind = match d.term {
                Term::Fallthrough => None,
                Term::CondBranch(t) => Some(InstKind::CondBranch {
                    target: starts[t.index()],
                }),
                Term::Jump(t) => Some(InstKind::Jump {
                    target: starts[t.index()],
                }),
                Term::IndirectJump => Some(InstKind::IndirectJump),
                Term::Call(callee) => {
                    let entry = self.functions[callee.index()]
                        .blocks
                        .first()
                        .map(|b| starts[b.index()])
                        .unwrap_or(Addr::NULL);
                    Some(InstKind::Call { target: entry })
                }
                Term::IndirectCall => Some(InstKind::IndirectCall),
                Term::Ret => Some(InstKind::Ret),
            };
            if let Some(kind) = term_kind {
                instrs.push(Instruction::new(cursor, BRANCH_SIZE, kind));
            }
            if instrs.is_empty() {
                return Err(BuildError::EmptyFunction {
                    name: self.functions[d.function.index()].name.clone(),
                });
            }
            blocks.push(BasicBlock::new(bid, instrs));
        }
        let functions: Vec<Function> = self
            .functions
            .iter()
            .enumerate()
            .map(|(i, f)| {
                Function::new(
                    FunctionId(i as u32),
                    f.name.clone(),
                    f.base,
                    f.blocks.clone(),
                )
            })
            .collect();
        let entry = self
            .entry
            .map(|f| self.functions[f.index()].base)
            .or_else(|| self.functions.first().map(|f| f.base))
            .unwrap_or(Addr::NULL);
        Program::validated(blocks, functions, entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_loop_builds() {
        let mut b = ProgramBuilder::new();
        let f = b.function("main", 0x100);
        let head = b.block(f);
        let exit = b.block_with(f, 0);
        b.cond_branch(head, head);
        b.ret(exit);
        let p = b.build().unwrap();
        assert_eq!(p.blocks().len(), 2);
        let h = p.block(head);
        assert_eq!(h.start(), Addr::new(0x100));
        assert_eq!(h.taken_target(), Some(Addr::new(0x100)));
        assert_eq!(h.len(), 2); // straight + branch
    }

    #[test]
    fn dangling_fallthrough_rejected() {
        let mut b = ProgramBuilder::new();
        let f = b.function("main", 0x100);
        let only = b.block(f); // straight block with nothing after
        let _ = only;
        assert!(matches!(
            b.build(),
            Err(BuildError::DanglingFallthrough { .. })
        ));
    }

    #[test]
    fn empty_program_rejected() {
        assert_eq!(
            ProgramBuilder::new().build().unwrap_err(),
            BuildError::Empty
        );
    }

    #[test]
    fn empty_function_rejected() {
        let mut b = ProgramBuilder::new();
        let _f = b.function("main", 0x100);
        assert!(matches!(b.build(), Err(BuildError::EmptyFunction { .. })));
    }

    #[test]
    fn call_resolves_to_function_entry() {
        let mut b = ProgramBuilder::new();
        let main = b.function("main", 0x1000);
        let callee = b.function("callee", 0x100); // lower address: backward call
        let c0 = b.block(main);
        let c1 = b.block_with(main, 0);
        b.call(c0, callee);
        b.ret(c1);
        let e0 = b.block_with(callee, 0);
        b.ret(e0);
        let p = b.build().unwrap();
        let call_block = p.block(c0);
        assert_eq!(call_block.taken_target(), Some(Addr::new(0x100)));
        // The call is a backward branch (target below source).
        let src = call_block.branch_addr().unwrap();
        assert!(Addr::new(0x100).is_backward_from(src));
    }

    #[test]
    #[should_panic(expected = "set twice")]
    fn double_terminator_panics() {
        let mut b = ProgramBuilder::new();
        let f = b.function("main", 0x100);
        let bb = b.block(f);
        b.ret(bb);
        b.ret(bb);
    }

    #[test]
    fn function_auto_places_after_previous() {
        let mut b = ProgramBuilder::new();
        let f0 = b.function("a", 0x100);
        let a0 = b.block_with(f0, 3);
        b.ret(a0);
        let f1 = b.function_auto("b", 64);
        let b0 = b.block_with(f1, 0);
        b.ret(b0);
        let p = b.build().unwrap();
        assert!(p.functions()[1].entry() > p.functions()[0].entry());
    }

    #[test]
    fn straight_sizes_alternate() {
        let mut b = ProgramBuilder::new();
        let f = b.function("main", 0x100);
        let bb = b.block_with(f, 3);
        b.ret(bb);
        let p = b.build().unwrap();
        let sizes: Vec<u8> = p
            .block(bb)
            .instructions()
            .iter()
            .map(|i| i.size())
            .collect();
        assert_eq!(sizes, vec![4, 3, 4, BRANCH_SIZE]);
    }
}
