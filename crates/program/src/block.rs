//! Basic blocks of the simulated program.

use crate::addr::Addr;
use crate::inst::{InstKind, Instruction};
use std::fmt;

/// Identifier of a basic block within a [`Program`](crate::Program).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub(crate) u32);

impl BlockId {
    /// The raw index of this block in the program's block table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// A maximal single-entry straight-line sequence of instructions.
///
/// Only the final instruction of a block may transfer control; this is
/// the granularity at which Pin reports execution to the paper's
/// simulation framework, and the granularity at which regions are built.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BasicBlock {
    id: BlockId,
    instructions: Vec<Instruction>,
}

impl BasicBlock {
    pub(crate) fn new(id: BlockId, instructions: Vec<Instruction>) -> Self {
        debug_assert!(!instructions.is_empty(), "blocks are non-empty");
        debug_assert!(
            instructions[..instructions.len() - 1]
                .iter()
                .all(|i| !i.kind().is_branch()),
            "only the terminator may branch"
        );
        BasicBlock { id, instructions }
    }

    /// This block's identifier.
    pub fn id(&self) -> BlockId {
        self.id
    }

    /// The address of the first instruction.
    pub fn start(&self) -> Addr {
        self.instructions[0].addr()
    }

    /// The instructions of the block, in address order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the block is empty (never true for validated programs).
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Total byte size of the block.
    pub fn byte_size(&self) -> u64 {
        self.instructions.iter().map(|i| u64::from(i.size())).sum()
    }

    /// The final (and only possibly-branching) instruction.
    pub fn terminator(&self) -> &Instruction {
        self.instructions.last().expect("blocks are non-empty")
    }

    /// Address of the terminator; this is the `src` of any taken branch
    /// leaving this block.
    pub fn branch_addr(&self) -> Option<Addr> {
        let t = self.terminator();
        t.kind().is_branch().then(|| t.addr())
    }

    /// Address immediately after the block (fall-through successor).
    pub fn fallthrough_addr(&self) -> Addr {
        self.terminator().fallthrough_addr()
    }

    /// Whether execution can fall through past this block.
    pub fn can_fall_through(&self) -> bool {
        !self.terminator().kind().is_unconditional_transfer()
    }

    /// The statically-known taken target of the terminator, if any.
    pub fn taken_target(&self) -> Option<Addr> {
        self.terminator().kind().static_target()
    }

    /// The control-flow kind of the terminator.
    pub fn terminator_kind(&self) -> InstKind {
        self.terminator().kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> BasicBlock {
        BasicBlock::new(
            BlockId(3),
            vec![
                Instruction::new(Addr::new(0x10), 4, InstKind::Straight),
                Instruction::new(Addr::new(0x14), 3, InstKind::Straight),
                Instruction::new(
                    Addr::new(0x17),
                    2,
                    InstKind::CondBranch {
                        target: Addr::new(0x40),
                    },
                ),
            ],
        )
    }

    #[test]
    fn geometry() {
        let b = block();
        assert_eq!(b.start(), Addr::new(0x10));
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.byte_size(), 9);
        assert_eq!(b.fallthrough_addr(), Addr::new(0x19));
        assert_eq!(b.id().index(), 3);
        assert_eq!(b.id().to_string(), "B3");
    }

    #[test]
    fn terminator_queries() {
        let b = block();
        assert_eq!(b.branch_addr(), Some(Addr::new(0x17)));
        assert!(b.can_fall_through());
        assert_eq!(b.taken_target(), Some(Addr::new(0x40)));
    }

    #[test]
    fn straight_block_has_no_branch_addr() {
        let b = BasicBlock::new(
            BlockId(0),
            vec![Instruction::new(Addr::new(0x10), 4, InstKind::Straight)],
        );
        assert_eq!(b.branch_addr(), None);
        assert!(b.can_fall_through());
    }

    #[test]
    fn jump_block_cannot_fall_through() {
        let b = BasicBlock::new(
            BlockId(0),
            vec![Instruction::new(
                Addr::new(0x10),
                2,
                InstKind::Jump {
                    target: Addr::new(0x80),
                },
            )],
        );
        assert!(!b.can_fall_through());
        assert_eq!(b.taken_target(), Some(Addr::new(0x80)));
    }
}
