//! Dynamic branch behaviour specifications.
//!
//! A [`BehaviorSpec`] describes, per branch-instruction address, how the
//! branch behaves when executed: its bias, its loop trip count, or an
//! explicit outcome pattern. Together with a
//! [`Program`](crate::Program), a spec fully determines (given a seed)
//! the dynamic execution the [`Executor`](crate::Executor) produces.
//!
//! The vocabulary maps onto the control-flow phenomena the paper
//! studies: biased vs. *unbiased* branches (§2.2 "Unbiased branches"),
//! loop trip counts (nested-loop duplication, §2.2 "Nested loops"), and
//! phase changes (§4.3.1 cites Sherwood et al. on phase behaviour).

use crate::addr::Addr;
use std::collections::HashMap;

/// Behaviour of one conditional branch.
#[derive(Clone, Debug, PartialEq)]
pub enum CondBehavior {
    /// Always taken.
    Taken,
    /// Never taken.
    NotTaken,
    /// Taken with probability `p` (independently each execution).
    Bernoulli(f64),
    /// Loop back-edge executed as a counted loop: taken `n - 1` times,
    /// then not taken once, repeating. `Trips(1)` and `Trips(0)` are
    /// never taken.
    Trips(u32),
    /// Explicit cyclic outcome pattern (`true` = taken).
    Pattern(Vec<bool>),
    /// Phased behaviour: each `(executions, behaviour)` pair runs for
    /// that many executions, then moves on; the last phase persists.
    Phased(Vec<(u64, CondBehavior)>),
}

/// Behaviour of one indirect jump or indirect call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IndirectBehavior {
    /// Targets chosen with the given relative integer weights.
    Weighted(Vec<(Addr, u32)>),
    /// Targets visited cyclically in order.
    RoundRobin(Vec<Addr>),
}

/// Per-branch dynamic behaviour for a whole program.
///
/// Conditional branches with no entry default to an unbiased coin
/// (`Bernoulli(0.5)`). Indirect branches *must* be given targets; the
/// executor panics otherwise, because no sensible default exists.
#[derive(Clone, Debug)]
pub struct BehaviorSpec {
    seed: u64,
    cond: HashMap<Addr, CondBehavior>,
    indirect: HashMap<Addr, IndirectBehavior>,
}

impl BehaviorSpec {
    /// Creates a spec with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        BehaviorSpec {
            seed,
            cond: HashMap::new(),
            indirect: HashMap::new(),
        }
    }

    /// The RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sets an explicit behaviour for the conditional branch at `addr`.
    pub fn set_cond(&mut self, addr: Addr, behavior: CondBehavior) -> &mut Self {
        self.cond.insert(addr, behavior);
        self
    }

    /// Marks the branch at `addr` always taken.
    pub fn always(&mut self, addr: Addr) -> &mut Self {
        self.set_cond(addr, CondBehavior::Taken)
    }

    /// Marks the branch at `addr` never taken.
    pub fn never(&mut self, addr: Addr) -> &mut Self {
        self.set_cond(addr, CondBehavior::NotTaken)
    }

    /// Marks the branch at `addr` taken with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=1.0`.
    pub fn bernoulli(&mut self, addr: Addr, p: f64) -> &mut Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.set_cond(addr, CondBehavior::Bernoulli(p))
    }

    /// Treats the branch at `addr` as the back edge of a counted loop
    /// with `trips` iterations per entry.
    pub fn loop_trips(&mut self, addr: Addr, trips: u32) -> &mut Self {
        self.set_cond(addr, CondBehavior::Trips(trips))
    }

    /// Gives the branch at `addr` an explicit cyclic outcome pattern.
    ///
    /// # Panics
    ///
    /// Panics if `pattern` is empty.
    pub fn pattern(&mut self, addr: Addr, pattern: Vec<bool>) -> &mut Self {
        assert!(!pattern.is_empty(), "pattern must be non-empty");
        self.set_cond(addr, CondBehavior::Pattern(pattern))
    }

    /// Sets weighted targets for the indirect branch at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty or all weights are zero.
    pub fn indirect_weighted(&mut self, addr: Addr, targets: Vec<(Addr, u32)>) -> &mut Self {
        assert!(!targets.is_empty(), "indirect branch needs targets");
        assert!(targets.iter().any(|(_, w)| *w > 0), "all weights are zero");
        self.indirect
            .insert(addr, IndirectBehavior::Weighted(targets));
        self
    }

    /// Sets round-robin targets for the indirect branch at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty.
    pub fn indirect_round_robin(&mut self, addr: Addr, targets: Vec<Addr>) -> &mut Self {
        assert!(!targets.is_empty(), "indirect branch needs targets");
        self.indirect
            .insert(addr, IndirectBehavior::RoundRobin(targets));
        self
    }

    /// The behaviour configured for the conditional branch at `addr`, if
    /// any (the executor substitutes an unbiased coin otherwise).
    pub fn cond(&self, addr: Addr) -> Option<&CondBehavior> {
        self.cond.get(&addr)
    }

    /// The behaviour configured for the indirect branch at `addr`.
    pub fn indirect(&self, addr: Addr) -> Option<&IndirectBehavior> {
        self.indirect.get(&addr)
    }

    /// Number of branches with explicit behaviours (diagnostics).
    pub fn len(&self) -> usize {
        self.cond.len() + self.indirect.len()
    }

    /// Whether no behaviours have been configured.
    pub fn is_empty(&self) -> bool {
        self.cond.is_empty() && self.indirect.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setters_store_behaviours() {
        let mut s = BehaviorSpec::new(1);
        let a = Addr::new(0x10);
        s.loop_trips(a, 8);
        assert_eq!(s.cond(a), Some(&CondBehavior::Trips(8)));
        s.set_cond(a, CondBehavior::Taken);
        assert_eq!(s.cond(a), Some(&CondBehavior::Taken));
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_spec() {
        let s = BehaviorSpec::new(0);
        assert!(s.is_empty());
        assert_eq!(s.cond(Addr::new(1)), None);
        assert_eq!(s.indirect(Addr::new(1)), None);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bernoulli_range_checked() {
        BehaviorSpec::new(0).bernoulli(Addr::new(1), 1.5);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_pattern_rejected() {
        BehaviorSpec::new(0).pattern(Addr::new(1), vec![]);
    }

    #[test]
    #[should_panic(expected = "targets")]
    fn empty_indirect_rejected() {
        BehaviorSpec::new(0).indirect_weighted(Addr::new(1), vec![]);
    }

    #[test]
    #[should_panic(expected = "weights")]
    fn zero_weights_rejected() {
        BehaviorSpec::new(0).indirect_weighted(Addr::new(1), vec![(Addr::new(2), 0)]);
    }
}
