//! Reusable control-flow pattern generators.
//!
//! [`ScenarioBuilder`] couples a [`ProgramBuilder`] with behaviour
//! intents keyed by block, so whole scenarios — loop nests, unbiased
//! diamonds, call sites, switches — can be declared in one place and
//! resolved to a `(Program, BehaviorSpec)` pair at build time. The
//! workload crate composes these patterns into its SPECint2000-like
//! benchmarks, and the repository's examples use them to reconstruct the
//! paper's Figures 2–4.

use crate::behavior::{BehaviorSpec, CondBehavior};
use crate::block::BlockId;
use crate::builder::ProgramBuilder;
use crate::error::BuildError;
use crate::function::FunctionId;
use crate::program::Program;

#[derive(Clone, Debug)]
enum IndirectIntent {
    Weighted(Vec<(BlockId, u32)>),
    RoundRobin(Vec<BlockId>),
}

/// A scenario under construction: program structure plus branch
/// behaviour, resolved together by [`ScenarioBuilder::build`].
///
/// # Example
///
/// ```
/// use rsel_program::patterns::ScenarioBuilder;
///
/// let mut s = ScenarioBuilder::new(11);
/// let f = s.function("main", 0x1000);
/// let lp = s.counted_loop(f, 2, 100);
/// s.ret_from(f, lp.exit);
/// let (program, spec) = s.build()?;
/// assert!(program.inst_count() > 0);
/// assert!(!spec.is_empty());
/// # Ok::<(), rsel_program::BuildError>(())
/// ```
#[derive(Debug)]
pub struct ScenarioBuilder {
    pb: ProgramBuilder,
    seed: u64,
    block_scale: u32,
    cond: Vec<(BlockId, CondBehavior)>,
    indirect: Vec<(BlockId, IndirectIntent)>,
}

/// The blocks of a loop created by [`ScenarioBuilder::counted_loop`].
#[derive(Clone, Copy, Debug)]
pub struct LoopShape {
    /// Loop header (branch target of the back edge).
    pub head: BlockId,
    /// Final body block; carries the backward conditional branch.
    pub latch: BlockId,
    /// Block executed when the loop exits (falls through from `latch`).
    pub exit: BlockId,
}

/// The blocks of an if/else diamond created by
/// [`ScenarioBuilder::diamond`].
#[derive(Clone, Copy, Debug)]
pub struct DiamondShape {
    /// Block ending with the conditional branch.
    pub split: BlockId,
    /// Taken-direction block.
    pub taken: BlockId,
    /// Fall-through-direction block.
    pub fallthrough: BlockId,
    /// Join block reached by both sides.
    pub join: BlockId,
}

impl ScenarioBuilder {
    /// Creates a scenario with the given behaviour seed.
    pub fn new(seed: u64) -> Self {
        ScenarioBuilder {
            pb: ProgramBuilder::new(),
            seed,
            block_scale: 1,
            cond: Vec::new(),
            indirect: Vec::new(),
        }
    }

    /// Multiplies the straight-instruction count of every subsequently
    /// created block by `k` (block "fatness"; the workloads use this to
    /// approach SPEC-like basic-block sizes).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn set_block_scale(&mut self, k: u32) {
        assert!(k > 0, "block scale must be positive");
        self.block_scale = k;
    }

    /// Declares a function at an explicit base address.
    pub fn function(&mut self, name: &str, base: u64) -> FunctionId {
        self.pb.function(name, base)
    }

    /// Declares a function placed after everything so far.
    pub fn function_auto(&mut self, name: &str) -> FunctionId {
        self.pb.function_auto(name, 0x40)
    }

    /// Makes `f` the program entry point (default: the first function
    /// declared).
    pub fn set_entry(&mut self, f: FunctionId) {
        self.pb.set_entry(f);
    }

    /// Adds a block with `straight` straight-line instructions
    /// (multiplied by the block scale; zero stays zero).
    pub fn block(&mut self, f: FunctionId, straight: u32) -> BlockId {
        self.pb.block_with(f, straight * self.block_scale)
    }

    /// Ends `b` with a conditional branch to `target`, taken with
    /// probability `p`.
    pub fn branch_p(&mut self, b: BlockId, target: BlockId, p: f64) {
        self.pb.cond_branch(b, target);
        self.cond.push((b, CondBehavior::Bernoulli(p)));
    }

    /// Ends `b` with a conditional branch to `target` behaving as a
    /// counted back edge with `trips` iterations.
    pub fn branch_trips(&mut self, b: BlockId, target: BlockId, trips: u32) {
        self.pb.cond_branch(b, target);
        self.cond.push((b, CondBehavior::Trips(trips)));
    }

    /// Ends `b` with a conditional branch to `target` following an
    /// explicit cyclic pattern.
    pub fn branch_pattern(&mut self, b: BlockId, target: BlockId, pattern: Vec<bool>) {
        self.pb.cond_branch(b, target);
        self.cond.push((b, CondBehavior::Pattern(pattern)));
    }

    /// Ends `b` with a conditional branch with fully custom behaviour.
    pub fn branch_custom(&mut self, b: BlockId, target: BlockId, behavior: CondBehavior) {
        self.pb.cond_branch(b, target);
        self.cond.push((b, behavior));
    }

    /// Ends `b` with an unconditional jump to `target`.
    pub fn jump(&mut self, b: BlockId, target: BlockId) {
        self.pb.jump(b, target);
    }

    /// Ends `b` with a direct call to `callee`.
    pub fn call(&mut self, b: BlockId, callee: FunctionId) {
        self.pb.call(b, callee);
    }

    /// Ends `b` with an indirect call dispatching over `callees` with
    /// the given weights.
    pub fn indirect_call_weighted(&mut self, b: BlockId, callees: Vec<(BlockId, u32)>) {
        self.pb.indirect_call(b);
        self.indirect.push((b, IndirectIntent::Weighted(callees)));
    }

    /// Ends `b` with an indirect jump over weighted targets.
    pub fn indirect_jump_weighted(&mut self, b: BlockId, targets: Vec<(BlockId, u32)>) {
        self.pb.indirect_jump(b);
        self.indirect.push((b, IndirectIntent::Weighted(targets)));
    }

    /// Ends `b` with an indirect jump cycling through `targets`.
    pub fn indirect_jump_round_robin(&mut self, b: BlockId, targets: Vec<BlockId>) {
        self.pb.indirect_jump(b);
        self.indirect.push((b, IndirectIntent::RoundRobin(targets)));
    }

    /// Ends `b` with a return.
    pub fn ret(&mut self, b: BlockId) {
        self.pb.ret(b);
    }

    /// Adds a fresh returning block to `f` and jumps to it from `b`.
    pub fn ret_from(&mut self, f: FunctionId, b: BlockId) -> BlockId {
        let r = self.block(f, 0);
        self.pb.ret(r);
        self.pb.jump(b, r);
        r
    }

    // ------------------------------------------------------------------
    // Composite patterns
    // ------------------------------------------------------------------

    /// Adds a counted loop: `head` falls into `latch`, whose backward
    /// branch re-enters `head` `trips - 1` times per entry.
    pub fn counted_loop(&mut self, f: FunctionId, body_straight: u32, trips: u32) -> LoopShape {
        let head = self.block(f, body_straight);
        let latch = self.block(f, 1);
        let exit = self.block(f, 1);
        self.branch_trips(latch, head, trips);
        LoopShape { head, latch, exit }
    }

    /// Adds an if/else diamond whose branch is taken with probability
    /// `p` and whose sides rejoin. The paper's Figure 4 uses `p = 0.5`
    /// (the unbiased case that causes tail duplication under NET).
    pub fn diamond(&mut self, f: FunctionId, p: f64, side_straight: u32) -> DiamondShape {
        let split = self.block(f, 1);
        let fallthrough = self.block(f, side_straight);
        let taken = self.block(f, side_straight);
        let join = self.block(f, 1);
        self.branch_p(split, taken, p);
        self.jump(fallthrough, join);
        // `taken` falls through to `join` (laid out immediately before).
        DiamondShape {
            split,
            taken,
            fallthrough,
            join,
        }
    }

    /// Adds a chain of `n` diamonds with the given taken-probabilities
    /// (cycled), returning the entry block of the first and the join of
    /// the last.
    pub fn diamond_chain(
        &mut self,
        f: FunctionId,
        n: usize,
        probabilities: &[f64],
    ) -> (BlockId, BlockId) {
        assert!(n > 0 && !probabilities.is_empty());
        let first = self.diamond(f, probabilities[0], 1);
        let mut last_join = first.join;
        for i in 1..n {
            let d = self.diamond(f, probabilities[i % probabilities.len()], 1);
            // The previous join falls through into this split because of
            // sequential layout; nothing to connect explicitly.
            let _ = d;
            last_join = d.join;
        }
        (first.split, last_join)
    }

    /// Resolves block-level intents to branch addresses and builds the
    /// final `(Program, BehaviorSpec)` pair.
    ///
    /// # Errors
    ///
    /// Propagates any [`BuildError`] from program validation.
    ///
    /// # Panics
    ///
    /// Panics if a behaviour was attached to a block that ended up
    /// without a branch terminator (a scenario construction bug).
    pub fn build(self) -> Result<(Program, BehaviorSpec), BuildError> {
        let program = self.pb.build()?;
        let mut spec = BehaviorSpec::new(self.seed);
        for (b, behavior) in self.cond {
            let addr = program
                .block(b)
                .branch_addr()
                .unwrap_or_else(|| panic!("behaviour attached to non-branching block {b}"));
            spec.set_cond(addr, behavior);
        }
        for (b, intent) in self.indirect {
            let addr = program
                .block(b)
                .branch_addr()
                .unwrap_or_else(|| panic!("behaviour attached to non-branching block {b}"));
            match intent {
                IndirectIntent::Weighted(targets) => {
                    let resolved = targets
                        .into_iter()
                        .map(|(t, w)| (program.block(t).start(), w))
                        .collect();
                    spec.indirect_weighted(addr, resolved);
                }
                IndirectIntent::RoundRobin(targets) => {
                    let resolved = targets
                        .into_iter()
                        .map(|t| program.block(t).start())
                        .collect();
                    spec.indirect_round_robin(addr, resolved);
                }
            }
        }
        Ok((program, spec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;

    #[test]
    fn counted_loop_executes_trips() {
        let mut s = ScenarioBuilder::new(3);
        let f = s.function("main", 0x100);
        let lp = s.counted_loop(f, 1, 7);
        s.ret_from(f, lp.exit);
        let (p, spec) = s.build().unwrap();
        let steps: Vec<_> = Executor::new(&p, spec).collect();
        let latches = steps.iter().filter(|st| st.block == lp.latch).count();
        assert_eq!(latches, 7);
    }

    #[test]
    fn diamond_takes_both_sides_when_unbiased() {
        let mut s = ScenarioBuilder::new(5);
        let f = s.function("main", 0x100);
        let outer = s.block(f, 1);
        let d = s.diamond(f, 0.5, 1);
        let back = s.block(f, 1);
        s.branch_trips(back, outer, 200);
        let tail = s.block(f, 0);
        s.ret(tail);
        let _ = d;
        let (p, spec) = s.build().unwrap();
        let steps: Vec<_> = Executor::new(&p, spec).collect();
        let taken_side = steps.iter().filter(|st| st.block == d.taken).count();
        let fall_side = steps.iter().filter(|st| st.block == d.fallthrough).count();
        assert!(taken_side > 40, "taken side executed {taken_side}");
        assert!(fall_side > 40, "fall-through side executed {fall_side}");
        assert_eq!(taken_side + fall_side, 200);
    }

    #[test]
    fn diamond_chain_connects() {
        let mut s = ScenarioBuilder::new(5);
        let f = s.function("main", 0x100);
        let (_entry, last_join) = s.diamond_chain(f, 3, &[0.5, 0.9]);
        s.ret_from(f, last_join);
        let (p, spec) = s.build().unwrap();
        let steps: Vec<_> = Executor::new(&p, spec).collect();
        assert!(steps.len() >= 7, "all diamonds execute");
    }

    #[test]
    fn indirect_round_robin_resolves_block_targets() {
        let mut s = ScenarioBuilder::new(0);
        let f = s.function("main", 0x100);
        let sw = s.block(f, 1);
        let a = s.block(f, 1);
        let bdone = s.block(f, 0);
        let c = s.block(f, 1);
        s.indirect_jump_round_robin(sw, vec![a, c]);
        s.jump(a, bdone);
        s.ret(bdone);
        s.jump(c, bdone);
        let (p, spec) = s.build().unwrap();
        let steps: Vec<_> = Executor::new(&p, spec).collect();
        assert_eq!(steps[1].block, a);
    }

    #[test]
    #[should_panic(expected = "non-branching block")]
    fn behaviour_on_plain_block_panics() {
        let mut s = ScenarioBuilder::new(0);
        let f = s.function("main", 0x100);
        let b0 = s.block(f, 1);
        let b1 = s.block(f, 0);
        s.ret(b1);
        // Attach behaviour to a block whose terminator is fall-through.
        s.cond.push((b0, CondBehavior::Taken));
        let _ = s.build();
    }
}
