//! Scaling of MARK-REJOINING-PATHS (paper Figure 15).
//!
//! The paper argues the worst case is O(n·e) but the post-order visit
//! makes it almost always linear in the edges. This bench runs the pass
//! over diamond-chain CFGs of growing size.

use criterion::{BenchmarkId, Criterion, criterion_group, criterion_main};
use rsel_core::select::rejoin::mark_rejoining_paths;
use rsel_program::Addr;
use std::collections::{HashMap, HashSet};

/// A chain of `n` diamonds: entry -> (a_i | b_i) -> join_i -> ..., with
/// only every fourth block initially marked.
fn diamond_chain(n: usize) -> (Addr, Vec<Addr>, HashMap<Addr, Vec<Addr>>, HashSet<Addr>) {
    let mut nodes = Vec::new();
    let mut edges: HashMap<Addr, Vec<Addr>> = HashMap::new();
    let mut marked = HashSet::new();
    let node = |i: u64| Addr::new(0x1000 + i * 4);
    let mut next_id = 0u64;
    let mut alloc = || {
        let a = node(next_id);
        next_id += 1;
        a
    };
    let entry = alloc();
    nodes.push(entry);
    marked.insert(entry);
    let mut cur = entry;
    for i in 0..n {
        let a = alloc();
        let b = alloc();
        let join = alloc();
        nodes.extend([a, b, join]);
        edges.entry(cur).or_default().extend([a, b]);
        edges.entry(a).or_default().push(join);
        edges.entry(b).or_default().push(join);
        if i % 4 == 0 {
            marked.insert(join);
        }
        cur = join;
    }
    (entry, nodes, edges, marked)
}

fn rejoin_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mark_rejoining_paths");
    for n in [8usize, 32, 128, 512] {
        let (entry, nodes, edges, marked) = diamond_chain(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let r = mark_rejoining_paths(entry, &nodes, &edges, &marked);
                std::hint::black_box(r.marked.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, rejoin_scaling);
criterion_main!(benches);
