//! Compact trace encode/decode throughput (paper Figure 14).
//!
//! "As the optimizer must already decode each instruction and identify
//! all branch targets, this representation adds little overhead to
//! region selection" — encoding is two bits per conditional branch;
//! decoding replays the program text once.

use criterion::{BenchmarkId, Criterion, Throughput, criterion_group, criterion_main};
use rsel_program::{Program, ProgramBuilder};
use rsel_trace::{AddrWidth, CompactTrace, TraceRecorder};

/// A long chain of two-instruction blocks, each ending in a conditional
/// branch to the next-next block (so both directions stay in range).
fn chain(n_blocks: usize) -> Program {
    let mut b = ProgramBuilder::new();
    let f = b.function("chain", 0x1000);
    let ids: Vec<_> = (0..n_blocks).map(|_| b.block_with(f, 1)).collect();
    for (i, &id) in ids.iter().enumerate() {
        if i + 2 < n_blocks {
            b.cond_branch(id, ids[i + 2]);
        } else {
            b.ret(id);
        }
    }
    b.build().expect("chain is well-formed")
}

fn record(p: &Program, flips: usize) -> CompactTrace {
    let mut rec = TraceRecorder::new(p.entry(), AddrWidth::W32);
    let mut addr = p.entry();
    let mut last = addr;
    let mut k = 0;
    while k < flips {
        let inst = p.inst_at(addr).expect("on path");
        last = addr;
        use rsel_program::InstKind;
        addr = match inst.kind() {
            InstKind::Straight => inst.fallthrough_addr(),
            InstKind::CondBranch { target } => {
                let taken = k % 3 == 0;
                rec.record_cond(taken);
                k += 1;
                if taken {
                    target
                } else {
                    inst.fallthrough_addr()
                }
            }
            _ => break,
        };
    }
    rec.finish(last)
}

fn codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("compact_trace");
    for branches in [16usize, 128, 1024] {
        let p = chain(4 * branches + 8);
        group.throughput(Throughput::Elements(branches as u64));
        group.bench_with_input(BenchmarkId::new("encode", branches), &branches, |b, &n| {
            b.iter(|| std::hint::black_box(record(&p, n).byte_len()));
        });
        let ct = record(&p, branches);
        group.bench_with_input(BenchmarkId::new("decode", branches), &branches, |b, _| {
            b.iter(|| std::hint::black_box(ct.decode(&p).expect("round trip").insts.len()));
        });
    }
    group.finish();
}

criterion_group!(benches, codec);
criterion_main!(benches);
