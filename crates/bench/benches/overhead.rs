//! Per-branch selection overhead of the four algorithms.
//!
//! Paper §3.1: "Although LEI maintains enough information to select
//! cycles, its runtime overhead remains comparable to that of NET ...
//! On each taken branch, both algorithms do a constant amount of work."
//! This bench drives the full simulator over the identical recorded
//! execution and reports throughput in executed blocks per second.

use criterion::{Criterion, Throughput, criterion_group, criterion_main};
use rsel_core::select::SelectorKind;
use rsel_core::{SimConfig, Simulator};
use rsel_program::Executor;
use rsel_trace::RecordedStream;
use rsel_workloads::{Scale, suite};

fn selection_overhead(c: &mut Criterion) {
    let workload = suite()
        .into_iter()
        .find(|w| w.name() == "vpr")
        .expect("vpr exists");
    let (program, spec) = workload.build(7, Scale::Test);
    let stream = RecordedStream::record(Executor::new(&program, spec));
    let config = SimConfig::default();

    let mut group = c.benchmark_group("selection_overhead");
    group.throughput(Throughput::Elements(stream.len() as u64));
    for kind in SelectorKind::all() {
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let mut sim = Simulator::new(&program, kind.make(&program, &config), &config);
                sim.run(stream.replay());
                std::hint::black_box(sim.total_insts())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, selection_overhead);
criterion_main!(benches);
