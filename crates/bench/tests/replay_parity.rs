//! Golden tests for the record-once/replay-many pipeline: replaying a
//! compact recording must be indistinguishable — bit-for-bit at the
//! `RunReport` level — from re-executing the workload live, and the
//! parallel matrix must equal the serial matrix cell for cell.

use rsel_bench::harness::{
    RecordedWorkload, run_matrix_serial_live, run_matrix_with_jobs, run_one,
};
use rsel_core::SimConfig;
use rsel_core::select::SelectorKind;
use rsel_core::sim::faults::FaultConfig;
use rsel_workloads::{Scale, suite};

/// A fault schedule aggressive enough to fire at Test scale.
fn faulty_config() -> SimConfig {
    SimConfig {
        faults: FaultConfig {
            seed: 77,
            smc_write_ppm: 2_000,
            flush_wave_ppm: 1_000,
            counter_fault_ppm: 1_000,
            ..FaultConfig::default()
        },
        ..SimConfig::default()
    }
}

#[test]
fn replay_equals_live_for_every_selector() {
    let cfg = SimConfig::default();
    let workloads = suite();
    for w in workloads.iter().take(3) {
        let rec = RecordedWorkload::record(w, 2005, Scale::Test);
        for kind in SelectorKind::extended() {
            let live = run_one(w, kind, 2005, Scale::Test, &cfg);
            let replayed = rec.replay(kind, &cfg);
            assert_eq!(replayed, live, "{} under {kind}", w.name());
        }
    }
}

#[test]
fn replay_equals_live_with_fault_injection() {
    let cfg = faulty_config();
    let w = &suite()[0];
    let rec = RecordedWorkload::record(w, 2005, Scale::Test);
    for kind in SelectorKind::extended() {
        let live = run_one(w, kind, 2005, Scale::Test, &cfg);
        let replayed = rec.replay(kind, &cfg);
        assert_eq!(replayed, live, "{} under {kind} with faults", w.name());
    }
}

#[test]
fn parallel_matrix_equals_serial_matrix() {
    let cfg = SimConfig::default();
    let kinds = SelectorKind::extended();
    let serial = run_matrix_serial_live(&kinds, 2005, Scale::Test, &cfg);
    let parallel = run_matrix_with_jobs(&kinds, 2005, Scale::Test, &cfg, 4);
    assert_eq!(serial.workloads(), parallel.workloads());
    for &w in serial.workloads() {
        for &k in &kinds {
            assert_eq!(serial.report(w, k), parallel.report(w, k), "{w} {k}");
        }
    }
}

#[test]
fn parallel_matrix_equals_serial_matrix_under_faults() {
    let cfg = faulty_config();
    let kinds = [SelectorKind::Net, SelectorKind::Lei, SelectorKind::Adore];
    let serial = run_matrix_serial_live(&kinds, 2005, Scale::Test, &cfg);
    let parallel = run_matrix_with_jobs(&kinds, 2005, Scale::Test, &cfg, 3);
    for &w in serial.workloads() {
        for &k in &kinds {
            assert_eq!(serial.report(w, k), parallel.report(w, k), "{w} {k}");
        }
    }
}
