//! Suite-wide parity for the spin-phase fast-forward: replaying with
//! the fast-forward force-enabled must produce [`RunReport`]s
//! byte-identical to replaying with it disabled — and to the live
//! step-iterator pipeline — for every workload under every selector.

use rsel_bench::harness::record_suite;
use rsel_core::select::SelectorKind;
use rsel_core::{SimConfig, Simulator};
use rsel_workloads::Scale;

#[test]
fn fast_forward_is_invisible_across_the_suite() {
    let cfg = SimConfig::default();
    let kinds = SelectorKind::extended();
    let recorded = record_suite(2005, Scale::Test);
    let spin_workloads = recorded
        .iter()
        .filter(|r| !r.decoded().phases().is_empty())
        .count();
    assert!(
        spin_workloads > 0,
        "no workload presents a spin phase; the fast-forward is untested"
    );
    for rec in &recorded {
        let decoded = rec.decoded();
        for &kind in &kinds {
            let mut on = Simulator::new(rec.program(), kind.make(rec.program(), &cfg), &cfg);
            on.replay_decoded_range(decoded, 0, decoded.len(), true);
            let mut off = Simulator::new(rec.program(), kind.make(rec.program(), &cfg), &cfg);
            off.replay_decoded_range(decoded, 0, decoded.len(), false);
            let mut live = Simulator::new(rec.program(), kind.make(rec.program(), &cfg), &cfg);
            live.run(rec.stream().replay(rec.program()));
            let live = live.report();
            assert_eq!(on.report(), live, "{} under {kind}: ff vs live", rec.name());
            assert_eq!(
                off.report(),
                live,
                "{} under {kind}: stepping vs live",
                rec.name()
            );
        }
    }
}
