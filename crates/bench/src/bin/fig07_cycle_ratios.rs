//! Figure 7: the improvement of LEI over NET in selecting traces that
//! span cycles.
//!
//! Prints, per benchmark, the *increase* (percentage points) in the
//! spanned cycle ratio (what fraction of selected traces contain a
//! branch to their top) and the executed cycle ratio (what fraction of
//! trace executions end by taking that branch). The paper reports LEI
//! raising the overall proportion of cycle-spanning traces by nearly 5
//! points, with the two metrics highly correlated.

use rsel_bench::{Table, run_matrix_from_env};
use rsel_core::SimConfig;
use rsel_core::select::SelectorKind;

fn main() {
    let config = SimConfig::default();
    let m = run_matrix_from_env(&[SelectorKind::Net, SelectorKind::Lei], &config);
    let mut t = Table::new(
        "Figure 7: LEI - NET cycle-ratio deltas (percentage points)",
        &["d-spanned", "d-executed"],
    )
    .arithmetic_mean();
    let mut spanned_deltas = Vec::new();
    let mut executed_deltas = Vec::new();
    for &w in m.workloads() {
        let net = m.report(w, SelectorKind::Net);
        let lei = m.report(w, SelectorKind::Lei);
        let ds = 100.0 * (lei.spanned_cycle_ratio() - net.spanned_cycle_ratio());
        let de = 100.0 * (lei.executed_cycle_ratio() - net.executed_cycle_ratio());
        t.row(w, &[ds, de]);
        spanned_deltas.push(ds);
        executed_deltas.push(de);
    }
    print!("{}", t.render());
    let avg_s = spanned_deltas.iter().sum::<f64>() / spanned_deltas.len() as f64;
    let avg_e = executed_deltas.iter().sum::<f64>() / executed_deltas.len() as f64;
    println!("\narithmetic mean delta: spanned {avg_s:+.1} pp, executed {avg_e:+.1} pp");
    println!("paper: LEI raises the proportion of cycle-spanning traces by nearly 5 pp");
}
