//! Figure 17: reduction in the 90% cover set size under trace
//! combination.
//!
//! The paper: combination reduces NET cover sets by 15% and LEI cover
//! sets by 28% on average; gzip/NET is the only (trivial) increase
//! (23 -> 24) and bzip2 the only case where LEI benefits less than NET.

use rsel_bench::{Table, geomean, run_matrix_from_env};
use rsel_core::SimConfig;
use rsel_core::select::SelectorKind;

fn main() {
    let config = SimConfig::default();
    let kinds = [
        SelectorKind::Net,
        SelectorKind::Lei,
        SelectorKind::CombinedNet,
        SelectorKind::CombinedLei,
    ];
    let m = run_matrix_from_env(&kinds, &config);
    let mut t = Table::new(
        "Figure 17: 90% cover set sizes under combination",
        &["NET", "cNET", "LEI", "cLEI"],
    );
    let mut net_ratios = Vec::new();
    let mut lei_ratios = Vec::new();
    for &w in m.workloads() {
        let sizes: Vec<Option<usize>> = kinds
            .iter()
            .map(|&k| m.report(w, k).cover_set_size(0.9))
            .collect();
        let [Some(n), Some(l), Some(cn), Some(cl)] = sizes.as_slice() else {
            eprintln!("{w}: cover set unattainable {sizes:?}");
            continue;
        };
        t.row(w, &[*n as f64, *cn as f64, *l as f64, *cl as f64]);
        net_ratios.push(*cn as f64 / *n as f64);
        lei_ratios.push(*cl as f64 / *l as f64);
    }
    print!("{}", t.render());
    println!(
        "\ngeomean: cNET/NET {:.2} (paper avg -15%), cLEI/LEI {:.2} (paper avg -28%)",
        geomean(&net_ratios),
        geomean(&lei_ratios)
    );
    // Total regions selected (paper: -9% for NET, -30% for LEI).
    let total = |k| {
        m.workloads()
            .iter()
            .map(|&w| m.report(w, k).region_count())
            .sum::<usize>() as f64
    };
    println!(
        "total regions: NET {} -> cNET {} ({:+.0}%), LEI {} -> cLEI {} ({:+.0}%)",
        total(SelectorKind::Net),
        total(SelectorKind::CombinedNet),
        100.0 * (total(SelectorKind::CombinedNet) / total(SelectorKind::Net) - 1.0),
        total(SelectorKind::Lei),
        total(SelectorKind::CombinedLei),
        100.0 * (total(SelectorKind::CombinedLei) / total(SelectorKind::Lei) - 1.0),
    );
}
