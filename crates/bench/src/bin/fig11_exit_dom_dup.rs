//! Figure 11: the proportion of instructions selected by NET and LEI
//! that are exit-dominated duplication, and (§4.3.1) the reduction
//! under trace combination.
//!
//! The paper: duplication ranges from 1 to 7% of all instructions
//! selected; "combining traces avoids roughly 65% of exit-dominated
//! duplication".

use rsel_bench::{Table, run_matrix_from_env};
use rsel_core::SimConfig;
use rsel_core::select::SelectorKind;

fn main() {
    let config = SimConfig::default();
    let kinds = [
        SelectorKind::Net,
        SelectorKind::Lei,
        SelectorKind::CombinedNet,
        SelectorKind::CombinedLei,
    ];
    let m = run_matrix_from_env(&kinds, &config);
    let mut t = Table::new(
        "Figure 11: exit-dominated duplication (% of selected instructions)",
        &["NET", "LEI", "cNET", "cLEI"],
    )
    .percentages();
    let mut base_dup = 0.0f64;
    let mut comb_dup = 0.0f64;
    for &w in m.workloads() {
        let vals: Vec<f64> = kinds
            .iter()
            .map(|&k| m.report(w, k).exit_dominated_duplication_fraction())
            .collect();
        base_dup += vals[0] + vals[1];
        comb_dup += vals[2] + vals[3];
        t.row(w, &vals);
    }
    print!("{}", t.render());
    if base_dup > 0.0 {
        println!(
            "\ncombination removes {:.0}% of exit-dominated duplication (paper: ~65%)",
            100.0 * (1.0 - comb_dup / base_dup)
        );
    }
    println!("paper: duplication is 1-7% of selected instructions");
}
