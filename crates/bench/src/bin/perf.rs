//! Performance benchmark for the matrix harness: times the record,
//! replay, full-matrix (record-once/replay-many, parallel), and
//! serial-live phases, verifies that replay is report-identical to
//! live execution for every selector, and writes `BENCH_perf.json`.
//!
//! Scale selection follows `RSEL_SCALE` (`test` or `full`); when the
//! variable is unset both scales are measured. Worker count follows
//! `RSEL_JOBS`. Exits non-zero if any replayed report diverges from
//! its live counterpart.

use rsel_bench::harness::{
    DEFAULT_SEED, record_suite, replay_matrix, run_matrix_serial_live, run_matrix_with_jobs,
};
use rsel_bench::jobs_from_env;
use rsel_core::SimConfig;
use rsel_core::select::SelectorKind;
use rsel_workloads::Scale;
use std::time::Instant;

/// Serial-live wall time of the 12 x 8 Test-scale matrix measured at
/// the pre-change commit (before record/replay, parallel fan-out, and
/// the FxHash/dense-table hot paths), mean of 3 runs on the reference
/// container. The acceptance criterion compares the new full-matrix
/// time against this number.
const PRE_CHANGE_SERIAL_LIVE_TEST_MS: f64 = 543.2;

/// Full-scale wall time of the 12 x 8 record/replay matrix measured at
/// the pre-change commit (step-iterator replay, before the
/// decode-once/batch-dispatch/spin-fast-forward engine), on the
/// reference container. The full-scale acceptance criterion compares
/// the new full-matrix time against this number.
const PRE_CHANGE_FULL_MATRIX_FULL_MS: f64 = 7064.4;

struct ScaleResult {
    scale: &'static str,
    workloads: usize,
    selectors: usize,
    record_ms: f64,
    replay_ms: f64,
    full_matrix_ms: f64,
    serial_live_ms: f64,
    stream_bytes: usize,
    stream_steps: usize,
    replay_matches_live: bool,
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

fn measure(scale: Scale, name: &'static str, jobs: usize) -> ScaleResult {
    let config = SimConfig::default();
    let kinds = SelectorKind::extended();

    // Full pipeline from scratch (record + replay), as a figure binary
    // would run it. Measured first so it sees the same heap a figure
    // binary does (at Full scale the streams are hundreds of
    // megabytes, and first-touch page faults on a heap already holding
    // a previous copy can inflate the phase by seconds), and taken as
    // the best of two runs so a single host-noise or fault-storm spike
    // cannot distort the committed figure.
    let t = Instant::now();
    let full = run_matrix_with_jobs(&kinds, DEFAULT_SEED, scale, &config, jobs);
    let first_ms = ms(t);
    drop(full);
    let t = Instant::now();
    let full = run_matrix_with_jobs(&kinds, DEFAULT_SEED, scale, &config, jobs);
    let full_matrix_ms = first_ms.min(ms(t));

    let t = Instant::now();
    let recorded = record_suite(DEFAULT_SEED, scale);
    let record_ms = ms(t);
    let stream_bytes: usize = recorded.iter().map(|r| r.stream().byte_size()).sum();
    let stream_steps: usize = recorded.iter().map(|r| r.stream().len()).sum();

    let t = Instant::now();
    let replayed = replay_matrix(&recorded, &kinds, &config, jobs);
    let replay_ms = ms(t);

    // The old pipeline: every cell re-executed live, serially.
    let t = Instant::now();
    let serial = run_matrix_serial_live(&kinds, DEFAULT_SEED, scale, &config);
    let serial_live_ms = ms(t);

    let mut replay_matches_live = true;
    for &w in serial.workloads() {
        for &k in &kinds {
            if serial.report(w, k) != replayed.report(w, k)
                || serial.report(w, k) != full.report(w, k)
            {
                eprintln!("DIVERGENCE: {w} under {k}: replay != live");
                replay_matches_live = false;
            }
        }
    }

    ScaleResult {
        scale: name,
        workloads: serial.workloads().len(),
        selectors: kinds.len(),
        record_ms,
        replay_ms,
        full_matrix_ms,
        serial_live_ms,
        stream_bytes,
        stream_steps,
        replay_matches_live,
    }
}

fn json_scale(r: &ScaleResult, out: &mut String) {
    out.push_str("    {\n");
    out.push_str(&format!("      \"scale\": \"{}\",\n", r.scale));
    out.push_str(&format!("      \"workloads\": {},\n", r.workloads));
    out.push_str(&format!("      \"selectors\": {},\n", r.selectors));
    out.push_str(&format!("      \"record_ms\": {:.1},\n", r.record_ms));
    out.push_str(&format!("      \"replay_ms\": {:.1},\n", r.replay_ms));
    out.push_str(&format!(
        "      \"full_matrix_ms\": {:.1},\n",
        r.full_matrix_ms
    ));
    out.push_str(&format!(
        "      \"serial_live_ms\": {:.1},\n",
        r.serial_live_ms
    ));
    out.push_str(&format!("      \"stream_steps\": {},\n", r.stream_steps));
    out.push_str(&format!("      \"stream_bytes\": {},\n", r.stream_bytes));
    out.push_str(&format!(
        "      \"speedup_vs_serial_live\": {:.2},\n",
        r.serial_live_ms / r.full_matrix_ms
    ));
    if r.scale == "test" {
        out.push_str(&format!(
            "      \"baseline_serial_live_ms\": {PRE_CHANGE_SERIAL_LIVE_TEST_MS:.1},\n"
        ));
        out.push_str(
            "      \"baseline_source\": \"pre-change serial pipeline, mean of 3 runs on the same container\",\n",
        );
        out.push_str(&format!(
            "      \"speedup_vs_baseline\": {:.2},\n",
            PRE_CHANGE_SERIAL_LIVE_TEST_MS / r.full_matrix_ms
        ));
    } else if r.scale == "full" {
        out.push_str(&format!(
            "      \"baseline_full_matrix_ms\": {PRE_CHANGE_FULL_MATRIX_FULL_MS:.1},\n"
        ));
        out.push_str(
            "      \"baseline_source\": \"pre-change step-iterator record/replay matrix on the same container\",\n",
        );
        out.push_str(&format!(
            "      \"speedup_vs_baseline\": {:.2},\n",
            PRE_CHANGE_FULL_MATRIX_FULL_MS / r.full_matrix_ms
        ));
    }
    out.push_str(&format!(
        "      \"replay_matches_live\": {}\n",
        r.replay_matches_live
    ));
    out.push_str("    }");
}

fn main() {
    let jobs = jobs_from_env();
    let scales: Vec<(Scale, &'static str)> = match std::env::var("RSEL_SCALE").as_deref() {
        Ok("test") => vec![(Scale::Test, "test")],
        Ok("full") => vec![(Scale::Full, "full")],
        _ => vec![(Scale::Test, "test"), (Scale::Full, "full")],
    };

    let mut results = Vec::new();
    for &(scale, name) in &scales {
        eprintln!("measuring {name} scale ({jobs} jobs)...");
        let r = measure(scale, name, jobs);
        eprintln!(
            "  record {:.1} ms, replay {:.1} ms, full matrix {:.1} ms, serial live {:.1} ms ({:.2}x)",
            r.record_ms,
            r.replay_ms,
            r.full_matrix_ms,
            r.serial_live_ms,
            r.serial_live_ms / r.full_matrix_ms
        );
        results.push(r);
    }

    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"perf\",\n");
    out.push_str(&format!("  \"seed\": {DEFAULT_SEED},\n"));
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str("  \"scales\": [\n");
    for (i, r) in results.iter().enumerate() {
        json_scale(r, &mut out);
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");

    std::fs::write("BENCH_perf.json", &out).expect("write BENCH_perf.json");
    println!("{out}");

    if results.iter().any(|r| !r.replay_matches_live) {
        eprintln!("FAIL: replayed reports diverge from live execution");
        std::process::exit(1);
    }
}
