//! Ablation (paper footnote 8): trace combination with `T_prof = 5`,
//! `T_min = 2` instead of the default 15/5.
//!
//! The paper: "setting T_prof = 5 and T_min = 2 results in smaller but
//! similar improvements" — combination remains effective with far fewer
//! observations.

use rsel_bench::{DEFAULT_SEED, Table, geomean, run_matrix};
use rsel_core::SimConfig;
use rsel_core::select::SelectorKind;
use rsel_workloads::Scale;

fn main() {
    let scale = match std::env::var("RSEL_SCALE").as_deref() {
        Ok("test") => Scale::Test,
        _ => Scale::Full,
    };
    let kinds = [SelectorKind::Net, SelectorKind::CombinedNet];
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    let mut per_setting = Vec::new();
    for (t_prof, t_min) in [(15u32, 5u32), (5, 2)] {
        let config = SimConfig {
            t_prof,
            t_min,
            ..SimConfig::default()
        };
        eprintln!("running T_prof={t_prof}, T_min={t_min}...");
        let m = run_matrix(&kinds, DEFAULT_SEED, scale, &config);
        let mut ratios = Vec::new();
        for &w in m.workloads() {
            let r = m.report(w, SelectorKind::CombinedNet).region_transitions as f64
                / m.report(w, SelectorKind::Net).region_transitions.max(1) as f64;
            ratios.push(r);
            match rows.iter_mut().find(|(n, _)| n == w) {
                Some((_, v)) => v.push(r),
                None => rows.push((w.to_string(), vec![r])),
            }
        }
        per_setting.push(geomean(&ratios));
    }
    let mut t = Table::new(
        "Ablation: cNET/NET region transitions by (T_prof, T_min)",
        &["(15,5)", "(5,2)"],
    );
    for (name, vals) in &rows {
        t.row(name, vals);
    }
    print!("{}", t.render());
    println!(
        "\ngeomeans: (15,5) {:.2}, (5,2) {:.2} — paper: smaller but similar improvements",
        per_setting[0], per_setting[1]
    );
}
