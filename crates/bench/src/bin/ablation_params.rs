//! Ablation: sensitivity of LEI to its two parameters — the history
//! buffer size (paper uses 500, "small enough to require little memory
//! but large enough to capture very long cycles", §3.2) and the cycle
//! threshold `T_cyc` (35).
//!
//! Reports the LEI/NET region-transition ratio and LEI hit rate per
//! setting, aggregated over the suite.

use rsel_bench::{DEFAULT_SEED, geomean, run_matrix};
use rsel_core::SimConfig;
use rsel_core::select::SelectorKind;
use rsel_workloads::Scale;

fn main() {
    let scale = match std::env::var("RSEL_SCALE").as_deref() {
        Ok("test") => Scale::Test,
        _ => Scale::Full,
    };
    println!("## Ablation: LEI parameter sensitivity (aggregates over the suite)\n");
    println!(
        "{:>8}  {:>6}  {:>12}  {:>9}  {:>8}",
        "buffer", "T_cyc", "trans./NET", "hit rate", "regions"
    );
    for (history, threshold) in [
        (50usize, 35u32),
        (200, 35),
        (500, 35),
        (2000, 35),
        (500, 10),
        (500, 50),
        (500, 100),
    ] {
        let config = SimConfig {
            history_size: history,
            lei_threshold: threshold,
            ..SimConfig::default()
        };
        let m = run_matrix(
            &[SelectorKind::Net, SelectorKind::Lei],
            DEFAULT_SEED,
            scale,
            &config,
        );
        let mut ratios = Vec::new();
        let mut hits = Vec::new();
        let mut regions = 0usize;
        for &w in m.workloads() {
            let lei = m.report(w, SelectorKind::Lei);
            let net = m.report(w, SelectorKind::Net);
            ratios.push(lei.region_transitions as f64 / net.region_transitions.max(1) as f64);
            hits.push(lei.hit_rate());
            regions += lei.region_count();
        }
        let hit = hits.iter().sum::<f64>() / hits.len() as f64;
        println!(
            "{history:>8}  {threshold:>6}  {:>12.3}  {:>8.2}%  {regions:>8}",
            geomean(&ratios),
            100.0 * hit
        );
    }
    println!("\npaper setting: buffer 500, T_cyc 35");
}
