//! Raw per-(workload, selector) diagnostics: everything the figures are
//! derived from, in one dump. Useful when calibrating workloads or
//! debugging a selector.

use rsel_bench::run_matrix_from_env;
use rsel_core::SimConfig;
use rsel_core::select::SelectorKind;

fn main() {
    let config = SimConfig::default();
    let kinds = [
        SelectorKind::Net,
        SelectorKind::Lei,
        SelectorKind::CombinedNet,
        SelectorKind::CombinedLei,
    ];
    let m = run_matrix_from_env(&kinds, &config);
    println!(
        "{:<9} {:<13} {:>7} {:>9} {:>7} {:>9} {:>7} {:>7} {:>6} {:>6} {:>8} {:>7}",
        "workload",
        "selector",
        "regions",
        "copied",
        "stubs",
        "trans",
        "hit%",
        "span%",
        "exec%",
        "cov90",
        "counters",
        "obsKB"
    );
    for &w in m.workloads() {
        for &k in &kinds {
            let r = m.report(w, k);
            println!(
                "{:<9} {:<13} {:>7} {:>9} {:>7} {:>9} {:>6.2} {:>6.1} {:>6.1} {:>6} {:>8} {:>7.1}",
                w,
                k.name(),
                r.region_count(),
                r.insts_copied(),
                r.stub_count(),
                r.region_transitions,
                100.0 * r.hit_rate(),
                100.0 * r.spanned_cycle_ratio(),
                100.0 * r.executed_cycle_ratio(),
                r.cover_set_size(0.9).map(|c| c as i64).unwrap_or(-1),
                r.peak_counters,
                r.peak_observed_bytes as f64 / 1024.0,
            );
        }
    }
}
