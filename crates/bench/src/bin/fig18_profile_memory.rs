//! Figure 18: maximum memory required for storing observed traces,
//! as a percentage of the estimated code-cache size.
//!
//! The cache size estimate is instruction bytes plus 10 bytes per exit
//! stub (§4.3.4). The paper: average overhead 6% for combined NET and
//! 13% for combined LEI, never exceeding 12% / 18%.

use rsel_bench::{Table, run_matrix_from_env};
use rsel_core::SimConfig;
use rsel_core::select::SelectorKind;

fn main() {
    let config = SimConfig::default();
    let kinds = [SelectorKind::CombinedNet, SelectorKind::CombinedLei];
    let m = run_matrix_from_env(&kinds, &config);
    let mut t = Table::new(
        "Figure 18: observed-trace memory (% of estimated cache size)",
        &["cNET", "cLEI"],
    )
    .percentages();
    let mut net_sum = 0.0;
    let mut lei_sum = 0.0;
    for &w in m.workloads() {
        let n = m
            .report(w, SelectorKind::CombinedNet)
            .observed_memory_fraction();
        let l = m
            .report(w, SelectorKind::CombinedLei)
            .observed_memory_fraction();
        t.row(w, &[n, l]);
        net_sum += n;
        lei_sum += l;
    }
    print!("{}", t.render());
    let k = m.workloads().len() as f64;
    println!(
        "\narithmetic mean: cNET {:.1}%, cLEI {:.1}% (paper: 6% and 13%)",
        100.0 * net_sum / k,
        100.0 * lei_sum / k
    );
}
