//! Workload characterization: hot-path diversity (paper §1).
//!
//! "As shown by Ball and Larus, the number of paths that comprise 90%
//! of execution in modern commercial software is often one to two
//! orders of magnitude greater than in the standard benchmark programs
//! used to develop NET. As the number of related paths grows, the
//! extent of trace separation and the amount of code duplication grow
//! with it."
//!
//! This binary validates the synthetic suite's design: gzip/bzip2-style
//! workloads concentrate execution in a handful of paths, while the
//! gcc/vortex-style workloads spread it over many.

use rsel_core::select::SelectorKind;
use rsel_core::{SimConfig, Simulator};
use rsel_program::Executor;
use rsel_trace::PathProfile;
use rsel_workloads::{Scale, suite};

const PATH_LEN: usize = 8;
const SAMPLE_STEPS: usize = 2_000_000;

fn main() {
    let scale = match std::env::var("RSEL_SCALE").as_deref() {
        Ok("test") => Scale::Test,
        _ => Scale::Full,
    };
    println!("## Workload characterization: {PATH_LEN}-block hot-path diversity\n");
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>14}",
        "workload", "paths", "90% paths", "99% paths", "LEI/NET trans"
    );
    let config = SimConfig::default();
    for w in suite() {
        let (program, spec) = w.build(2005, scale);
        let steps: Vec<_> = Executor::new(&program, spec).take(SAMPLE_STEPS).collect();
        let prof = PathProfile::collect(PATH_LEN, &steps);
        // Pair the diversity number with the LEI/NET transition ratio
        // to show the paper's claim: more paths, more separation for a
        // single-path selector to suffer from.
        let ratio = {
            let mut out = [0f64; 2];
            for (i, kind) in [SelectorKind::Net, SelectorKind::Lei].iter().enumerate() {
                let (program, spec) = w.build(2005, scale);
                let mut sim = Simulator::new(&program, kind.make(&program, &config), &config);
                sim.run(Executor::new(&program, spec));
                out[i] = sim.report().region_transitions as f64;
            }
            out[1] / out[0].max(1.0)
        };
        println!(
            "{:<10} {:>10} {:>12} {:>12} {:>14.2}",
            w.name(),
            prof.distinct(),
            prof.hot_path_count(0.9),
            prof.hot_path_count(0.99),
            ratio
        );
    }
    println!("\npaper: path-rich programs (gcc, vortex) are where separation and");
    println!("duplication bite; path-poor ones (gzip, bzip2) have tiny hot sets.");
}
