//! Extension (paper §2.3): behaviour under a *bounded* code cache.
//!
//! "Our region-selection algorithms should help improve the performance
//! of dynamic optimization systems with bounded code caches, because
//! our algorithms reduce code duplication and produce fewer cached
//! regions. This improves memory performance, reduces the overhead of
//! cache management, and regenerates fewer evicted regions. Detailed
//! investigation of these effects, however, is outside the scope of
//! this paper."
//!
//! This binary performs that investigation: the cache flushes entirely
//! when full (Dynamo's policy) and we sweep the capacity, counting
//! flushes, regions regenerated, and the hit rate for each selector.

use rsel_core::select::SelectorKind;
use rsel_core::{SimConfig, Simulator};
use rsel_program::Executor;
use rsel_workloads::{Scale, suite};

fn main() {
    let scale = match std::env::var("RSEL_SCALE").as_deref() {
        Ok("test") => Scale::Test,
        _ => Scale::Full,
    };
    println!("## Extension: bounded code cache (suite totals per capacity)\n");
    println!(
        "{:>9}  {:<13} {:>8} {:>9} {:>9}",
        "capacity", "selector", "flushes", "regions", "hit rate"
    );
    for capacity in [2_000u64, 6_000, 20_000] {
        for kind in SelectorKind::all() {
            let config = SimConfig {
                cache_capacity: Some(capacity),
                ..SimConfig::default()
            };
            let mut flushes = 0u64;
            let mut regions = 0usize;
            let mut cache_insts = 0u64;
            let mut total_insts = 0u64;
            for w in suite() {
                let (program, spec) = w.build(2005, scale);
                let mut sim = Simulator::new(&program, kind.make(&program, &config), &config);
                sim.run(Executor::new(&program, spec));
                let r = sim.report();
                flushes += r.cache_flushes;
                regions += r.region_count();
                cache_insts += r.cache_insts;
                total_insts += r.total_insts;
            }
            println!(
                "{capacity:>8}B  {:<13} {flushes:>8} {regions:>9} {:>8.2}%",
                kind.name(),
                100.0 * cache_insts as f64 / total_insts as f64
            );
        }
        println!();
    }
    println!("paper's prediction: selectors that select fewer regions (LEI, and");
    println!("especially the combined selectors) regenerate fewer regions at the");
    println!("same capacity. Note the flush *count* can cut both ways: LEI's");
    println!("individual regions are larger, so at very small capacities a");
    println!("flush-everything policy fires more often even though far fewer");
    println!("regions are regenerated overall.");
}
