//! Extension: resilience under a deterministic fault schedule.
//!
//! Sweeps seeded fault rates — self-modifying-code writes that
//! invalidate overlapping regions, cache-pressure flush waves, and
//! profiling-counter corruption — across every selector, reporting how
//! much cache residency survives, how often invalidated regions
//! reform, and how many thrashing targets get blacklisted.
//!
//! All schedules derive from `FaultConfig::seed`, so every line of
//! this table is exactly reproducible.

use rsel_core::cache::code_cache::INDEX_PAGE_BYTES;
use rsel_core::select::SelectorKind;
use rsel_core::{CodeCache, FaultConfig, Region, SimConfig, Simulator};
use rsel_program::{Addr, Executor, ProgramBuilder};
use rsel_workloads::{Scale, suite};
use std::time::Instant;

struct Sweep {
    label: &'static str,
    faults: FaultConfig,
}

fn sweeps() -> Vec<Sweep> {
    let base = FaultConfig {
        seed: 2005,
        ..FaultConfig::default()
    };
    vec![
        Sweep {
            label: "none",
            faults: base.clone(),
        },
        Sweep {
            label: "smc-low",
            faults: FaultConfig {
                smc_write_ppm: 20,
                ..base.clone()
            },
        },
        Sweep {
            label: "smc-high",
            faults: FaultConfig {
                smc_write_ppm: 200,
                ..base.clone()
            },
        },
        Sweep {
            label: "pressure",
            faults: FaultConfig {
                flush_wave_ppm: 100,
                ..base.clone()
            },
        },
        Sweep {
            label: "counters",
            faults: FaultConfig {
                counter_fault_ppm: 1_000,
                ..base.clone()
            },
        },
        Sweep {
            label: "combined",
            faults: FaultConfig {
                smc_write_ppm: 50,
                flush_wave_ppm: 50,
                counter_fault_ppm: 500,
                ..base
            },
        },
    ]
}

fn main() {
    let scale = match std::env::var("RSEL_SCALE").as_deref() {
        Ok("test") => Scale::Test,
        _ => Scale::Full,
    };
    println!("## Extension: resilience under faults (suite totals per schedule)\n");
    println!(
        "{:>9}  {:<13} {:>8} {:>7} {:>7} {:>7} {:>7} {:>9} {:>9}",
        "schedule",
        "selector",
        "faults",
        "inval",
        "reform",
        "evict",
        "blist",
        "hit rate",
        "under flt"
    );
    for sweep in sweeps() {
        for kind in SelectorKind::extended() {
            let config = SimConfig {
                faults: sweep.faults.clone(),
                ..SimConfig::default()
            };
            let mut events = 0u64;
            let mut invalidated = 0u64;
            let mut reformed = 0u64;
            let mut evicted = 0u64;
            let mut blacklisted = 0u64;
            let mut cache_insts = 0u64;
            let mut total_insts = 0u64;
            let mut under_cache = 0u64;
            let mut under_total = 0u64;
            for w in suite() {
                let (program, spec) = w.build(2005, scale);
                let mut sim = Simulator::new(&program, kind.make(&program, &config), &config);
                sim.run(Executor::new(&program, spec));
                let r = sim.report();
                let res = &r.resilience;
                events += res.fault_events();
                invalidated += res.invalidated_regions;
                reformed += res.reformations;
                evicted += res.pressure_evicted_regions;
                blacklisted += res.blacklisted_targets;
                cache_insts += r.cache_insts;
                total_insts += r.total_insts;
                if let (Some(t0), Some(c0)) = (
                    res.total_insts_at_first_fault,
                    res.cache_insts_at_first_fault,
                ) {
                    under_total += r.total_insts - t0;
                    under_cache += r.cache_insts - c0;
                }
            }
            let hit = 100.0 * cache_insts as f64 / total_insts.max(1) as f64;
            let under = if under_total == 0 {
                "-".to_string()
            } else {
                format!("{:>8.2}%", 100.0 * under_cache as f64 / under_total as f64)
            };
            println!(
                "{:>9}  {:<13} {events:>8} {invalidated:>7} {reformed:>7} {evicted:>7} \
                 {blacklisted:>7} {hit:>8.2}% {under:>9}",
                sweep.label,
                kind.name(),
            );
        }
        println!();
    }
    println!("reading the table: selectors recover from SMC invalidation by");
    println!("re-selecting the hot region (reform tracks inval); pressure waves");
    println!("evict without blaming targets, so nothing is blacklisted; only");
    println!("repeatedly-invalidated entries are demoted, and the 'under flt'");
    println!("column shows the hit rate measured from the first fault onward.");

    invalidation_cost_microbench();
}

/// Microbenchmark: resolving an SMC write's doomed-region set via the
/// page index vs. the retained linear scan, as the live-region count
/// grows. The indexed query touches O(pages dirtied) buckets, so its
/// cost stays flat; the scan is linear in the live population. Wall
/// times vary by machine — the *ratio trend* is the result.
fn invalidation_cost_microbench() {
    // Wall-clock numbers go to stderr, keeping stdout byte-identical
    // across reruns (the determinism probe diffs two stdout captures).
    eprintln!("\n## Invalidation cost: page index vs. full scan (64 B SMC writes)\n");
    eprintln!(
        "{:>8} {:>12} {:>12} {:>9}",
        "regions", "scan ns/op", "index ns/op", "speedup"
    );
    const SPACING: u64 = 64;
    const BASE: u64 = 0x10_0000;
    const QUERIES: u64 = 20_000;
    for &n in &[1024usize, 4096, 16384] {
        // `n` live single-block regions at 64-byte spacing: one index
        // page holds ~8 of them, and a 64 B write spans at most two
        // pages regardless of `n`.
        let mut b = ProgramBuilder::new();
        for i in 0..n {
            let f = b.function(&format!("f{i}"), BASE + (i as u64) * SPACING);
            let blk = b.block_with(f, 1);
            b.ret(blk);
        }
        let p = b.build().expect("disjoint leaf functions are well-formed");
        let mut cache = CodeCache::new();
        for blk in p.blocks() {
            cache.insert(Region::trace(&p, &[blk.start()]));
        }
        let span = SPACING; // one simulated SMC write's dirty range
        let query = |i: u64| {
            // Stride through the population so every query is a miss
            // or near-miss somewhere different (defeats branch/cache
            // warm-up favouring either side).
            let lo = BASE + (i * 8_191) % (n as u64 * SPACING);
            (Addr::new(lo), Addr::new(lo + span))
        };
        let timed = |f: &dyn Fn(Addr, Addr) -> usize| {
            let mut hits = 0usize;
            let t = Instant::now();
            for i in 0..QUERIES {
                let (lo, hi) = query(i);
                hits += f(lo, hi);
            }
            (t.elapsed().as_nanos() as f64 / QUERIES as f64, hits)
        };
        let (scan_ns, scan_hits) = timed(&|lo, hi| cache.regions_overlapping_scan(lo, hi).len());
        let (index_ns, index_hits) = timed(&|lo, hi| cache.regions_overlapping(lo, hi).len());
        assert_eq!(scan_hits, index_hits, "the index must agree with the scan");
        eprintln!(
            "{n:>8} {scan_ns:>12.0} {index_ns:>12.0} {:>8.1}x",
            scan_ns / index_ns.max(1.0)
        );
    }
    eprintln!("\n(64 B writes touch at most 2 of the {INDEX_PAGE_BYTES} B index pages,");
    eprintln!("so indexed resolution cost is flat in the live-region count.)");
}
