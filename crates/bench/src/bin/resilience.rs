//! Extension: resilience under a deterministic fault schedule.
//!
//! Sweeps seeded fault rates — self-modifying-code writes that
//! invalidate overlapping regions, cache-pressure flush waves, and
//! profiling-counter corruption — across every selector, reporting how
//! much cache residency survives, how often invalidated regions
//! reform, and how many thrashing targets get blacklisted.
//!
//! All schedules derive from `FaultConfig::seed`, so every line of
//! this table is exactly reproducible.

use rsel_core::select::SelectorKind;
use rsel_core::{FaultConfig, SimConfig, Simulator};
use rsel_program::Executor;
use rsel_workloads::{Scale, suite};

struct Sweep {
    label: &'static str,
    faults: FaultConfig,
}

fn sweeps() -> Vec<Sweep> {
    let base = FaultConfig {
        seed: 2005,
        ..FaultConfig::default()
    };
    vec![
        Sweep {
            label: "none",
            faults: base.clone(),
        },
        Sweep {
            label: "smc-low",
            faults: FaultConfig {
                smc_write_ppm: 20,
                ..base.clone()
            },
        },
        Sweep {
            label: "smc-high",
            faults: FaultConfig {
                smc_write_ppm: 200,
                ..base.clone()
            },
        },
        Sweep {
            label: "pressure",
            faults: FaultConfig {
                flush_wave_ppm: 100,
                ..base.clone()
            },
        },
        Sweep {
            label: "counters",
            faults: FaultConfig {
                counter_fault_ppm: 1_000,
                ..base.clone()
            },
        },
        Sweep {
            label: "combined",
            faults: FaultConfig {
                smc_write_ppm: 50,
                flush_wave_ppm: 50,
                counter_fault_ppm: 500,
                ..base
            },
        },
    ]
}

fn main() {
    let scale = match std::env::var("RSEL_SCALE").as_deref() {
        Ok("test") => Scale::Test,
        _ => Scale::Full,
    };
    println!("## Extension: resilience under faults (suite totals per schedule)\n");
    println!(
        "{:>9}  {:<13} {:>8} {:>7} {:>7} {:>7} {:>7} {:>9} {:>9}",
        "schedule",
        "selector",
        "faults",
        "inval",
        "reform",
        "evict",
        "blist",
        "hit rate",
        "under flt"
    );
    for sweep in sweeps() {
        for kind in SelectorKind::extended() {
            let config = SimConfig {
                faults: sweep.faults.clone(),
                ..SimConfig::default()
            };
            let mut events = 0u64;
            let mut invalidated = 0u64;
            let mut reformed = 0u64;
            let mut evicted = 0u64;
            let mut blacklisted = 0u64;
            let mut cache_insts = 0u64;
            let mut total_insts = 0u64;
            let mut under_cache = 0u64;
            let mut under_total = 0u64;
            for w in suite() {
                let (program, spec) = w.build(2005, scale);
                let mut sim = Simulator::new(&program, kind.make(&program, &config), &config);
                sim.run(Executor::new(&program, spec));
                let r = sim.report();
                let res = &r.resilience;
                events += res.fault_events();
                invalidated += res.invalidated_regions;
                reformed += res.reformations;
                evicted += res.pressure_evicted_regions;
                blacklisted += res.blacklisted_targets;
                cache_insts += r.cache_insts;
                total_insts += r.total_insts;
                if let (Some(t0), Some(c0)) = (
                    res.total_insts_at_first_fault,
                    res.cache_insts_at_first_fault,
                ) {
                    under_total += r.total_insts - t0;
                    under_cache += r.cache_insts - c0;
                }
            }
            let hit = 100.0 * cache_insts as f64 / total_insts.max(1) as f64;
            let under = if under_total == 0 {
                "-".to_string()
            } else {
                format!("{:>8.2}%", 100.0 * under_cache as f64 / under_total as f64)
            };
            println!(
                "{:>9}  {:<13} {events:>8} {invalidated:>7} {reformed:>7} {evicted:>7} \
                 {blacklisted:>7} {hit:>8.2}% {under:>9}",
                sweep.label,
                kind.name(),
            );
        }
        println!();
    }
    println!("reading the table: selectors recover from SMC invalidation by");
    println!("re-selecting the hot region (reform tracks inval); pressure waves");
    println!("evict without blaming targets, so nothing is blacklisted; only");
    println!("repeatedly-invalidated entries are demoted, and the 'under flt'");
    println!("column shows the hit rate measured from the first fault onward.");
}
