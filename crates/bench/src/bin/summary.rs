//! Conclusion-section aggregates (paper §6): combined LEI versus plain
//! NET.
//!
//! The paper: "our algorithms reduce code expansion by 9% and the
//! number of exit stubs by 32% while simultaneously cutting the number
//! of region transitions in half. Our best measure of performance, the
//! 90% cover set size, improves by more than 25% for every benchmark,
//! averaging a 44% improvement."

use rsel_bench::{Table, geomean, run_matrix_from_env};
use rsel_core::SimConfig;
use rsel_core::select::SelectorKind;

fn main() {
    let config = SimConfig::default();
    let m = run_matrix_from_env(&[SelectorKind::Net, SelectorKind::CombinedLei], &config);
    let mut t = Table::new(
        "Summary (paper \u{a7}6): combined LEI relative to NET",
        &["expansion", "stubs", "transitions", "cover-set"],
    );
    let mut cols: [Vec<f64>; 4] = Default::default();
    for &w in m.workloads() {
        let net = m.report(w, SelectorKind::Net);
        let cl = m.report(w, SelectorKind::CombinedLei);
        let expansion = cl.insts_copied() as f64 / net.insts_copied().max(1) as f64;
        let stubs = cl.stub_count() as f64 / net.stub_count().max(1) as f64;
        let transitions = cl.region_transitions as f64 / net.region_transitions.max(1) as f64;
        let cover = match (cl.cover_set_size(0.9), net.cover_set_size(0.9)) {
            (Some(c), Some(n)) => c as f64 / n as f64,
            _ => {
                eprintln!("{w}: cover set unattainable");
                continue;
            }
        };
        let vals = [expansion, stubs, transitions, cover];
        t.row(w, &vals);
        for (col, v) in cols.iter_mut().zip(vals) {
            col.push(v);
        }
    }
    print!("{}", t.render());
    println!(
        "\ngeomeans: expansion {:.2} (paper 0.91), stubs {:.2} (paper 0.68),",
        geomean(&cols[0]),
        geomean(&cols[1])
    );
    println!(
        "          transitions {:.2} (paper ~0.5), cover set {:.2} (paper 0.56)",
        geomean(&cols[2]),
        geomean(&cols[3])
    );
}
