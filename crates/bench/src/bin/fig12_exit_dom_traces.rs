//! Figure 12: the proportion of traces selected by NET and LEI that are
//! exit-dominated, and (§4.3.1) the reduction under trace combination.
//!
//! The paper: "on average, 15% of NET traces and 22% of LEI traces" are
//! exit-dominated, with eon a clear outlier because its shared
//! constructors dominate many callers' traces; combination reduces the
//! number of exit-dominated regions by 40%.

use rsel_bench::{Table, run_matrix_from_env};
use rsel_core::SimConfig;
use rsel_core::select::SelectorKind;

fn main() {
    let config = SimConfig::default();
    let kinds = [
        SelectorKind::Net,
        SelectorKind::Lei,
        SelectorKind::CombinedNet,
        SelectorKind::CombinedLei,
    ];
    let m = run_matrix_from_env(&kinds, &config);
    let mut t = Table::new(
        "Figure 12: exit-dominated regions (% of selected regions)",
        &["NET", "LEI", "cNET", "cLEI"],
    )
    .percentages();
    let mut base = 0usize;
    let mut comb = 0usize;
    for &w in m.workloads() {
        let vals: Vec<f64> = kinds
            .iter()
            .map(|&k| m.report(w, k).exit_dominated_fraction())
            .collect();
        base += m.report(w, SelectorKind::Net).domination.dominated_regions
            + m.report(w, SelectorKind::Lei).domination.dominated_regions;
        comb += m
            .report(w, SelectorKind::CombinedNet)
            .domination
            .dominated_regions
            + m.report(w, SelectorKind::CombinedLei)
                .domination
                .dominated_regions;
        t.row(w, &vals);
    }
    print!("{}", t.render());
    if base > 0 {
        println!(
            "\ncombination removes {:.0}% of exit-dominated regions (paper: ~40%)",
            100.0 * (1.0 - comb as f64 / base as f64)
        );
    }
    println!("paper: 15% of NET traces, 22% of LEI traces; eon is the outlier");
}
