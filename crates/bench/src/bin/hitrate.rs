//! Hit rates for all four algorithms (paper §3.2 and §4.3 text).
//!
//! The paper: hit rates remain above 99% for all benchmarks except mcf
//! and gcc under LEI (98.31% / 98.98%); combined NET increases hit rate
//! very slightly; combined LEI loses ~0.1% on average but stays above
//! 98% everywhere.

use rsel_bench::{Table, run_matrix_from_env};
use rsel_core::SimConfig;
use rsel_core::select::SelectorKind;

fn main() {
    let config = SimConfig::default();
    let kinds = [
        SelectorKind::Net,
        SelectorKind::Lei,
        SelectorKind::CombinedNet,
        SelectorKind::CombinedLei,
    ];
    let m = run_matrix_from_env(&kinds, &config);
    let mut t = Table::new(
        "Hit rate (instructions executed from cache)",
        &["NET", "LEI", "cNET", "cLEI"],
    )
    .percentages();
    for &w in m.workloads() {
        let vals: Vec<f64> = kinds.iter().map(|&k| m.report(w, k).hit_rate()).collect();
        t.row(w, &vals);
    }
    print!("{}", t.render());
    println!("\npaper: all >= 98%, most >= 99%; LEI dips most on mcf and gcc");
}
