//! Figure 16: reduction in the number of region transitions under trace
//! combination.
//!
//! The paper: combined NET has on average 85% as many region
//! transitions as NET; combined LEI only 64% as many as LEI — and
//! vortex is the one case where combined NET's transitions rise
//! slightly.

use rsel_bench::{Table, geomean, run_matrix_from_env};
use rsel_core::SimConfig;
use rsel_core::select::SelectorKind;

fn main() {
    let config = SimConfig::default();
    let kinds = [
        SelectorKind::Net,
        SelectorKind::Lei,
        SelectorKind::CombinedNet,
        SelectorKind::CombinedLei,
    ];
    let m = run_matrix_from_env(&kinds, &config);
    let mut t = Table::new(
        "Figure 16: region transitions, combined relative to base",
        &["cNET/NET", "cLEI/LEI"],
    );
    let mut net_ratios = Vec::new();
    let mut lei_ratios = Vec::new();
    for &w in m.workloads() {
        let rn = m.report(w, SelectorKind::CombinedNet).region_transitions as f64
            / m.report(w, SelectorKind::Net).region_transitions.max(1) as f64;
        let rl = m.report(w, SelectorKind::CombinedLei).region_transitions as f64
            / m.report(w, SelectorKind::Lei).region_transitions.max(1) as f64;
        t.row(w, &[rn, rl]);
        net_ratios.push(rn);
        lei_ratios.push(rl);
    }
    print!("{}", t.render());
    println!(
        "\ngeomean: cNET/NET {:.2} (paper 0.85), cLEI/LEI {:.2} (paper 0.64)",
        geomean(&net_ratios),
        geomean(&lei_ratios)
    );
}
