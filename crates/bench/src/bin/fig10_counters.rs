//! Figure 10: number of profiling counters required by LEI relative to
//! NET.
//!
//! The maximum number of counters in use at any point measures
//! profiling memory. The paper: "LEI requires only two-thirds the
//! profiling memory of NET", because a counter is only allocated when
//! the target is also present in the history buffer.

use rsel_bench::{Table, geomean, run_matrix_from_env};
use rsel_core::SimConfig;
use rsel_core::select::SelectorKind;

fn main() {
    let config = SimConfig::default();
    let m = run_matrix_from_env(&[SelectorKind::Net, SelectorKind::Lei], &config);
    let mut t = Table::new(
        "Figure 10: peak profiling counters",
        &["NET", "LEI", "LEI/NET"],
    );
    let mut ratios = Vec::new();
    for &w in m.workloads() {
        let net = m.report(w, SelectorKind::Net).peak_counters as f64;
        let lei = m.report(w, SelectorKind::Lei).peak_counters as f64;
        let ratio = lei / net.max(1.0);
        t.row(w, &[net, lei, ratio]);
        ratios.push(ratio);
    }
    print!("{}", t.render());
    println!(
        "\ngeomean LEI/NET counter ratio: {:.2} (paper: about two-thirds)",
        geomean(&ratios)
    );
}
