//! Figure 8: code expansion and region transitions of LEI relative to
//! NET.
//!
//! The paper: "on average LEI results in 92% of the code expansion of
//! NET ... the number of region transitions is only 80% of that of
//! NET", with crafty (expansion) and parser (transitions) the cases
//! where LEI does no better.

use rsel_bench::{Table, run_matrix_from_env};
use rsel_core::SimConfig;
use rsel_core::select::SelectorKind;

fn main() {
    let config = SimConfig::default();
    let m = run_matrix_from_env(&[SelectorKind::Net, SelectorKind::Lei], &config);
    let mut t = Table::new(
        "Figure 8: LEI relative to NET (ratio; < 1 means LEI better)",
        &["expansion", "transitions"],
    );
    for &w in m.workloads() {
        let net = m.report(w, SelectorKind::Net);
        let lei = m.report(w, SelectorKind::Lei);
        let expansion = lei.insts_copied() as f64 / net.insts_copied().max(1) as f64;
        let transitions = lei.region_transitions as f64 / net.region_transitions.max(1) as f64;
        t.row(w, &[expansion, transitions]);
    }
    print!("{}", t.render());
    println!("\npaper: average expansion 0.92, average transitions 0.80;");
    println!("crafty shows no expansion win, parser no transition win");

    // Average trace size, quoted in §3.2.2 (14.8 -> 18.3 instructions).
    let mut net_sizes = Vec::new();
    let mut lei_sizes = Vec::new();
    for &w in m.workloads() {
        net_sizes.push(m.report(w, SelectorKind::Net).avg_region_insts());
        lei_sizes.push(m.report(w, SelectorKind::Lei).avg_region_insts());
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\naverage trace size: NET {:.1} insts, LEI {:.1} insts (paper: 14.8 -> 18.3)",
        avg(&net_sizes),
        avg(&lei_sizes)
    );
}
