//! Extension (paper §4.4, "Effect on Optimization"): opportunities the
//! selected regions offer a downstream optimizer.
//!
//! The paper argues combined regions beat traces for optimization:
//! internal joins allow compensation-free redundancy elimination, and a
//! cycle with an in-region preheader enables loop-invariant code motion
//! that "even a trace that spans a cycle cannot perform ... because it
//! has nowhere outside the cycle to move an instruction". This binary
//! quantifies those opportunities per selector.

use rsel_core::metrics::analyze_optimization;
use rsel_core::select::SelectorKind;
use rsel_core::{SimConfig, Simulator};
use rsel_program::Executor;
use rsel_workloads::{Scale, suite};

fn main() {
    let scale = match std::env::var("RSEL_SCALE").as_deref() {
        Ok("test") => Scale::Test,
        _ => Scale::Full,
    };
    let config = SimConfig::default();
    println!("## Extension: optimization opportunities in selected regions (\u{a7}4.4)\n");
    println!(
        "{:<13} {:>8} {:>8} {:>8} {:>8} {:>11}",
        "selector", "regions", "joins", "splits", "cyclic", "hoistable"
    );
    for kind in SelectorKind::all() {
        let mut total = rsel_core::metrics::OptimizationOpportunities::default();
        for w in suite() {
            let (program, spec) = w.build(2005, scale);
            let mut sim = Simulator::new(&program, kind.make(&program, &config), &config);
            sim.run(Executor::new(&program, spec));
            total.merge(&analyze_optimization(sim.cache()));
        }
        println!(
            "{:<13} {:>8} {:>8} {:>8} {:>8} {:>11}",
            kind.name(),
            total.regions,
            total.internal_joins,
            total.internal_splits,
            total.cyclic_regions,
            total.hoistable_cycles
        );
    }
    println!("\npaper: traces have no joins and cannot hoist out of their own");
    println!("cycles; combined regions provide both, and combined LEI most of all.");
}
