//! Extension: cache-layout locality of region transitions.
//!
//! The paper's separation argument (§1) is spatial: "Once a related
//! trace is selected, it is inserted far from the original trace,
//! potentially on a separate virtual memory page. Separation degrades
//! performance because it reduces locality of execution — and therefore
//! instruction cache performance — as control jumps between distant
//! traces." The simulator lays regions out in selection order, so this
//! binary can report how far transitions actually jump and how often
//! they cross a 4 KiB page.

use rsel_bench::{Table, run_matrix_from_env};
use rsel_core::SimConfig;
use rsel_core::select::SelectorKind;

fn main() {
    let config = SimConfig::default();
    let kinds = SelectorKind::all();
    let m = run_matrix_from_env(&kinds, &config);

    let mut t = Table::new(
        "Extension: fraction of region transitions crossing a 4 KiB page",
        &["NET", "LEI", "cNET", "cLEI"],
    )
    .percentages();
    for &w in m.workloads() {
        let vals: Vec<f64> = kinds
            .iter()
            .map(|&k| m.report(w, k).page_crossing_fraction())
            .collect();
        t.row(w, &vals);
    }
    print!("{}", t.render());

    println!("\nmean transition distance (bytes of cache layout):");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10}",
        "benchmark", "NET", "LEI", "cNET", "cLEI"
    );
    for &w in m.workloads() {
        let d: Vec<f64> = kinds
            .iter()
            .map(|&k| m.report(w, k).mean_transition_distance())
            .collect();
        println!(
            "{w:<10} {:>10.0} {:>10.0} {:>10.0} {:>10.0}",
            d[0], d[1], d[2], d[3]
        );
    }
    // Absolute separation cost: page-crossing transitions per million
    // executed instructions.
    println!("\npage-crossing transitions per million executed instructions:");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10}",
        "benchmark", "NET", "LEI", "cNET", "cLEI"
    );
    for &w in m.workloads() {
        let d: Vec<f64> = kinds
            .iter()
            .map(|&k| {
                let r = m.report(w, k);
                1e6 * r.transition_page_crossings as f64 / r.total_insts.max(1) as f64
            })
            .collect();
        println!(
            "{w:<10} {:>10.0} {:>10.0} {:>10.0} {:>10.0}",
            d[0], d[1], d[2], d[3]
        );
    }
    println!("\nfewer and closer transitions = better instruction-cache behaviour;");
    println!("cycle selection and combination shrink both columns.");
}
