//! Figure 19: effect of trace combination on the number of exit stubs.
//!
//! The paper: combination requires 18% fewer stubs for NET and 26%
//! fewer for LEI; together with fewer selected instructions this
//! shrinks the cache by 7% (NET) and 9% (LEI).

use rsel_bench::{Table, geomean, run_matrix_from_env};
use rsel_core::SimConfig;
use rsel_core::select::SelectorKind;

fn main() {
    let config = SimConfig::default();
    let kinds = [
        SelectorKind::Net,
        SelectorKind::Lei,
        SelectorKind::CombinedNet,
        SelectorKind::CombinedLei,
    ];
    let m = run_matrix_from_env(&kinds, &config);
    let mut t = Table::new(
        "Figure 19: exit stubs, combined relative to base",
        &["cNET/NET", "cLEI/LEI"],
    );
    let mut rn_all = Vec::new();
    let mut rl_all = Vec::new();
    let mut cache_n = Vec::new();
    let mut cache_l = Vec::new();
    for &w in m.workloads() {
        let rn = m.report(w, SelectorKind::CombinedNet).stub_count() as f64
            / m.report(w, SelectorKind::Net).stub_count().max(1) as f64;
        let rl = m.report(w, SelectorKind::CombinedLei).stub_count() as f64
            / m.report(w, SelectorKind::Lei).stub_count().max(1) as f64;
        t.row(w, &[rn, rl]);
        rn_all.push(rn);
        rl_all.push(rl);
        cache_n.push(
            m.report(w, SelectorKind::CombinedNet).cache_size_estimate as f64
                / m.report(w, SelectorKind::Net).cache_size_estimate.max(1) as f64,
        );
        cache_l.push(
            m.report(w, SelectorKind::CombinedLei).cache_size_estimate as f64
                / m.report(w, SelectorKind::Lei).cache_size_estimate.max(1) as f64,
        );
    }
    print!("{}", t.render());
    println!(
        "\ngeomean stubs: cNET/NET {:.2} (paper 0.82), cLEI/LEI {:.2} (paper 0.74)",
        geomean(&rn_all),
        geomean(&rl_all)
    );
    println!(
        "geomean cache size: cNET/NET {:.2} (paper 0.93), cLEI/LEI {:.2} (paper 0.91)",
        geomean(&cache_n),
        geomean(&cache_l)
    );
}
