//! Figure 9: minimum number of traces required to cover 90% of the
//! instructions executed by each benchmark.
//!
//! The paper: "In all cases, LEI requires a significantly smaller set
//! of traces, with an average reduction of 18%."

use rsel_bench::{Table, geomean, run_matrix_from_env};
use rsel_core::SimConfig;
use rsel_core::select::SelectorKind;

fn main() {
    let config = SimConfig::default();
    let m = run_matrix_from_env(&[SelectorKind::Net, SelectorKind::Lei], &config);
    let mut t = Table::new("Figure 9: 90% cover set size", &["NET", "LEI"]);
    let mut ratios = Vec::new();
    for &w in m.workloads() {
        let net = m.report(w, SelectorKind::Net).cover_set_size(0.9);
        let lei = m.report(w, SelectorKind::Lei).cover_set_size(0.9);
        let (n, l) = match (net, lei) {
            (Some(n), Some(l)) => (n, l),
            other => {
                eprintln!("{w}: cover set unattainable: {other:?}");
                continue;
            }
        };
        t.row(w, &[n as f64, l as f64]);
        ratios.push(l as f64 / n as f64);
    }
    print!("{}", t.render());
    println!(
        "\ngeomean LEI/NET cover-set ratio: {:.2} (paper: average reduction of 18%)",
        geomean(&ratios)
    );
}
