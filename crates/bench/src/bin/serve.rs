//! Multi-tenant serving benchmark: serves the twelve-workload suite
//! through the `rsel-runtime` scheduler and writes `BENCH_serve.json`.
//!
//! Scale follows `RSEL_SCALE` (`test` or `full`, default `test` — a
//! full-scale serve replays ~10⁸ recorded steps). Worker count for the
//! headline run follows `RSEL_JOBS`. The JSON contains nothing
//! wall-clock- or worker-count-dependent, so the file is byte-identical
//! for every `RSEL_JOBS`; wall time goes to stderr only.
//!
//! `RSEL_SNAPSHOT=path` enables warm-start persistence: if the file
//! exists the run warm-starts from it (after strict validation — a
//! corrupt or mismatched snapshot is a hard error), a cold run is
//! served alongside for comparison, and the cold-vs-warm hit rate and
//! rounds-to-first-exploit go to stderr. The end-of-run snapshot is
//! always written back to the path.
//!
//! At test scale (or whenever `RSEL_CROSSCHECK` is set) the outcome is
//! re-served on 1 and 8 workers and the bin exits non-zero if the
//! outcomes diverge. Full-scale runs skip the cross-check by default:
//! it triples an already ~10⁸-step serve, and the determinism suite
//! covers the invariant at test scale.

use rsel_bench::harness::DEFAULT_SEED;
use rsel_bench::jobs_from_env;
use rsel_runtime::{ServeConfig, ServeReport, ServeSnapshot, TenantSpec, serve_with};
use rsel_workloads::Scale;
use std::time::Instant;

fn main() {
    let jobs = jobs_from_env();
    let scale = match std::env::var("RSEL_SCALE").as_deref() {
        Ok("full") => Scale::Full,
        _ => Scale::Test,
    };
    let crosscheck = matches!(scale, Scale::Test) || std::env::var_os("RSEL_CROSSCHECK").is_some();
    let snapshot_path = std::env::var_os("RSEL_SNAPSHOT").map(std::path::PathBuf::from);
    let config = ServeConfig::default();

    eprintln!("recording the suite ({scale:?} scale)...");
    let t = Instant::now();
    let specs = TenantSpec::record_suite(DEFAULT_SEED, scale);
    eprintln!("  recorded in {:.1} ms", t.elapsed().as_secs_f64() * 1e3);

    // Warm-start from the snapshot when one is present on disk. The
    // loader is strict: anything short of a well-formed snapshot for
    // exactly this suite and policy is a typed error, and a bad file is
    // a hard failure rather than a silent cold start.
    let warm = match &snapshot_path {
        Some(path) if path.exists() => {
            match ServeSnapshot::load_from_path(&specs, &config.policy, path) {
                Ok(snap) => {
                    eprintln!(
                        "warm-starting from {} ({} regions)",
                        path.display(),
                        snap.region_count()
                    );
                    Some(snap)
                }
                Err(e) => {
                    eprintln!("FAIL: snapshot {} rejected: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
        _ => None,
    };

    eprintln!("serving {} tenants on {jobs} workers...", specs.len());
    let t = Instant::now();
    let out = serve_with(&specs, &config, jobs, warm.as_ref());
    let serve_ms = t.elapsed().as_secs_f64() * 1e3;
    let rep = &out.report;
    eprintln!(
        "  served in {serve_ms:.1} ms: {} rounds, {:.0} insts/round, \
         peak {} active, {} pressure waves ({} shed actions), {} selector switches",
        rep.queue.rounds,
        rep.insts_per_round(),
        rep.queue.peak_active,
        rep.pressure_waves(),
        rep.shed_actions(),
        rep.switches.len()
    );

    // When warm-started, serve the same suite cold and report what the
    // snapshot bought: aggregate hit rate and mean rounds from
    // admission to the first exploit-phase decision.
    if warm.is_some() {
        eprintln!("serving cold for comparison...");
        let cold = serve_with(&specs, &config, jobs, None);
        let hit = |r: &ServeReport| {
            let cached: u64 = r.tenants.iter().map(|t| t.cache_insts).sum();
            cached as f64 / r.total_insts as f64
        };
        let exploit = |r: &ServeReport| match r.mean_rounds_to_first_exploit() {
            Some(v) => format!("{v:.1}"),
            None => "n/a".to_string(),
        };
        eprintln!(
            "  cold: {:.4} hit rate, {} mean rounds to first exploit",
            hit(&cold.report),
            exploit(&cold.report)
        );
        eprintln!(
            "  warm: {:.4} hit rate, {} mean rounds to first exploit",
            hit(rep),
            exploit(rep)
        );
    }

    // Cross-check: the serving outcome may not depend on the worker
    // count. Run serial and 8-way (warm-started the same way as the
    // headline run) and demand identity — reports and rendered bytes.
    let mut ok = true;
    if crosscheck {
        eprintln!("cross-checking RSEL_JOBS=1 vs RSEL_JOBS=8...");
        let serial = serve_with(&specs, &config, 1, warm.as_ref());
        let parallel = serve_with(&specs, &config, 8, warm.as_ref());
        if serial.report.to_json() != parallel.report.to_json() || serial.report != parallel.report
        {
            eprintln!("DIVERGENCE: ServeReport differs between 1 and 8 workers");
            ok = false;
        }
        if serial.run_reports != parallel.run_reports {
            eprintln!("DIVERGENCE: per-tenant RunReports differ between 1 and 8 workers");
            ok = false;
        }
        if serial.snapshot != parallel.snapshot {
            eprintln!("DIVERGENCE: end-of-run snapshot differs between 1 and 8 workers");
            ok = false;
        }
        if out.report != serial.report {
            eprintln!("DIVERGENCE: headline run ({jobs} workers) differs from serial");
            ok = false;
        }
    } else {
        eprintln!("skipping 1-vs-8 cross-check (full scale; set RSEL_CROSSCHECK to force)");
    }

    // Persist the end-of-run state so the next invocation warm-starts.
    if let Some(path) = &snapshot_path {
        out.snapshot.save_to_path(path).expect("write snapshot");
        eprintln!(
            "wrote snapshot to {} ({} regions)",
            path.display(),
            out.snapshot.region_count()
        );
    }

    let json = out.report.to_json();
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("{json}");

    if !ok {
        eprintln!("FAIL: serving outcome depends on the worker count");
        std::process::exit(1);
    }
    if crosscheck {
        eprintln!("ok: outcome identical across worker counts");
    }
}
