//! Multi-tenant serving benchmark: serves the twelve-workload suite
//! through the `rsel-runtime` scheduler and writes `BENCH_serve.json`.
//!
//! Scale follows `RSEL_SCALE` (`test` or `full`, default `test` — a
//! full-scale serve replays ~10⁸ recorded steps). Worker count for the
//! headline run follows `RSEL_JOBS`. The scheduler's report contains
//! nothing wall-clock- or worker-count-dependent; the single
//! exception in the file is `insts_per_sec`, which this bin measures
//! from the headline run's wall time and stamps in *after* the
//! determinism cross-check has passed on the wall-clock-free report.
//!
//! Fault traffic is enabled with the `RSEL_SMC_*` knobs (all rates in
//! events per million executed blocks):
//!
//! - `RSEL_SMC_PPM` — self-modifying-code write rate;
//! - `RSEL_SMC_SPAN` — maximum bytes one write dirties (default 64);
//! - `RSEL_SMC_SEED` — base fault seed (each tenant's schedule is
//!   derived from it and the tenant id, so the outcome stays
//!   byte-identical across worker counts);
//! - `RSEL_FLUSH_PPM` — cache-pressure flush-wave rate;
//! - `RSEL_CTR_PPM` — hardware-counter fault rate (one epoch of
//!   profile data dropped per strike);
//! - `RSEL_BLACKLIST_AFTER` — invalidations of one entry before it is
//!   demoted to interpretation (default 3).
//!
//! Tenant churn is enabled with the `RSEL_CHURN_*` knobs (the
//! schedule is a pure function of the seed, so any combination stays
//! byte-identical across worker counts):
//!
//! - `RSEL_CHURN_SEED` — base lifecycle seed (per-tenant schedules
//!   derive from it and the tenant id);
//! - `RSEL_CHURN_SPREAD` — arrivals staggered over this many rounds;
//! - `RSEL_CHURN_DISCONNECTS` — max clean disconnects per tenant;
//! - `RSEL_CHURN_GAP` — max rounds a tenant stays offline (default 4);
//! - `RSEL_CHURN_CRASH_PCT` — percent chance one event is a crash
//!   (recovers from the last checkpoint) instead of a clean
//!   disconnect;
//! - `RSEL_CHECKPOINT_EVERY` — write a per-tenant recovery checkpoint
//!   every N rounds (0 disables; crashes then replay from scratch);
//! - `RSEL_ADMIT_TIMEOUT` — shed arrivals that wait more than N
//!   rounds for admission (0 = wait forever);
//! - `RSEL_RECONNECT_COLD` — when set, reconnects discard the
//!   checkpointed cache and rebuild from the top (for measuring what
//!   warm reconnects buy).
//!
//! The content-addressed shared region store is controlled by:
//!
//! - `RSEL_SHARE` — nonzero enables share mode: identical regions
//!   across tenants are deduplicated into refcounted per-shard store
//!   entries, shard pressure is charged against *unique* bytes, and
//!   the report gains `unique_bytes`/`logical_bytes`/`dedup_ratio`/
//!   `shared_refs`;
//! - `RSEL_REPLICAS` — serve N copies of each suite workload
//!   (default 1), interleaved so identical tenants are co-admitted —
//!   the homogeneous-traffic shape sharing is built for;
//! - `RSEL_QUARANTINE_PENALTY` — a quarantined tenant (one whose
//!   session panicked) is retried once with a fresh cold session
//!   after this many rounds (0 = quarantine stays permanent).
//!
//! Selection-policy and eviction behavior:
//!
//! - `RSEL_POLICY` — `adaptive` (default) derives each tenant's
//!   explore schedule from its decoded stream shape (short streams
//!   get truncated schedules sized to reach exploit before they
//!   finish); `extended` additionally explores all eight selector
//!   algorithms instead of the core four; `legacy` restores the fixed
//!   four-candidate schedule for every tenant;
//! - `RSEL_UTILITY_EVICT` — nonzero ranks pressure victims by bytes
//!   per recent cached instruction (cold bulk sheds first) instead of
//!   raw byte footprint, per-tenant in each shard and per-entry in
//!   the shared store;
//! - `RSEL_SHARDS` / `RSEL_SHARD_CAP` — shard count (default 16) and
//!   per-shard byte budget (default 2048), for dialing cache pressure
//!   up or down when comparing eviction policies.
//!
//! `RSEL_SNAPSHOT=path` enables warm-start persistence. Loading is
//! *lenient* by default: a tenant whose saved state no longer matches
//! the serving configuration cold-starts with a stderr warning (and is
//! counted in `warm_rejected_tenants`), and a structurally unreadable
//! file downgrades the whole run to a cold start. Set
//! `RSEL_SNAPSHOT_STRICT` to restore the old behaviour where any
//! defect is a hard error. The end-of-run snapshot is always written
//! back to the path.
//!
//! At test scale (or whenever `RSEL_CROSSCHECK` is set) the outcome is
//! re-served on 1 and 8 workers and the bin exits non-zero if the
//! outcomes diverge. Full-scale runs skip the cross-check by default:
//! it triples an already ~10⁸-step serve, and the determinism suite
//! covers the invariant at test scale.

use rsel_bench::harness::DEFAULT_SEED;
use rsel_bench::jobs_from_env;
use rsel_core::SelectorKind;
use rsel_runtime::{
    ChurnConfig, ServeConfig, ServeOutcome, ServeReport, ServeSnapshot, TenantSpec, WarmStart,
    serve, serve_warm,
};
use rsel_workloads::Scale;
use std::time::Instant;

/// Parses env var `name` as a `u64`, defaulting when unset. A set but
/// unparsable value is a hard error — a typo must not silently serve
/// an unfaulted run.
fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("{name} must be an unsigned integer, got {v:?}")),
        Err(_) => default,
    }
}

fn main() {
    let jobs = jobs_from_env();
    let scale = match std::env::var("RSEL_SCALE").as_deref() {
        Ok("full") => Scale::Full,
        _ => Scale::Test,
    };
    let crosscheck = matches!(scale, Scale::Test) || std::env::var_os("RSEL_CROSSCHECK").is_some();
    let strict = std::env::var_os("RSEL_SNAPSHOT_STRICT").is_some();
    let snapshot_path = std::env::var_os("RSEL_SNAPSHOT").map(std::path::PathBuf::from);

    let mut config = ServeConfig::default();
    config.sim.faults.smc_write_ppm = env_u64("RSEL_SMC_PPM", 0) as u32;
    config.sim.faults.smc_max_span = env_u64("RSEL_SMC_SPAN", 64);
    config.sim.faults.seed = env_u64("RSEL_SMC_SEED", 0);
    config.sim.faults.flush_wave_ppm = env_u64("RSEL_FLUSH_PPM", 0) as u32;
    config.sim.faults.counter_fault_ppm = env_u64("RSEL_CTR_PPM", 0) as u32;
    config.sim.faults.blacklist_after = env_u64("RSEL_BLACKLIST_AFTER", 3) as u32;
    config
        .sim
        .faults
        .check()
        .expect("RSEL_SMC_* knobs are sane");
    if config.sim.faults.active() {
        eprintln!(
            "fault traffic enabled: {} smc ppm (span {} B), {} flush ppm, \
             {} counter ppm, blacklist after {}, seed {}",
            config.sim.faults.smc_write_ppm,
            config.sim.faults.smc_max_span,
            config.sim.faults.flush_wave_ppm,
            config.sim.faults.counter_fault_ppm,
            config.sim.faults.blacklist_after,
            config.sim.faults.seed,
        );
    }

    config.churn = ChurnConfig {
        seed: env_u64("RSEL_CHURN_SEED", 0),
        arrival_spread: env_u64("RSEL_CHURN_SPREAD", 0),
        max_disconnects: env_u64("RSEL_CHURN_DISCONNECTS", 0) as u32,
        max_gap: env_u64("RSEL_CHURN_GAP", 4),
        crash_percent: env_u64("RSEL_CHURN_CRASH_PCT", 0) as u8,
    };
    config.checkpoint_every = env_u64("RSEL_CHECKPOINT_EVERY", 0);
    config.admission_timeout = env_u64("RSEL_ADMIT_TIMEOUT", 0);
    config.reconnect_cold = std::env::var_os("RSEL_RECONNECT_COLD").is_some();
    config.share = env_u64("RSEL_SHARE", 0) != 0;
    config.quarantine_penalty = env_u64("RSEL_QUARANTINE_PENALTY", 0);
    config.utility_evict = env_u64("RSEL_UTILITY_EVICT", 0) != 0;
    config.shard_count = env_u64("RSEL_SHARDS", config.shard_count as u64).max(1) as usize;
    config.shard_capacity = env_u64("RSEL_SHARD_CAP", config.shard_capacity);
    // The policy engine needs the serving epoch length to size each
    // tenant's explore schedule against its stream.
    config.policy.epoch_len = config.epoch_len;
    let policy_mode = std::env::var("RSEL_POLICY").unwrap_or_else(|_| "adaptive".to_string());
    match policy_mode.as_str() {
        "legacy" => {}
        "adaptive" => config.policy.adaptive = true,
        "extended" => {
            config.policy.adaptive = true;
            config.policy.candidates = SelectorKind::extended().to_vec();
        }
        other => {
            eprintln!("FAIL: RSEL_POLICY must be legacy, adaptive, or extended, got {other:?}");
            std::process::exit(1);
        }
    }
    if policy_mode != "legacy" {
        eprintln!(
            "policy: {policy_mode} (stream-shaped explore schedules, {} candidates)",
            config.policy.candidates.len()
        );
    }
    if config.utility_evict {
        eprintln!("utility eviction enabled: victims ranked by bytes per recent cached inst");
    }
    let replicas = env_u64("RSEL_REPLICAS", 1).max(1) as usize;
    if let Err(e) = config.churn.check() {
        eprintln!("FAIL: RSEL_CHURN_* knobs rejected: {e}");
        std::process::exit(1);
    }
    if config.churn.active() {
        eprintln!(
            "churn enabled: seed {}, spread {}, <= {} disconnects/tenant \
             (gap <= {}, {}% crash), checkpoint every {}, admit timeout {}{}",
            config.churn.seed,
            config.churn.arrival_spread,
            config.churn.max_disconnects,
            config.churn.max_gap,
            config.churn.crash_percent,
            config.checkpoint_every,
            config.admission_timeout,
            if config.reconnect_cold {
                ", cold reconnects"
            } else {
                ""
            },
        );
    }

    eprintln!("recording the suite ({scale:?} scale)...");
    let t = Instant::now();
    let mut specs = TenantSpec::record_suite(DEFAULT_SEED, scale);
    eprintln!("  recorded in {:.1} ms", t.elapsed().as_secs_f64() * 1e3);
    if replicas > 1 {
        // Replicas clone the recordings (Arc-shared), not the serve
        // state — each copy is an independent tenant.
        specs = TenantSpec::replicate(specs, replicas);
        eprintln!("  replicated x{replicas}: {} tenants", specs.len());
    }
    if config.share {
        eprintln!("share mode enabled: content-addressed region store");
    }

    // Warm-start from the snapshot when one is present on disk. The
    // lenient loader degrades semantically stale tenants to cold
    // slots; under RSEL_SNAPSHOT_STRICT anything short of a fully
    // valid snapshot is a hard failure.
    let warm: Option<WarmStart> = match &snapshot_path {
        Some(path) if path.exists() => {
            if strict {
                match ServeSnapshot::load_from_path(&specs, &config.policy, path) {
                    Ok(snap) => {
                        eprintln!(
                            "warm-starting from {} ({} regions, strict)",
                            path.display(),
                            snap.region_count()
                        );
                        Some(snap.into_warm_start())
                    }
                    Err(e) => {
                        eprintln!("FAIL: snapshot {} rejected: {e}", path.display());
                        std::process::exit(1);
                    }
                }
            } else {
                match WarmStart::load_from_path(&specs, &config.policy, path) {
                    Ok(w) => {
                        eprintln!(
                            "warm-starting from {} ({} regions, {}/{} tenants restored)",
                            path.display(),
                            w.region_count(),
                            w.restored_tenants(),
                            specs.len()
                        );
                        Some(w)
                    }
                    Err(e) => {
                        eprintln!(
                            "warning: snapshot {} unreadable, cold-starting the run: {e}",
                            path.display()
                        );
                        None
                    }
                }
            }
        }
        _ => None,
    };

    // A rejected configuration is a typed error, not a panic: report
    // it and exit non-zero so a misconfigured CI leg fails loudly.
    let run = |jobs: usize| -> ServeOutcome {
        let outcome = match &warm {
            Some(w) => serve_warm(&specs, &config, jobs, w),
            None => serve(&specs, &config, jobs),
        };
        outcome.unwrap_or_else(|e| {
            eprintln!("FAIL: serve rejected the configuration: {e}");
            std::process::exit(1);
        })
    };

    eprintln!("serving {} tenants on {jobs} workers...", specs.len());
    let t = Instant::now();
    let mut out = run(jobs);
    let serve_ms = t.elapsed().as_secs_f64() * 1e3;
    let rep = &out.report;
    eprintln!(
        "  served in {serve_ms:.1} ms: {} rounds, {:.0} insts/round, \
         peak {} active, {} pressure waves ({} shed actions), {} selector switches",
        rep.queue.rounds,
        rep.insts_per_round(),
        rep.queue.peak_active,
        rep.pressure_waves(),
        rep.shed_actions(),
        rep.switches.len()
    );
    {
        let exploit = match rep.mean_rounds_to_first_exploit() {
            Some(v) => format!("{v:.1}"),
            None => "n/a".to_string(),
        };
        eprintln!(
            "  exploit: {} mean rounds to first exploit, {} tenant(s) never got there",
            exploit,
            rep.never_exploited(),
        );
    }
    if config.utility_evict {
        let utility: u64 = rep.tenants.iter().map(|t| t.utility_evictions).sum();
        eprintln!(
            "  utility eviction: {} of {} pressure-evicted regions chosen by utility",
            utility,
            rep.tenants.iter().map(|t| t.pressure_evicted).sum::<u64>(),
        );
    }
    if config.sim.faults.active() {
        let dips: u64 = rep.tenants.iter().map(|t| t.smc_dips).sum();
        let worst = rep
            .tenants
            .iter()
            .map(|t| t.max_dip_depth)
            .fold(0.0f64, f64::max);
        eprintln!(
            "  resilience: {} regions invalidated, {} targets blacklisted, \
             {} hit-rate dips (deepest {:.4})",
            rep.smc_invalidated_regions(),
            rep.blacklisted_targets(),
            dips,
            worst,
        );
    }
    if config.churn.active() {
        eprintln!(
            "  churn: {} disconnects, {} crashes, {} reconnects, \
             {} recovered epochs, {} checkpoints ({} B), \
             {} shed arrivals ({} retries), {} quarantined \
             ({} retried), mean admission wait {:.2} rounds",
            rep.disconnects(),
            rep.crashes(),
            rep.reconnects(),
            rep.recovered_epochs(),
            rep.checkpoints_taken(),
            rep.checkpoint_bytes(),
            rep.queue.shed_arrivals,
            rep.queue.admission_retries,
            rep.quarantined_tenants(),
            rep.quarantine_retries(),
            rep.mean_admission_wait(),
        );
    }
    if config.share {
        eprintln!(
            "  dedup: {} unique B for {} logical B (ratio {:.2}) at the \
             peak barrier, {} shared refs",
            rep.unique_bytes,
            rep.logical_bytes,
            rep.dedup_ratio(),
            rep.shared_refs,
        );
    }
    if rep.warm_rejected_tenants > 0 {
        eprintln!(
            "  {} tenant(s) cold-started after snapshot rejection",
            rep.warm_rejected_tenants
        );
    }

    // When warm-started, serve the same suite cold and report what the
    // snapshot bought: aggregate hit rate and mean rounds from
    // admission to the first exploit-phase decision.
    if warm.is_some() {
        eprintln!("serving cold for comparison...");
        let cold = serve(&specs, &config, jobs).unwrap_or_else(|e| {
            eprintln!("FAIL: cold comparison serve rejected: {e}");
            std::process::exit(1);
        });
        let hit = |r: &ServeReport| {
            let cached: u64 = r.tenants.iter().map(|t| t.cache_insts).sum();
            cached as f64 / r.total_insts as f64
        };
        let exploit = |r: &ServeReport| match r.mean_rounds_to_first_exploit() {
            Some(v) => format!("{v:.1}"),
            None => "n/a".to_string(),
        };
        eprintln!(
            "  cold: {:.4} hit rate, {} mean rounds to first exploit",
            hit(&cold.report),
            exploit(&cold.report)
        );
        eprintln!(
            "  warm: {:.4} hit rate, {} mean rounds to first exploit",
            hit(rep),
            exploit(rep)
        );
    }

    // Cross-check: the serving outcome may not depend on the worker
    // count. Run serial and 8-way (warm-started the same way as the
    // headline run) and demand identity — reports and rendered bytes.
    let mut ok = true;
    if crosscheck {
        eprintln!("cross-checking RSEL_JOBS=1 vs RSEL_JOBS=8...");
        let serial = run(1);
        let parallel = run(8);
        if serial.report.to_json() != parallel.report.to_json() || serial.report != parallel.report
        {
            eprintln!("DIVERGENCE: ServeReport differs between 1 and 8 workers");
            ok = false;
        }
        if serial.run_reports != parallel.run_reports {
            eprintln!("DIVERGENCE: per-tenant RunReports differ between 1 and 8 workers");
            ok = false;
        }
        if serial.snapshot != parallel.snapshot {
            eprintln!("DIVERGENCE: end-of-run snapshot differs between 1 and 8 workers");
            ok = false;
        }
        if out.report != serial.report {
            eprintln!("DIVERGENCE: headline run ({jobs} workers) differs from serial");
            ok = false;
        }
    } else {
        eprintln!("skipping 1-vs-8 cross-check (full scale; set RSEL_CROSSCHECK to force)");
    }

    // Wall-clock throughput is stamped in only now — after the
    // cross-check compared the wall-clock-free reports — so the
    // measured time can never participate in (or break) the 1-vs-8
    // identity.
    if serve_ms > 0.0 {
        out.report.insts_per_sec = Some(out.report.total_insts as f64 / serve_ms * 1e3);
    }

    // Persist the end-of-run state so the next invocation warm-starts.
    if let Some(path) = &snapshot_path {
        out.snapshot.save_to_path(path).expect("write snapshot");
        eprintln!(
            "wrote snapshot to {} ({} regions)",
            path.display(),
            out.snapshot.region_count()
        );
    }

    let json = out.report.to_json();
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("{json}");

    if !ok {
        eprintln!("FAIL: serving outcome depends on the worker count");
        std::process::exit(1);
    }
    if crosscheck {
        eprintln!("ok: outcome identical across worker counts");
    }
}
