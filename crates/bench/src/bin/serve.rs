//! Multi-tenant serving benchmark: serves the twelve-workload suite
//! through the `rsel-runtime` scheduler, cross-checks that the outcome
//! is identical for 1 and 8 workers, and writes `BENCH_serve.json`.
//!
//! Scale follows `RSEL_SCALE` (`test` or `full`, default `test` — a
//! full-scale serve replays ~10⁸ recorded steps). Worker count for the
//! headline run follows `RSEL_JOBS`. The JSON contains nothing
//! wall-clock- or worker-count-dependent, so the file is byte-identical
//! for every `RSEL_JOBS`; wall time goes to stderr only. Exits
//! non-zero if the serial and parallel outcomes diverge.

use rsel_bench::harness::DEFAULT_SEED;
use rsel_bench::jobs_from_env;
use rsel_runtime::{ServeConfig, TenantSpec, serve};
use rsel_workloads::Scale;
use std::time::Instant;

fn main() {
    let jobs = jobs_from_env();
    let scale = match std::env::var("RSEL_SCALE").as_deref() {
        Ok("full") => Scale::Full,
        _ => Scale::Test,
    };
    let config = ServeConfig::default();

    eprintln!("recording the suite ({scale:?} scale)...");
    let t = Instant::now();
    let specs = TenantSpec::record_suite(DEFAULT_SEED, scale);
    eprintln!("  recorded in {:.1} ms", t.elapsed().as_secs_f64() * 1e3);

    eprintln!("serving {} tenants on {jobs} workers...", specs.len());
    let t = Instant::now();
    let out = serve(&specs, &config, jobs);
    let serve_ms = t.elapsed().as_secs_f64() * 1e3;
    let rep = &out.report;
    eprintln!(
        "  served in {serve_ms:.1} ms: {} rounds, {:.0} insts/round, \
         peak {} active, {} pressure waves, {} selector switches",
        rep.queue.rounds,
        rep.insts_per_round(),
        rep.queue.peak_active,
        rep.pressure_waves(),
        rep.switches.len()
    );

    // Cross-check: the serving outcome may not depend on the worker
    // count. Run serial and 8-way and demand identity (reports and
    // rendered bytes).
    eprintln!("cross-checking RSEL_JOBS=1 vs RSEL_JOBS=8...");
    let serial = serve(&specs, &config, 1);
    let parallel = serve(&specs, &config, 8);
    let mut ok = true;
    if serial.report.to_json() != parallel.report.to_json() || serial.report != parallel.report {
        eprintln!("DIVERGENCE: ServeReport differs between 1 and 8 workers");
        ok = false;
    }
    if serial.run_reports != parallel.run_reports {
        eprintln!("DIVERGENCE: per-tenant RunReports differ between 1 and 8 workers");
        ok = false;
    }
    if out.report != serial.report {
        eprintln!("DIVERGENCE: headline run ({jobs} workers) differs from serial");
        ok = false;
    }

    let json = out.report.to_json();
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("{json}");

    if !ok {
        eprintln!("FAIL: serving outcome depends on the worker count");
        std::process::exit(1);
    }
    eprintln!("ok: outcome identical across worker counts");
}
