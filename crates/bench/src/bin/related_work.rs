//! Comparison with the paper's §5 related systems.
//!
//! "The problems of separation and duplication apply as much to these
//! trace-selection algorithms as to NET ... careful selection of traces
//! does not address the problems of separation and duplication."
//!
//! Runs Mojo, BOA, Wiggins/Redstone and ADORE next to NET, LEI and
//! combined LEI over the suite and prints the locality and duplication
//! metrics: no amount of extra profiling matches what cycle selection
//! and combination achieve.

use rsel_bench::{Table, geomean, run_matrix_from_env};
use rsel_core::SimConfig;
use rsel_core::select::SelectorKind;

fn main() {
    let config = SimConfig::default();
    let kinds = [
        SelectorKind::Net,
        SelectorKind::Mojo,
        SelectorKind::Boa,
        SelectorKind::WigginsRedstone,
        SelectorKind::Adore,
        SelectorKind::Lei,
        SelectorKind::CombinedLei,
    ];
    let m = run_matrix_from_env(&kinds, &config);
    let mut t = Table::new(
        "Related work (paper \u{a7}5): region transitions relative to NET",
        &["Mojo", "BOA", "W/R", "ADORE", "LEI", "cLEI"],
    )
    .arithmetic_mean();
    let mut cols: [Vec<f64>; 6] = Default::default();
    for &w in m.workloads() {
        let net = m.report(w, SelectorKind::Net).region_transitions.max(1) as f64;
        let vals: Vec<f64> = kinds[1..]
            .iter()
            .map(|&k| m.report(w, k).region_transitions as f64 / net)
            .collect();
        t.row(w, &vals);
        for (col, v) in cols.iter_mut().zip(&vals) {
            col.push(*v);
        }
    }
    print!("{}", t.render());
    println!("\ngeomeans vs NET (over workloads where the selector cached anything):");
    for (name, col) in ["Mojo", "BOA", "W/R", "ADORE", "LEI", "cLEI"]
        .iter()
        .zip(&cols)
    {
        let nonzero: Vec<f64> = col.iter().copied().filter(|v| *v > 0.0).collect();
        println!(
            "  {name:<6} {:.2}  ({} of 12 workloads)",
            geomean(&nonzero),
            nonzero.len()
        );
    }
    println!("\nNOTE: read the transition ratios together with the hit rates below —");
    println!("the sampling selectors (W/R, ADORE) transition rarely partly because");
    println!("they cache less of the program in the first place.");

    // Hit rates: sampling-based selection warms up more slowly.
    let mut h = Table::new(
        "Related work: hit rate",
        &["NET", "Mojo", "BOA", "W/R", "ADORE", "LEI", "cLEI"],
    )
    .percentages();
    for &w in m.workloads() {
        let vals: Vec<f64> = kinds.iter().map(|&k| m.report(w, k).hit_rate()).collect();
        h.row(w, &vals);
    }
    print!("\n{}", h.render());
    println!("\npaper: better trace *identification* does not fix separation or");
    println!("duplication; only cycle selection (LEI) and combination do.");
}
