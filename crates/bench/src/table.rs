//! Plain-text tables matching the paper's per-benchmark bar charts.

/// Geometric mean of strictly positive values; arithmetic-style
/// fallback of 0 for empty input.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// A simple fixed-width text table: one row per benchmark plus an
/// average row, mirroring the layout of the paper's figures.
#[derive(Debug, Default)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
    percent: bool,
    arithmetic: bool,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, columns: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            percent: false,
            arithmetic: false,
        }
    }

    /// Formats values as percentages (two decimals) instead of ratios,
    /// and averages arithmetically (percentage columns may contain
    /// zeros, for which a geometric mean degenerates).
    pub fn percentages(mut self) -> Self {
        self.percent = true;
        self.arithmetic = true;
        self
    }

    /// Averages columns arithmetically instead of geometrically (for
    /// delta columns that may be zero or negative).
    pub fn arithmetic_mean(mut self) -> Self {
        self.arithmetic = true;
        self
    }

    /// Appends one benchmark row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn row(&mut self, name: &str, values: &[f64]) -> &mut Self {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch");
        self.rows.push((name.to_string(), values.to_vec()));
        self
    }

    /// The average of one column over all rows so far (geometric by
    /// default, arithmetic for percentage/delta tables).
    pub fn column_mean(&self, col: usize) -> f64 {
        let vals: Vec<f64> = self.rows.iter().map(|(_, v)| v[col]).collect();
        if self.arithmetic {
            if vals.is_empty() {
                0.0
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            }
        } else {
            geomean(&vals)
        }
    }

    /// Renders the table with a trailing geometric-mean row.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let name_w = self
            .rows
            .iter()
            .map(|(n, _)| n.len())
            .chain(["average".len()])
            .max()
            .unwrap_or(8)
            .max(9);
        let col_w = self
            .columns
            .iter()
            .map(|c| c.len().max(10))
            .collect::<Vec<_>>();
        let _ = write!(out, "{:name_w$}", "benchmark");
        for (c, w) in self.columns.iter().zip(&col_w) {
            let _ = write!(out, "  {c:>w$}");
        }
        let _ = writeln!(out);
        let fmt_val = |v: f64| {
            if self.percent {
                format!("{:.2}%", 100.0 * v)
            } else {
                format!("{v:.3}")
            }
        };
        for (name, vals) in &self.rows {
            let _ = write!(out, "{name:name_w$}");
            for (v, w) in vals.iter().zip(&col_w) {
                let _ = write!(out, "  {:>w$}", fmt_val(*v));
            }
            let _ = writeln!(out);
        }
        let _ = write!(out, "{:name_w$}", "average");
        for (i, w) in col_w.iter().enumerate() {
            let _ = write!(out, "  {:>w$}", fmt_val(self.column_mean(i)));
        }
        let _ = writeln!(out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_equal_values_is_the_value() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn geomean_is_order_independent() {
        let a = geomean(&[0.5, 2.0, 1.0]);
        let b = geomean(&[2.0, 1.0, 0.5]);
        assert!((a - b).abs() < 1e-12);
        assert!((a - 1.0).abs() < 1e-9);
    }

    #[test]
    fn render_includes_rows_and_average() {
        let mut t = Table::new("Figure X", &["LEI/NET"]);
        t.row("gzip", &[0.9]);
        t.row("gcc", &[0.8]);
        let s = t.render();
        assert!(s.contains("Figure X"));
        assert!(s.contains("gzip"));
        assert!(s.contains("average"));
        assert!(s.contains("0.9"));
    }

    #[test]
    fn percent_formatting() {
        let mut t = Table::new("hit", &["NET"]).percentages();
        t.row("gzip", &[0.995]);
        assert!(t.render().contains("99.50%"));
    }

    #[test]
    fn arithmetic_mean_handles_zeros_and_negatives() {
        let mut t = Table::new("d", &["delta"]).arithmetic_mean();
        t.row("a", &[-2.0]);
        t.row("b", &[0.0]);
        t.row("c", &[5.0]);
        assert!((t.column_mean(0) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row("x", &[1.0]);
    }
}
