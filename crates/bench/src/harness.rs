//! Running the full workload × selector matrix.
//!
//! The matrix is executed with a *record-once / replay-many* pipeline:
//! each workload's dynamic block stream is recorded compactly a single
//! time per `(seed, scale)`, then replayed through every selector.
//! Selectors only observe the step stream, so replaying the recording
//! produces bit-identical [`RunReport`]s to live execution while paying
//! the executor cost once per workload instead of once per cell — the
//! same economy the paper gets by collecting Pin traces once and
//! feeding them to every region-selection algorithm (§2.3).
//!
//! Recording is also *decode-once*: the compact byte stream is expanded
//! to a dense [`DecodedStream`] a single time per workload, so the
//! per-selector replays walk plain arrays (and fast-forward detected
//! spin phases) instead of re-decoding varints and re-hashing block
//! tables eight times over. Workers additionally recycle their
//! simulator side tables ([`ReplayScratch`]) from cell to cell.
//!
//! Cells are independently replayable, so the matrix fans them out
//! across scoped worker threads (`RSEL_JOBS` workers, defaulting to the
//! machine's available parallelism). Results are collected by cell
//! index, so the assembled [`MatrixResults`] is identical to a serial
//! run regardless of worker count or scheduling.

use rsel_core::metrics::RunReport;
use rsel_core::select::SelectorKind;
use rsel_core::{ReplayScratch, SimConfig, Simulator};
use rsel_program::{Executor, Program};
use rsel_trace::{CompactStream, DecodedStream};
use rsel_workloads::{Scale, Workload, suite};
use std::collections::HashMap;
use std::sync::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Seed used by every figure binary, so all figures describe the same
/// runs.
pub const DEFAULT_SEED: u64 = 2005;

/// Runs one workload under one selector and returns the full report.
///
/// This is the *live* pipeline: it builds the program and re-executes
/// it under the behavior spec. The matrix instead records each
/// workload once ([`RecordedWorkload`]) and replays; the two produce
/// bit-identical reports.
pub fn run_one(
    workload: &Workload,
    kind: SelectorKind,
    seed: u64,
    scale: Scale,
    config: &SimConfig,
) -> RunReport {
    let (program, spec) = workload.build(seed, scale);
    let mut sim = Simulator::new(&program, kind.make(&program, config), config);
    sim.run(Executor::new(&program, spec));
    sim.report()
}

/// One workload's program plus its compactly recorded execution,
/// replayable against any number of selectors.
pub struct RecordedWorkload {
    name: &'static str,
    program: Program,
    decoded: DecodedStream,
}

impl RecordedWorkload {
    /// Builds the workload, records its full execution once, and
    /// decodes the recording once for all subsequent replays.
    pub fn record(workload: &Workload, seed: u64, scale: Scale) -> Self {
        let (program, spec) = workload.build(seed, scale);
        let stream = CompactStream::record(Executor::new(&program, spec));
        let decoded = DecodedStream::decode(stream, &program);
        RecordedWorkload {
            name: workload.name(),
            program,
            decoded,
        }
    }

    /// The workload's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The built program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The recorded execution stream (owned by the decoded form).
    pub fn stream(&self) -> &CompactStream {
        self.decoded.compact()
    }

    /// The decode-once struct-of-arrays form of the recording.
    pub fn decoded(&self) -> &DecodedStream {
        &self.decoded
    }

    /// Replays the recording through one selector.
    pub fn replay(&self, kind: SelectorKind, config: &SimConfig) -> RunReport {
        let mut sim = Simulator::new(&self.program, kind.make(&self.program, config), config);
        sim.replay_decoded(&self.decoded);
        sim.report()
    }

    /// [`RecordedWorkload::replay`] on recycled simulator buffers; the
    /// scratch is taken, reused, and replaced for the next cell.
    pub fn replay_recycled(
        &self,
        kind: SelectorKind,
        config: &SimConfig,
        scratch: &mut ReplayScratch,
    ) -> RunReport {
        let mut sim = Simulator::recycled(
            &self.program,
            kind.make(&self.program, config),
            config,
            std::mem::take(scratch),
        );
        sim.replay_decoded(&self.decoded);
        let report = sim.report();
        *scratch = sim.into_scratch();
        report
    }
}

/// Number of matrix worker threads: `RSEL_JOBS` when set to a positive
/// integer, otherwise the machine's available parallelism.
///
/// A set-but-invalid `RSEL_JOBS` (not a positive integer) is reported
/// to stderr before falling back, so a typo'd job count cannot
/// silently change how a benchmark runs.
pub fn jobs_from_env() -> usize {
    let fallback = || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    match std::env::var("RSEL_JOBS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                let jobs = fallback();
                eprintln!(
                    "warning: ignoring invalid RSEL_JOBS={v:?} \
                     (expected a positive integer); using {jobs} workers"
                );
                jobs
            }
        },
        Err(_) => fallback(),
    }
}

/// Applies `f` to every item on up to `jobs` scoped worker threads
/// with per-worker mutable state: each worker builds one `S` via
/// `init` and threads it through every item it claims. Results are
/// returned in item order (deterministic regardless of scheduling);
/// the state must be scheduling-invisible (workers use it only for
/// buffer recycling). `jobs <= 1` degenerates to a plain serial map.
fn par_map_with<T, R, S, F>(items: &[T], jobs: usize, init: impl Fn() -> S + Sync, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let jobs = jobs.min(items.len());
    if jobs <= 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    let r = f(&mut state, item);
                    *slots[i].lock().expect("result slot poisoned") = Some(r);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// Reports for every workload under every requested selector.
pub struct MatrixResults {
    workload_names: Vec<&'static str>,
    reports: HashMap<(&'static str, SelectorKind), RunReport>,
}

impl MatrixResults {
    /// Workload names in suite order.
    pub fn workloads(&self) -> &[&'static str] {
        &self.workload_names
    }

    /// The report for one cell.
    ///
    /// # Panics
    ///
    /// Panics if the pair was not part of the run.
    pub fn report(&self, workload: &str, kind: SelectorKind) -> &RunReport {
        self.reports
            .get(&(self.canonical(workload), kind))
            .unwrap_or_else(|| panic!("no report for {workload} under {kind}"))
    }

    fn canonical(&self, name: &str) -> &'static str {
        self.workload_names
            .iter()
            .copied()
            .find(|w| *w == name)
            .unwrap_or_else(|| panic!("unknown workload {name}"))
    }

    /// Applies `f` to every workload's reports for two selectors and
    /// returns `(workload, f(a, b))` rows.
    pub fn compare<T>(
        &self,
        a: SelectorKind,
        b: SelectorKind,
        f: impl Fn(&RunReport, &RunReport) -> T,
    ) -> Vec<(&'static str, T)> {
        self.workload_names
            .iter()
            .map(|&w| (w, f(self.report(w, a), self.report(w, b))))
            .collect()
    }
}

/// Records the whole suite once at `(seed, scale)`.
pub fn record_suite(seed: u64, scale: Scale) -> Vec<RecordedWorkload> {
    suite()
        .iter()
        .map(|w| RecordedWorkload::record(w, seed, scale))
        .collect()
}

/// Replays previously recorded workloads through every selector on
/// `jobs` worker threads, assembling the same deterministic
/// [`MatrixResults`] a serial run would produce.
pub fn replay_matrix(
    recorded: &[RecordedWorkload],
    kinds: &[SelectorKind],
    config: &SimConfig,
    jobs: usize,
) -> MatrixResults {
    let cells: Vec<(usize, SelectorKind)> = recorded
        .iter()
        .enumerate()
        .flat_map(|(wi, _)| kinds.iter().map(move |&k| (wi, k)))
        .collect();
    let results = par_map_with(&cells, jobs, ReplayScratch::default, |scratch, &(wi, k)| {
        recorded[wi].replay_recycled(k, config, scratch)
    });
    let mut reports = HashMap::with_capacity(cells.len());
    for (&(wi, k), rep) in cells.iter().zip(results) {
        reports.insert((recorded[wi].name(), k), rep);
    }
    MatrixResults {
        workload_names: recorded.iter().map(|r| r.name()).collect(),
        reports,
    }
}

/// Runs the whole suite under the given selectors.
///
/// Records each workload once, then replays the recording through
/// every selector across [`jobs_from_env`] worker threads. `scale` is
/// read from the `RSEL_SCALE` environment variable when `None` is
/// passed to the figure binaries' wrapper ([`run_matrix_from_env`]).
pub fn run_matrix(
    kinds: &[SelectorKind],
    seed: u64,
    scale: Scale,
    config: &SimConfig,
) -> MatrixResults {
    run_matrix_with_jobs(kinds, seed, scale, config, jobs_from_env())
}

/// [`run_matrix`] with an explicit worker count (1 forces a fully
/// serial replay).
pub fn run_matrix_with_jobs(
    kinds: &[SelectorKind],
    seed: u64,
    scale: Scale,
    config: &SimConfig,
    jobs: usize,
) -> MatrixResults {
    let recorded = record_suite(seed, scale);
    replay_matrix(&recorded, kinds, config, jobs)
}

/// Runs the suite with the pre-recording pipeline: every cell builds
/// and re-executes its workload live, serially. Kept as the perf
/// baseline the record/replay matrix is measured against.
pub fn run_matrix_serial_live(
    kinds: &[SelectorKind],
    seed: u64,
    scale: Scale,
    config: &SimConfig,
) -> MatrixResults {
    let workloads = suite();
    let mut reports = HashMap::new();
    let mut names = Vec::with_capacity(workloads.len());
    for w in &workloads {
        names.push(w.name());
        for &k in kinds {
            let rep = run_one(w, k, seed, scale, config);
            reports.insert((w.name(), k), rep);
        }
    }
    MatrixResults {
        workload_names: names,
        reports,
    }
}

/// Reads the experiment scale from `RSEL_SCALE` (`test` or `full`,
/// default `full`) and runs the matrix.
pub fn run_matrix_from_env(kinds: &[SelectorKind], config: &SimConfig) -> MatrixResults {
    let scale = match std::env::var("RSEL_SCALE").as_deref() {
        Ok("test") => Scale::Test,
        _ => Scale::Full,
    };
    eprintln!(
        "running {} workloads x {} selectors ({scale:?} scale)...",
        suite().len(),
        kinds.len()
    );
    run_matrix(kinds, DEFAULT_SEED, scale, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_all_cells() {
        let cfg = SimConfig::default();
        let m = run_matrix(&[SelectorKind::Net], 1, Scale::Test, &cfg);
        assert_eq!(m.workloads().len(), suite().len());
        for &w in m.workloads() {
            let r = m.report(w, SelectorKind::Net);
            assert!(r.total_insts > 0, "{w}");
        }
    }

    #[test]
    fn compare_yields_one_row_per_workload() {
        let cfg = SimConfig::default();
        let m = run_matrix(
            &[SelectorKind::Net, SelectorKind::Lei],
            1,
            Scale::Test,
            &cfg,
        );
        let rows = m.compare(SelectorKind::Lei, SelectorKind::Net, |a, b| {
            (a.region_count(), b.region_count())
        });
        assert_eq!(rows.len(), 12);
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_workload_panics() {
        let cfg = SimConfig::default();
        let m = run_matrix(&[SelectorKind::Net], 1, Scale::Test, &cfg);
        let _ = m.report("nonesuch", SelectorKind::Net);
    }

    #[test]
    fn replay_matches_live_run() {
        let cfg = SimConfig::default();
        let w = &suite()[0];
        let rec = RecordedWorkload::record(w, 7, Scale::Test);
        let live = run_one(w, SelectorKind::Lei, 7, Scale::Test, &cfg);
        let replayed = rec.replay(SelectorKind::Lei, &cfg);
        assert_eq!(replayed, live);
    }

    #[test]
    fn parallel_jobs_do_not_change_results() {
        let cfg = SimConfig::default();
        let kinds = [SelectorKind::Net, SelectorKind::Boa];
        let serial = run_matrix_with_jobs(&kinds, 3, Scale::Test, &cfg, 1);
        let parallel = run_matrix_with_jobs(&kinds, 3, Scale::Test, &cfg, 4);
        for &w in serial.workloads() {
            for &k in &kinds {
                assert_eq!(serial.report(w, k), parallel.report(w, k), "{w} {k}");
            }
        }
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let doubled = par_map_with(&items, 8, || (), |_, &x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }
}
