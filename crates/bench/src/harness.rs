//! Running the full workload × selector matrix.

use rsel_core::metrics::RunReport;
use rsel_core::select::SelectorKind;
use rsel_core::{SimConfig, Simulator};
use rsel_program::Executor;
use rsel_workloads::{Scale, Workload, suite};
use std::collections::HashMap;

/// Seed used by every figure binary, so all figures describe the same
/// runs.
pub const DEFAULT_SEED: u64 = 2005;

/// Runs one workload under one selector and returns the full report.
pub fn run_one(
    workload: &Workload,
    kind: SelectorKind,
    seed: u64,
    scale: Scale,
    config: &SimConfig,
) -> RunReport {
    let (program, spec) = workload.build(seed, scale);
    let mut sim = Simulator::new(&program, kind.make(&program, config), config);
    sim.run(Executor::new(&program, spec));
    sim.report()
}

/// Reports for every workload under every requested selector.
pub struct MatrixResults {
    workload_names: Vec<&'static str>,
    reports: HashMap<(&'static str, SelectorKind), RunReport>,
}

impl MatrixResults {
    /// Workload names in suite order.
    pub fn workloads(&self) -> &[&'static str] {
        &self.workload_names
    }

    /// The report for one cell.
    ///
    /// # Panics
    ///
    /// Panics if the pair was not part of the run.
    pub fn report(&self, workload: &str, kind: SelectorKind) -> &RunReport {
        self.reports
            .get(&(self.canonical(workload), kind))
            .unwrap_or_else(|| panic!("no report for {workload} under {kind}"))
    }

    fn canonical(&self, name: &str) -> &'static str {
        self.workload_names
            .iter()
            .copied()
            .find(|w| *w == name)
            .unwrap_or_else(|| panic!("unknown workload {name}"))
    }

    /// Applies `f` to every workload's reports for two selectors and
    /// returns `(workload, f(a, b))` rows.
    pub fn compare<T>(
        &self,
        a: SelectorKind,
        b: SelectorKind,
        f: impl Fn(&RunReport, &RunReport) -> T,
    ) -> Vec<(&'static str, T)> {
        self.workload_names
            .iter()
            .map(|&w| (w, f(self.report(w, a), self.report(w, b))))
            .collect()
    }
}

/// Runs the whole suite under the given selectors.
///
/// `scale` is read from the `RSEL_SCALE` environment variable when
/// `None` is passed to the figure binaries' wrapper
/// ([`run_matrix_from_env`]).
pub fn run_matrix(
    kinds: &[SelectorKind],
    seed: u64,
    scale: Scale,
    config: &SimConfig,
) -> MatrixResults {
    let workloads = suite();
    let mut reports = HashMap::new();
    let mut names = Vec::with_capacity(workloads.len());
    for w in &workloads {
        names.push(w.name());
        for &k in kinds {
            let rep = run_one(w, k, seed, scale, config);
            reports.insert((w.name(), k), rep);
        }
    }
    MatrixResults {
        workload_names: names,
        reports,
    }
}

/// Reads the experiment scale from `RSEL_SCALE` (`test` or `full`,
/// default `full`) and runs the matrix.
pub fn run_matrix_from_env(kinds: &[SelectorKind], config: &SimConfig) -> MatrixResults {
    let scale = match std::env::var("RSEL_SCALE").as_deref() {
        Ok("test") => Scale::Test,
        _ => Scale::Full,
    };
    eprintln!(
        "running {} workloads x {} selectors ({scale:?} scale)...",
        12,
        kinds.len()
    );
    run_matrix(kinds, DEFAULT_SEED, scale, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_all_cells() {
        let cfg = SimConfig::default();
        let m = run_matrix(&[SelectorKind::Net], 1, Scale::Test, &cfg);
        assert_eq!(m.workloads().len(), 12);
        for &w in m.workloads() {
            let r = m.report(w, SelectorKind::Net);
            assert!(r.total_insts > 0, "{w}");
        }
    }

    #[test]
    fn compare_yields_one_row_per_workload() {
        let cfg = SimConfig::default();
        let m = run_matrix(
            &[SelectorKind::Net, SelectorKind::Lei],
            1,
            Scale::Test,
            &cfg,
        );
        let rows = m.compare(SelectorKind::Lei, SelectorKind::Net, |a, b| {
            (a.region_count(), b.region_count())
        });
        assert_eq!(rows.len(), 12);
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_workload_panics() {
        let cfg = SimConfig::default();
        let m = run_matrix(&[SelectorKind::Net], 1, Scale::Test, &cfg);
        let _ = m.report("nonesuch", SelectorKind::Net);
    }
}
