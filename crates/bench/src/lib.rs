//! Figure-regeneration harness for the paper's evaluation.
//!
//! Each binary in `src/bin/` regenerates one figure of the paper (see
//! `DESIGN.md` for the index). This library holds the shared machinery:
//! running every `(workload, selector)` pair, caching nothing, and
//! formatting the per-benchmark rows plus the averages the paper quotes.
//!
//! Absolute numbers differ from the paper (our substrate is a synthetic
//! workload suite, not SPECint2000 on IA-32); the reproduction targets
//! the *shape*: who wins, by roughly what factor, and where the
//! outliers sit. `EXPERIMENTS.md` records paper-vs-measured for every
//! figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod table;

pub use harness::{DEFAULT_SEED, MatrixResults, run_matrix, run_matrix_from_env, run_one};
pub use table::{Table, geomean};
