//! Figure-regeneration harness for the paper's evaluation.
//!
//! Each binary in `src/bin/` regenerates one figure of the paper (see
//! `DESIGN.md` for the index). This library holds the shared machinery:
//! recording each workload's execution once and replaying it through
//! every selector (in parallel across `RSEL_JOBS` workers), plus
//! formatting the per-benchmark rows and the averages the paper quotes.
//!
//! Absolute numbers differ from the paper (our substrate is a synthetic
//! workload suite, not SPECint2000 on IA-32); the reproduction targets
//! the *shape*: who wins, by roughly what factor, and where the
//! outliers sit. `EXPERIMENTS.md` records paper-vs-measured for every
//! figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod table;

pub use harness::{
    DEFAULT_SEED, MatrixResults, RecordedWorkload, jobs_from_env, record_suite, replay_matrix,
    run_matrix, run_matrix_from_env, run_matrix_serial_live, run_matrix_with_jobs, run_one,
};
pub use table::{Table, geomean};
