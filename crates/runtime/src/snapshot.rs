//! Snapshot/warm-start persistence for the serving runtime.
//!
//! A serving run ends with everything the paper says is expensive to
//! learn: which selector wins for each tenant (the policy engine's
//! scores and phase) and the hot working set itself (the code cache).
//! A cold restart throws both away and re-explores from scratch. This
//! module persists that learned state in a versioned binary
//! [`ServeSnapshot`] so the next run can warm-start.
//!
//! Two design rules, both borrowed from `rsel_trace`'s compact stream
//! format:
//!
//! - **Strict validation.** The loader resolves every field against
//!   the tenant specs and policy configuration it will be replayed
//!   under: wrong magic/version, unknown selector tags, candidate
//!   lists that differ from the configuration, policy state the engine
//!   rejects, region blocks that do not exist in the tenant's program,
//!   and trailing bytes all produce a typed [`SnapshotError`] — never
//!   a panic, never a silent partial restore.
//! - **Re-derive, don't trust.** A snapshot stores only region
//!   *shape* — entry address, block path, observed edges. Stubs, size
//!   estimates, and cache offsets are rebuilt against the live
//!   [`Program`](rsel_program::Program) on restore, so a snapshot can
//!   never smuggle stale layout into a run.
//!
//! Strictness has one deliberate relief valve: [`load_warm_start`]
//! parses with the same framing rules but downgrades *per-tenant
//! semantic* failures (a candidate list from another configuration, a
//! rejected policy state, a region that no longer rebuilds) to a cold
//! start for that tenant, warning on stderr and counting the rejection
//! — so one stale tenant in an otherwise good snapshot no longer
//! throws away everyone else's warm state. Structural failures (bad
//! magic, framing, truncation, trailing bytes) still reject the file.
//!
//! Share mode ([`ServeConfig::share`](crate::ServeConfig::share))
//! changes nothing here: snapshots always store each tenant's regions
//! under its own namespace, exactly as unshared serving would, and the
//! RSNP format carries no store state. A warm start under share mode
//! simply re-hashes the restored regions through
//! [`region_key`](crate::region_key) at the first publish barrier and
//! re-deduplicates them into the content-addressed store — so the same
//! snapshot file round-trips between shared and unshared runs.
//!
//! # Format (version 2)
//!
//! Little-endian throughout.
//!
//! ```text
//! magic            b"RSNP"
//! version          u16 (= 2)
//! tenant_count     u16
//! per tenant:
//!   name_len       u8, then name bytes (UTF-8 workload name)
//!   selector       u8 (selector tag, see below)
//!   exploring      u8 (0 = exploit, 1 = explore)
//!   next           u32 (next candidate while exploring, else 0)
//!   current        u32 (index of the running candidate)
//!   candidates     u32, then per candidate:
//!     kind         u8 (selector tag)
//!     has_score    u8 (0/1), then score f64 bits if 1
//!   ema            f64 bits
//!   switches       u64
//!   region_count   u32, then per region:
//!     kind         u8 (0 = trace, 1 = combined)
//!     entry        u64
//!     block_count  u32, then block start addresses u64 each
//!     edge_count   u32, then (from u64, to u64) pairs
//!   blacklist      u32, then per entry (strictly ascending by address):
//!     entry        u64 (entry address)
//!     count        u32 (invalidations suffered)
//! ```
//!
//! Version 2 added the per-tenant blacklist section: the SMC-fault
//! backoff counts survive a restart, so a warm-started run re-demotes
//! a hostile target on its first new invalidation instead of
//! re-learning the whole history.
//!
//! Selector tags are the positions in
//! [`SelectorKind::extended`](rsel_core::SelectorKind::extended)
//! (0 = NET … 7 = ADORE). Storing each candidate's kind next to its
//! score means a snapshot saved under one candidate configuration can
//! never be replayed against another silently
//! ([`SnapshotError::CandidateMismatch`]).

use crate::policy::{PolicyConfig, PolicyEngine, PolicyState, derive_tenant_policy};
use crate::session::TenantSpec;
use rsel_core::select::SelectorKind;
use rsel_core::{Region, RegionKind, SimError};
use rsel_program::Addr;
use std::collections::HashSet;
use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"RSNP";
const VERSION: u16 = 2;

const KIND_TRACE: u8 = 0;
const KIND_COMBINED: u8 = 1;

/// An error loading a serve snapshot.
#[derive(Debug)]
#[non_exhaustive]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input does not start with the snapshot magic.
    BadMagic,
    /// The format version is not supported.
    BadVersion(u16),
    /// A structural tag byte (exploring flag, score presence, region
    /// kind) is invalid.
    BadTag(u8),
    /// A selector tag names no implemented selector.
    UnknownSelector(u8),
    /// The snapshot serves a different tenant population.
    TenantCountMismatch {
        /// Tenants stored in the snapshot.
        snapshot: u16,
        /// Tenant specs it was asked to warm.
        specs: usize,
    },
    /// A tenant's workload name disagrees with its spec.
    WorkloadMismatch {
        /// The tenant id.
        tenant: u16,
        /// Workload name stored in the snapshot.
        snapshot: String,
        /// Workload name of the spec at that position.
        spec: &'static str,
    },
    /// A tenant's stored candidate list disagrees with the policy
    /// configuration the snapshot is being replayed under.
    CandidateMismatch {
        /// The tenant id.
        tenant: u16,
    },
    /// A tenant's policy state is internally inconsistent (indices out
    /// of range, non-finite scores, or a running selector that is not
    /// the current candidate).
    BadPolicyState(u16),
    /// A tenant's region cannot be rebuilt against its program.
    BadRegion {
        /// The tenant id.
        tenant: u16,
        /// Why the rebuild failed.
        source: SimError,
    },
    /// A structural invariant of the format is violated.
    Malformed(&'static str),
    /// The input continues past the end of a well-formed snapshot.
    TrailingData,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o failed: {e}"),
            SnapshotError::BadMagic => write!(f, "not a serve snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::BadTag(t) => write!(f, "invalid snapshot tag {t}"),
            SnapshotError::UnknownSelector(t) => write!(f, "unknown selector tag {t}"),
            SnapshotError::TenantCountMismatch { snapshot, specs } => {
                write!(
                    f,
                    "snapshot holds {snapshot} tenants but {specs} specs given"
                )
            }
            SnapshotError::WorkloadMismatch {
                tenant,
                snapshot,
                spec,
            } => write!(
                f,
                "tenant {tenant} snapshot records workload {snapshot:?} but spec is {spec:?}"
            ),
            SnapshotError::CandidateMismatch { tenant } => {
                write!(
                    f,
                    "tenant {tenant} candidate list differs from the configuration"
                )
            }
            SnapshotError::BadPolicyState(t) => {
                write!(f, "tenant {t} policy state is inconsistent")
            }
            SnapshotError::BadRegion { tenant, source } => {
                write!(f, "tenant {tenant} region cannot be rebuilt: {source}")
            }
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
            SnapshotError::TrailingData => {
                write!(f, "input continues past the end of the snapshot")
            }
        }
    }
}

impl Error for SnapshotError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            SnapshotError::BadRegion { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Stable on-disk tag for a selector kind (its position in
/// [`SelectorKind::extended`]).
fn selector_tag(kind: SelectorKind) -> u8 {
    SelectorKind::extended()
        .iter()
        .position(|&k| k == kind)
        .expect("extended() lists every selector") as u8
}

fn tag_selector(tag: u8) -> Result<SelectorKind, SnapshotError> {
    SelectorKind::extended()
        .get(tag as usize)
        .copied()
        .ok_or(SnapshotError::UnknownSelector(tag))
}

/// One cached region's persisted shape: just enough to rebuild it
/// against the tenant's program ([`RegionSnapshot::rebuild`]). Stubs,
/// sizes, and layout are re-derived on restore, never stored.
#[derive(Clone, Debug, PartialEq)]
pub struct RegionSnapshot {
    /// Trace or combined.
    pub kind: RegionKind,
    /// The region's single entry address (always `blocks[0]`).
    pub entry: Addr,
    /// Copied block start addresses, in region order (the trace path
    /// for trace regions).
    pub blocks: Vec<Addr>,
    /// Internal edges. Empty for trace regions, whose edges are a pure
    /// function of the path; the full observed set for combined
    /// regions.
    pub edges: Vec<(Addr, Addr)>,
}

impl RegionSnapshot {
    /// Captures a live region's shape.
    pub fn capture(region: &Region) -> Self {
        let blocks: Vec<Addr> = region.blocks().iter().map(|b| b.start()).collect();
        let edges = match region.kind() {
            RegionKind::Trace => Vec::new(),
            RegionKind::Combined => blocks
                .iter()
                .flat_map(|&from| region.successors(from).iter().map(move |&to| (from, to)))
                .collect(),
        };
        RegionSnapshot {
            kind: region.kind(),
            entry: region.entry(),
            blocks,
            edges,
        }
    }

    /// Rebuilds the region against `program`, re-deriving edges, exit
    /// stubs, and size estimates from the live block bodies.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] if the snapshot's own invariants
    /// are broken (trace with stored edges, entry not the first
    /// block); the underlying [`SimError`] if a block or edge does not
    /// exist in `program`.
    pub fn rebuild(&self, program: &rsel_program::Program) -> Result<Region, SnapshotError> {
        if self.blocks.first() != Some(&self.entry) {
            return Err(SnapshotError::Malformed(
                "region entry is not its first block",
            ));
        }
        let build = match self.kind {
            RegionKind::Trace => {
                if !self.edges.is_empty() {
                    return Err(SnapshotError::Malformed("trace region stores edges"));
                }
                Region::try_trace(program, &self.blocks)
            }
            RegionKind::Combined => Region::try_combined(program, &self.blocks, &self.edges),
        };
        build.map_err(|source| SnapshotError::BadRegion { tenant: 0, source })
    }
}

/// One tenant's persisted serving state: its identity, the selector
/// it was running, everything its policy engine had learned, and the
/// shape of every region in its code cache.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantSnapshot {
    /// Workload name, validated against the spec on load.
    pub workload: String,
    /// The selector driving the session when the snapshot was taken.
    pub selector: SelectorKind,
    /// The policy engine's exported state.
    pub policy: PolicyState,
    /// Every cached region, in selection order.
    pub regions: Vec<RegionSnapshot>,
    /// The SMC-fault blacklist's persistent counts, `(entry,
    /// invalidations)` in ascending entry order (cooldown deadlines
    /// are run-relative and never persisted).
    pub blacklist: Vec<(Addr, u32)>,
}

/// A whole serving run's persisted state, one [`TenantSnapshot`] per
/// tenant in tenant order. Produced at the end of
/// [`serve_with`](crate::serve::serve_with) (every
/// [`ServeOutcome`](crate::ServeOutcome) carries one) and fed back to
/// warm-start the next run.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeSnapshot {
    /// Per-tenant state, in tenant order.
    pub tenants: Vec<TenantSnapshot>,
}

impl ServeSnapshot {
    /// Total regions stored across all tenants.
    pub fn region_count(&self) -> u64 {
        self.tenants.iter().map(|t| t.regions.len() as u64).sum()
    }

    /// Saves the snapshot to `path` (see [`save_snapshot`]).
    ///
    /// # Errors
    ///
    /// Propagates any I/O error.
    pub fn save_to_path<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        save_snapshot(self, &mut w)?;
        w.flush()
    }

    /// Loads and validates a snapshot from `path` (see
    /// [`load_snapshot`]).
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] on I/O failure or any validation
    /// failure against `specs`/`policy`.
    pub fn load_from_path<P: AsRef<Path>>(
        specs: &[TenantSpec],
        policy: &PolicyConfig,
        path: P,
    ) -> Result<Self, SnapshotError> {
        load_snapshot(specs, policy, BufReader::new(File::open(path)?))
    }

    /// Converts a fully validated snapshot into a [`WarmStart`] with
    /// every tenant restorable and no rejections.
    pub fn into_warm_start(self) -> WarmStart {
        WarmStart {
            tenants: self.tenants.into_iter().map(Some).collect(),
            rejected: 0,
        }
    }
}

/// A per-tenant warm-start plan: each slot either carries a validated
/// [`TenantSnapshot`] to restore or is `None`, meaning that tenant
/// starts cold. Produced by [`load_warm_start`] (which degrades
/// semantically stale tenants instead of rejecting the file) or by
/// [`ServeSnapshot::into_warm_start`] (all restorable).
#[derive(Clone, Debug, PartialEq)]
pub struct WarmStart {
    /// Per-tenant restore state, in tenant order; `None` = cold start.
    pub tenants: Vec<Option<TenantSnapshot>>,
    /// Tenants whose snapshot state was rejected during loading.
    pub rejected: u64,
}

impl WarmStart {
    /// Tenants that will actually restore from snapshot state.
    pub fn restored_tenants(&self) -> usize {
        self.tenants.iter().filter(|t| t.is_some()).count()
    }

    /// Total regions staged for restoration.
    pub fn region_count(&self) -> u64 {
        self.tenants
            .iter()
            .flatten()
            .map(|t| t.regions.len() as u64)
            .sum()
    }

    /// Loads a warm-start plan from `path` (see [`load_warm_start`]).
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] on I/O failure or a *structural*
    /// defect of the file; per-tenant semantic mismatches degrade to
    /// cold slots instead.
    pub fn load_from_path<P: AsRef<Path>>(
        specs: &[TenantSpec],
        policy: &PolicyConfig,
        path: P,
    ) -> Result<Self, SnapshotError> {
        load_warm_start(specs, policy, BufReader::new(File::open(path)?))
    }
}

/// Writes `snapshot` to `writer` in the version-2 binary format.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
///
/// # Panics
///
/// Panics if a workload name exceeds 255 bytes or a tenant holds more
/// than `u32::MAX` regions — neither can come from a real serving run.
pub fn save_snapshot<W: Write>(snapshot: &ServeSnapshot, mut writer: W) -> io::Result<()> {
    writer.write_all(MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;
    writer.write_all(&(snapshot.tenants.len() as u16).to_le_bytes())?;
    for t in &snapshot.tenants {
        write_tenant(t, &mut writer)?;
    }
    Ok(())
}

/// Writes one tenant's section of the version-2 format — the unit the
/// churn layer's per-tenant checkpoints are accounted in.
fn write_tenant<W: Write>(t: &TenantSnapshot, writer: &mut W) -> io::Result<()> {
    assert!(
        t.workload.len() <= u8::MAX as usize,
        "workload name too long"
    );
    writer.write_all(&[t.workload.len() as u8])?;
    writer.write_all(t.workload.as_bytes())?;
    writer.write_all(&[selector_tag(t.selector)])?;
    writer.write_all(&[t.policy.exploring as u8])?;
    writer.write_all(&t.policy.next.to_le_bytes())?;
    writer.write_all(&t.policy.current.to_le_bytes())?;
    writer.write_all(&(t.policy.scores.len() as u32).to_le_bytes())?;
    for (i, score) in t.policy.scores.iter().enumerate() {
        // Candidate kinds ride next to their scores so the loader
        // can refuse a foreign candidate configuration.
        let kind = t
            .policy
            .candidates
            .get(i)
            .copied()
            .expect("one candidate per score slot");
        writer.write_all(&[selector_tag(kind)])?;
        match score {
            Some(s) => {
                writer.write_all(&[1])?;
                writer.write_all(&s.to_bits().to_le_bytes())?;
            }
            None => writer.write_all(&[0])?,
        }
    }
    writer.write_all(&t.policy.ema.to_bits().to_le_bytes())?;
    writer.write_all(&t.policy.switches.to_le_bytes())?;
    writer.write_all(&(t.regions.len() as u32).to_le_bytes())?;
    for r in &t.regions {
        let kind = match r.kind {
            RegionKind::Trace => KIND_TRACE,
            RegionKind::Combined => KIND_COMBINED,
        };
        writer.write_all(&[kind])?;
        writer.write_all(&r.entry.raw().to_le_bytes())?;
        writer.write_all(&(r.blocks.len() as u32).to_le_bytes())?;
        for b in &r.blocks {
            writer.write_all(&b.raw().to_le_bytes())?;
        }
        writer.write_all(&(r.edges.len() as u32).to_le_bytes())?;
        for &(from, to) in &r.edges {
            writer.write_all(&from.raw().to_le_bytes())?;
            writer.write_all(&to.raw().to_le_bytes())?;
        }
    }
    writer.write_all(&(t.blacklist.len() as u32).to_le_bytes())?;
    for &(entry, count) in &t.blacklist {
        writer.write_all(&entry.raw().to_le_bytes())?;
        writer.write_all(&count.to_le_bytes())?;
    }
    Ok(())
}

/// The exact size, in bytes, `snap` occupies in the version-2 format —
/// what a per-tenant churn checkpoint costs. Measured by running the
/// real writer against a counting sink, so it can never drift from the
/// serialization.
pub fn tenant_snapshot_bytes(snap: &TenantSnapshot) -> u64 {
    struct CountingSink(u64);
    impl Write for CountingSink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0 += buf.len() as u64;
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }
    let mut sink = CountingSink(0);
    write_tenant(snap, &mut sink).expect("counting sink cannot fail");
    sink.0
}

fn read_u8<R: Read>(r: &mut R) -> Result<u8, SnapshotError> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, SnapshotError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, SnapshotError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_flag<R: Read>(r: &mut R) -> Result<bool, SnapshotError> {
    match read_u8(r)? {
        0 => Ok(false),
        1 => Ok(true),
        t => Err(SnapshotError::BadTag(t)),
    }
}

/// One tenant's record as parsed off the wire, before any semantic
/// validation. Everything that decides *framing* (counts, flag bytes,
/// region kind tags) has been checked; everything that depends on the
/// specs or the policy configuration has not.
struct RawTenant {
    workload: String,
    selector: u8,
    exploring: bool,
    next: u32,
    current: u32,
    /// Per candidate: its selector tag and optional score.
    candidates: Vec<(u8, Option<f64>)>,
    ema: f64,
    switches: u64,
    regions: Vec<RegionSnapshot>,
    blacklist: Vec<(Addr, u32)>,
}

/// Parses one tenant record. Errors here are structural — the reader
/// cannot be trusted past them, so they always reject the whole file.
fn read_tenant<R: Read>(reader: &mut R) -> Result<RawTenant, SnapshotError> {
    let name_len = read_u8(reader)? as usize;
    let mut name = vec![0u8; name_len];
    reader.read_exact(&mut name)?;
    let workload = String::from_utf8(name)
        .map_err(|_| SnapshotError::Malformed("workload name is not UTF-8"))?;
    let selector = read_u8(reader)?;
    let exploring = read_flag(reader)?;
    let next = read_u32(reader)?;
    let current = read_u32(reader)?;
    let candidate_count = read_u32(reader)? as usize;
    let mut candidates = Vec::with_capacity(candidate_count.min(1 << 10));
    for _ in 0..candidate_count {
        let tag = read_u8(reader)?;
        let score = if read_flag(reader)? {
            Some(f64::from_bits(read_u64(reader)?))
        } else {
            None
        };
        candidates.push((tag, score));
    }
    let ema = f64::from_bits(read_u64(reader)?);
    let switches = read_u64(reader)?;
    let region_count = read_u32(reader)? as usize;
    let mut regions = Vec::with_capacity(region_count.min(1 << 20));
    for _ in 0..region_count {
        let kind = match read_u8(reader)? {
            KIND_TRACE => RegionKind::Trace,
            KIND_COMBINED => RegionKind::Combined,
            tag => return Err(SnapshotError::BadTag(tag)),
        };
        let entry = Addr::new(read_u64(reader)?);
        let block_count = read_u32(reader)? as usize;
        let mut blocks = Vec::with_capacity(block_count.min(1 << 20));
        for _ in 0..block_count {
            blocks.push(Addr::new(read_u64(reader)?));
        }
        let edge_count = read_u32(reader)? as usize;
        let mut edges = Vec::with_capacity(edge_count.min(1 << 20));
        for _ in 0..edge_count {
            let from = Addr::new(read_u64(reader)?);
            let to = Addr::new(read_u64(reader)?);
            edges.push((from, to));
        }
        regions.push(RegionSnapshot {
            kind,
            entry,
            blocks,
            edges,
        });
    }
    let blacklist_count = read_u32(reader)? as usize;
    let mut blacklist = Vec::with_capacity(blacklist_count.min(1 << 20));
    for _ in 0..blacklist_count {
        let entry = Addr::new(read_u64(reader)?);
        let count = read_u32(reader)?;
        blacklist.push((entry, count));
    }
    Ok(RawTenant {
        workload,
        selector,
        exploring,
        next,
        current,
        candidates,
        ema,
        switches,
        regions,
        blacklist,
    })
}

/// Validates a parsed tenant record against its spec and the policy
/// configuration. Errors here are semantic: the file is well-formed
/// but this tenant's state does not apply to this run — the strict
/// loader rejects the file, the lenient loader cold-starts the tenant.
fn validate_tenant(
    tenant: u16,
    raw: RawTenant,
    spec: &TenantSpec,
    policy: &PolicyConfig,
) -> Result<TenantSnapshot, SnapshotError> {
    if raw.workload != spec.name() {
        return Err(SnapshotError::WorkloadMismatch {
            tenant,
            snapshot: raw.workload,
            spec: spec.name(),
        });
    }
    // Adaptive mode derives each tenant's candidate list from its
    // stream; the derivation is a pure function of (config, spec), so
    // the loader reproduces exactly the list the tenant served under
    // and validates the persisted state against that.
    let (policy, _) = derive_tenant_policy(policy, spec);
    let policy = &policy;
    let selector = tag_selector(raw.selector)?;
    if raw.candidates.len() != policy.candidates.len() {
        return Err(SnapshotError::CandidateMismatch { tenant });
    }
    let mut scores = Vec::with_capacity(raw.candidates.len());
    for (i, &(tag, score)) in raw.candidates.iter().enumerate() {
        if tag_selector(tag)? != policy.candidates[i] {
            return Err(SnapshotError::CandidateMismatch { tenant });
        }
        scores.push(score);
    }
    let state = PolicyState {
        exploring: raw.exploring,
        next: raw.next,
        current: raw.current,
        scores,
        ema: raw.ema,
        switches: raw.switches,
        candidates: policy.candidates.clone(),
    };
    // The engine is the authority on state consistency; anything it
    // rejects, the loader rejects.
    if PolicyEngine::restore(policy.clone(), &state).is_none() {
        return Err(SnapshotError::BadPolicyState(tenant));
    }
    if policy.candidates[raw.current as usize] != selector {
        return Err(SnapshotError::BadPolicyState(tenant));
    }
    let mut entries = HashSet::with_capacity(raw.regions.len());
    for snap in &raw.regions {
        if !entries.insert(snap.entry) {
            return Err(SnapshotError::BadRegion {
                tenant,
                source: SimError::DuplicateRegionEntry(snap.entry),
            });
        }
        // Prove the region rebuilds against the live program now, so a
        // warm start can only fail before any state is built.
        snap.rebuild(spec.program()).map_err(|e| match e {
            SnapshotError::BadRegion { source, .. } => SnapshotError::BadRegion { tenant, source },
            other => other,
        })?;
    }
    if !raw.blacklist.windows(2).all(|w| w[0].0 < w[1].0) {
        return Err(SnapshotError::Malformed(
            "blacklist entries are not strictly ascending",
        ));
    }
    Ok(TenantSnapshot {
        workload: spec.name().to_string(),
        selector,
        policy: state,
        regions: raw.regions,
        blacklist: raw.blacklist,
    })
}

/// Reads the fixed header, leaving the reader at the first tenant
/// record.
fn read_header<R: Read>(reader: &mut R, specs: &[TenantSpec]) -> Result<(), SnapshotError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let mut u16b = [0u8; 2];
    reader.read_exact(&mut u16b)?;
    let version = u16::from_le_bytes(u16b);
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    reader.read_exact(&mut u16b)?;
    let tenant_count = u16::from_le_bytes(u16b);
    if tenant_count as usize != specs.len() {
        return Err(SnapshotError::TenantCountMismatch {
            snapshot: tenant_count,
            specs: specs.len(),
        });
    }
    Ok(())
}

/// A well-formed snapshot consumes the input exactly.
fn expect_eof<R: Read>(reader: &mut R) -> Result<(), SnapshotError> {
    let mut probe = [0u8; 1];
    match reader.read(&mut probe) {
        Ok(0) => Ok(()),
        Ok(_) => Err(SnapshotError::TrailingData),
        Err(e) => Err(SnapshotError::Io(e)),
    }
}

/// Reads and fully validates a snapshot from `reader` against the
/// tenant `specs` and `policy` configuration it will warm.
///
/// Validation is strict: every region is rebuilt against its tenant's
/// program (and discarded — [`TenantSession::restore`]
/// (crate::TenantSession::restore) rebuilds again into a live
/// simulator), every policy state must be one
/// [`PolicyEngine::restore`] accepts, and the input must end exactly
/// where the format says it does. For the variant that degrades stale
/// tenants instead of rejecting the file, see [`load_warm_start`].
///
/// # Errors
///
/// Returns a [`SnapshotError`] describing the first violation found.
pub fn load_snapshot<R: Read>(
    specs: &[TenantSpec],
    policy: &PolicyConfig,
    mut reader: R,
) -> Result<ServeSnapshot, SnapshotError> {
    read_header(&mut reader, specs)?;
    let mut tenants = Vec::with_capacity(specs.len());
    for (t, spec) in specs.iter().enumerate() {
        let raw = read_tenant(&mut reader)?;
        tenants.push(validate_tenant(t as u16, raw, spec, policy)?);
    }
    expect_eof(&mut reader)?;
    Ok(ServeSnapshot { tenants })
}

/// Reads a snapshot from `reader` with graceful per-tenant
/// degradation: framing is as strict as [`load_snapshot`], but a
/// tenant whose state is *semantically* stale — recorded under a
/// different candidate configuration, a policy state the engine
/// rejects, a workload or region set that no longer matches the spec —
/// is downgraded to a cold start (its slot in the returned
/// [`WarmStart`] is `None`) with a warning on stderr, instead of
/// rejecting every other tenant's warm state along with it.
///
/// # Errors
///
/// Returns a [`SnapshotError`] only for structural defects: I/O
/// failure, bad magic/version, a tenant count that does not match
/// `specs`, broken framing, or trailing bytes.
pub fn load_warm_start<R: Read>(
    specs: &[TenantSpec],
    policy: &PolicyConfig,
    mut reader: R,
) -> Result<WarmStart, SnapshotError> {
    read_header(&mut reader, specs)?;
    let mut tenants = Vec::with_capacity(specs.len());
    let mut rejected = 0u64;
    for (t, spec) in specs.iter().enumerate() {
        let raw = read_tenant(&mut reader)?;
        match validate_tenant(t as u16, raw, spec, policy) {
            Ok(snap) => tenants.push(Some(snap)),
            Err(e) => {
                eprintln!("warning: tenant {t} snapshot rejected, cold-starting it: {e}");
                tenants.push(None);
                rejected += 1;
            }
        }
    }
    expect_eof(&mut reader)?;
    Ok(WarmStart { tenants, rejected })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::{ServeConfig, serve};
    use rsel_workloads::{Scale, suite};

    fn specs() -> Vec<TenantSpec> {
        suite()
            .iter()
            .take(2)
            .map(|w| TenantSpec::record(w, 7, Scale::Test))
            .collect()
    }

    fn served_snapshot(specs: &[TenantSpec]) -> ServeSnapshot {
        serve(specs, &ServeConfig::default(), 1).unwrap().snapshot
    }

    fn to_bytes(snap: &ServeSnapshot) -> Vec<u8> {
        let mut buf = Vec::new();
        save_snapshot(snap, &mut buf).unwrap();
        buf
    }

    #[test]
    fn round_trips_bytewise_and_structurally() {
        let specs = specs();
        let snap = served_snapshot(&specs);
        assert!(snap.region_count() > 0, "the run cached something");
        let buf = to_bytes(&snap);
        let loaded = load_snapshot(&specs, &PolicyConfig::default(), buf.as_slice()).unwrap();
        assert_eq!(loaded, snap);
        // Saving the loaded snapshot reproduces the bytes exactly.
        assert_eq!(to_bytes(&loaded), buf);
    }

    #[test]
    fn bad_magic_version_and_trailing_data_rejected() {
        let specs = specs();
        let snap = served_snapshot(&specs);
        let policy = PolicyConfig::default();
        let err = load_snapshot(&specs, &policy, b"NOPE".as_slice()).unwrap_err();
        assert!(matches!(err, SnapshotError::BadMagic), "{err}");
        let mut buf = to_bytes(&snap);
        buf[4] = 0xff;
        let err = load_snapshot(&specs, &policy, buf.as_slice()).unwrap_err();
        assert!(matches!(err, SnapshotError::BadVersion(_)), "{err}");
        let mut buf = to_bytes(&snap);
        buf.push(0);
        let err = load_snapshot(&specs, &policy, buf.as_slice()).unwrap_err();
        assert!(matches!(err, SnapshotError::TrailingData), "{err}");
        let mut buf = to_bytes(&snap);
        buf.truncate(buf.len() - 3);
        let err = load_snapshot(&specs, &policy, buf.as_slice()).unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)), "{err}");
    }

    #[test]
    fn foreign_population_rejected() {
        let specs = specs();
        let snap = served_snapshot(&specs);
        let policy = PolicyConfig::default();
        let buf = to_bytes(&snap);
        // Fewer specs than the snapshot serves.
        let err = load_snapshot(&specs[..1], &policy, buf.as_slice()).unwrap_err();
        assert!(
            matches!(err, SnapshotError::TenantCountMismatch { .. }),
            "{err}"
        );
        // Same count, different workloads.
        let reordered: Vec<TenantSpec> = suite()
            .iter()
            .skip(2)
            .take(2)
            .map(|w| TenantSpec::record(w, 7, Scale::Test))
            .collect();
        let err = load_snapshot(&reordered, &policy, buf.as_slice()).unwrap_err();
        assert!(
            matches!(err, SnapshotError::WorkloadMismatch { .. }),
            "{err}"
        );
        // Same workloads, different candidate configuration.
        let extended = PolicyConfig {
            candidates: SelectorKind::extended().to_vec(),
            ..PolicyConfig::default()
        };
        let err = load_snapshot(&specs, &extended, buf.as_slice()).unwrap_err();
        assert!(
            matches!(err, SnapshotError::CandidateMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn corrupt_selector_and_policy_rejected() {
        let specs = specs();
        let snap = served_snapshot(&specs);
        let policy = PolicyConfig::default();
        // The selector tag sits right after the tenant's name.
        let name_len = snap.tenants[0].workload.len();
        let mut buf = to_bytes(&snap);
        let tag_at = 4 + 2 + 2 + 1 + name_len;
        buf[tag_at] = 0xee;
        let err = load_snapshot(&specs, &policy, buf.as_slice()).unwrap_err();
        assert!(matches!(err, SnapshotError::UnknownSelector(0xee)), "{err}");
        // A selector that is a real candidate but not the policy's
        // current one is inconsistent state, not a corruption.
        let mut bad = snap.clone();
        let current = bad.tenants[0].policy.current as usize;
        bad.tenants[0].selector = PolicyConfig::default().candidates[(current + 1) % 4];
        let err = load_snapshot(&specs, &policy, to_bytes(&bad).as_slice()).unwrap_err();
        assert!(matches!(err, SnapshotError::BadPolicyState(0)), "{err}");
        let mut bad = snap.clone();
        bad.tenants[0].policy.ema = f64::NAN;
        let err = load_snapshot(&specs, &policy, to_bytes(&bad).as_slice()).unwrap_err();
        assert!(matches!(err, SnapshotError::BadPolicyState(0)), "{err}");
    }

    #[test]
    fn regions_are_validated_against_the_program() {
        let specs = specs();
        let snap = served_snapshot(&specs);
        let policy = PolicyConfig::default();
        // A region whose blocks exist nowhere in the program.
        let mut bad = snap.clone();
        bad.tenants[0].regions.push(RegionSnapshot {
            kind: RegionKind::Trace,
            entry: Addr::new(0xdead_beef),
            blocks: vec![Addr::new(0xdead_beef)],
            edges: Vec::new(),
        });
        let err = load_snapshot(&specs, &policy, to_bytes(&bad).as_slice()).unwrap_err();
        assert!(
            matches!(err, SnapshotError::BadRegion { tenant: 0, .. }),
            "{err}"
        );
        // Two regions with the same entry cannot coexist in a cache.
        let mut bad = snap.clone();
        let dup = bad.tenants[0].regions[0].clone();
        bad.tenants[0].regions.push(dup);
        let err = load_snapshot(&specs, &policy, to_bytes(&bad).as_slice()).unwrap_err();
        assert!(
            matches!(
                err,
                SnapshotError::BadRegion {
                    tenant: 0,
                    source: SimError::DuplicateRegionEntry(_),
                }
            ),
            "{err}"
        );
        // A trace region must not store edges.
        let mut bad = snap;
        if let Some(i) = bad.tenants[0]
            .regions
            .iter()
            .position(|r| r.kind == RegionKind::Trace)
        {
            let entry = bad.tenants[0].regions[i].entry;
            bad.tenants[0].regions[i].edges.push((entry, entry));
            let err = load_snapshot(&specs, &policy, to_bytes(&bad).as_slice()).unwrap_err();
            assert!(matches!(err, SnapshotError::Malformed(_)), "{err}");
        }
    }
}
