//! The sharded shared-capacity map over every tenant's cached regions.
//!
//! Tenants keep private region namespaces (a region copied from one
//! tenant's program is never executable by another), but they compete
//! for shared cache capacity. The map tracks, per shard, how many
//! estimated bytes each tenant's live regions occupy. A region belongs
//! to the shard addressed by the fxhash of `(tenant, entry address)` —
//! or, in share mode, by its content key alone (see
//! [`shard_of_key`](crate::store::shard_of_key)) — so one tenant's
//! regions spread across shards and one shard mixes regions from many
//! tenants: capacity pressure is a property of the *shared* cache, not
//! of any single tenant.
//!
//! Occupancy is held sparsely, keyed by tenant id: a slot only stores
//! the tenants actually resident in it, so a 10k-tenant serve does not
//! pay `shards × tenants` dense entries (the old representation) for a
//! population where most tenants hold bytes in a few shards at a time.
//!
//! Workers update shards concurrently during a round (per-shard
//! locking; updates are commutative, so worker scheduling cannot leak
//! into results). All *decisions* — which shards are over budget, who
//! sheds — happen at the round barrier in deterministic order.

use rsel_program::Addr;
use rsel_program::fxhash::FxHasher;
use std::collections::BTreeMap;
use std::hash::Hasher;
use std::sync::{Mutex, PoisonError};

/// The shard an entry of `tenant`'s cache maps to, out of
/// `shard_count`.
pub fn shard_of(tenant: u16, entry: Addr, shard_count: usize) -> usize {
    let mut h = FxHasher::default();
    h.write_u16(tenant);
    h.write_u64(entry.raw());
    (h.finish() % shard_count as u64) as usize
}

/// One shard's occupancy: estimated bytes per resident tenant (sparse,
/// tenant-id-keyed), plus which tenants touched it this round.
#[derive(Debug, Default)]
struct Slot {
    /// Estimated bytes per tenant; zero-byte tenants are absent.
    bytes: BTreeMap<u16, u64>,
    /// Decayed recent cache heat per tenant — the utility-aware
    /// eviction planner's denominator. Kept in lockstep with `bytes`
    /// (a tenant dropping to zero bytes leaves both maps).
    recent: BTreeMap<u16, u64>,
    /// Tenants that published an update this round. Distinct count
    /// ≥ 2 means the shard's lock was shared by concurrent sessions
    /// this round — the contention metric. Small per round, so a
    /// linear-scanned vec beats a set.
    touched: Vec<u16>,
}

impl Slot {
    fn total(&self) -> u64 {
        self.bytes.values().sum()
    }

    fn set(&mut self, tenant: u16, bytes: u64, recent: u64) {
        if bytes == 0 {
            self.bytes.remove(&tenant);
            self.recent.remove(&tenant);
        } else {
            self.bytes.insert(tenant, bytes);
            self.recent.insert(tenant, recent);
        }
    }
}

/// Lifetime statistics for one shard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardLifetime {
    /// Peak occupancy observed at any round barrier.
    pub peak_bytes: u64,
    /// Rounds in which two or more tenants updated this shard.
    pub contended_rounds: u64,
    /// Pressure waves: barriers at which the shard exceeded capacity
    /// (at most one per round, however many evictions resolving the
    /// wave took).
    pub pressure_waves: u64,
    /// Shed actions: individual eviction calls applied while resolving
    /// pressure waves (one wave may shed several times before the
    /// shard fits).
    pub shed_actions: u64,
    /// Regions evicted from this shard by pressure waves.
    pub evicted_regions: u64,
}

/// The sharded shared-capacity map.
///
/// Shared (`&self`) methods are safe to call from concurrent workers;
/// exclusive (`&mut self`) methods are barrier-only and lock-free.
///
/// Shard locks are poison-tolerant: every write to a slot is a single
/// assignment, so the data is consistent at whatever point a panicking
/// worker left it, and the scheduler quarantines the panicking tenant
/// at the next barrier anyway. One tenant's defect must not wedge the
/// map for everyone else.
#[derive(Debug)]
pub struct SharedCacheMap {
    slots: Vec<Mutex<Slot>>,
    capacity: u64,
    stats: Vec<ShardLifetime>,
}

impl SharedCacheMap {
    /// Creates a map of `shard_count` shards, each budgeted `capacity`
    /// estimated bytes. Occupancy is sparse, so the map's size scales
    /// with resident tenants, not the population.
    pub fn new(shard_count: usize, capacity: u64) -> Self {
        assert!(shard_count > 0, "need at least one shard");
        SharedCacheMap {
            slots: (0..shard_count).map(|_| Mutex::default()).collect(),
            capacity,
            stats: vec![ShardLifetime::default(); shard_count],
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.slots.len()
    }

    /// Per-shard byte budget.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Publishes one tenant's new occupancy for the changed shards
    /// (worker-side, per-shard locking). `changes` triples a shard
    /// index with the tenant's new byte total and recent-heat total in
    /// that shard.
    pub fn publish(&self, tenant: u16, changes: &[(usize, u64, u64)]) {
        for &(shard, bytes, recent) in changes {
            let mut slot = self.slots[shard]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            slot.set(tenant, bytes, recent);
            if !slot.touched.contains(&tenant) {
                slot.touched.push(tenant);
            }
        }
    }

    /// Barrier: folds this round's touches into the contention and
    /// peak statistics and clears them for the next round.
    pub fn end_round(&mut self) {
        for (slot, stat) in self.slots.iter_mut().zip(self.stats.iter_mut()) {
            let slot = slot.get_mut().unwrap_or_else(PoisonError::into_inner);
            if slot.touched.len() >= 2 {
                stat.contended_rounds += 1;
            }
            slot.touched.clear();
            stat.peak_bytes = stat.peak_bytes.max(slot.total());
        }
    }

    /// Barrier: shard indices currently over the byte budget, in shard
    /// order.
    pub fn overflowing(&mut self) -> Vec<usize> {
        let capacity = self.capacity;
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| {
                (s.get_mut().unwrap_or_else(PoisonError::into_inner).total() > capacity)
                    .then_some(i)
            })
            .collect()
    }

    /// Barrier: the resident tenants of `shard` and their bytes, in
    /// ascending tenant order. Zero-byte tenants are absent.
    pub fn shard_bytes(&mut self, shard: usize) -> Vec<(u16, u64)> {
        self.slots[shard]
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
            .bytes
            .iter()
            .map(|(&t, &b)| (t, b))
            .collect()
    }

    /// Barrier: overwrites one tenant's byte total in `shard` (zero
    /// removes the tenant from the slot). The tenant's recent-heat
    /// figure is left as published (dropped with the slot at zero).
    pub fn set_bytes(&mut self, shard: usize, tenant: u16, bytes: u64) {
        let slot = self.slots[shard]
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner);
        let recent = slot.recent.get(&tenant).copied().unwrap_or(0);
        slot.set(tenant, bytes, recent);
    }

    /// Barrier: the resident tenants of `shard` with bytes *and*
    /// recent heat, in ascending tenant order — the utility planner's
    /// view. Zero-byte tenants are absent; a tenant that never
    /// published heat reads as zero.
    pub fn shard_load(&mut self, shard: usize) -> Vec<(u16, u64, u64)> {
        let slot = self.slots[shard]
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner);
        slot.bytes
            .iter()
            .map(|(&t, &b)| (t, b, slot.recent.get(&t).copied().unwrap_or(0)))
            .collect()
    }

    /// Barrier: overwrites one tenant's byte and recent-heat totals in
    /// `shard` (zero bytes removes the tenant from the slot).
    pub fn set_load(&mut self, shard: usize, tenant: u16, bytes: u64, recent: u64) {
        self.slots[shard]
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
            .set(tenant, bytes, recent);
    }

    /// Barrier: records that `shard` was over capacity at this round's
    /// barrier — one pressure wave, regardless of how many shed
    /// actions resolving it takes.
    pub fn note_wave(&mut self, shard: usize) {
        self.stats[shard].pressure_waves += 1;
    }

    /// Barrier: records one shed action against `shard` that evicted
    /// `evicted` regions.
    pub fn note_shed(&mut self, shard: usize, evicted: u64) {
        self.stats[shard].shed_actions += 1;
        self.stats[shard].evicted_regions += evicted;
    }

    /// Barrier: drops a departing tenant's occupancy from every shard
    /// (its regions are reclaimed when the session completes),
    /// returning the bytes reclaimed.
    pub fn clear_tenant(&mut self, tenant: u16) -> u64 {
        let mut reclaimed = 0;
        for slot in &mut self.slots {
            let slot = slot.get_mut().unwrap_or_else(PoisonError::into_inner);
            reclaimed += slot.bytes.remove(&tenant).unwrap_or(0);
            slot.recent.remove(&tenant);
        }
        reclaimed
    }

    /// Current total occupancy across all shards.
    pub fn total_bytes(&mut self) -> u64 {
        self.slots
            .iter_mut()
            .map(|s| s.get_mut().unwrap_or_else(PoisonError::into_inner).total())
            .sum()
    }

    /// Final per-shard statistics, paired with each shard's closing
    /// occupancy.
    pub fn into_stats(mut self) -> Vec<(ShardLifetime, u64)> {
        let finals: Vec<u64> = self
            .slots
            .iter_mut()
            .map(|s| s.get_mut().unwrap_or_else(PoisonError::into_inner).total())
            .collect();
        self.stats.into_iter().zip(finals).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let a = Addr::new(0x4000);
        let s = shard_of(3, a, 16);
        assert_eq!(s, shard_of(3, a, 16), "same inputs, same shard");
        assert!(s < 16);
        // Tenant id separates namespaces: the same address usually maps
        // elsewhere for another tenant.
        let spread: std::collections::HashSet<usize> =
            (0..64u16).map(|t| shard_of(t, a, 16)).collect();
        assert!(spread.len() > 4, "tenants spread across shards");
    }

    #[test]
    fn publish_and_pressure_accounting() {
        let mut map = SharedCacheMap::new(4, 100);
        map.publish(0, &[(1, 60, 600)]);
        map.publish(1, &[(1, 70, 70)]);
        map.publish(2, &[(2, 10, 0)]);
        map.end_round();
        assert_eq!(map.overflowing(), vec![1]);
        assert_eq!(map.shard_bytes(1), vec![(0, 60), (1, 70)]);
        assert_eq!(map.shard_load(1), vec![(0, 60, 600), (1, 70, 70)]);
        // Shard 1 saw two tenants this round; shard 2 only one.
        let stats = {
            map.set_bytes(1, 1, 0);
            assert_eq!(map.shard_bytes(1), vec![(0, 60)], "zero bytes drop out");
            assert_eq!(map.overflowing(), Vec::<usize>::new());
            // One wave over the shard, resolved by two shed actions.
            map.note_wave(1);
            map.note_shed(1, 3);
            map.note_shed(1, 2);
            map.clear_tenant(0);
            map.into_stats()
        };
        assert_eq!(stats[1].0.contended_rounds, 1);
        assert_eq!(stats[2].0.contended_rounds, 0);
        assert_eq!(stats[1].0.pressure_waves, 1);
        assert_eq!(stats[1].0.shed_actions, 2);
        assert_eq!(stats[1].0.evicted_regions, 5);
        assert_eq!(stats[1].0.peak_bytes, 130);
        assert_eq!(stats[1].1, 0, "shard 1 emptied");
        assert_eq!(stats[2].1, 10, "tenant 2 still resident");
    }

    #[test]
    fn clear_tenant_reclaims_everything() {
        let mut map = SharedCacheMap::new(2, 1000);
        map.publish(0, &[(0, 30, 3), (1, 40, 4)]);
        assert_eq!(map.total_bytes(), 70);
        assert_eq!(map.clear_tenant(0), 70);
        assert_eq!(map.total_bytes(), 0);
        assert_eq!(map.shard_load(0), vec![], "heat leaves with the tenant");
    }

    #[test]
    fn occupancy_is_sparse_in_the_tenant_population() {
        // Tenant ids far beyond any dense-vec sizing work immediately,
        // and only resident tenants occupy slot memory.
        let mut map = SharedCacheMap::new(2, 1000);
        map.publish(u16::MAX, &[(0, 5, 0)]);
        map.publish(9_999, &[(0, 7, 0)]);
        assert_eq!(map.shard_bytes(0), vec![(9_999, 7), (u16::MAX, 5)]);
        assert_eq!(map.clear_tenant(u16::MAX), 5);
        assert_eq!(map.shard_bytes(0), vec![(9_999, 7)]);
    }

    #[test]
    fn set_load_and_set_bytes_keep_heat_in_lockstep() {
        let mut map = SharedCacheMap::new(1, 1000);
        map.set_load(0, 4, 100, 50);
        assert_eq!(map.shard_load(0), vec![(4, 100, 50)]);
        // set_bytes preserves the published heat figure...
        map.set_bytes(0, 4, 80);
        assert_eq!(map.shard_load(0), vec![(4, 80, 50)]);
        // ...and zero bytes drops both maps.
        map.set_load(0, 4, 0, 999);
        assert_eq!(map.shard_load(0), vec![]);
        assert_eq!(map.shard_bytes(0), vec![]);
    }
}
