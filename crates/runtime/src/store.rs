//! The content-addressed shared region store: cross-tenant dedup.
//!
//! Tenants replaying the same workload+seed build byte-identical
//! regions, yet the capacity map alone charges every tenant for its
//! own copy — homogeneous traffic scales cache bytes linearly with
//! tenant count and triggers avoidable pressure waves. The store
//! collapses that: each cached region's canonical content (kind,
//! entry, per-block starts/lengths/terminators, the successor edges)
//! is fxhashed into a [`region_key`], and identical keys share one
//! refcounted [`StoreEntry`] per shard. A tenant inserting an
//! already-present region takes a *ref* instead of new bytes, so the
//! shard charges unique bytes once while per-tenant logical bytes
//! remain reported through the [`SharedCacheMap`](crate::SharedCacheMap).
//!
//! In share mode a region belongs to the shard addressed by its
//! *content key* (tenant-independent — see [`shard_of_key`]), so
//! identical regions from different tenants always colocate and the
//! per-shard unique-byte budget is meaningful. Pressure eviction
//! becomes refcount-aware: an overflowing shard plans a victim set of
//! *entries* (largest unique bytes first), and evicting a shared entry
//! deterministically drops every referencing tenant's region at the
//! barrier.
//!
//! # Determinism
//!
//! Worker-side [`acquire`](RegionStore::acquire) /
//! [`release`](RegionStore::release) calls are commutative refcount
//! updates under per-shard locks: different tenants touch different
//! holder slots, and the holder list is kept sorted, so the final
//! state of a round cannot depend on worker scheduling. Every
//! *metric* (unique bytes, logical bytes, shared refs) is derived at
//! the round barrier from that final state — never from racy
//! insert-time "dedup hit" observations — which is what keeps a
//! shared serve byte-identical for every worker count.
//!
//! Like the capacity map, shard locks are poison-tolerant: each
//! mutation leaves the entry consistent, and a panicking tenant is
//! quarantined at the next barrier (releasing its refs via
//! [`release_tenant`](RegionStore::release_tenant), which needs no
//! access to the lost session).

use crate::shard::SharedCacheMap;
use rsel_core::Region;
use rsel_program::InstKind;
use rsel_program::fxhash::FxHasher;
use std::collections::BTreeMap;
use std::hash::Hasher;
use std::sync::{Mutex, PoisonError};

/// The content key of a region: an fxhash over the workload name and
/// the region's canonical shape — kind, entry, every block's start,
/// instruction count, byte size, and terminator, and every block's
/// successor list. Two regions with equal keys are byte-identical for
/// capacity purposes (same blocks, same edges, same stubs, same size
/// estimate).
///
/// The workload name is part of the content: regions from different
/// programs live in different address spaces, so equal shapes across
/// workloads must not alias.
pub fn region_key(workload: &str, region: &Region) -> u64 {
    let mut h = FxHasher::default();
    h.write(workload.as_bytes());
    h.write_u8(region.kind() as u8);
    h.write_u64(region.entry().raw());
    h.write_usize(region.blocks().len());
    for b in region.blocks() {
        h.write_u64(b.start().raw());
        h.write_u32(b.inst_count());
        h.write_u64(b.byte_size());
        match b.terminator() {
            InstKind::Straight => h.write_u8(0),
            InstKind::CondBranch { target } => {
                h.write_u8(1);
                h.write_u64(target.raw());
            }
            InstKind::Jump { target } => {
                h.write_u8(2);
                h.write_u64(target.raw());
            }
            InstKind::IndirectJump => h.write_u8(3),
            InstKind::Call { target } => {
                h.write_u8(4);
                h.write_u64(target.raw());
            }
            InstKind::IndirectCall => h.write_u8(5),
            InstKind::Ret => h.write_u8(6),
        }
        let succ = region.successors(b.start());
        h.write_usize(succ.len());
        for s in succ {
            h.write_u64(s.raw());
        }
    }
    h.finish()
}

/// The shard a content key maps to, out of `shard_count` — the share
/// mode counterpart of [`shard_of`](crate::shard_of). Deliberately
/// tenant-independent: identical content must colocate or nothing
/// dedups.
pub fn shard_of_key(key: u64, shard_count: usize) -> usize {
    let mut h = FxHasher::default();
    h.write_u64(key);
    (h.finish() % shard_count as u64) as usize
}

/// One deduplicated region: its size estimate and the sorted list of
/// tenants currently holding a ref.
///
/// Holding the tenant ids (not just a count) is what lets quarantine
/// and `clear_tenant` release refs when the session itself is lost,
/// and lets the barrier drop every referencing tenant's region when
/// the entry is evicted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreEntry {
    /// Estimated bytes of the shared content (charged once).
    pub bytes: u64,
    /// Tenants holding a ref, ascending.
    pub holders: Vec<u16>,
    /// Each holder's last-published recent heat (decayed cached
    /// instructions from its copy of the region), in lockstep with
    /// `holders`. The utility-aware wave planner sums these so an
    /// entry hot in fifty tenants outranks a cold private one.
    pub recent: Vec<u64>,
}

impl StoreEntry {
    /// Total recent heat across every holder — the shared entry's
    /// utility denominator.
    pub fn total_recent(&self) -> u64 {
        self.recent.iter().sum()
    }
}

/// One shard's entries plus its incrementally-maintained unique-byte
/// total.
#[derive(Debug, Default)]
struct StoreShard {
    entries: BTreeMap<u64, StoreEntry>,
    unique: u64,
}

impl StoreShard {
    fn logical(&self) -> u64 {
        self.entries
            .values()
            .map(|e| e.bytes * e.holders.len() as u64)
            .sum()
    }

    /// Refs beyond the first holder of each entry — the copies dedup
    /// avoided storing.
    fn shared_refs(&self) -> u64 {
        self.entries
            .values()
            .map(|e| (e.holders.len() as u64).saturating_sub(1))
            .sum()
    }
}

/// Peak statistics for one store shard, folded at each round barrier.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreShardStats {
    /// Peak unique (deduplicated) bytes observed at any barrier.
    pub peak_unique_bytes: u64,
    /// Peak logical (sum over holders) bytes observed at any barrier.
    pub peak_logical_bytes: u64,
    /// Peak count of shared refs (refs beyond each entry's first
    /// holder) observed at any barrier.
    pub peak_shared_refs: u64,
}

/// Run-wide peak totals, folded at each round barrier. `unique` and
/// `logical` are sampled at the same barrier, so their ratio is a real
/// observed dedup factor, not a mix of different moments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreTotals {
    /// Peak total unique bytes across all shards.
    pub unique_bytes: u64,
    /// Total logical bytes at the barrier where the peak was observed.
    pub logical_bytes: u64,
    /// Peak total shared refs across all shards.
    pub shared_refs: u64,
}

impl StoreTotals {
    /// Logical over unique bytes at the peak-occupancy barrier: how
    /// many copies of the average byte the store avoided holding. 1.0
    /// when nothing was ever shared, 0.0 when the store never held
    /// anything (share mode off or an empty run).
    pub fn dedup_ratio(&self) -> f64 {
        if self.unique_bytes == 0 {
            0.0
        } else {
            self.logical_bytes as f64 / self.unique_bytes as f64
        }
    }
}

/// The per-shard, refcounted, content-addressed region store.
///
/// Shared (`&self`) methods are safe from concurrent workers;
/// exclusive (`&mut self`) methods are barrier-only and lock-free.
#[derive(Debug)]
pub struct RegionStore {
    shards: Vec<Mutex<StoreShard>>,
    stats: Vec<StoreShardStats>,
    totals: StoreTotals,
}

impl RegionStore {
    /// Creates an empty store of `shard_count` shards.
    pub fn new(shard_count: usize) -> Self {
        assert!(shard_count > 0, "need at least one shard");
        RegionStore {
            shards: (0..shard_count).map(|_| Mutex::default()).collect(),
            stats: vec![StoreShardStats::default(); shard_count],
            totals: StoreTotals::default(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Worker side: `tenant` takes a ref on content `key` in `shard`.
    /// The first holder charges `bytes` of unique capacity; later
    /// holders are pure refs.
    pub fn acquire(&self, shard: usize, key: u64, bytes: u64, tenant: u16) {
        let mut s = self.shards[shard]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let entry = s.entries.entry(key).or_insert_with(|| StoreEntry {
            bytes: 0,
            holders: Vec::new(),
            recent: Vec::new(),
        });
        if entry.holders.is_empty() {
            entry.bytes = bytes;
        } else {
            debug_assert_eq!(
                entry.bytes, bytes,
                "content key {key:#x} collided across different sizes"
            );
        }
        match entry.holders.binary_search(&tenant) {
            // A tenant's cache holds at most one region per entry
            // address, and the entry address is part of the content —
            // a double acquire means the session's bookkeeping drifted.
            Ok(_) => debug_assert!(false, "tenant {tenant} double-acquired key {key:#x}"),
            Err(i) => {
                entry.holders.insert(i, tenant);
                entry.recent.insert(i, 0);
            }
        }
        if entry.holders.len() == 1 {
            s.unique += entry.bytes;
        }
    }

    /// Worker side: `tenant` drops its ref on `key` in `shard`; the
    /// last ref out removes the entry and its unique bytes. Releasing
    /// a key the store no longer holds is a no-op (the barrier may
    /// already have evicted the entry out from under the session).
    pub fn release(&self, shard: usize, key: u64, tenant: u16) {
        let mut s = self.shards[shard]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let Some(entry) = s.entries.get_mut(&key) else {
            return;
        };
        if let Ok(i) = entry.holders.binary_search(&tenant) {
            entry.holders.remove(i);
            entry.recent.remove(i);
            if entry.holders.is_empty() {
                let bytes = entry.bytes;
                s.entries.remove(&key);
                s.unique -= bytes;
            }
        }
    }

    /// Worker side: `tenant` publishes the recent heat of its copy of
    /// content `key` in `shard`. Each tenant writes only its own slot
    /// of the entry's heat vector, so concurrent publishes commute;
    /// a key the store no longer holds (or a ref the barrier already
    /// dropped) is a no-op.
    pub fn publish_heat(&self, shard: usize, key: u64, tenant: u16, heat: u64) {
        let mut s = self.shards[shard]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(entry) = s.entries.get_mut(&key) {
            if let Ok(i) = entry.holders.binary_search(&tenant) {
                entry.recent[i] = heat;
            }
        }
    }

    /// Barrier: drops every ref `tenant` holds anywhere — the
    /// departure/quarantine path, usable even when the tenant's
    /// session (and its key bookkeeping) is lost. Returns the refs
    /// released.
    pub fn release_tenant(&mut self, tenant: u16) -> u64 {
        let mut released = 0;
        for shard in &mut self.shards {
            let s = shard.get_mut().unwrap_or_else(PoisonError::into_inner);
            let mut dead = Vec::new();
            for (&key, entry) in s.entries.iter_mut() {
                if let Ok(i) = entry.holders.binary_search(&tenant) {
                    entry.holders.remove(i);
                    entry.recent.remove(i);
                    released += 1;
                    if entry.holders.is_empty() {
                        dead.push((key, entry.bytes));
                    }
                }
            }
            for (key, bytes) in dead {
                s.entries.remove(&key);
                s.unique -= bytes;
            }
        }
        released
    }

    /// Barrier: folds this round's occupancy into the per-shard and
    /// run-wide peaks.
    pub fn end_round(&mut self) {
        let mut unique = 0;
        let mut logical = 0;
        let mut refs = 0;
        for (shard, stat) in self.shards.iter_mut().zip(self.stats.iter_mut()) {
            let s = shard.get_mut().unwrap_or_else(PoisonError::into_inner);
            let (u, l, r) = (s.unique, s.logical(), s.shared_refs());
            stat.peak_unique_bytes = stat.peak_unique_bytes.max(u);
            stat.peak_logical_bytes = stat.peak_logical_bytes.max(l);
            stat.peak_shared_refs = stat.peak_shared_refs.max(r);
            unique += u;
            logical += l;
            refs += r;
        }
        if unique > self.totals.unique_bytes {
            self.totals.unique_bytes = unique;
            self.totals.logical_bytes = logical;
        }
        self.totals.shared_refs = self.totals.shared_refs.max(refs);
    }

    /// Barrier: shard indices whose *unique* bytes exceed `capacity`,
    /// in shard order.
    pub fn overflowing(&mut self, capacity: u64) -> Vec<usize> {
        self.shards
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| {
                (s.get_mut().unwrap_or_else(PoisonError::into_inner).unique > capacity).then_some(i)
            })
            .collect()
    }

    /// Barrier: plans and applies one pressure wave against `shard`:
    /// victim entries are removed from the store until the shard's
    /// unique bytes fit `capacity`, and returned with their holder
    /// lists so the scheduler can drop every referencing tenant's
    /// region — a pure function of the shard's content either way.
    ///
    /// With `utility` off, victims are chosen largest-unique-bytes
    /// first (key ascending on ties) — the legacy policy. With it on,
    /// the order is worst utility first: highest `bytes / (V + 1)`
    /// where `V` sums every holder's published recent heat, compared
    /// by pure-integer cross-multiplication (no float ties), so a
    /// region hot in fifty tenants is not doomed before a cold
    /// private one. Ties break bytes descending, then key ascending.
    pub fn plan_wave(
        &mut self,
        shard: usize,
        capacity: u64,
        utility: bool,
    ) -> Vec<(u64, StoreEntry)> {
        let s = self.shards[shard]
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner);
        // (bytes, total recent heat, key) per entry.
        let mut order: Vec<(u64, u64, u64)> = s
            .entries
            .iter()
            .map(|(&k, e)| (e.bytes, e.total_recent(), k))
            .collect();
        if utility {
            order.sort_unstable_by(|a, b| {
                let ua = a.0 as u128 * (b.1 as u128 + 1);
                let ub = b.0 as u128 * (a.1 as u128 + 1);
                ub.cmp(&ua).then(b.0.cmp(&a.0)).then(a.2.cmp(&b.2))
            });
        } else {
            order.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.2.cmp(&b.2)));
        }
        let mut doomed = Vec::new();
        for (bytes, _, key) in order {
            if s.unique <= capacity {
                break;
            }
            let entry = s.entries.remove(&key).expect("planned from live entries");
            s.unique -= bytes;
            doomed.push((key, entry));
        }
        doomed
    }

    /// Barrier: current unique bytes held in `shard`.
    pub fn unique_bytes(&mut self, shard: usize) -> u64 {
        self.shards[shard]
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
            .unique
    }

    /// Barrier: current logical bytes (sum over holders) in `shard`.
    pub fn logical_bytes(&mut self, shard: usize) -> u64 {
        self.shards[shard]
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
            .logical()
    }

    /// Barrier: total refs currently held across all shards (the sum
    /// over entries of their holder counts).
    pub fn total_refs(&mut self) -> u64 {
        self.shards
            .iter_mut()
            .map(|s| {
                s.get_mut()
                    .unwrap_or_else(PoisonError::into_inner)
                    .entries
                    .values()
                    .map(|e| e.holders.len() as u64)
                    .sum::<u64>()
            })
            .sum()
    }

    /// Barrier: live entries across all shards.
    pub fn total_entries(&mut self) -> u64 {
        self.shards
            .iter_mut()
            .map(|s| {
                s.get_mut()
                    .unwrap_or_else(PoisonError::into_inner)
                    .entries
                    .len() as u64
            })
            .sum()
    }

    /// Debug check: no entry is empty-held and every shard's cached
    /// unique total matches its entries. Cheap enough for barriers in
    /// debug builds.
    pub fn check_invariants(&mut self) {
        for shard in &mut self.shards {
            let s = shard.get_mut().unwrap_or_else(PoisonError::into_inner);
            let recomputed: u64 = s.entries.values().map(|e| e.bytes).sum();
            debug_assert_eq!(s.unique, recomputed, "unique-byte ledger drifted");
            debug_assert!(
                s.entries.values().all(|e| !e.holders.is_empty()),
                "dangling entry with no holders"
            );
            debug_assert!(
                s.entries
                    .values()
                    .all(|e| e.holders.windows(2).all(|w| w[0] < w[1])),
                "holder list unsorted or duplicated"
            );
            debug_assert!(
                s.entries
                    .values()
                    .all(|e| e.recent.len() == e.holders.len()),
                "heat vector fell out of lockstep with the holders"
            );
        }
    }

    /// Run-wide peak totals so far.
    pub fn totals(&self) -> StoreTotals {
        self.totals
    }

    /// Final per-shard peak statistics.
    pub fn into_stats(self) -> Vec<StoreShardStats> {
        self.stats
    }
}

/// Barrier-side consistency check between the store and the capacity
/// map in share mode: every shard's logical bytes (store view) must
/// equal the tenants' published occupancy (map view). Debug builds
/// call this each round.
pub fn debug_check_consistency(store: &mut RegionStore, map: &mut SharedCacheMap) {
    if cfg!(debug_assertions) {
        for shard in 0..store.shard_count() {
            let store_logical = store.logical_bytes(shard);
            let map_logical: u64 = map.shard_bytes(shard).iter().map(|&(_, b)| b).sum();
            debug_assert_eq!(
                store_logical, map_logical,
                "share-mode ledgers disagree on shard {shard}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refs_share_bytes_and_release_cleans_up() {
        let mut store = RegionStore::new(2);
        store.acquire(0, 0xabc, 100, 1);
        store.acquire(0, 0xabc, 100, 0);
        store.acquire(1, 0xdef, 40, 0);
        assert_eq!(store.unique_bytes(0), 100, "one copy charged");
        assert_eq!(store.logical_bytes(0), 200, "two refs reported");
        assert_eq!(store.total_refs(), 3);
        store.end_round();
        assert_eq!(store.totals().unique_bytes, 140);
        assert_eq!(store.totals().logical_bytes, 240);
        assert_eq!(store.totals().shared_refs, 1);
        store.release(0, 0xabc, 0);
        assert_eq!(store.unique_bytes(0), 100, "a ref out keeps the entry");
        store.release(0, 0xabc, 1);
        assert_eq!(store.unique_bytes(0), 0, "last ref out removes it");
        assert_eq!(store.total_entries(), 1);
        store.release(0, 0xabc, 1); // double release is a no-op
        store.check_invariants();
    }

    #[test]
    fn release_tenant_drops_every_ref_without_dangling_entries() {
        let mut store = RegionStore::new(2);
        store.acquire(0, 1, 10, 0);
        store.acquire(0, 1, 10, 1);
        store.acquire(1, 2, 20, 0);
        assert_eq!(store.release_tenant(0), 2);
        store.check_invariants();
        assert_eq!(store.unique_bytes(0), 10, "tenant 1 still holds key 1");
        assert_eq!(store.unique_bytes(1), 0, "tenant 0's private entry died");
        assert_eq!(store.release_tenant(0), 0, "idempotent");
    }

    #[test]
    fn plan_wave_evicts_largest_entries_first_until_fit() {
        let mut store = RegionStore::new(1);
        store.acquire(0, 10, 50, 0);
        store.acquire(0, 11, 30, 0);
        store.acquire(0, 11, 30, 1);
        store.acquire(0, 12, 30, 1);
        assert_eq!(store.unique_bytes(0), 110);
        let doomed = store.plan_wave(0, 40, false);
        // 50 goes first, then the tied 30s in key order; 30 remains.
        assert_eq!(doomed.len(), 2);
        assert_eq!(doomed[0].0, 10);
        assert_eq!(doomed[0].1.holders, vec![0]);
        assert_eq!(doomed[1].0, 11);
        assert_eq!(doomed[1].1.holders, vec![0, 1], "shared entry drops all");
        assert_eq!(store.unique_bytes(0), 30);
        store.check_invariants();
    }

    #[test]
    fn utility_wave_spares_hot_and_widely_held_entries() {
        let mut store = RegionStore::new(1);
        // A large but hot private entry...
        store.acquire(0, 10, 50, 0);
        store.publish_heat(0, 10, 0, 1000);
        // ...a small entry shared by two tenants with modest heat...
        store.acquire(0, 11, 30, 0);
        store.acquire(0, 11, 30, 1);
        store.publish_heat(0, 11, 0, 40);
        store.publish_heat(0, 11, 1, 40);
        // ...and a stone-cold private entry.
        store.acquire(0, 12, 30, 1);
        assert_eq!(store.unique_bytes(0), 110);
        // Max-bytes would doom key 10 first; utility dooms the cold
        // key 12 (30 bytes / 1) ahead of the shared key 11
        // (30 / 81) and the hot key 10 (50 / 1001).
        let doomed = store.plan_wave(0, 60, true);
        assert_eq!(doomed.len(), 2);
        assert_eq!(doomed[0].0, 12, "cold private entry goes first");
        assert_eq!(doomed[1].0, 11, "then the lukewarm shared one");
        assert_eq!(store.unique_bytes(0), 50, "the hot entry survives");
        store.check_invariants();
    }

    #[test]
    fn publish_heat_tracks_holders_and_tolerates_dead_keys() {
        let mut store = RegionStore::new(1);
        store.acquire(0, 7, 10, 2);
        store.acquire(0, 7, 10, 5);
        store.publish_heat(0, 7, 5, 99);
        store.publish_heat(0, 7, 2, 11);
        store.publish_heat(0, 999, 2, 5); // unknown key: no-op
        store.publish_heat(0, 7, 9, 5); // non-holder: no-op
        let doomed = store.plan_wave(0, 0, true);
        assert_eq!(doomed.len(), 1);
        assert_eq!(doomed[0].1.holders, vec![2, 5]);
        assert_eq!(doomed[0].1.recent, vec![11, 99], "heat rides in lockstep");
        assert_eq!(doomed[0].1.total_recent(), 110);
        // Releasing drops the heat slot with the holder.
        store.acquire(0, 8, 10, 2);
        store.acquire(0, 8, 10, 5);
        store.publish_heat(0, 8, 2, 7);
        store.release(0, 8, 2);
        store.publish_heat(0, 8, 2, 3); // released ref: no-op
        store.check_invariants();
        let doomed = store.plan_wave(0, 0, true);
        assert_eq!(doomed[0].1.holders, vec![5]);
        assert_eq!(doomed[0].1.recent, vec![0]);
    }

    #[test]
    fn shard_of_key_is_stable_and_tenant_independent() {
        let s = shard_of_key(0x1234, 16);
        assert_eq!(s, shard_of_key(0x1234, 16));
        assert!(s < 16);
        let spread: std::collections::HashSet<usize> =
            (0..64u64).map(|k| shard_of_key(k, 16)).collect();
        assert!(spread.len() > 4, "keys spread across shards");
    }
}
