//! Deterministic tenant churn and chaos injection for the serving
//! runtime.
//!
//! Real serving traffic is messy: tenants arrive staggered, disconnect
//! mid-session, reconnect later (ideally warm, from a checkpoint), and
//! occasionally crash outright. This module generates that mess from a
//! seed, the same way the fault layer
//! ([`FaultConfig`](rsel_core::FaultConfig)) generates
//! self-modifying-code traffic: every tenant's lifecycle is a pure
//! function of the churn seed and its tenant id, so a churned serve
//! stays byte-identical for every worker count.
//!
//! Two pieces:
//!
//! - [`ChurnConfig`] + [`TenantLifecycle`] — the seeded lifecycle
//!   generator. [`TenantLifecycle::generate`] draws, per tenant, an
//!   arrival round and a strictly increasing schedule of
//!   [`LifecycleEvent`]s (graceful disconnects and crashes), each with
//!   an offline gap before the reconnect. The scheduler
//!   ([`serve`](crate::serve::serve)) fires each event when the
//!   tenant's lifetime epoch counter reaches it.
//! - [`ChaosConfig`] — targeted corruption: a poison pill that makes
//!   one chosen session panic mid-epoch, exercising the quarantine
//!   path end to end (the panic is caught, the tenant is quarantined,
//!   the serve keeps going).
//!
//! The distinction matters: a *crash* ([`LifecycleKind::Crash`]) is a
//! modelled failure the tenant recovers from — it loses everything
//! since its last checkpoint and re-executes it — while a *poison
//! pill* is an unmodelled defect (a real panic) that the failure
//! domain must contain.

use std::collections::BTreeSet;

/// Salt mixed into the churn seed so lifecycle schedules never share a
/// PRNG stream with the fault schedules, even under the same base
/// seed.
const CHURN_SALT: u64 = 0x6368_7572_6e21_2005;

/// SplitMix64, kept private to the churn layer (the same rationale as
/// the fault injector's private copy: the schedule stream must survive
/// dependency changes).
#[derive(Clone, Debug)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    fn below(&mut self, n: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// Seeded tenant-churn knobs, carried by
/// [`ServeConfig`](crate::ServeConfig). The default is inert: every
/// tenant arrives at round zero and never disconnects, reproducing the
/// un-churned scheduler exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChurnConfig {
    /// Base seed for the lifecycle schedules; each tenant's schedule
    /// is derived from it and the tenant id alone.
    pub seed: u64,
    /// Arrival staggering: each tenant arrives at a uniform round in
    /// `[0, arrival_spread]`. Zero = everyone arrives at round 0.
    pub arrival_spread: u64,
    /// Most graceful mid-run disconnects per tenant (each drawn
    /// uniformly in `[0, max_disconnects]`).
    pub max_disconnects: u32,
    /// Longest offline gap, in scheduler rounds, before a disconnected
    /// or crashed tenant re-arrives (gaps are drawn in
    /// `[1, max_gap]`).
    pub max_gap: u64,
    /// Percent chance (`0..=100`) that a tenant suffers one mid-run
    /// crash, losing everything since its last checkpoint.
    pub crash_percent: u8,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            seed: 0,
            arrival_spread: 0,
            max_disconnects: 0,
            max_gap: 4,
            crash_percent: 0,
        }
    }
}

impl ChurnConfig {
    /// Whether any churn can occur (the generator does work).
    pub fn active(&self) -> bool {
        self.arrival_spread > 0 || self.max_disconnects > 0 || self.crash_percent > 0
    }

    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid knob.
    pub fn check(&self) -> Result<(), &'static str> {
        if self.crash_percent > 100 {
            return Err("crash_percent is a percentage, at most 100");
        }
        if (self.max_disconnects > 0 || self.crash_percent > 0) && self.max_gap == 0 {
            return Err("max_gap must be positive when disconnects or crashes are enabled");
        }
        Ok(())
    }
}

/// Targeted chaos injection, carried by
/// [`ServeConfig`](crate::ServeConfig): a deterministic poison pill
/// that panics one chosen session at the start of one chosen epoch.
/// The scheduler catches the panic and quarantines the tenant — this
/// is the end-to-end test hook for the failure domain, not a modelled
/// fault.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Tenant whose session is poisoned, if any.
    pub poison_tenant: Option<u16>,
    /// Lifetime epoch (per-tenant, 0-based) at which the poisoned
    /// session panics.
    pub poison_epoch: u64,
}

/// What a lifecycle event does to the session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LifecycleKind {
    /// Graceful departure: the session checkpoints at its current
    /// position, goes offline for the gap, and reconnects warm from
    /// that checkpoint — no work is lost.
    Disconnect,
    /// Crash: the session is torn down where it stands and recovers
    /// from its *last* checkpoint, re-executing every epoch since.
    Crash,
}

/// One scheduled lifecycle event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LifecycleEvent {
    /// The tenant's lifetime epoch count at which the event fires (the
    /// counter is monotone across disconnects and recoveries, so each
    /// event fires exactly once).
    pub at_epoch: u64,
    /// Rounds the tenant stays offline before re-arriving (always at
    /// least one).
    pub gap: u64,
    /// What happens.
    pub kind: LifecycleKind,
}

/// One tenant's generated lifecycle: when it arrives and every
/// disconnect/crash it will suffer, in firing order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantLifecycle {
    /// Scheduler round at which the tenant first arrives.
    pub arrival_round: u64,
    /// Scheduled events, strictly increasing by
    /// [`at_epoch`](LifecycleEvent::at_epoch).
    pub events: Vec<LifecycleEvent>,
}

impl TenantLifecycle {
    /// Generates tenant `tenant`'s lifecycle under `config`.
    /// `horizon_epochs` is the tenant's expected lifetime epoch count
    /// (stream length over epoch length, plus the final short epoch);
    /// events are scheduled strictly inside it so they can actually
    /// fire. A pure function of `(config, tenant, horizon_epochs)` —
    /// worker count, admission order, and the other tenants cannot
    /// perturb it.
    pub fn generate(config: &ChurnConfig, tenant: u16, horizon_epochs: u64) -> Self {
        if !config.active() {
            return TenantLifecycle::default();
        }
        let seed = crate::serve::tenant_fault_seed(config.seed ^ CHURN_SALT, tenant);
        let mut rng = SplitMix64::new(seed);
        let arrival_round = if config.arrival_spread > 0 {
            rng.below(config.arrival_spread + 1)
        } else {
            0
        };
        // Events live at epochs [1, horizon): an event at epoch 0 could
        // never fire (the counter starts there) and one at or past the
        // horizon would be swallowed by the tenant finishing first.
        let slots = horizon_epochs.saturating_sub(1);
        let disconnects = if config.max_disconnects > 0 {
            rng.below(u64::from(config.max_disconnects) + 1)
        } else {
            0
        };
        let crash = config.crash_percent > 0 && rng.below(100) < u64::from(config.crash_percent);
        let wanted = disconnects + u64::from(crash);
        let count = wanted.min(slots);
        if count == 0 {
            return TenantLifecycle {
                arrival_round,
                events: Vec::new(),
            };
        }
        // Distinct epochs via rejection into an ordered set: `count` is
        // tiny (a handful of events) against `slots` (the whole run),
        // so the loop terminates fast and stays deterministic.
        let mut epochs = BTreeSet::new();
        while (epochs.len() as u64) < count {
            epochs.insert(1 + rng.below(slots));
        }
        let crash_index = if crash { rng.below(count) } else { count };
        let max_gap = config.max_gap.max(1);
        let events = epochs
            .into_iter()
            .enumerate()
            .map(|(i, at_epoch)| LifecycleEvent {
                at_epoch,
                gap: 1 + rng.below(max_gap),
                kind: if i as u64 == crash_index {
                    LifecycleKind::Crash
                } else {
                    LifecycleKind::Disconnect
                },
            })
            .collect();
        TenantLifecycle {
            arrival_round,
            events,
        }
    }

    /// Validates the schedule's invariants against the configuration
    /// that generated it — the property the lifecycle proptests pin
    /// down: no reconnect before its disconnect (events fire at
    /// strictly increasing epochs, each with a positive offline gap)
    /// and no negative or zero gaps.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check(&self, config: &ChurnConfig) -> Result<(), &'static str> {
        if self.arrival_round > config.arrival_spread {
            return Err("arrival beyond the configured spread");
        }
        if !self
            .events
            .windows(2)
            .all(|w| w[0].at_epoch < w[1].at_epoch)
        {
            return Err("events are not strictly increasing by epoch");
        }
        let max_gap = config.max_gap.max(1);
        for e in &self.events {
            if e.at_epoch == 0 {
                return Err("an event is scheduled before the first epoch");
            }
            if e.gap == 0 {
                return Err("a reconnect gap is zero");
            }
            if e.gap > max_gap {
                return Err("a reconnect gap exceeds the configured maximum");
            }
        }
        let crashes = self
            .events
            .iter()
            .filter(|e| e.kind == LifecycleKind::Crash)
            .count();
        if crashes > 1 {
            return Err("more than one crash scheduled");
        }
        if crashes == 1 && config.crash_percent == 0 {
            return Err("a crash was scheduled with crashes disabled");
        }
        let disconnects = self.events.len() - crashes;
        if disconnects as u64 > u64::from(config.max_disconnects) {
            return Err("more disconnects than the configured maximum");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy() -> ChurnConfig {
        ChurnConfig {
            seed: 7,
            arrival_spread: 5,
            max_disconnects: 3,
            max_gap: 4,
            crash_percent: 60,
        }
    }

    #[test]
    fn inert_config_generates_the_trivial_lifecycle() {
        let cfg = ChurnConfig::default();
        assert!(!cfg.active());
        cfg.check().unwrap();
        let l = TenantLifecycle::generate(&cfg, 3, 100);
        assert_eq!(l, TenantLifecycle::default());
        l.check(&cfg).unwrap();
    }

    #[test]
    fn generation_is_a_pure_function_of_its_inputs() {
        let cfg = busy();
        let a = TenantLifecycle::generate(&cfg, 2, 40);
        let b = TenantLifecycle::generate(&cfg, 2, 40);
        assert_eq!(a, b);
        let other = TenantLifecycle::generate(&cfg, 3, 40);
        assert_ne!(a, other, "tenants get distinct schedules");
        let reseeded = TenantLifecycle::generate(&ChurnConfig { seed: 8, ..cfg }, 2, 40);
        assert_ne!(a, reseeded, "the seed matters");
    }

    #[test]
    fn schedules_satisfy_their_invariants() {
        let cfg = busy();
        for tenant in 0..64u16 {
            let l = TenantLifecycle::generate(&cfg, tenant, 30);
            l.check(&cfg).unwrap_or_else(|e| {
                panic!("tenant {tenant}: {e}: {l:?}");
            });
        }
    }

    #[test]
    fn tiny_horizons_clamp_the_event_count() {
        let cfg = ChurnConfig {
            seed: 1,
            max_disconnects: 10,
            crash_percent: 100,
            ..ChurnConfig::default()
        };
        for horizon in 0..4u64 {
            let l = TenantLifecycle::generate(&cfg, 0, horizon);
            assert!(
                (l.events.len() as u64) <= horizon.saturating_sub(1),
                "horizon {horizon} got {l:?}"
            );
            l.check(&cfg).unwrap();
        }
    }

    #[test]
    fn check_rejects_bad_knobs_and_bad_schedules() {
        assert!(
            ChurnConfig {
                crash_percent: 101,
                ..ChurnConfig::default()
            }
            .check()
            .is_err()
        );
        assert!(
            ChurnConfig {
                max_disconnects: 1,
                max_gap: 0,
                ..ChurnConfig::default()
            }
            .check()
            .is_err()
        );
        let cfg = busy();
        let bad = TenantLifecycle {
            arrival_round: 0,
            events: vec![
                LifecycleEvent {
                    at_epoch: 5,
                    gap: 1,
                    kind: LifecycleKind::Disconnect,
                },
                LifecycleEvent {
                    at_epoch: 5,
                    gap: 1,
                    kind: LifecycleKind::Disconnect,
                },
            ],
        };
        assert!(bad.check(&cfg).is_err(), "duplicate epochs");
        let bad = TenantLifecycle {
            arrival_round: 0,
            events: vec![LifecycleEvent {
                at_epoch: 5,
                gap: 0,
                kind: LifecycleKind::Disconnect,
            }],
        };
        assert!(bad.check(&cfg).is_err(), "zero gap");
        let bad = TenantLifecycle {
            arrival_round: 99,
            events: Vec::new(),
        };
        assert!(bad.check(&cfg).is_err(), "arrival beyond spread");
    }
}
