//! The session scheduler: bounded admission, parallel epochs, a
//! deterministic decision barrier, and a contained failure domain.
//!
//! [`serve`] (and its warm-starting variants [`serve_with`] and
//! [`serve_warm`]) drives every tenant through three stages:
//!
//! 1. **Admission** — tenants arrive (at round zero, or staggered by a
//!    churn schedule) in id order into a bounded queue
//!    (`queue_capacity`); at most `max_active` sessions run
//!    concurrently. A full queue defers arrivals — the backpressure
//!    the [`QueueStats`](crate::QueueStats) expose. A zero-capacity
//!    queue means "no buffering": arrivals are admitted directly up to
//!    `max_active` and the rest stay deferred. Under sustained
//!    overload an optional admission timeout *sheds* waiting arrivals:
//!    they are pushed back out and retry after an exponential backoff,
//!    so the queue never silently grows a convoy.
//! 2. **Rounds** — each round runs one epoch of every active session,
//!    fanned out over `jobs` scoped worker threads. Sessions only
//!    touch their own simulator and publish commutative occupancy
//!    updates to the shared map, so worker scheduling cannot affect
//!    any result. Every epoch runs inside a panic boundary: a session
//!    that panics (or that poisoned its lock) is *quarantined* at the
//!    next barrier — taken out of rotation with its partial metrics
//!    kept — instead of killing the serve.
//! 3. **Barrier** — with the workers joined, all cross-tenant
//!    decisions happen serially in deterministic order: contention and
//!    peak accounting, quarantine, departures and churn events
//!    (finished, disconnecting, and crashing tenants release their
//!    shard bytes; disconnects checkpoint first, crashes rewind to
//!    their last checkpoint), shard-pressure eviction (each
//!    overflowing shard plans its whole victim set — heaviest tenant
//!    sheds the oldest half of its regions there, repeatedly, until
//!    the shard fits — then applies it with one eviction pass per
//!    victim tenant), per-tenant policy decisions, and periodic
//!    checkpoints.
//!
//! # Churn and chaos
//!
//! A [`ChurnConfig`] turns the static population into seeded traffic:
//! staggered arrivals, graceful mid-run disconnects that checkpoint
//! and later reconnect warm (resuming the recorded stream where the
//! checkpoint cut it), and crashes that recover from the *last*
//! checkpoint, re-executing everything since. Every lifecycle is a
//! pure function of the churn seed and the tenant id — like the fault
//! schedules, worker count cannot perturb it — so the outcome stays
//! byte-identical for every `jobs` value under any churn schedule. A
//! [`ChaosConfig`] additionally plants a deterministic poison pill (a
//! real panic inside one chosen epoch) to exercise the quarantine
//! path end to end.
//!
//! The outcome is byte-identical for every `jobs` value, warm-started
//! or not, churned or not, and every outcome carries a
//! [`ServeSnapshot`](crate::ServeSnapshot) of the final state so the
//! next run can warm-start from it.

use crate::churn::{ChaosConfig, ChurnConfig, LifecycleKind, TenantLifecycle};
use crate::policy::{
    PolicyConfig, PolicyEngine, PolicyFeatures, SwitchRecord, derive_tenant_policy,
};
use crate::report::{
    DipTracker, QueueStats, ServeOutcome, ServeReport, ShardReport, TenantSummary, wait_bucket,
};
use crate::session::{EpochStats, TenantSession, TenantSpec};
use crate::shard::SharedCacheMap;
use crate::snapshot::{
    ServeSnapshot, SnapshotError, TenantSnapshot, WarmStart, tenant_snapshot_bytes,
};
use crate::store::{RegionStore, StoreShardStats, debug_check_consistency};
use rsel_core::{RegionId, SimConfig};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::panic::{AssertUnwindSafe, catch_unwind};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Derives tenant `tenant`'s fault-schedule seed from the run's base
/// seed (a SplitMix64-style finalizer over the pair).
///
/// Every tenant session owns its own [`FaultInjector`]
/// (rsel_core::sim::faults::FaultInjector) seeded with this value, so
/// a tenant's self-modifying-code schedule is a function of the base
/// seed and its id alone — worker count, admission order, and the
/// other tenants cannot perturb it. That is what keeps a faulted
/// serve byte-identical for every `jobs` value. The churn layer
/// derives its per-tenant lifecycle seeds the same way (over a salted
/// base, so the streams never collide).
pub fn tenant_fault_seed(base: u64, tenant: u16) -> u64 {
    let mut z = base ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(tenant) + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Why a serve could not run (or could not set up). Runtime defects in
/// a single tenant never surface here — those quarantine the tenant
/// and the serve completes; this type covers only conditions where no
/// meaningful run exists.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// More tenant specs than tenant ids (`u16`).
    TooManyTenants(usize),
    /// A degenerate configuration knob (zero epoch length, active
    /// limit, or shard count, or inconsistent churn knobs).
    InvalidConfig(&'static str),
    /// The warm-start state does not match the specs or policy
    /// configuration (tenant count, workload names, candidate list).
    Snapshot(SnapshotError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::TooManyTenants(n) => {
                write!(f, "{n} tenant specs exceed the u16 tenant-id space")
            }
            ServeError::InvalidConfig(why) => write!(f, "invalid serve configuration: {why}"),
            ServeError::Snapshot(e) => write!(f, "warm-start state rejected: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> Self {
        ServeError::Snapshot(e)
    }
}

/// Configuration for a serving run.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Per-session simulator configuration.
    pub sim: SimConfig,
    /// Adaptive-policy tuning (candidates, scoring, phase-shift
    /// sensitivity).
    pub policy: PolicyConfig,
    /// Steps each session replays per round.
    pub epoch_len: usize,
    /// Most sessions allowed to run concurrently.
    pub max_active: usize,
    /// Bounded admission-queue capacity.
    pub queue_capacity: usize,
    /// Shards in the shared cache map.
    pub shard_count: usize,
    /// Per-shard byte budget; overflowing a shard triggers pressure
    /// eviction at the next barrier.
    pub shard_capacity: u64,
    /// Whether the policy engine may switch selectors; `false` serves
    /// every session on the first candidate forever.
    pub adaptive: bool,
    /// Seeded tenant churn: staggered arrivals, disconnects,
    /// reconnects, crashes. Inert by default.
    pub churn: ChurnConfig,
    /// Targeted chaos injection (poison pill). Inert by default.
    pub chaos: ChaosConfig,
    /// Rounds between periodic per-tenant checkpoints (what crash
    /// recovery rewinds to); zero checkpoints only at graceful
    /// disconnects.
    pub checkpoint_every: u64,
    /// Rounds an arrival may wait in the deferred set before being
    /// shed (pushed back with exponential backoff); zero disables
    /// shedding.
    pub admission_timeout: u64,
    /// Reconnect cold: a reconnecting tenant resumes its stream at
    /// the checkpoint position but with an *empty* cache and fresh
    /// blacklist — the control arm for measuring what checkpointed
    /// warm reconnects are worth.
    pub reconnect_cold: bool,
    /// Content-addressed region sharing: identical regions across
    /// tenants are deduplicated through the
    /// [`RegionStore`](crate::RegionStore) — each shard charges
    /// *unique* bytes against `shard_capacity` (logical per-tenant
    /// bytes stay reported), regions shard by content key instead of
    /// `(tenant, entry)`, and pressure eviction drops shared entries
    /// from every referencing tenant at once.
    pub share: bool,
    /// Rounds a quarantined tenant sits out before re-admission with
    /// a fresh cold session (one retry per tenant — a second
    /// quarantine drops it for the run). Zero keeps the original
    /// behavior: quarantine drops the tenant immediately.
    pub quarantine_penalty: u64,
    /// Utility-aware pressure eviction: victims are chosen by bytes
    /// per recent cached instruction (cold bulk goes first) instead of
    /// raw byte footprint, both per-tenant in a shard and per-entry in
    /// the shared store. Off preserves the legacy largest-first waves
    /// byte for byte.
    pub utility_evict: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            sim: SimConfig::default(),
            policy: PolicyConfig::default(),
            epoch_len: 4096,
            max_active: 8,
            queue_capacity: 2,
            shard_count: 16,
            shard_capacity: 2048,
            adaptive: true,
            churn: ChurnConfig::default(),
            chaos: ChaosConfig::default(),
            checkpoint_every: 0,
            admission_timeout: 0,
            reconnect_cold: false,
            share: false,
            quarantine_penalty: 0,
            utility_evict: false,
        }
    }
}

/// Serves every spec to completion on `jobs` worker threads from a
/// cold start; the result is identical for any `jobs >= 1`. See
/// [`serve_with`] to warm-start from a snapshot.
///
/// # Errors
///
/// [`ServeError::TooManyTenants`] if `specs` holds more than
/// `u16::MAX` tenants; [`ServeError::InvalidConfig`] if the
/// configuration is degenerate (zero epoch length, active limit, or
/// shard count, or inconsistent churn knobs).
pub fn serve(
    specs: &[TenantSpec],
    config: &ServeConfig,
    jobs: usize,
) -> Result<ServeOutcome, ServeError> {
    serve_impl(specs, config, jobs, None, 0)
}

/// Serves every spec to completion on `jobs` worker threads,
/// warm-starting from `warm` when given: each tenant's policy engine
/// resumes with the snapshot's learned scores and phase, and its code
/// cache starts pre-populated with the snapshot's regions (rebuilt
/// against the live program). The result is identical for any
/// `jobs >= 1`, warm or cold.
///
/// `warm` must come from [`load_snapshot`](crate::load_snapshot) (or
/// an outcome of a run over the same specs and policy configuration)
/// — the loader is the validation boundary that turns corrupt or
/// mismatched snapshots into typed errors.
///
/// # Errors
///
/// Everything [`serve`] returns, plus [`ServeError::Snapshot`] when
/// `warm` does not match `specs`/`config` (tenant count, workload
/// names, candidate list) — states the loader never produces.
pub fn serve_with(
    specs: &[TenantSpec],
    config: &ServeConfig,
    jobs: usize,
    warm: Option<&ServeSnapshot>,
) -> Result<ServeOutcome, ServeError> {
    match warm {
        None => serve_impl(specs, config, jobs, None, 0),
        Some(snap) => {
            let slots: Vec<Option<&TenantSnapshot>> = snap.tenants.iter().map(Some).collect();
            serve_impl(specs, config, jobs, Some(&slots), 0)
        }
    }
}

/// Serves every spec on `jobs` worker threads, warm-starting from a
/// possibly partial [`WarmStart`]: tenants whose snapshot the lenient
/// loader ([`load_warm_start`](crate::load_warm_start)) rejected hold
/// a `None` slot and cold-start, everyone else resumes warm. The
/// carried rejection count surfaces as
/// [`warm_rejected_tenants`](ServeReport::warm_rejected_tenants) in
/// the report. The result is identical for any `jobs >= 1`.
///
/// # Errors
///
/// The same conditions as [`serve_with`]; the restored slots must
/// come from the loader run against the same specs and policy
/// configuration.
pub fn serve_warm(
    specs: &[TenantSpec],
    config: &ServeConfig,
    jobs: usize,
    warm: &WarmStart,
) -> Result<ServeOutcome, ServeError> {
    let slots: Vec<Option<&TenantSnapshot>> = warm.tenants.iter().map(|t| t.as_ref()).collect();
    serve_impl(specs, config, jobs, Some(&slots), warm.rejected)
}

/// A tenant's last persisted state: the `RSNP` tenant section plus
/// where in the recorded stream it was cut and the tenant's lifetime
/// epoch count at that moment.
struct Checkpoint {
    snap: TenantSnapshot,
    pos: usize,
    epoch: u64,
}

/// What one active session did this round.
#[derive(Clone, Copy, Debug)]
enum Outcome {
    /// The epoch completed and produced deltas.
    Ran(EpochStats),
    /// The session panicked mid-epoch (or its lock was found
    /// poisoned) — the tenant is quarantined at the barrier.
    Crashed,
}

/// Cross-session accounting for one tenant: epoch deltas accumulate
/// every round (so crash-recovery re-execution is counted as the work
/// it is), and each torn-down session's monotone counters fold in
/// exactly once (at teardown, or at the end for the final session).
#[derive(Clone, Debug, Default)]
struct Ledger {
    epochs: u64,
    total_insts: u64,
    cache_insts: u64,
    insts_selected: u64,
    regions_selected: u64,
    smc_events: u64,
    smc_invalidated: u64,
    pressure_evicted: u64,
    reformations: u64,
    blacklisted_targets: u64,
    blacklist_hits: u64,
    smc_by_shard: Vec<u64>,
    disconnects: u64,
    reconnects: u64,
    crashes: u64,
    recovered_epochs: u64,
    checkpoints: u64,
    checkpoint_bytes: u64,
    /// Switch decisions a crash rewound the engine past — the log
    /// keeps them (they happened), the restored engine does not.
    forgotten_switches: u64,
    quarantined: bool,
}

impl Ledger {
    fn fold_epoch(&mut self, e: &EpochStats) {
        self.epochs += 1;
        self.total_insts += e.insts;
        self.cache_insts += e.cache_insts;
        self.insts_selected += e.insts_selected;
        self.regions_selected += e.regions_selected;
        self.smc_events += e.smc_events;
        self.smc_invalidated += e.smc_invalidated;
    }

    fn fold_session(&mut self, session: &TenantSession<'_>) {
        let res = session.resilience();
        self.pressure_evicted += res.pressure_evicted_regions;
        self.reformations += res.reformations;
        self.blacklisted_targets += res.blacklisted_targets;
        self.blacklist_hits += res.blacklist_hits;
        for (s, &n) in session.smc_by_shard().iter().enumerate() {
            self.smc_by_shard[s] += n;
        }
    }
}

/// Captures `session`'s persistent state as an `RSNP` tenant section.
fn freeze_tenant(session: &TenantSession<'_>, engine: &PolicyEngine) -> TenantSnapshot {
    TenantSnapshot {
        workload: session.workload().to_string(),
        selector: session.kind(),
        policy: engine.export(),
        regions: session.region_snapshots(),
        blacklist: session.blacklist_snapshot(),
    }
}

/// Builds the session a (re)admitted tenant runs on: warm from its
/// checkpoint when one exists (or cold-at-position under
/// `reconnect_cold`), cold from the top otherwise.
fn rebuild_session<'p>(
    t: usize,
    spec: &'p TenantSpec,
    sim_config: &SimConfig,
    engine: &PolicyEngine,
    checkpoint: Option<&Checkpoint>,
    config: &ServeConfig,
) -> TenantSession<'p> {
    let cold = |pos: usize| {
        let mut s = TenantSession::new(
            t as u16,
            spec,
            engine.current(),
            sim_config,
            config.shard_count,
        );
        s.seek(pos);
        s
    };
    match checkpoint {
        None => cold(0),
        Some(cp) if config.reconnect_cold => cold(cp.pos),
        Some(cp) => {
            match TenantSession::restore(t as u16, spec, &cp.snap, sim_config, config.shard_count) {
                Ok(mut s) => {
                    s.seek(cp.pos);
                    s
                }
                // A checkpoint captured from a live session always
                // rebuilds; if it somehow does not, degrade the tenant
                // to a cold resume rather than failing the serve.
                Err(_) => cold(cp.pos),
            }
        }
    }
}

fn serve_impl(
    specs: &[TenantSpec],
    config: &ServeConfig,
    jobs: usize,
    warm: Option<&[Option<&TenantSnapshot>]>,
    warm_rejected_tenants: u64,
) -> Result<ServeOutcome, ServeError> {
    if specs.len() > u16::MAX as usize {
        return Err(ServeError::TooManyTenants(specs.len()));
    }
    if config.epoch_len == 0 {
        return Err(ServeError::InvalidConfig("epochs must make progress"));
    }
    if config.max_active == 0 {
        return Err(ServeError::InvalidConfig(
            "need at least one active session",
        ));
    }
    if config.shard_count == 0 {
        return Err(ServeError::InvalidConfig("need at least one shard"));
    }
    config.churn.check().map_err(ServeError::InvalidConfig)?;
    let jobs = jobs.max(1);

    // Per-tenant simulator configs: each tenant's fault schedule is
    // seeded from the base seed and its id, so the schedule is a
    // property of the tenant alone. With all fault rates zero the
    // seed is never drawn and the clones are inert.
    let sim_configs: Vec<SimConfig> = (0..specs.len())
        .map(|t| {
            let mut sim = config.sim.clone();
            sim.faults.seed = tenant_fault_seed(config.sim.faults.seed, t as u16);
            sim
        })
        .collect();

    // Per-tenant policy configs: with a stream-adaptive base policy
    // each tenant's candidate schedule is derived from its decoded
    // stream shape (a pure function of config and spec — the snapshot
    // loader re-derives the same schedules). Non-adaptive bases pass
    // through unchanged.
    let mut tenant_policies: Vec<PolicyConfig> = Vec::with_capacity(specs.len());
    let mut tenant_features: Vec<Option<PolicyFeatures>> = Vec::with_capacity(specs.len());
    for spec in specs {
        let (p, f) = derive_tenant_policy(&config.policy, spec);
        tenant_policies.push(p);
        tenant_features.push(f);
    }

    let warm_slots: Vec<Option<&TenantSnapshot>> = match warm {
        None => vec![None; specs.len()],
        Some(s) => {
            if s.len() != specs.len() {
                return Err(SnapshotError::TenantCountMismatch {
                    snapshot: s.len().min(u16::MAX as usize) as u16,
                    specs: specs.len(),
                }
                .into());
            }
            s.to_vec()
        }
    };
    let mut map = SharedCacheMap::new(config.shard_count, config.shard_capacity);
    // Share mode: the content-addressed store dedups identical regions
    // across tenants; absent, every tenant pays for its own copies.
    let mut store = config.share.then(|| RegionStore::new(config.shard_count));
    let mut engines: Vec<PolicyEngine> = Vec::with_capacity(specs.len());
    let mut sessions: Vec<Mutex<Option<TenantSession<'_>>>> = Vec::with_capacity(specs.len());
    let mut checkpoints: Vec<Option<Checkpoint>> = Vec::with_capacity(specs.len());
    let mut warm_regions_restored = 0u64;
    for (t, spec) in specs.iter().enumerate() {
        match warm_slots[t] {
            Some(ts) => {
                let engine = PolicyEngine::restore(tenant_policies[t].clone(), &ts.policy)
                    .ok_or(SnapshotError::BadPolicyState(t as u16))?;
                let session =
                    TenantSession::restore(t as u16, spec, ts, &sim_configs[t], config.shard_count)
                        .map_err(ServeError::Snapshot)?;
                warm_regions_restored += ts.regions.len() as u64;
                engines.push(engine);
                sessions.push(Mutex::new(Some(session)));
                // A warm slot doubles as the tenant's first checkpoint:
                // a crash before any new checkpoint recovers to it.
                checkpoints.push(Some(Checkpoint {
                    snap: ts.clone(),
                    pos: 0,
                    epoch: 0,
                }));
            }
            None => {
                engines.push(PolicyEngine::new(tenant_policies[t].clone()));
                sessions.push(Mutex::new(Some(TenantSession::new(
                    t as u16,
                    spec,
                    engines[t].current(),
                    &sim_configs[t],
                    config.shard_count,
                ))));
                checkpoints.push(None);
            }
        }
    }

    // Every tenant's lifecycle, generated upfront from the churn seed
    // — pure per-tenant functions, so any worker count replays the
    // same traffic.
    let lifecycles: Vec<TenantLifecycle> = (0..specs.len())
        .map(|t| {
            let horizon = specs[t].len().div_ceil(config.epoch_len) as u64 + 1;
            TenantLifecycle::generate(&config.churn, t as u16, horizon)
        })
        .collect();

    // Arrival book: round -> tenants (re)arriving at it.
    let mut due: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (t, l) in lifecycles.iter().enumerate() {
        due.entry(l.arrival_round).or_default().push(t);
    }
    let mut pending: VecDeque<usize> = VecDeque::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut active: Vec<usize> = Vec::new();
    let mut q = QueueStats::default();
    let mut switches: Vec<SwitchRecord> = Vec::new();
    let mut ledgers: Vec<Ledger> = (0..specs.len())
        .map(|_| Ledger {
            smc_by_shard: vec![0; config.shard_count],
            ..Ledger::default()
        })
        .collect();
    let mut admitted_round = vec![0u64; specs.len()];
    let mut finished_round = vec![0u64; specs.len()];
    // When each tenant last (re)arrived — the admission-latency clock.
    // Shed pushbacks do not reset it: a shed tenant's wait is honest
    // about the whole time since it first asked for service.
    let mut arrived_at: Vec<u64> = lifecycles.iter().map(|l| l.arrival_round).collect();
    let mut admission_wait = vec![0u64; specs.len()];
    // Quarantine-retry state: one fresh-session retry per tenant.
    let mut retried = vec![false; specs.len()];
    let mut retry_pending = vec![false; specs.len()];
    let mut quarantine_retries = vec![0u64; specs.len()];
    // The chaos pill is one-shot per serve: once it fired (and the
    // tenant was quarantined), a retried session must not re-arm it —
    // it models a transient defect, and an eternal pill would make
    // the retry path untestable.
    let mut poison_spent = false;
    let mut first_exploit_round: Vec<Option<u64>> = vec![None; specs.len()];
    let mut utility_evicted = vec![0u64; specs.len()];
    let mut dips: Vec<DipTracker> = vec![DipTracker::default(); specs.len()];
    let mut was_admitted = vec![false; specs.len()];
    let mut shed_out = vec![false; specs.len()];
    let mut waiting_rounds = vec![0u64; specs.len()];
    let mut backoff = vec![2u64; specs.len()];
    let mut next_event = vec![0usize; specs.len()];
    let mut total_insts = 0u64;
    let mut round = 0u64;
    // Tenants still owed service: not finished and not quarantined.
    let mut live = specs.len();

    while live > 0 {
        // --- Arrivals due this round (serial, tenant order) -----------
        let due_rounds: Vec<u64> = due.range(..=round).map(|(&r, _)| r).collect();
        let mut arrivals: Vec<usize> = Vec::new();
        for r in due_rounds {
            if let Some(ts) = due.remove(&r) {
                arrivals.extend(ts);
            }
        }
        arrivals.sort_unstable();
        for &t in &arrivals {
            if ledgers[t].quarantined {
                continue;
            }
            if shed_out[t] {
                shed_out[t] = false;
                q.admission_retries += 1;
            }
            pending.push_back(t);
        }

        // --- Admission (serial, arrival order) ------------------------
        let mut to_admit: Vec<usize> = Vec::new();
        if config.queue_capacity == 0 {
            // A zero-capacity queue buffers nothing: arrivals are
            // admitted directly up to the active limit. (Routing them
            // through the queue would livelock — nothing could ever
            // enter a queue that holds zero tenants.)
            while active.len() + to_admit.len() < config.max_active {
                match pending.pop_front() {
                    Some(t) => to_admit.push(t),
                    None => break,
                }
            }
        } else {
            while queue.len() < config.queue_capacity {
                match pending.pop_front() {
                    Some(t) => queue.push_back(t),
                    None => break,
                }
            }
            while active.len() + to_admit.len() < config.max_active {
                match queue.pop_front() {
                    Some(t) => to_admit.push(t),
                    None => break,
                }
            }
            // Arrivals keep the bounded queue full while the round
            // runs; whoever does not fit is deferred behind it
            // (backpressure).
            while queue.len() < config.queue_capacity {
                match pending.pop_front() {
                    Some(t) => queue.push_back(t),
                    None => break,
                }
            }
        }
        for t in to_admit {
            let slot = sessions[t]
                .get_mut()
                .unwrap_or_else(PoisonError::into_inner);
            if slot.is_none() {
                *slot = Some(rebuild_session(
                    t,
                    &specs[t],
                    &sim_configs[t],
                    &engines[t],
                    checkpoints[t].as_ref(),
                    config,
                ));
            }
            if config.chaos.poison_tenant == Some(t as u16) && !poison_spent {
                // The pill fires at a *lifetime* epoch; a session that
                // starts mid-life arms the remainder.
                let remaining = config.chaos.poison_epoch.saturating_sub(ledgers[t].epochs);
                if let Some(session) = slot.as_mut() {
                    session.poison_after(remaining);
                }
            }
            if retry_pending[t] {
                // Quarantine retry: a fresh cold admission, not a
                // churn reconnect.
                retry_pending[t] = false;
            } else if was_admitted[t] {
                ledgers[t].reconnects += 1;
            } else {
                was_admitted[t] = true;
                admitted_round[t] = round;
                admission_wait[t] = round - arrived_at[t];
            }
            // Every admission (first, reconnect, retry) lands one
            // sample in the log2 wait histogram.
            q.admission_wait_hist[wait_bucket(round - arrived_at[t])] += 1;
            waiting_rounds[t] = 0;
            active.push(t);
            q.admissions += 1;
        }
        // Overload shedding: arrivals stuck behind the queue past the
        // timeout are pushed back out and retry after an exponential
        // backoff, instead of convoying forever.
        if config.admission_timeout > 0 {
            for &t in &pending {
                waiting_rounds[t] += 1;
            }
            let mut kept = VecDeque::with_capacity(pending.len());
            for t in pending.drain(..) {
                if waiting_rounds[t] >= config.admission_timeout {
                    q.shed_arrivals += 1;
                    shed_out[t] = true;
                    waiting_rounds[t] = 0;
                    due.entry(round + backoff[t]).or_default().push(t);
                    backoff[t] = (backoff[t] * 2).min(64);
                } else {
                    kept.push_back(t);
                }
            }
            pending = kept;
        }
        active.sort_unstable();
        q.peak_active = q.peak_active.max(active.len() as u64);
        q.peak_queue_depth = q.peak_queue_depth.max(queue.len() as u64);
        q.queued_tenant_rounds += queue.len() as u64;
        q.deferred_tenant_rounds += pending.len() as u64;

        // --- Parallel epoch execution (panic-contained) ---------------
        let mut outcomes: Vec<Option<Outcome>> = vec![None; specs.len()];
        {
            // One epoch of tenant `t`, inside the failure domain: a
            // panic (e.g. a poison pill) or an already-poisoned lock
            // yields `Crashed` for the barrier to quarantine; nothing
            // unwinds past here, on any worker.
            let sessions_ref = &sessions;
            let map_ref = &map;
            let store_ref = store.as_ref();
            let run_one = |t: usize| -> Outcome {
                let ran = catch_unwind(AssertUnwindSafe(|| {
                    let mut guard = match sessions_ref[t].lock() {
                        Ok(g) => g,
                        Err(_) => return None,
                    };
                    let session = guard.as_mut()?;
                    let e = session.run_epoch(config.epoch_len);
                    match store_ref {
                        Some(st) => session.publish_shared(map_ref, st, config.utility_evict),
                        None => session.publish_occupancy(map_ref, config.utility_evict),
                    }
                    Some(e)
                }));
                match ran {
                    Ok(Some(e)) => Outcome::Ran(e),
                    _ => Outcome::Crashed,
                }
            };
            if jobs <= 1 || active.len() <= 1 {
                for &t in &active {
                    outcomes[t] = Some(run_one(t));
                }
            } else {
                let slots: Vec<Mutex<Option<Outcome>>> =
                    active.iter().map(|_| Mutex::new(None)).collect();
                let next = AtomicUsize::new(0);
                let workers = jobs.min(active.len());
                let active_ref = &active;
                std::thread::scope(|scope| {
                    for _ in 0..workers {
                        scope.spawn(|| {
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                let Some(&t) = active_ref.get(i) else { break };
                                let o = run_one(t);
                                *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(o);
                            }
                        });
                    }
                });
                for (i, &t) in active.iter().enumerate() {
                    outcomes[t] = slots[i]
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .take();
                }
            }
        }

        // --- Barrier: all cross-tenant decisions, serial --------------
        map.end_round();
        if let Some(store) = store.as_mut() {
            store.end_round();
        }
        for &t in &active {
            if let Some(Outcome::Ran(e)) = outcomes[t] {
                total_insts += e.insts;
                ledgers[t].fold_epoch(&e);
                // Feed the tenant's dip tracker in tenant order
                // (`active` is sorted). Epochs that executed nothing
                // say nothing about the cache and are skipped.
                if e.insts > 0 {
                    dips[t].on_epoch(e.hit_rate(), e.smc_invalidated > 0);
                }
            }
        }

        // Quarantine, departures, and churn events — all release their
        // shard bytes before pressure resolves.
        let ran = active.clone();
        let mut still_active = Vec::with_capacity(active.len());
        let mut finished_now: Vec<usize> = Vec::new();
        for &t in &active {
            match outcomes[t] {
                None | Some(Outcome::Crashed) => {
                    // The failure domain: the session panicked (or its
                    // lock was poisoned). Contain it — keep whatever
                    // consistent state the session reached for the
                    // final report, take the tenant out of rotation,
                    // and keep serving everyone else.
                    sessions[t].clear_poison();
                    if config.chaos.poison_tenant == Some(t as u16) {
                        poison_spent = true;
                    }
                    map.clear_tenant(t as u16);
                    if let Some(store) = store.as_mut() {
                        store.release_tenant(t as u16);
                    }
                    if config.quarantine_penalty > 0 && !retried[t] {
                        // Retry: tear the defective session down
                        // entirely (its monotone counters fold into
                        // the ledger — the work happened) and
                        // re-admit fresh and cold after the penalty.
                        // A second quarantine drops the tenant for
                        // good.
                        retried[t] = true;
                        retry_pending[t] = true;
                        quarantine_retries[t] += 1;
                        q.quarantine_retries += 1;
                        let slot = sessions[t]
                            .get_mut()
                            .unwrap_or_else(PoisonError::into_inner);
                        if let Some(session) = slot.take() {
                            ledgers[t].fold_session(&session);
                        }
                        // The fresh engine restarts its learning;
                        // decisions already logged stay logged, same
                        // bookkeeping as a crash rewind.
                        ledgers[t].forgotten_switches += engines[t].switches();
                        engines[t] = PolicyEngine::new(tenant_policies[t].clone());
                        checkpoints[t] = None;
                        due.entry(round + config.quarantine_penalty)
                            .or_default()
                            .push(t);
                        arrived_at[t] = round + config.quarantine_penalty;
                    } else {
                        ledgers[t].quarantined = true;
                        finished_round[t] = round;
                        live -= 1;
                    }
                }
                Some(Outcome::Ran(_)) => {
                    let finished = {
                        let slot = sessions[t]
                            .get_mut()
                            .unwrap_or_else(PoisonError::into_inner);
                        slot.as_ref().is_some_and(|s| s.finished())
                    };
                    if finished {
                        // The session is retained for the final report
                        // and snapshot; only its shard bytes (and
                        // store refs) release.
                        finished_now.push(t);
                        finished_round[t] = round;
                        map.clear_tenant(t as u16);
                        if let Some(store) = store.as_mut() {
                            store.release_tenant(t as u16);
                        }
                        live -= 1;
                        continue;
                    }
                    let event = lifecycles[t]
                        .events
                        .get(next_event[t])
                        .copied()
                        .filter(|e| e.at_epoch <= ledgers[t].epochs);
                    match event {
                        None => still_active.push(t),
                        Some(ev) => {
                            next_event[t] += 1;
                            let slot = sessions[t]
                                .get_mut()
                                .unwrap_or_else(PoisonError::into_inner);
                            if let Some(session) = slot.take() {
                                match ev.kind {
                                    LifecycleKind::Disconnect => {
                                        // Graceful: checkpoint where the
                                        // stream was cut, then depart.
                                        ledgers[t].disconnects += 1;
                                        let snap = freeze_tenant(&session, &engines[t]);
                                        ledgers[t].checkpoints += 1;
                                        ledgers[t].checkpoint_bytes = tenant_snapshot_bytes(&snap);
                                        checkpoints[t] = Some(Checkpoint {
                                            snap,
                                            pos: session.pos(),
                                            epoch: ledgers[t].epochs,
                                        });
                                        ledgers[t].fold_session(&session);
                                    }
                                    LifecycleKind::Crash => {
                                        // Abrupt: everything since the
                                        // last checkpoint is lost and
                                        // will be re-executed.
                                        ledgers[t].crashes += 1;
                                        let cp_epoch =
                                            checkpoints[t].as_ref().map_or(0, |c| c.epoch);
                                        let lifetime = ledgers[t].epochs;
                                        ledgers[t].recovered_epochs += lifetime - cp_epoch;
                                        let cp_switches = checkpoints[t]
                                            .as_ref()
                                            .map_or(0, |c| c.snap.policy.switches);
                                        ledgers[t].forgotten_switches +=
                                            engines[t].switches() - cp_switches;
                                        engines[t] = match checkpoints[t].as_ref() {
                                            Some(c) => PolicyEngine::restore(
                                                tenant_policies[t].clone(),
                                                &c.snap.policy,
                                            )
                                            .unwrap_or_else(|| {
                                                PolicyEngine::new(tenant_policies[t].clone())
                                            }),
                                            None => PolicyEngine::new(tenant_policies[t].clone()),
                                        };
                                        ledgers[t].fold_session(&session);
                                    }
                                }
                            }
                            map.clear_tenant(t as u16);
                            if let Some(store) = store.as_mut() {
                                store.release_tenant(t as u16);
                            }
                            due.entry(round + ev.gap).or_default().push(t);
                            arrived_at[t] = round + ev.gap;
                        }
                    }
                }
            }
        }
        active = still_active;

        // Shard pressure. In share mode the budget covers *unique*
        // bytes and the store plans the wave: victim entries go
        // largest-first, and evicting a shared entry drops it from
        // every referencing tenant at once. Without sharing, each
        // overflowing shard plans its whole victim set first (heaviest
        // tenant sheds the oldest half of its regions there,
        // repeatedly, until the shard fits), then applies it with a
        // single eviction pass per victim tenant — the repeated cache
        // rebuilds of per-batch eviction were quadratic in the region
        // count.
        if let Some(store) = store.as_mut() {
            for shard in store.overflowing(config.shard_capacity) {
                map.note_wave(shard);
                let wave = store.plan_wave(shard, config.shard_capacity, config.utility_evict);
                // Group the doomed keys by holder tenant; each victim
                // tenant takes one eviction pass, in tenant order.
                let mut by_tenant: BTreeMap<u16, Vec<u64>> = BTreeMap::new();
                for (key, entry) in &wave {
                    for &holder in &entry.holders {
                        by_tenant.entry(holder).or_default().push(*key);
                    }
                }
                for (tenant, keys) in &by_tenant {
                    let (evicted, left, left_recent) = sessions[*tenant as usize]
                        .get_mut()
                        .unwrap_or_else(PoisonError::into_inner)
                        .as_mut()
                        .map(|s| s.evict_shared(shard, keys))
                        .unwrap_or((0, 0, 0));
                    map.note_shed(shard, evicted);
                    map.set_load(shard, *tenant, left, left_recent);
                    if config.utility_evict {
                        utility_evicted[*tenant as usize] += evicted;
                    }
                }
            }
        } else if config.utility_evict {
            for shard in map.overflowing() {
                map.note_wave(shard);
                // The shard's residents with their recent cached
                // instructions, ascending tenant order.
                let mut load = map.shard_load(shard);
                let mut remaining: BTreeMap<u16, VecDeque<(RegionId, u64, u64)>> = BTreeMap::new();
                let mut doomed: BTreeMap<u16, Vec<RegionId>> = BTreeMap::new();
                let mut zeroed: Vec<u16> = Vec::new();
                while load.iter().map(|&(_, b, _)| b).sum::<u64>() > map.capacity() {
                    // Victim: most bytes per recent cached instruction
                    // — cold bulk sheds before hot working sets. The
                    // comparison cross-multiplies in u128 so no float
                    // ever enters an eviction decision; ties go to the
                    // larger footprint, then the lower tenant id (the
                    // vec is tenant-ascending).
                    let mut victim = 0usize;
                    for (i, &(_, b, r)) in load.iter().enumerate() {
                        let (_, vb, vr) = load[victim];
                        let ui = b as u128 * (u128::from(vr) + 1);
                        let uv = vb as u128 * (u128::from(r) + 1);
                        if ui > uv || (ui == uv && b > vb) {
                            victim = i;
                        }
                    }
                    let tv = load[victim].0;
                    if load[victim].1 == 0 {
                        break; // nothing shedable is left in this shard
                    }
                    let regs = remaining.entry(tv).or_insert_with(|| {
                        let mut regs = sessions[tv as usize]
                            .get_mut()
                            .unwrap_or_else(PoisonError::into_inner)
                            .as_ref()
                            .map(|s| s.shard_regions_with_heat(shard))
                            .unwrap_or_default();
                        // Most evictable first: highest bytes per
                        // recent instruction; ties go to the lower
                        // region id.
                        regs.sort_unstable_by(|a, b| {
                            let ua = a.1 as u128 * (u128::from(b.2) + 1);
                            let ub = b.1 as u128 * (u128::from(a.2) + 1);
                            ub.cmp(&ua).then(a.0.cmp(&b.0))
                        });
                        regs.into()
                    });
                    if regs.is_empty() {
                        // The ledger says the tenant holds bytes here
                        // but no live region backs them; zero the entry
                        // so the wave cannot spin on it.
                        load[victim].1 = 0;
                        load[victim].2 = 0;
                        zeroed.push(tv);
                        map.note_shed(shard, 0);
                        break;
                    }
                    let count = regs.len().div_ceil(2);
                    for _ in 0..count {
                        let (id, _, _) = regs.pop_front().expect("count <= len");
                        doomed.entry(tv).or_default().push(id);
                    }
                    map.note_shed(shard, count as u64);
                    utility_evicted[tv as usize] += count as u64;
                    load[victim].1 = regs.iter().map(|&(_, b, _)| b).sum();
                    load[victim].2 = regs.iter().map(|&(_, _, r)| r).sum();
                }
                // Apply the plan, one eviction pass per victim tenant.
                let left: BTreeMap<u16, (u64, u64)> =
                    load.iter().map(|&(t, b, r)| (t, (b, r))).collect();
                for (t, ids) in &doomed {
                    if !ids.is_empty() {
                        let (b, r) = left[t];
                        if let Some(session) = sessions[*t as usize]
                            .get_mut()
                            .unwrap_or_else(PoisonError::into_inner)
                            .as_mut()
                        {
                            session.evict_planned(shard, ids, b);
                        }
                        map.set_load(shard, *t, b, r);
                    }
                }
                for &t in &zeroed {
                    map.set_load(shard, t, 0, 0);
                }
            }
        } else {
            for shard in map.overflowing() {
                map.note_wave(shard);
                // The shard's residents, ascending tenant order.
                let mut bytes = map.shard_bytes(shard);
                // Per-tenant surviving regions in the shard (fetched
                // lazily; only victims pay the scan) and planned
                // victims, keyed by tenant id.
                let mut remaining: BTreeMap<u16, VecDeque<(RegionId, u64)>> = BTreeMap::new();
                let mut doomed: BTreeMap<u16, Vec<RegionId>> = BTreeMap::new();
                let mut zeroed: Vec<u16> = Vec::new();
                while bytes.iter().map(|&(_, b)| b).sum::<u64>() > map.capacity() {
                    // Heaviest resident; ties go to the lowest tenant
                    // id (the vec is tenant-ascending).
                    let mut victim = 0usize;
                    for (i, &(_, b)) in bytes.iter().enumerate() {
                        if b > bytes[victim].1 {
                            victim = i;
                        }
                    }
                    let tv = bytes[victim].0;
                    if bytes[victim].1 == 0 {
                        break; // nothing shedable is left in this shard
                    }
                    let regs = remaining.entry(tv).or_insert_with(|| {
                        sessions[tv as usize]
                            .get_mut()
                            .unwrap_or_else(PoisonError::into_inner)
                            .as_ref()
                            .map(|s| s.shard_regions(shard).into())
                            .unwrap_or_default()
                    });
                    if regs.is_empty() {
                        // The ledger says the tenant holds bytes here
                        // but no live region backs them; zero the entry
                        // so the wave cannot spin on it.
                        bytes[victim].1 = 0;
                        zeroed.push(tv);
                        map.note_shed(shard, 0);
                        break;
                    }
                    let count = regs.len().div_ceil(2);
                    for _ in 0..count {
                        let (id, _) = regs.pop_front().expect("count <= len");
                        doomed.entry(tv).or_default().push(id);
                    }
                    map.note_shed(shard, count as u64);
                    bytes[victim].1 = regs.iter().map(|&(_, b)| b).sum();
                }
                // Apply the plan, one eviction pass per victim tenant.
                let left: BTreeMap<u16, u64> = bytes.iter().copied().collect();
                for (t, ids) in &doomed {
                    if !ids.is_empty() {
                        if let Some(session) = sessions[*t as usize]
                            .get_mut()
                            .unwrap_or_else(PoisonError::into_inner)
                            .as_mut()
                        {
                            session.evict_planned(shard, ids, left[t]);
                        }
                        map.set_bytes(shard, *t, left[t]);
                    }
                }
                for &t in &zeroed {
                    map.set_bytes(shard, t, 0);
                }
            }
        }
        if let Some(store) = store.as_mut() {
            store.check_invariants();
            debug_check_consistency(store, &mut map);
        }

        // Policy decisions, tenant order. Stream-adaptive policies
        // also feed the final epoch of tenants that finished this
        // round: a short stream's last explore epoch is often its
        // last epoch, and without this decision the engine would
        // never reach exploit (leaving `first_exploit_round` null for
        // a tenant that did learn a best selector).
        if config.adaptive {
            let deciders: Vec<usize> = if config.policy.adaptive && !finished_now.is_empty() {
                let mut d = active.clone();
                d.extend(finished_now.iter().copied());
                d.sort_unstable();
                d
            } else {
                active.clone()
            };
            for &t in &deciders {
                let e = match outcomes[t] {
                    Some(Outcome::Ran(e)) => e,
                    _ => continue,
                };
                let decision = engines[t].on_epoch(&e);
                if let Some((kind, reason)) = decision {
                    let lifetime = ledgers[t].epochs;
                    if let Some(session) = sessions[t]
                        .get_mut()
                        .unwrap_or_else(PoisonError::into_inner)
                        .as_mut()
                    {
                        switches.push(SwitchRecord {
                            tenant: t as u16,
                            workload: session.workload(),
                            epoch: lifetime,
                            from: session.kind(),
                            to: kind,
                            reason,
                        });
                        session.switch_selector(kind, &sim_configs[t]);
                    }
                }
            }
        }

        // Periodic checkpoints — what crash recovery rewinds to. Taken
        // after policy decisions so a checkpoint never resurrects a
        // selector the engine just abandoned.
        if config.checkpoint_every > 0 && (round + 1).is_multiple_of(config.checkpoint_every) {
            for &t in &active {
                if let Some(session) = sessions[t]
                    .get_mut()
                    .unwrap_or_else(PoisonError::into_inner)
                    .as_ref()
                {
                    let snap = freeze_tenant(session, &engines[t]);
                    ledgers[t].checkpoints += 1;
                    ledgers[t].checkpoint_bytes = tenant_snapshot_bytes(&snap);
                    checkpoints[t] = Some(Checkpoint {
                        snap,
                        pos: session.pos(),
                        epoch: ledgers[t].epochs,
                    });
                }
            }
        }

        // First round at which each tenant's engine was exploiting —
        // for warm-restored engines already past exploration, that is
        // their first active round (even if they also finish in it).
        for &t in &ran {
            if first_exploit_round[t].is_none() && engines[t].exploiting() {
                first_exploit_round[t] = Some(round);
            }
        }

        round += 1;
    }
    q.rounds = round;

    // --- Assemble the deterministic reports --------------------------
    let mut tenants = Vec::with_capacity(specs.len());
    let mut run_reports = Vec::with_capacity(specs.len());
    let mut snapshot_tenants = Vec::with_capacity(specs.len());
    let mut shard_smc = vec![0u64; config.shard_count];
    for (t, cell) in sessions.iter_mut().enumerate() {
        let slot = cell.get_mut().unwrap_or_else(PoisonError::into_inner);
        // Every tenant ends holding a session (finished and
        // quarantined sessions are retained); materialize an empty one
        // defensively if that invariant ever breaks.
        let session = slot.get_or_insert_with(|| {
            TenantSession::new(
                t as u16,
                &specs[t],
                engines[t].current(),
                &sim_configs[t],
                config.shard_count,
            )
        });
        ledgers[t].fold_session(session);
        // The engine is the authority on its own switch count; the
        // global log (plus any decisions a crash rewound past) must
        // agree with it.
        debug_assert_eq!(
            engines[t].switches() + ledgers[t].forgotten_switches,
            switches.iter().filter(|s| s.tenant == t as u16).count() as u64
                + warm_slots[t].map_or(0, |ts| ts.policy.switches),
            "engine switch count drifted from the switch log"
        );
        for (s, &n) in ledgers[t].smc_by_shard.iter().enumerate() {
            shard_smc[s] += n;
        }
        let dip = std::mem::take(&mut dips[t]).finish();
        let led = &ledgers[t];
        tenants.push(TenantSummary {
            tenant: t as u16,
            workload: session.workload(),
            final_selector: session.kind().name(),
            epochs: led.epochs,
            switches: engines[t].switches() + led.forgotten_switches,
            admitted: was_admitted[t],
            admitted_round: admitted_round[t],
            admission_wait: admission_wait[t],
            finished_round: finished_round[t],
            first_exploit_round: first_exploit_round[t],
            total_insts: led.total_insts,
            cache_insts: led.cache_insts,
            insts_selected: led.insts_selected,
            regions_selected: led.regions_selected,
            pressure_evicted: led.pressure_evicted,
            utility_evictions: utility_evicted[t],
            policy_features: tenant_features[t],
            smc_events: led.smc_events,
            smc_invalidated: led.smc_invalidated,
            reformations: led.reformations,
            blacklisted_targets: led.blacklisted_targets,
            blacklist_hits: led.blacklist_hits,
            disconnects: led.disconnects,
            reconnects: led.reconnects,
            crashes: led.crashes,
            recovered_epochs: led.recovered_epochs,
            checkpoints: led.checkpoints,
            checkpoint_bytes: led.checkpoint_bytes,
            quarantined: led.quarantined,
            quarantine_retries: quarantine_retries[t],
            smc_dips: dip.dips,
            max_dip_depth: dip.max_depth,
            max_dip_recovery_epochs: dip.max_recovery_epochs,
        });
        run_reports.push(session.report());
        snapshot_tenants.push(freeze_tenant(session, &engines[t]));
    }
    let store_totals = store.as_ref().map(|s| s.totals()).unwrap_or_default();
    let store_stats: Vec<StoreShardStats> = match store {
        Some(s) => s.into_stats(),
        None => vec![StoreShardStats::default(); config.shard_count],
    };
    let shards = map
        .into_stats()
        .into_iter()
        .enumerate()
        .map(|(i, (s, final_bytes))| ShardReport {
            shard: i,
            peak_bytes: s.peak_bytes,
            contended_rounds: s.contended_rounds,
            pressure_waves: s.pressure_waves,
            shed_actions: s.shed_actions,
            evicted_regions: s.evicted_regions,
            smc_invalidated: shard_smc[i],
            final_bytes,
            unique_bytes: store_stats[i].peak_unique_bytes,
            logical_bytes: store_stats[i].peak_logical_bytes,
            shared_refs: store_stats[i].peak_shared_refs,
        })
        .collect();

    Ok(ServeOutcome {
        report: ServeReport {
            epoch_len: config.epoch_len,
            shard_count: config.shard_count,
            shard_capacity: config.shard_capacity,
            max_active: config.max_active,
            queue_capacity: config.queue_capacity,
            warm_started: warm.is_some(),
            warm_regions_restored,
            warm_rejected_tenants,
            smc_write_ppm: config.sim.faults.smc_write_ppm,
            fault_seed: config.sim.faults.seed,
            flush_wave_ppm: config.sim.faults.flush_wave_ppm,
            counter_fault_ppm: config.sim.faults.counter_fault_ppm,
            churn_active: config.churn.active(),
            churn_seed: config.churn.seed,
            checkpoint_every: config.checkpoint_every,
            share_active: config.share,
            unique_bytes: store_totals.unique_bytes,
            logical_bytes: store_totals.logical_bytes,
            shared_refs: store_totals.shared_refs,
            queue: q,
            tenants,
            shards,
            switches,
            total_insts,
            insts_per_sec: None,
        },
        run_reports,
        snapshot: ServeSnapshot {
            tenants: snapshot_tenants,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_workloads::{Scale, suite};

    fn two_specs() -> Vec<TenantSpec> {
        suite()
            .iter()
            .take(2)
            .map(|w| TenantSpec::record(w, 7, Scale::Test))
            .collect()
    }

    fn churn_config() -> ServeConfig {
        ServeConfig {
            churn: ChurnConfig {
                seed: 5,
                arrival_spread: 3,
                max_disconnects: 2,
                max_gap: 2,
                crash_percent: 50,
            },
            checkpoint_every: 2,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn serves_everything_to_completion() {
        let specs = two_specs();
        let out = serve(&specs, &ServeConfig::default(), 1).unwrap();
        assert_eq!(out.report.tenants.len(), 2);
        assert_eq!(out.run_reports.len(), 2);
        for (t, rep) in out.report.tenants.iter().zip(&out.run_reports) {
            assert!(t.total_insts > 0);
            assert_eq!(t.total_insts, rep.total_insts);
            assert_eq!(t.cache_insts, rep.cache_insts);
        }
        let sum: u64 = out.report.tenants.iter().map(|t| t.total_insts).sum();
        assert_eq!(out.report.total_insts, sum);
        assert!(out.report.insts_per_round() > 0.0);
    }

    #[test]
    fn bounded_queue_exerts_backpressure() {
        let specs: Vec<TenantSpec> = suite()
            .iter()
            .take(6)
            .map(|w| TenantSpec::record(w, 7, Scale::Test))
            .collect();
        let config = ServeConfig {
            max_active: 2,
            queue_capacity: 1,
            ..ServeConfig::default()
        };
        let out = serve(&specs, &config, 2).unwrap();
        let q = &out.report.queue;
        assert_eq!(q.admissions, 6, "everyone is eventually admitted");
        assert_eq!(q.peak_active, 2);
        assert_eq!(q.peak_queue_depth, 1);
        assert!(q.deferred_tenant_rounds > 0, "arrivals piled up: {q:?}");
        assert_eq!(q.shed_arrivals, 0, "no timeout, no shedding");
        // Later tenants were admitted later.
        let rounds: Vec<u64> = out
            .report
            .tenants
            .iter()
            .map(|t| t.admitted_round)
            .collect();
        assert!(rounds.windows(2).all(|w| w[0] <= w[1]), "{rounds:?}");
        assert!(rounds[5] > rounds[0]);
    }

    #[test]
    fn static_mode_never_switches() {
        let specs = two_specs();
        let config = ServeConfig {
            adaptive: false,
            ..ServeConfig::default()
        };
        let out = serve(&specs, &config, 1).unwrap();
        assert!(out.report.switches.is_empty());
        for t in &out.report.tenants {
            assert_eq!(t.final_selector, "NET");
            assert_eq!(t.switches, 0);
        }
    }

    #[test]
    fn degenerate_configs_are_typed_errors() {
        let specs = two_specs();
        let config = ServeConfig {
            epoch_len: 0,
            ..ServeConfig::default()
        };
        let err = serve(&specs, &config, 1).unwrap_err();
        assert!(matches!(err, ServeError::InvalidConfig(_)), "{err}");
        let config = ServeConfig {
            churn: ChurnConfig {
                crash_percent: 101,
                ..ChurnConfig::default()
            },
            ..ServeConfig::default()
        };
        let err = serve(&specs, &config, 1).unwrap_err();
        assert!(matches!(err, ServeError::InvalidConfig(_)), "{err}");
    }

    #[test]
    fn zero_capacity_queue_terminates_and_admits_everyone() {
        // Regression: queue_capacity = 0 used to livelock — nothing
        // could ever enter a queue that holds zero tenants, so the
        // admission loop spun forever with everybody pending.
        let specs: Vec<TenantSpec> = suite()
            .iter()
            .take(4)
            .map(|w| TenantSpec::record(w, 7, Scale::Test))
            .collect();
        let config = ServeConfig {
            max_active: 2,
            queue_capacity: 0,
            ..ServeConfig::default()
        };
        let out = serve(&specs, &config, 2).unwrap();
        let q = &out.report.queue;
        assert_eq!(q.admissions, 4, "everyone is admitted directly");
        assert_eq!(q.peak_active, 2);
        assert_eq!(q.peak_queue_depth, 0, "nothing is ever buffered");
        assert_eq!(q.queued_tenant_rounds, 0);
        assert!(q.deferred_tenant_rounds > 0, "arrivals still wait: {q:?}");
        for t in &out.report.tenants {
            assert!(t.total_insts > 0, "every tenant ran to completion");
        }
    }

    #[test]
    fn summary_switches_agree_with_the_switch_log() {
        let specs = two_specs();
        let out = serve(&specs, &ServeConfig::default(), 1).unwrap();
        for t in &out.report.tenants {
            let logged = out
                .report
                .switches
                .iter()
                .filter(|s| s.tenant == t.tenant)
                .count() as u64;
            assert_eq!(t.switches, logged, "tenant {}", t.tenant);
        }
    }

    #[test]
    fn warm_start_runs_from_the_snapshot() {
        let specs = two_specs();
        let config = ServeConfig::default();
        let cold = serve(&specs, &config, 1).unwrap();
        let warm = serve_with(&specs, &config, 1, Some(&cold.snapshot)).unwrap();
        assert!(warm.report.warm_started);
        assert!(!cold.report.warm_started);
        assert_eq!(cold.report.warm_regions_restored, 0);
        assert_eq!(
            warm.report.warm_regions_restored,
            cold.snapshot.region_count()
        );
        // The warm run replays the same streams, so totals agree even
        // though the cache starts hot.
        assert_eq!(cold.report.total_insts, warm.report.total_insts);
        for (c, w) in cold.report.tenants.iter().zip(&warm.report.tenants) {
            assert!(w.switches >= c.switches, "switch count carries over");
        }
    }

    #[test]
    fn tenant_fault_seeds_are_distinct_and_stable() {
        let a = tenant_fault_seed(7, 0);
        let b = tenant_fault_seed(7, 1);
        let c = tenant_fault_seed(8, 0);
        assert_ne!(a, b, "tenants get distinct schedules");
        assert_ne!(a, c, "the base seed matters");
        assert_eq!(a, tenant_fault_seed(7, 0), "pure function of its inputs");
    }

    fn smc_config() -> ServeConfig {
        let mut config = ServeConfig::default();
        config.sim.faults.seed = 42;
        config.sim.faults.smc_write_ppm = 4_000;
        config
    }

    #[test]
    fn smc_serving_is_identical_for_every_worker_count() {
        let specs: Vec<TenantSpec> = suite()
            .iter()
            .take(4)
            .map(|w| TenantSpec::record(w, 7, Scale::Test))
            .collect();
        let config = smc_config();
        let one = serve(&specs, &config, 1).unwrap();
        let eight = serve(&specs, &config, 8).unwrap();
        assert_eq!(one.report, eight.report);
        assert_eq!(one.run_reports, eight.run_reports);
        assert_eq!(one.snapshot, eight.snapshot);
        assert!(
            one.report.smc_invalidated_regions() > 0,
            "this rate must strike over the test streams: {:?}",
            one.report.tenants
        );
        assert_eq!(one.report.smc_write_ppm, 4_000);
        assert_eq!(one.report.fault_seed, 42);
        // Shard attribution conserves the per-tenant counts.
        let by_shard: u64 = one.report.shards.iter().map(|s| s.smc_invalidated).sum();
        assert_eq!(by_shard, one.report.smc_invalidated_regions());
    }

    #[test]
    fn flush_and_counter_faults_serve_identically_for_every_worker_count() {
        // The flush-wave and counter-fault scenarios, measured the way
        // the SMC one is: per-tenant seeded schedules, worker-count
        // identity, and the configured rates echoed in the report.
        let specs = two_specs();
        let mut config = ServeConfig::default();
        config.sim.faults.seed = 2005;
        config.sim.faults.flush_wave_ppm = 2_000;
        config.sim.faults.counter_fault_ppm = 2_000;
        let one = serve(&specs, &config, 1).unwrap();
        let eight = serve(&specs, &config, 8).unwrap();
        assert_eq!(one.report, eight.report);
        assert_eq!(one.run_reports, eight.run_reports);
        assert_eq!(one.snapshot, eight.snapshot);
        assert_eq!(one.report.flush_wave_ppm, 2_000);
        assert_eq!(one.report.counter_fault_ppm, 2_000);
        let waves: u64 = one
            .run_reports
            .iter()
            .map(|r| r.resilience.flush_waves)
            .sum();
        assert!(waves > 0, "flush waves must strike at this rate");
        let ctr: u64 = one
            .run_reports
            .iter()
            .map(|r| r.resilience.counter_faults)
            .sum();
        assert!(ctr > 0, "counter faults must strike at this rate");
    }

    #[test]
    fn smc_snapshot_round_trips_the_blacklist() {
        let specs = two_specs();
        let mut config = smc_config();
        config.sim.faults.smc_write_ppm = 50_000; // hammer the cache
        config.sim.faults.blacklist_after = 2;
        let cold = serve(&specs, &config, 1).unwrap();
        assert!(
            cold.report.blacklisted_targets() > 0,
            "this rate must demote something: {:?}",
            cold.report.tenants
        );
        assert!(
            cold.snapshot
                .tenants
                .iter()
                .any(|t| !t.blacklist.is_empty()),
            "demotions persist in the snapshot"
        );
        let warm = serve_with(&specs, &config, 2, Some(&cold.snapshot)).unwrap();
        assert!(warm.report.warm_started);
        assert_eq!(warm.report.warm_rejected_tenants, 0);
    }

    #[test]
    fn serve_warm_cold_starts_rejected_slots() {
        let specs = two_specs();
        let config = ServeConfig::default();
        let cold = serve(&specs, &config, 1).unwrap();
        let mut warm = cold.snapshot.clone().into_warm_start();
        warm.tenants[1] = None; // as if the lenient loader rejected it
        warm.rejected = 1;
        let out = serve_warm(&specs, &config, 1, &warm).unwrap();
        assert!(out.report.warm_started);
        assert_eq!(out.report.warm_rejected_tenants, 1);
        assert_eq!(
            out.report.warm_regions_restored,
            cold.snapshot.tenants[0].regions.len() as u64,
            "only the surviving slot restores"
        );
        // The rejected tenant replays the same stream from cold, so
        // totals still match the cold run.
        assert_eq!(out.report.total_insts, cold.report.total_insts);
        // A fully rejected warm start is just a cold run that says so.
        let none = serve_warm(
            &specs,
            &config,
            1,
            &WarmStart {
                tenants: vec![None, None],
                rejected: 2,
            },
        )
        .unwrap();
        assert_eq!(none.report.warm_rejected_tenants, 2);
        assert_eq!(none.report.warm_regions_restored, 0);
        assert_eq!(none.report.total_insts, cold.report.total_insts);
    }

    #[test]
    fn mismatched_snapshot_is_a_typed_error() {
        let specs = two_specs();
        let config = ServeConfig::default();
        let cold = serve(&specs, &config, 1).unwrap();
        let mut snap = cold.snapshot;
        snap.tenants.pop();
        let err = serve_with(&specs, &config, 1, Some(&snap)).unwrap_err();
        assert!(
            matches!(
                err,
                ServeError::Snapshot(SnapshotError::TenantCountMismatch { .. })
            ),
            "{err}"
        );
    }

    #[test]
    fn churned_serving_completes_and_is_identical_for_every_worker_count() {
        let specs: Vec<TenantSpec> = suite()
            .iter()
            .take(4)
            .map(|w| TenantSpec::record(w, 7, Scale::Test))
            .collect();
        let config = churn_config();
        let one = serve(&specs, &config, 1).unwrap();
        let eight = serve(&specs, &config, 8).unwrap();
        assert_eq!(one.report, eight.report);
        assert_eq!(one.run_reports, eight.run_reports);
        assert_eq!(one.snapshot, eight.snapshot);
        assert!(one.report.churn_active);
        assert!(
            one.report.disconnects() + one.report.crashes() > 0,
            "this schedule must churn somebody: {:?}",
            one.report.tenants
        );
        assert_eq!(
            one.report.reconnects(),
            one.report.disconnects() + one.report.crashes(),
            "every departed tenant came back"
        );
        assert_eq!(one.report.quarantined_tenants(), 0, "clean path");
        // Everyone still finishes their whole workload; crash recovery
        // re-executes work, so totals can only grow versus a calm run.
        let calm = serve(&specs, &ServeConfig::default(), 1).unwrap();
        for (churned, base) in one.report.tenants.iter().zip(&calm.report.tenants) {
            assert!(!churned.quarantined);
            assert!(
                churned.total_insts >= base.total_insts,
                "tenant {} lost work: {} < {}",
                churned.tenant,
                churned.total_insts,
                base.total_insts
            );
        }
    }

    #[test]
    fn crash_recovery_resumes_from_the_last_checkpoint() {
        let specs = two_specs();
        let config = ServeConfig {
            churn: ChurnConfig {
                seed: 11,
                arrival_spread: 0,
                max_disconnects: 0,
                max_gap: 1,
                crash_percent: 100,
            },
            checkpoint_every: 2,
            ..ServeConfig::default()
        };
        let out = serve(&specs, &config, 2).unwrap();
        assert_eq!(out.report.crashes(), 2, "every tenant crashes once");
        assert!(out.report.checkpoints_taken() > 0);
        assert!(out.report.checkpoint_bytes() > 0);
        assert_eq!(out.report.quarantined_tenants(), 0);
        // Recovered tenants finish their workloads: lifetime totals
        // cover at least the whole stream (re-execution can only add).
        let calm = serve(&specs, &ServeConfig::default(), 1).unwrap();
        for (crashed, base) in out.report.tenants.iter().zip(&calm.report.tenants) {
            assert!(crashed.total_insts >= base.total_insts);
            assert_eq!(crashed.crashes, 1);
            assert_eq!(crashed.reconnects, 1);
        }
    }

    #[test]
    fn warm_churned_serving_is_identical_for_every_worker_count() {
        let specs = two_specs();
        let calm = serve(&specs, &ServeConfig::default(), 1).unwrap();
        let config = churn_config();
        let one = serve_with(&specs, &config, 1, Some(&calm.snapshot)).unwrap();
        let eight = serve_with(&specs, &config, 8, Some(&calm.snapshot)).unwrap();
        assert_eq!(one.report, eight.report);
        assert_eq!(one.run_reports, eight.run_reports);
        assert_eq!(one.snapshot, eight.snapshot);
        assert!(one.report.warm_started && one.report.churn_active);
    }

    #[test]
    fn poison_pill_quarantines_exactly_one_tenant() {
        let specs: Vec<TenantSpec> = suite()
            .iter()
            .take(3)
            .map(|w| TenantSpec::record(w, 7, Scale::Test))
            .collect();
        let config = ServeConfig {
            chaos: ChaosConfig {
                poison_tenant: Some(1),
                poison_epoch: 2,
            },
            ..ServeConfig::default()
        };
        let one = serve(&specs, &config, 1).unwrap();
        let eight = serve(&specs, &config, 8).unwrap();
        assert_eq!(one.report, eight.report, "quarantine is deterministic");
        assert_eq!(one.run_reports, eight.run_reports);
        assert_eq!(one.snapshot, eight.snapshot);
        assert_eq!(one.report.quarantined_tenants(), 1);
        assert!(one.report.tenants[1].quarantined);
        assert_eq!(one.report.tenants[1].epochs, 2, "died entering epoch 2");
        // The failure domain held: everyone else finished their full
        // workload exactly as on the clean path.
        let calm = serve(&specs, &ServeConfig::default(), 1).unwrap();
        for t in [0usize, 2] {
            assert!(!one.report.tenants[t].quarantined);
            assert_eq!(
                one.report.tenants[t].total_insts, calm.report.tenants[t].total_insts,
                "tenant {t} unaffected by the quarantine"
            );
        }
    }

    #[test]
    fn quarantine_retry_readmits_once_with_a_fresh_session() {
        let specs: Vec<TenantSpec> = suite()
            .iter()
            .take(3)
            .map(|w| TenantSpec::record(w, 7, Scale::Test))
            .collect();
        let config = ServeConfig {
            chaos: ChaosConfig {
                poison_tenant: Some(1),
                poison_epoch: 2,
            },
            quarantine_penalty: 3,
            ..ServeConfig::default()
        };
        let one = serve(&specs, &config, 1).unwrap();
        let eight = serve(&specs, &config, 8).unwrap();
        assert_eq!(one.report, eight.report, "retry is deterministic");
        assert_eq!(one.run_reports, eight.run_reports);
        assert_eq!(one.snapshot, eight.snapshot);
        // The pill fired once, the tenant sat out the penalty, came
        // back cold, and this time (the pill is spent) finished.
        assert_eq!(one.report.quarantine_retries(), 1);
        assert_eq!(one.report.tenants[1].quarantine_retries, 1);
        assert_eq!(one.report.quarantined_tenants(), 0, "the retry saved it");
        let calm = serve(&specs, &ServeConfig::default(), 1).unwrap();
        assert!(
            one.report.tenants[1].total_insts >= calm.report.tenants[1].total_insts,
            "the fresh session replays the whole workload"
        );
        for t in [0usize, 2] {
            assert_eq!(
                one.report.tenants[t].total_insts, calm.report.tenants[t].total_insts,
                "tenant {t} unaffected by the retry"
            );
        }
    }

    #[test]
    fn zero_penalty_keeps_quarantine_permanent() {
        let specs = two_specs();
        let config = ServeConfig {
            chaos: ChaosConfig {
                poison_tenant: Some(0),
                poison_epoch: 1,
            },
            ..ServeConfig::default()
        };
        let out = serve(&specs, &config, 1).unwrap();
        assert_eq!(out.report.quarantined_tenants(), 1);
        assert_eq!(out.report.quarantine_retries(), 0);
    }

    #[test]
    fn admission_wait_histogram_accounts_every_admission() {
        let specs: Vec<TenantSpec> = suite()
            .iter()
            .take(6)
            .map(|w| TenantSpec::record(w, 7, Scale::Test))
            .collect();
        let config = ServeConfig {
            max_active: 2,
            queue_capacity: 1,
            ..ServeConfig::default()
        };
        let out = serve(&specs, &config, 1).unwrap();
        let q = &out.report.queue;
        assert_eq!(
            q.admission_wait_hist.iter().sum::<u64>(),
            q.admissions,
            "one histogram sample per admission"
        );
        assert!(q.admission_wait_hist[0] > 0, "someone got in immediately");
        assert!(
            q.admission_wait_hist[1..].iter().sum::<u64>() > 0,
            "the bounded queue made someone wait: {:?}",
            q.admission_wait_hist
        );
        // With no churn everyone arrives at round zero, so each
        // tenant's wait is exactly its admission round.
        for t in &out.report.tenants {
            assert_eq!(t.admission_wait, t.admitted_round);
        }
        assert!(out.report.mean_admission_wait() > 0.0);
    }

    #[test]
    fn shared_serving_dedups_identical_tenants() {
        // Four replicas of two workloads: the store should hold one
        // copy of each workload's regions while eight tenants run.
        let specs = TenantSpec::replicate(two_specs(), 4);
        let config = ServeConfig {
            share: true,
            ..ServeConfig::default()
        };
        let one = serve(&specs, &config, 1).unwrap();
        let eight = serve(&specs, &config, 8).unwrap();
        assert_eq!(one.report, eight.report, "share mode is deterministic");
        assert_eq!(one.run_reports, eight.run_reports);
        assert_eq!(one.snapshot, eight.snapshot);
        assert!(one.report.share_active);
        assert!(one.report.unique_bytes > 0);
        assert!(one.report.shared_refs > 0, "replicas shared entries");
        assert!(
            one.report.dedup_ratio() > 1.5,
            "homogeneous tenants must dedup: {}",
            one.report.dedup_ratio()
        );
        // The dedup payoff: unique bytes stay near the 1-replica run
        // instead of scaling with the tenant count.
        let base = serve(&two_specs(), &config, 1).unwrap();
        assert!(
            one.report.unique_bytes <= 2 * base.report.unique_bytes,
            "unique bytes scaled with replicas: {} vs {}",
            one.report.unique_bytes,
            base.report.unique_bytes
        );
        // Per-shard stats are populated and consistent.
        for s in &one.report.shards {
            assert!(s.unique_bytes <= s.logical_bytes);
        }
    }

    #[test]
    fn share_mode_does_not_change_any_tenants_execution() {
        // Parity: with capacity high enough that pressure never fires,
        // sharing is pure accounting — every tenant's run report and
        // snapshot must be byte-identical to the unshared serve.
        let specs = two_specs();
        let off_cfg = ServeConfig {
            shard_capacity: u64::MAX,
            ..ServeConfig::default()
        };
        let on_cfg = ServeConfig {
            share: true,
            shard_capacity: u64::MAX,
            ..ServeConfig::default()
        };
        let off = serve(&specs, &off_cfg, 1).unwrap();
        let on = serve(&specs, &on_cfg, 1).unwrap();
        assert_eq!(off.run_reports, on.run_reports);
        assert_eq!(off.snapshot, on.snapshot);
        assert_eq!(off.report.total_insts, on.report.total_insts);
        assert!(!off.report.share_active && on.report.share_active);
        assert_eq!(off.report.unique_bytes, 0, "store inert with sharing off");
    }

    #[test]
    fn shared_snapshot_warm_starts_and_rededups() {
        // Snapshots store per-tenant regions (RSNP unchanged); a warm
        // start into share mode re-dedups them on load.
        let specs = TenantSpec::replicate(two_specs(), 2);
        let config = ServeConfig {
            share: true,
            ..ServeConfig::default()
        };
        let cold = serve(&specs, &config, 1).unwrap();
        let warm1 = serve_with(&specs, &config, 1, Some(&cold.snapshot)).unwrap();
        let warm8 = serve_with(&specs, &config, 8, Some(&cold.snapshot)).unwrap();
        assert_eq!(warm1.report, warm8.report);
        assert_eq!(warm1.run_reports, warm8.run_reports);
        assert_eq!(warm1.snapshot, warm8.snapshot);
        assert!(warm1.report.warm_started);
        assert!(warm1.report.unique_bytes > 0);
        assert!(
            warm1.report.dedup_ratio() > 1.0,
            "restored replicas re-dedup: {}",
            warm1.report.dedup_ratio()
        );
    }

    #[test]
    fn overload_sheds_arrivals_and_still_serves_everyone() {
        let specs: Vec<TenantSpec> = suite()
            .iter()
            .take(6)
            .map(|w| TenantSpec::record(w, 7, Scale::Test))
            .collect();
        let config = ServeConfig {
            max_active: 1,
            queue_capacity: 1,
            admission_timeout: 2,
            ..ServeConfig::default()
        };
        let one = serve(&specs, &config, 1).unwrap();
        let four = serve(&specs, &config, 4).unwrap();
        assert_eq!(one.report, four.report);
        let q = &one.report.queue;
        assert!(q.shed_arrivals > 0, "sustained pressure must shed: {q:?}");
        assert!(q.admission_retries > 0, "shed arrivals retry: {q:?}");
        for t in &one.report.tenants {
            assert!(t.total_insts > 0, "tenant {} was starved", t.tenant);
        }
    }

    /// A config whose shards overflow constantly, so pressure waves
    /// fire on every path the eviction policy touches.
    fn pressured_config() -> ServeConfig {
        ServeConfig {
            shard_count: 4,
            shard_capacity: 384,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn utility_eviction_fires_under_pressure_and_stays_deterministic() {
        let specs: Vec<TenantSpec> = suite()
            .iter()
            .take(8)
            .map(|w| TenantSpec::record(w, 7, Scale::Test))
            .collect();
        let legacy = serve(&specs, &pressured_config(), 1).unwrap();
        assert!(
            legacy.report.shed_actions() > 0,
            "the squeeze must actually squeeze"
        );
        assert!(
            legacy
                .report
                .tenants
                .iter()
                .all(|t| t.utility_evictions == 0),
            "knob off, counter silent"
        );
        let config = ServeConfig {
            utility_evict: true,
            ..pressured_config()
        };
        let one = serve(&specs, &config, 1).unwrap();
        let eight = serve(&specs, &config, 8).unwrap();
        assert_eq!(one.report, eight.report, "utility eviction is 1-vs-8 safe");
        assert_eq!(one.run_reports, eight.run_reports);
        assert_eq!(one.snapshot, eight.snapshot);
        let chosen: u64 = one.report.tenants.iter().map(|t| t.utility_evictions).sum();
        let evicted: u64 = one.report.tenants.iter().map(|t| t.pressure_evicted).sum();
        assert!(chosen > 0, "pressure fired but nothing was utility-chosen");
        assert_eq!(
            chosen, evicted,
            "with the knob on, every pressure victim goes through utility scoring"
        );
    }

    #[test]
    fn utility_eviction_composes_with_the_shared_store() {
        let specs = TenantSpec::replicate(two_specs(), 3);
        let config = ServeConfig {
            share: true,
            utility_evict: true,
            ..pressured_config()
        };
        let one = serve(&specs, &config, 1).unwrap();
        let eight = serve(&specs, &config, 8).unwrap();
        assert_eq!(one.report, eight.report);
        assert_eq!(one.snapshot, eight.snapshot);
        assert!(one.report.shed_actions() > 0, "shared shards overflowed");
        let chosen: u64 = one.report.tenants.iter().map(|t| t.utility_evictions).sum();
        assert!(chosen > 0, "shared waves count their utility victims");
    }

    #[test]
    fn stream_adaptive_policy_leaves_no_tenant_unexploited() {
        // The whole suite, stream lengths from one epoch up: every
        // tenant's schedule must be sized so its engine reaches the
        // exploit phase before its stream runs out.
        let specs: Vec<TenantSpec> = suite()
            .iter()
            .map(|w| TenantSpec::record(w, 7, Scale::Test))
            .collect();
        let config = ServeConfig {
            policy: PolicyConfig {
                adaptive: true,
                ..PolicyConfig::default()
            },
            ..ServeConfig::default()
        };
        let out = serve(&specs, &config, 2).unwrap();
        assert_eq!(out.report.never_exploited(), 0, "{:#?}", {
            let stuck: Vec<_> = out
                .report
                .tenants
                .iter()
                .filter(|t| t.first_exploit_round.is_none())
                .map(|t| (t.tenant, t.workload, t.epochs))
                .collect();
            stuck
        });
        for t in &out.report.tenants {
            let f = t.policy_features.expect("adaptive derivation ran");
            assert!(f.explore_len >= 1);
            assert_eq!(
                u64::from(f.explore_len),
                f.expected_epochs.div_ceil(2).clamp(1, 4),
                "tenant {} explore budget drifted from its stream shape",
                t.tenant
            );
        }
    }

    #[test]
    fn extended_pool_serves_identically_on_any_worker_count() {
        let specs: Vec<TenantSpec> = suite()
            .iter()
            .take(6)
            .map(|w| TenantSpec::record(w, 7, Scale::Test))
            .collect();
        let config = ServeConfig {
            policy: PolicyConfig {
                adaptive: true,
                candidates: rsel_core::select::SelectorKind::extended().to_vec(),
                ..PolicyConfig::default()
            },
            utility_evict: true,
            ..pressured_config()
        };
        let one = serve(&specs, &config, 1).unwrap();
        let eight = serve(&specs, &config, 8).unwrap();
        assert_eq!(one.report, eight.report, "extended pool is 1-vs-8 safe");
        assert_eq!(one.run_reports, eight.run_reports);
        assert_eq!(one.snapshot, eight.snapshot);
        assert_eq!(one.report.never_exploited(), 0);
        // Long-enough streams keep more than the core four candidates
        // — the extended pool is actually in play.
        assert!(
            one.report
                .tenants
                .iter()
                .any(|t| t.policy_features.is_some_and(|f| f.explore_len > 4)),
            "no tenant ever saw the extended candidates"
        );
    }
}
