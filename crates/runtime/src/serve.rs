//! The session scheduler: bounded admission, parallel epochs, and a
//! deterministic decision barrier.
//!
//! [`serve`] (and its warm-starting variant [`serve_with`]) drives
//! every tenant through three stages:
//!
//! 1. **Admission** — tenants arrive in id order into a bounded queue
//!    (`queue_capacity`); at most `max_active` sessions run
//!    concurrently. A full queue defers arrivals — the backpressure
//!    the [`QueueStats`](crate::QueueStats) expose. A zero-capacity
//!    queue means "no buffering": arrivals are admitted directly up to
//!    `max_active` and the rest stay deferred.
//! 2. **Rounds** — each round runs one epoch of every active session,
//!    fanned out over `jobs` scoped worker threads. Sessions only
//!    touch their own simulator and publish commutative occupancy
//!    updates to the shared map, so worker scheduling cannot affect
//!    any result.
//! 3. **Barrier** — with the workers joined, all cross-tenant
//!    decisions happen serially in deterministic order: contention and
//!    peak accounting, departures (finished tenants release their
//!    shard bytes), shard-pressure eviction (each overflowing shard
//!    plans its whole victim set — heaviest tenant sheds the oldest
//!    half of its regions there, repeatedly, until the shard fits —
//!    then applies it with one eviction pass per victim tenant), and
//!    per-tenant policy decisions.
//!
//! The outcome is byte-identical for every `jobs` value, warm-started
//! or not, and every outcome carries a
//! [`ServeSnapshot`](crate::ServeSnapshot) of the final state so the
//! next run can warm-start from it.

use crate::policy::{PolicyConfig, PolicyEngine, SwitchRecord};
use crate::report::{
    DipTracker, QueueStats, ServeOutcome, ServeReport, ShardReport, TenantSummary,
};
use crate::session::{EpochStats, TenantSession, TenantSpec};
use crate::shard::SharedCacheMap;
use crate::snapshot::{ServeSnapshot, TenantSnapshot, WarmStart};
use rsel_core::{RegionId, SimConfig};
use std::collections::VecDeque;
use std::sync::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Derives tenant `tenant`'s fault-schedule seed from the run's base
/// seed (a SplitMix64-style finalizer over the pair).
///
/// Every tenant session owns its own [`FaultInjector`]
/// (rsel_core::sim::faults::FaultInjector) seeded with this value, so
/// a tenant's self-modifying-code schedule is a function of the base
/// seed and its id alone — worker count, admission order, and the
/// other tenants cannot perturb it. That is what keeps a faulted
/// serve byte-identical for every `jobs` value.
pub fn tenant_fault_seed(base: u64, tenant: u16) -> u64 {
    let mut z = base ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(tenant) + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Configuration for a serving run.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Per-session simulator configuration.
    pub sim: SimConfig,
    /// Adaptive-policy tuning (candidates, scoring, phase-shift
    /// sensitivity).
    pub policy: PolicyConfig,
    /// Steps each session replays per round.
    pub epoch_len: usize,
    /// Most sessions allowed to run concurrently.
    pub max_active: usize,
    /// Bounded admission-queue capacity.
    pub queue_capacity: usize,
    /// Shards in the shared cache map.
    pub shard_count: usize,
    /// Per-shard byte budget; overflowing a shard triggers pressure
    /// eviction at the next barrier.
    pub shard_capacity: u64,
    /// Whether the policy engine may switch selectors; `false` serves
    /// every session on the first candidate forever.
    pub adaptive: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            sim: SimConfig::default(),
            policy: PolicyConfig::default(),
            epoch_len: 4096,
            max_active: 8,
            queue_capacity: 2,
            shard_count: 16,
            shard_capacity: 2048,
            adaptive: true,
        }
    }
}

/// Serves every spec to completion on `jobs` worker threads from a
/// cold start; the result is identical for any `jobs >= 1`. See
/// [`serve_with`] to warm-start from a snapshot.
///
/// # Panics
///
/// Panics if `specs` holds more than `u16::MAX` tenants or the
/// configuration is degenerate (zero epoch length, active limit, or
/// shard count).
pub fn serve(specs: &[TenantSpec], config: &ServeConfig, jobs: usize) -> ServeOutcome {
    serve_impl(specs, config, jobs, None, 0)
}

/// Serves every spec to completion on `jobs` worker threads,
/// warm-starting from `warm` when given: each tenant's policy engine
/// resumes with the snapshot's learned scores and phase, and its code
/// cache starts pre-populated with the snapshot's regions (rebuilt
/// against the live program). The result is identical for any
/// `jobs >= 1`, warm or cold.
///
/// `warm` must come from [`load_snapshot`](crate::load_snapshot) (or
/// an outcome of a run over the same specs and policy configuration)
/// — the loader is the validation boundary that turns corrupt or
/// mismatched snapshots into typed errors.
///
/// # Panics
///
/// Panics if `specs` holds more than `u16::MAX` tenants, the
/// configuration is degenerate (zero epoch length, active limit, or
/// shard count), or `warm` does not match `specs`/`config` (tenant
/// count, workload names, candidate list) — states the loader never
/// produces.
pub fn serve_with(
    specs: &[TenantSpec],
    config: &ServeConfig,
    jobs: usize,
    warm: Option<&ServeSnapshot>,
) -> ServeOutcome {
    match warm {
        None => serve_impl(specs, config, jobs, None, 0),
        Some(snap) => {
            let slots: Vec<Option<&TenantSnapshot>> = snap.tenants.iter().map(Some).collect();
            serve_impl(specs, config, jobs, Some(&slots), 0)
        }
    }
}

/// Serves every spec on `jobs` worker threads, warm-starting from a
/// possibly partial [`WarmStart`]: tenants whose snapshot the lenient
/// loader ([`load_warm_start`](crate::load_warm_start)) rejected hold
/// a `None` slot and cold-start, everyone else resumes warm. The
/// carried rejection count surfaces as
/// [`warm_rejected_tenants`](ServeReport::warm_rejected_tenants) in
/// the report. The result is identical for any `jobs >= 1`.
///
/// # Panics
///
/// Panics under the same conditions as [`serve_with`]; the restored
/// slots must come from the loader run against the same specs and
/// policy configuration.
pub fn serve_warm(
    specs: &[TenantSpec],
    config: &ServeConfig,
    jobs: usize,
    warm: &WarmStart,
) -> ServeOutcome {
    let slots: Vec<Option<&TenantSnapshot>> = warm.tenants.iter().map(|t| t.as_ref()).collect();
    serve_impl(specs, config, jobs, Some(&slots), warm.rejected)
}

fn serve_impl(
    specs: &[TenantSpec],
    config: &ServeConfig,
    jobs: usize,
    warm: Option<&[Option<&TenantSnapshot>]>,
    warm_rejected_tenants: u64,
) -> ServeOutcome {
    assert!(specs.len() <= u16::MAX as usize, "too many tenants");
    assert!(config.epoch_len > 0, "epochs must make progress");
    assert!(config.max_active > 0, "need at least one active session");
    assert!(config.shard_count > 0, "need at least one shard");
    let jobs = jobs.max(1);

    // Per-tenant simulator configs: each tenant's fault schedule is
    // seeded from the base seed and its id, so the schedule is a
    // property of the tenant alone. With all fault rates zero the
    // seed is never drawn and the clones are inert.
    let sim_configs: Vec<SimConfig> = (0..specs.len())
        .map(|t| {
            let mut sim = config.sim.clone();
            sim.faults.seed = tenant_fault_seed(config.sim.faults.seed, t as u16);
            sim
        })
        .collect();

    let slots: Vec<Option<&TenantSnapshot>> = match warm {
        None => vec![None; specs.len()],
        Some(s) => {
            assert_eq!(
                s.len(),
                specs.len(),
                "snapshot tenant count must match the specs"
            );
            s.to_vec()
        }
    };
    let mut map = SharedCacheMap::new(config.shard_count, config.shard_capacity, specs.len());
    let mut engines: Vec<PolicyEngine> = Vec::with_capacity(specs.len());
    let mut sessions: Vec<Mutex<TenantSession<'_>>> = Vec::with_capacity(specs.len());
    let mut warm_regions_restored = 0u64;
    for (t, spec) in specs.iter().enumerate() {
        match slots[t] {
            Some(ts) => {
                engines.push(
                    PolicyEngine::restore(config.policy.clone(), &ts.policy)
                        .expect("snapshot policy state must match the configuration"),
                );
                let session =
                    TenantSession::restore(t as u16, spec, ts, &sim_configs[t], config.shard_count)
                        .unwrap_or_else(|e| panic!("snapshot must match the specs: {e}"));
                warm_regions_restored += ts.regions.len() as u64;
                sessions.push(Mutex::new(session));
            }
            None => {
                engines.push(PolicyEngine::new(config.policy.clone()));
                sessions.push(Mutex::new(TenantSession::new(
                    t as u16,
                    spec,
                    engines[t].current(),
                    &sim_configs[t],
                    config.shard_count,
                )));
            }
        }
    }

    let mut pending: VecDeque<usize> = (0..specs.len()).collect();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut active: Vec<usize> = Vec::new();
    let mut q = QueueStats::default();
    let mut switches: Vec<SwitchRecord> = Vec::new();
    let mut admitted_round = vec![0u64; specs.len()];
    let mut finished_round = vec![0u64; specs.len()];
    let mut first_exploit_round: Vec<Option<u64>> = vec![None; specs.len()];
    let mut dips: Vec<DipTracker> = vec![DipTracker::default(); specs.len()];
    let mut total_insts = 0u64;
    let mut round = 0u64;

    while !(pending.is_empty() && queue.is_empty() && active.is_empty()) {
        // --- Admission (serial, tenant order) -------------------------
        if config.queue_capacity == 0 {
            // A zero-capacity queue buffers nothing: arrivals are
            // admitted directly up to the active limit. (Routing them
            // through the queue would livelock — nothing could ever
            // enter a queue that holds zero tenants.)
            while active.len() < config.max_active {
                match pending.pop_front() {
                    Some(t) => {
                        active.push(t);
                        admitted_round[t] = round;
                        q.admissions += 1;
                    }
                    None => break,
                }
            }
        } else {
            while queue.len() < config.queue_capacity {
                match pending.pop_front() {
                    Some(t) => queue.push_back(t),
                    None => break,
                }
            }
            while active.len() < config.max_active {
                match queue.pop_front() {
                    Some(t) => {
                        active.push(t);
                        admitted_round[t] = round;
                        q.admissions += 1;
                    }
                    None => break,
                }
            }
            // Arrivals keep the bounded queue full while the round
            // runs; whoever does not fit is deferred behind it
            // (backpressure).
            while queue.len() < config.queue_capacity {
                match pending.pop_front() {
                    Some(t) => queue.push_back(t),
                    None => break,
                }
            }
        }
        active.sort_unstable();
        q.peak_active = q.peak_active.max(active.len() as u64);
        q.peak_queue_depth = q.peak_queue_depth.max(queue.len() as u64);
        q.queued_tenant_rounds += queue.len() as u64;
        q.deferred_tenant_rounds += pending.len() as u64;

        // --- Parallel epoch execution --------------------------------
        let mut stats: Vec<Option<EpochStats>> = vec![None; specs.len()];
        if jobs <= 1 || active.len() <= 1 {
            for &t in &active {
                let session = sessions[t].get_mut().expect("session lock poisoned");
                stats[t] = Some(session.run_epoch(config.epoch_len));
                session.publish_occupancy(&map);
            }
        } else {
            let slots: Vec<Mutex<Option<EpochStats>>> =
                active.iter().map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            let workers = jobs.min(active.len());
            let (sessions_ref, active_ref, map_ref) = (&sessions, &active, &map);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| {
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&t) = active_ref.get(i) else { break };
                            let mut session =
                                sessions_ref[t].lock().expect("session lock poisoned");
                            let e = session.run_epoch(config.epoch_len);
                            session.publish_occupancy(map_ref);
                            *slots[i].lock().expect("stat slot poisoned") = Some(e);
                        }
                    });
                }
            });
            for (i, &t) in active.iter().enumerate() {
                stats[t] = slots[i].lock().expect("stat slot poisoned").take();
            }
        }

        // --- Barrier: all cross-tenant decisions, serial --------------
        map.end_round();
        for &t in &active {
            let e = stats[t].expect("active session ran");
            total_insts += e.insts;
            // Feed the tenant's dip tracker in tenant order (`active`
            // is sorted). Epochs that executed nothing say nothing
            // about the cache and are skipped.
            if e.insts > 0 {
                dips[t].on_epoch(e.hit_rate(), e.smc_invalidated > 0);
            }
        }

        // Departures release their shard bytes before pressure resolves.
        let ran = active.clone();
        let mut still_active = Vec::with_capacity(active.len());
        for &t in &active {
            let session = sessions[t].get_mut().expect("session lock poisoned");
            if session.finished() {
                finished_round[t] = round;
                map.clear_tenant(t as u16);
            } else {
                still_active.push(t);
            }
        }
        active = still_active;

        // Shard pressure: each overflowing shard is one pressure wave.
        // The wave's whole victim set is planned first (heaviest tenant
        // sheds the oldest half of its regions there, repeatedly, until
        // the shard fits), then applied with a single eviction pass per
        // victim tenant — the repeated cache rebuilds of per-batch
        // eviction were quadratic in the region count.
        for shard in map.overflowing() {
            map.note_wave(shard);
            let mut bytes = map.shard_bytes(shard);
            // Per-tenant surviving regions in the shard (fetched
            // lazily; only victims pay the scan) and planned victims.
            let mut remaining: Vec<Option<VecDeque<(RegionId, u64)>>> = vec![None; specs.len()];
            let mut doomed: Vec<Vec<RegionId>> = vec![Vec::new(); specs.len()];
            let mut zeroed: Vec<usize> = Vec::new();
            while bytes.iter().sum::<u64>() > map.capacity() {
                let mut victim = 0usize;
                for (t, &b) in bytes.iter().enumerate() {
                    if b > bytes[victim] {
                        victim = t;
                    }
                }
                if bytes[victim] == 0 {
                    break; // nothing shedable is left in this shard
                }
                let regs = remaining[victim].get_or_insert_with(|| {
                    sessions[victim]
                        .get_mut()
                        .expect("session lock poisoned")
                        .shard_regions(shard)
                        .into()
                });
                if regs.is_empty() {
                    // The ledger says the tenant holds bytes here but
                    // no live region backs them; zero the entry so the
                    // wave cannot spin on it.
                    bytes[victim] = 0;
                    zeroed.push(victim);
                    map.note_shed(shard, 0);
                    break;
                }
                let count = regs.len().div_ceil(2);
                for _ in 0..count {
                    let (id, _) = regs.pop_front().expect("count <= len");
                    doomed[victim].push(id);
                }
                map.note_shed(shard, count as u64);
                bytes[victim] = regs.iter().map(|&(_, b)| b).sum();
            }
            // Apply the plan, one eviction pass per victim tenant.
            for (t, ids) in doomed.iter().enumerate() {
                if !ids.is_empty() {
                    let session = sessions[t].get_mut().expect("session lock poisoned");
                    session.evict_planned(shard, ids, bytes[t]);
                    map.set_bytes(shard, t as u16, bytes[t]);
                }
            }
            for &t in &zeroed {
                map.set_bytes(shard, t as u16, 0);
            }
        }

        // Policy decisions, tenant order.
        if config.adaptive {
            for &t in &active {
                let e = stats[t].expect("active session ran");
                if let Some((kind, reason)) = engines[t].on_epoch(&e) {
                    let session = sessions[t].get_mut().expect("session lock poisoned");
                    switches.push(SwitchRecord {
                        tenant: t as u16,
                        workload: session.workload(),
                        epoch: session.epochs_run(),
                        from: session.kind(),
                        to: kind,
                        reason,
                    });
                    session.switch_selector(kind, &sim_configs[t]);
                }
            }
        }
        // First round at which each tenant's engine was exploiting —
        // for warm-restored engines already past exploration, that is
        // their first active round (even if they also finish in it).
        for &t in &ran {
            if first_exploit_round[t].is_none() && engines[t].exploiting() {
                first_exploit_round[t] = Some(round);
            }
        }

        round += 1;
    }
    q.rounds = round;

    // --- Assemble the deterministic reports --------------------------
    let mut tenants = Vec::with_capacity(specs.len());
    let mut run_reports = Vec::with_capacity(specs.len());
    let mut snapshot_tenants = Vec::with_capacity(specs.len());
    let mut shard_smc = vec![0u64; config.shard_count];
    for (t, cell) in sessions.iter_mut().enumerate() {
        let session = cell.get_mut().expect("session lock poisoned");
        // The engine is the authority on its own switch count; the
        // global log must agree with it.
        debug_assert_eq!(
            engines[t].switches(),
            switches.iter().filter(|s| s.tenant == t as u16).count() as u64
                + slots[t].map_or(0, |ts| ts.policy.switches),
            "engine switch count drifted from the switch log"
        );
        for (s, &n) in session.smc_by_shard().iter().enumerate() {
            shard_smc[s] += n;
        }
        let dip = std::mem::take(&mut dips[t]).finish();
        let res = session.resilience();
        tenants.push(TenantSummary {
            tenant: t as u16,
            workload: session.workload(),
            final_selector: session.kind().name(),
            epochs: session.epochs_run(),
            switches: engines[t].switches(),
            admitted_round: admitted_round[t],
            finished_round: finished_round[t],
            first_exploit_round: first_exploit_round[t],
            total_insts: session.total_insts(),
            cache_insts: session.cache_insts(),
            insts_selected: session.insts_selected(),
            regions_selected: session.regions_selected(),
            pressure_evicted: session.pressure_evicted(),
            smc_events: res.smc_events,
            smc_invalidated: res.invalidated_regions,
            reformations: res.reformations,
            blacklisted_targets: res.blacklisted_targets,
            blacklist_hits: res.blacklist_hits,
            smc_dips: dip.dips,
            max_dip_depth: dip.max_depth,
            max_dip_recovery_epochs: dip.max_recovery_epochs,
        });
        run_reports.push(session.report());
        snapshot_tenants.push(TenantSnapshot {
            workload: session.workload().to_string(),
            selector: session.kind(),
            policy: engines[t].export(),
            regions: session.region_snapshots(),
            blacklist: session.blacklist_snapshot(),
        });
    }
    let shards = map
        .into_stats()
        .into_iter()
        .enumerate()
        .map(|(i, (s, final_bytes))| ShardReport {
            shard: i,
            peak_bytes: s.peak_bytes,
            contended_rounds: s.contended_rounds,
            pressure_waves: s.pressure_waves,
            shed_actions: s.shed_actions,
            evicted_regions: s.evicted_regions,
            smc_invalidated: shard_smc[i],
            final_bytes,
        })
        .collect();

    ServeOutcome {
        report: ServeReport {
            epoch_len: config.epoch_len,
            shard_count: config.shard_count,
            shard_capacity: config.shard_capacity,
            max_active: config.max_active,
            queue_capacity: config.queue_capacity,
            warm_started: warm.is_some(),
            warm_regions_restored,
            warm_rejected_tenants,
            smc_write_ppm: config.sim.faults.smc_write_ppm,
            fault_seed: config.sim.faults.seed,
            queue: q,
            tenants,
            shards,
            switches,
            total_insts,
        },
        run_reports,
        snapshot: ServeSnapshot {
            tenants: snapshot_tenants,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsel_workloads::{Scale, suite};

    fn two_specs() -> Vec<TenantSpec> {
        suite()
            .iter()
            .take(2)
            .map(|w| TenantSpec::record(w, 7, Scale::Test))
            .collect()
    }

    #[test]
    fn serves_everything_to_completion() {
        let specs = two_specs();
        let out = serve(&specs, &ServeConfig::default(), 1);
        assert_eq!(out.report.tenants.len(), 2);
        assert_eq!(out.run_reports.len(), 2);
        for (t, rep) in out.report.tenants.iter().zip(&out.run_reports) {
            assert!(t.total_insts > 0);
            assert_eq!(t.total_insts, rep.total_insts);
            assert_eq!(t.cache_insts, rep.cache_insts);
        }
        let sum: u64 = out.report.tenants.iter().map(|t| t.total_insts).sum();
        assert_eq!(out.report.total_insts, sum);
        assert!(out.report.insts_per_round() > 0.0);
    }

    #[test]
    fn bounded_queue_exerts_backpressure() {
        let specs: Vec<TenantSpec> = suite()
            .iter()
            .take(6)
            .map(|w| TenantSpec::record(w, 7, Scale::Test))
            .collect();
        let config = ServeConfig {
            max_active: 2,
            queue_capacity: 1,
            ..ServeConfig::default()
        };
        let out = serve(&specs, &config, 2);
        let q = &out.report.queue;
        assert_eq!(q.admissions, 6, "everyone is eventually admitted");
        assert_eq!(q.peak_active, 2);
        assert_eq!(q.peak_queue_depth, 1);
        assert!(q.deferred_tenant_rounds > 0, "arrivals piled up: {q:?}");
        // Later tenants were admitted later.
        let rounds: Vec<u64> = out
            .report
            .tenants
            .iter()
            .map(|t| t.admitted_round)
            .collect();
        assert!(rounds.windows(2).all(|w| w[0] <= w[1]), "{rounds:?}");
        assert!(rounds[5] > rounds[0]);
    }

    #[test]
    fn static_mode_never_switches() {
        let specs = two_specs();
        let config = ServeConfig {
            adaptive: false,
            ..ServeConfig::default()
        };
        let out = serve(&specs, &config, 1);
        assert!(out.report.switches.is_empty());
        for t in &out.report.tenants {
            assert_eq!(t.final_selector, "NET");
            assert_eq!(t.switches, 0);
        }
    }

    #[test]
    fn degenerate_epoch_panics() {
        let specs = two_specs();
        let config = ServeConfig {
            epoch_len: 0,
            ..ServeConfig::default()
        };
        let r = std::panic::catch_unwind(|| serve(&specs, &config, 1));
        assert!(r.is_err());
    }

    #[test]
    fn zero_capacity_queue_terminates_and_admits_everyone() {
        // Regression: queue_capacity = 0 used to livelock — nothing
        // could ever enter a queue that holds zero tenants, so the
        // admission loop spun forever with everybody pending.
        let specs: Vec<TenantSpec> = suite()
            .iter()
            .take(4)
            .map(|w| TenantSpec::record(w, 7, Scale::Test))
            .collect();
        let config = ServeConfig {
            max_active: 2,
            queue_capacity: 0,
            ..ServeConfig::default()
        };
        let out = serve(&specs, &config, 2);
        let q = &out.report.queue;
        assert_eq!(q.admissions, 4, "everyone is admitted directly");
        assert_eq!(q.peak_active, 2);
        assert_eq!(q.peak_queue_depth, 0, "nothing is ever buffered");
        assert_eq!(q.queued_tenant_rounds, 0);
        assert!(q.deferred_tenant_rounds > 0, "arrivals still wait: {q:?}");
        for t in &out.report.tenants {
            assert!(t.total_insts > 0, "every tenant ran to completion");
        }
    }

    #[test]
    fn summary_switches_agree_with_the_switch_log() {
        let specs = two_specs();
        let out = serve(&specs, &ServeConfig::default(), 1);
        for t in &out.report.tenants {
            let logged = out
                .report
                .switches
                .iter()
                .filter(|s| s.tenant == t.tenant)
                .count() as u64;
            assert_eq!(t.switches, logged, "tenant {}", t.tenant);
        }
    }

    #[test]
    fn warm_start_runs_from_the_snapshot() {
        let specs = two_specs();
        let config = ServeConfig::default();
        let cold = serve(&specs, &config, 1);
        let warm = serve_with(&specs, &config, 1, Some(&cold.snapshot));
        assert!(warm.report.warm_started);
        assert!(!cold.report.warm_started);
        assert_eq!(cold.report.warm_regions_restored, 0);
        assert_eq!(
            warm.report.warm_regions_restored,
            cold.snapshot.region_count()
        );
        // The warm run replays the same streams, so totals agree even
        // though the cache starts hot.
        assert_eq!(cold.report.total_insts, warm.report.total_insts);
        for (c, w) in cold.report.tenants.iter().zip(&warm.report.tenants) {
            assert!(w.switches >= c.switches, "switch count carries over");
        }
    }

    #[test]
    fn tenant_fault_seeds_are_distinct_and_stable() {
        let a = tenant_fault_seed(7, 0);
        let b = tenant_fault_seed(7, 1);
        let c = tenant_fault_seed(8, 0);
        assert_ne!(a, b, "tenants get distinct schedules");
        assert_ne!(a, c, "the base seed matters");
        assert_eq!(a, tenant_fault_seed(7, 0), "pure function of its inputs");
    }

    fn smc_config() -> ServeConfig {
        let mut config = ServeConfig::default();
        config.sim.faults.seed = 42;
        config.sim.faults.smc_write_ppm = 4_000;
        config
    }

    #[test]
    fn smc_serving_is_identical_for_every_worker_count() {
        let specs: Vec<TenantSpec> = suite()
            .iter()
            .take(4)
            .map(|w| TenantSpec::record(w, 7, Scale::Test))
            .collect();
        let config = smc_config();
        let one = serve(&specs, &config, 1);
        let eight = serve(&specs, &config, 8);
        assert_eq!(one.report, eight.report);
        assert_eq!(one.run_reports, eight.run_reports);
        assert_eq!(one.snapshot, eight.snapshot);
        assert!(
            one.report.smc_invalidated_regions() > 0,
            "this rate must strike over the test streams: {:?}",
            one.report.tenants
        );
        assert_eq!(one.report.smc_write_ppm, 4_000);
        assert_eq!(one.report.fault_seed, 42);
        // Shard attribution conserves the per-tenant counts.
        let by_shard: u64 = one.report.shards.iter().map(|s| s.smc_invalidated).sum();
        assert_eq!(by_shard, one.report.smc_invalidated_regions());
    }

    #[test]
    fn smc_snapshot_round_trips_the_blacklist() {
        let specs = two_specs();
        let mut config = smc_config();
        config.sim.faults.smc_write_ppm = 50_000; // hammer the cache
        config.sim.faults.blacklist_after = 2;
        let cold = serve(&specs, &config, 1);
        assert!(
            cold.report.blacklisted_targets() > 0,
            "this rate must demote something: {:?}",
            cold.report.tenants
        );
        assert!(
            cold.snapshot
                .tenants
                .iter()
                .any(|t| !t.blacklist.is_empty()),
            "demotions persist in the snapshot"
        );
        let warm = serve_with(&specs, &config, 2, Some(&cold.snapshot));
        assert!(warm.report.warm_started);
        assert_eq!(warm.report.warm_rejected_tenants, 0);
    }

    #[test]
    fn serve_warm_cold_starts_rejected_slots() {
        let specs = two_specs();
        let config = ServeConfig::default();
        let cold = serve(&specs, &config, 1);
        let mut warm = cold.snapshot.clone().into_warm_start();
        warm.tenants[1] = None; // as if the lenient loader rejected it
        warm.rejected = 1;
        let out = serve_warm(&specs, &config, 1, &warm);
        assert!(out.report.warm_started);
        assert_eq!(out.report.warm_rejected_tenants, 1);
        assert_eq!(
            out.report.warm_regions_restored,
            cold.snapshot.tenants[0].regions.len() as u64,
            "only the surviving slot restores"
        );
        // The rejected tenant replays the same stream from cold, so
        // totals still match the cold run.
        assert_eq!(out.report.total_insts, cold.report.total_insts);
        // A fully rejected warm start is just a cold run that says so.
        let none = serve_warm(
            &specs,
            &config,
            1,
            &WarmStart {
                tenants: vec![None, None],
                rejected: 2,
            },
        );
        assert_eq!(none.report.warm_rejected_tenants, 2);
        assert_eq!(none.report.warm_regions_restored, 0);
        assert_eq!(none.report.total_insts, cold.report.total_insts);
    }

    #[test]
    fn mismatched_snapshot_panics() {
        let specs = two_specs();
        let config = ServeConfig::default();
        let cold = serve(&specs, &config, 1);
        let mut snap = cold.snapshot;
        snap.tenants.pop();
        let r = std::panic::catch_unwind(|| serve_with(&specs, &config, 1, Some(&snap)));
        assert!(r.is_err(), "tenant-count mismatch must not serve");
    }
}
