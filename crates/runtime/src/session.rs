//! Tenant sessions: one recorded workload replayed epoch by epoch.
//!
//! A [`TenantSpec`] owns a workload's program and its compactly
//! recorded execution (record once, serve many). A [`TenantSession`]
//! borrows the spec and drives a persistent
//! [`Simulator`](rsel_core::Simulator) through it in fixed-length
//! epochs: the code cache and every metric survive across epochs, the
//! selector may be swapped at epoch boundaries, and the scheduler may
//! run different epochs of the same session on different worker
//! threads (everything inside is `Send`).

use crate::shard::{SharedCacheMap, shard_of};
use crate::snapshot::{RegionSnapshot, SnapshotError, TenantSnapshot};
use crate::store::{RegionStore, region_key, shard_of_key};
use rsel_core::metrics::RunReport;
use rsel_core::select::SelectorKind;
use rsel_core::{RegionId, SimConfig, Simulator};
use rsel_program::{Executor, Program};
use rsel_trace::{CompactStream, DecodedStream, StreamStats};
use rsel_workloads::{Scale, Workload, suite};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A workload prepared for serving: the built program plus its full
/// recorded execution (kept both compact, for persistence-shaped
/// parity tests, and decoded once into dense arrays for serving),
/// replayable by any number of sessions.
///
/// The program and recording sit behind `Arc`s, so cloning a spec is
/// a refcount bump — that is what makes tenant replication
/// (`RSEL_REPLICAS`, thousands of homogeneous tenants over the same
/// twelve recordings) affordable: N tenants share one recording
/// instead of re-recording or deep-copying it N times.
#[derive(Clone)]
pub struct TenantSpec {
    name: &'static str,
    program: Arc<Program>,
    decoded: Arc<DecodedStream>,
}

impl TenantSpec {
    /// Builds `workload` at `(seed, scale)` and records its execution.
    pub fn record(workload: &Workload, seed: u64, scale: Scale) -> Self {
        let (program, spec) = workload.build(seed, scale);
        let stream = CompactStream::record(Executor::new(&program, spec));
        let decoded = DecodedStream::decode(stream, &program);
        TenantSpec {
            name: workload.name(),
            program: Arc::new(program),
            decoded: Arc::new(decoded),
        }
    }

    /// Records the whole twelve-workload suite at `(seed, scale)` —
    /// the standard serving population.
    pub fn record_suite(seed: u64, scale: Scale) -> Vec<TenantSpec> {
        suite()
            .iter()
            .map(|w| TenantSpec::record(w, seed, scale))
            .collect()
    }

    /// Clones each spec `replicas` times, *interleaved*: all replicas
    /// of one workload get adjacent tenant ids, so a bounded
    /// `max_active` admits identical tenants together and sharing can
    /// actually overlap in time. One replica returns the specs as
    /// given.
    pub fn replicate(specs: Vec<TenantSpec>, replicas: usize) -> Vec<TenantSpec> {
        if replicas <= 1 {
            return specs;
        }
        specs
            .into_iter()
            .flat_map(|s| std::iter::repeat_n(s, replicas))
            .collect()
    }

    /// The workload's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The built program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Recorded steps in the stream.
    pub fn len(&self) -> usize {
        self.decoded.len()
    }

    /// Decode-time stream statistics — the cheap program-shape
    /// features (block count, taken-branch density, backward-branch
    /// fraction) the adaptive policy engine conditions its priors on.
    pub fn stream_stats(&self) -> StreamStats {
        self.decoded.stats()
    }

    /// Whether the recording is empty.
    pub fn is_empty(&self) -> bool {
        self.decoded.is_empty()
    }
}

/// What one session executed during one epoch (deltas, not totals).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// Steps (executed blocks) replayed this epoch.
    pub steps: u64,
    /// Instructions executed this epoch.
    pub insts: u64,
    /// Instructions executed from the code cache this epoch.
    pub cache_insts: u64,
    /// Instructions copied into the cache this epoch (code expansion).
    pub insts_selected: u64,
    /// Regions selected this epoch.
    pub regions_selected: u64,
    /// Self-modifying-code write faults that struck this epoch.
    pub smc_events: u64,
    /// Regions killed by those writes this epoch.
    pub smc_invalidated: u64,
}

impl EpochStats {
    /// Fraction of this epoch's instructions served from the cache.
    pub fn hit_rate(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.cache_insts as f64 / self.insts as f64
        }
    }

    /// Instructions copied per instruction executed this epoch.
    pub fn expansion(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.insts_selected as f64 / self.insts as f64
        }
    }
}

/// A region's share-store bookkeeping: its content key, the key's
/// shard, and the bytes charged for it.
#[derive(Clone, Copy, Debug)]
struct SharedRef {
    key: u64,
    shard: usize,
    bytes: u64,
}

/// One tenant's live serving session.
pub struct TenantSession<'p> {
    tenant: u16,
    workload: &'static str,
    sim: Simulator<'p>,
    decoded: &'p DecodedStream,
    /// Next step of the decoded stream to replay.
    pos: usize,
    program: &'p Program,
    kind: SelectorKind,
    shard_count: usize,
    stub_bytes: u64,
    /// Occupancy last published to the shared map, per shard.
    published: Vec<u64>,
    /// Recent-heat totals last published to the shared map, per shard.
    published_recent: Vec<u64>,
    /// Per live region: the simulator's monotone executed-instruction
    /// total at the last epoch boundary, and the decayed recent-heat
    /// figure derived from it (`heat = heat/2 + delta` per epoch).
    region_heat: BTreeMap<RegionId, (u64, u64)>,
    /// Cache flush count at the last heat sweep; a change means the
    /// region-id sequence (and the per-id counters) restarted.
    heat_gen: u64,
    /// Share mode: content refs this session holds in the region
    /// store, per live region id. Region ids are stable until a full
    /// cache flush (tracked by `share_gen`), so only regions that
    /// appeared since the last publish need hashing.
    shared: BTreeMap<RegionId, SharedRef>,
    /// Cache flush count at the last shared publish; a change means
    /// every previously-tracked region id is invalid.
    share_gen: u64,
    /// SMC invalidations attributed to each shard (by the killed
    /// region's entry address), accumulated over the whole session.
    smc_by_shard: Vec<u64>,
    epochs_run: u64,
    finished: bool,
    /// Chaos hook: epoch count at which the session deliberately
    /// panics (see [`TenantSession::poison_after`]).
    poison_at: Option<u64>,
    // Simulator totals at the previous epoch boundary, for deltas.
    prev_insts: u64,
    prev_cache_insts: u64,
    prev_insts_selected: u64,
    prev_regions_selected: u64,
    prev_smc_events: u64,
    prev_smc_invalidated: u64,
}

impl<'p> TenantSession<'p> {
    /// Opens a session over `spec` as tenant `tenant`, starting with
    /// `kind` as its selector.
    pub fn new(
        tenant: u16,
        spec: &'p TenantSpec,
        kind: SelectorKind,
        config: &SimConfig,
        shard_count: usize,
    ) -> Self {
        let sim = Simulator::new(&spec.program, kind.make(&spec.program, config), config);
        TenantSession {
            tenant,
            workload: spec.name,
            sim,
            decoded: &spec.decoded,
            pos: 0,
            program: &spec.program,
            kind,
            shard_count,
            stub_bytes: config.stub_bytes,
            published: vec![0; shard_count],
            published_recent: vec![0; shard_count],
            region_heat: BTreeMap::new(),
            heat_gen: 0,
            shared: BTreeMap::new(),
            share_gen: 0,
            smc_by_shard: vec![0; shard_count],
            epochs_run: 0,
            finished: false,
            poison_at: None,
            prev_insts: 0,
            prev_cache_insts: 0,
            prev_insts_selected: 0,
            prev_regions_selected: 0,
            prev_smc_events: 0,
            prev_smc_invalidated: 0,
        }
    }

    /// Opens a warm session over `spec` from a tenant's persisted
    /// state: the simulator starts on the snapshot's selector with
    /// every snapshotted region rebuilt against the spec's program
    /// (stubs and size estimates re-derived, nothing trusted from
    /// disk), then replays the recorded stream from the top.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::WorkloadMismatch`] if `snap` records a
    /// different workload than `spec`; [`SnapshotError::BadRegion`]
    /// (or [`SnapshotError::Malformed`]) if a region does not rebuild
    /// against the program.
    pub fn restore(
        tenant: u16,
        spec: &'p TenantSpec,
        snap: &TenantSnapshot,
        config: &SimConfig,
        shard_count: usize,
    ) -> Result<Self, SnapshotError> {
        if snap.workload != spec.name {
            return Err(SnapshotError::WorkloadMismatch {
                tenant,
                snapshot: snap.workload.clone(),
                spec: spec.name,
            });
        }
        let mut session = TenantSession::new(tenant, spec, snap.selector, config, shard_count);
        let mut regions = Vec::with_capacity(snap.regions.len());
        for r in &snap.regions {
            regions.push(r.rebuild(&spec.program).map_err(|e| match e {
                SnapshotError::BadRegion { source, .. } => {
                    SnapshotError::BadRegion { tenant, source }
                }
                other => other,
            })?);
        }
        session
            .sim
            .restore_regions(regions)
            .map_err(|source| SnapshotError::BadRegion { tenant, source })?;
        session.sim.restore_blacklist(&snap.blacklist);
        Ok(session)
    }

    /// The tenant id.
    pub fn tenant(&self) -> u16 {
        self.tenant
    }

    /// The workload this session replays.
    pub fn workload(&self) -> &'static str {
        self.workload
    }

    /// The selector currently driving the session.
    pub fn kind(&self) -> SelectorKind {
        self.kind
    }

    /// Epochs executed so far.
    pub fn epochs_run(&self) -> u64 {
        self.epochs_run
    }

    /// Whether the recorded stream is exhausted.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// The next step of the decoded stream this session will replay.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Repositions the session at step `pos` of the recorded stream
    /// without executing anything — how a reconnect resumes from a
    /// checkpoint: the cache and metrics come from the snapshot (or
    /// start cold), and replay continues where the checkpoint was cut.
    ///
    /// # Panics
    ///
    /// If `pos` lies beyond the recorded stream.
    pub fn seek(&mut self, pos: usize) {
        assert!(
            pos <= self.decoded.len(),
            "seek past the recorded stream ({pos} > {})",
            self.decoded.len()
        );
        self.pos = pos;
    }

    /// Arms the chaos poison pill: the session panics at the start of
    /// its `epoch`-th epoch from now (0 = the very next one). This is
    /// the deliberate-defect hook the scheduler's quarantine path is
    /// tested against; it stands in for any bug that unwinds out of a
    /// worker mid-epoch.
    pub fn poison_after(&mut self, epoch: u64) {
        self.poison_at = Some(self.epochs_run + epoch);
    }

    /// Replays up to `epoch_len` steps, returning this epoch's deltas.
    /// Marks the session finished when the stream runs dry.
    ///
    /// Epochs are slices of the decoded recording replayed in one
    /// batch call, so a session pays no per-step iterator or decode
    /// overhead and spin phases fast-forward even across serving
    /// epochs (the detector only engages on phases wholly inside the
    /// epoch's range, keeping results bit-identical to stepping).
    pub fn run_epoch(&mut self, epoch_len: usize) -> EpochStats {
        if self.poison_at == Some(self.epochs_run) {
            panic!(
                "poison pill: tenant {} session corrupted at epoch {}",
                self.tenant, self.epochs_run
            );
        }
        let remaining = self.decoded.len() - self.pos;
        let executed = epoch_len.min(remaining);
        self.sim
            .replay_decoded_range(self.decoded, self.pos, self.pos + executed, true);
        self.pos += executed;
        // `finished` flips only when the stream came up short — an
        // exactly-full final epoch leaves it unset until the next
        // (empty) epoch observes the dry stream, matching the
        // iterator-driven behavior this replaces.
        if executed < epoch_len {
            self.finished = true;
        }
        let steps = executed as u64;
        self.epochs_run += 1;
        // Attribute this epoch's SMC kills to their cache shards (the
        // log is empty unless a fault schedule is active).
        for entry in self.sim.drain_invalidations() {
            self.smc_by_shard[shard_of(self.tenant, entry, self.shard_count)] += 1;
        }
        let res = self.sim.resilience();
        let stats = EpochStats {
            steps,
            insts: self.sim.total_insts() - self.prev_insts,
            cache_insts: self.sim.cache_insts() - self.prev_cache_insts,
            insts_selected: self.sim.insts_selected() - self.prev_insts_selected,
            regions_selected: self.sim.regions_selected() - self.prev_regions_selected,
            smc_events: res.smc_events - self.prev_smc_events,
            smc_invalidated: res.invalidated_regions - self.prev_smc_invalidated,
        };
        self.prev_insts = self.sim.total_insts();
        self.prev_cache_insts = self.sim.cache_insts();
        self.prev_insts_selected = self.sim.insts_selected();
        self.prev_regions_selected = self.sim.regions_selected();
        self.prev_smc_events = self.sim.resilience().smc_events;
        self.prev_smc_invalidated = self.sim.resilience().invalidated_regions;
        self.sweep_heat();
        stats
    }

    /// Decays and refreshes per-region heat from the simulator's
    /// monotone per-region executed-instruction counters. A full flush
    /// restarts the region-id sequence (and the per-id counters), so
    /// the map resets with it; regions evicted without a flush simply
    /// drop out of the sweep.
    fn sweep_heat(&mut self) {
        let flushes = self.sim.cache().flushes();
        if flushes != self.heat_gen {
            self.region_heat.clear();
            self.heat_gen = flushes;
        }
        let mut next = BTreeMap::new();
        for r in self.sim.cache().regions() {
            let id = r.id();
            let total = self.sim.region_insts_executed(id);
            let (prev, heat) = self.region_heat.get(&id).copied().unwrap_or((0, 0));
            next.insert(id, (total, heat / 2 + (total - prev)));
        }
        self.region_heat = next;
    }

    /// The decayed recent heat of live region `id` (zero for regions
    /// never swept, i.e. selected after the last epoch boundary).
    fn region_recent(&self, id: RegionId) -> u64 {
        self.region_heat.get(&id).map_or(0, |&(_, h)| h)
    }

    /// Per-shard sums of region heat, shard-of-entry keyed like
    /// [`TenantSession::occupancy`].
    fn shard_heats(&self) -> Vec<u64> {
        let mut heat = vec![0u64; self.shard_count];
        for r in self.sim.cache().regions() {
            heat[shard_of(self.tenant, r.entry(), self.shard_count)] += self.region_recent(r.id());
        }
        heat
    }

    /// This tenant's estimated bytes currently cached in `shard`.
    fn shard_occupancy(&self, shard: usize) -> u64 {
        self.sim
            .cache()
            .regions()
            .iter()
            .filter(|r| shard_of(self.tenant, r.entry(), self.shard_count) == shard)
            .map(|r| r.size_estimate(self.stub_bytes))
            .sum()
    }

    /// Full per-shard occupancy of this tenant's live regions.
    fn occupancy(&self) -> Vec<u64> {
        let mut occ = vec![0u64; self.shard_count];
        for r in self.sim.cache().regions() {
            occ[shard_of(self.tenant, r.entry(), self.shard_count)] +=
                r.size_estimate(self.stub_bytes);
        }
        occ
    }

    /// Publishes this tenant's occupancy to the shared map (worker
    /// side; only shards whose occupancy changed are written, so a
    /// quiet epoch takes no locks). Recent-heat totals ride along with
    /// every write, but with `utility` off a heat-only change does not
    /// trigger one — the set of shards touched (and so the contention
    /// statistics) stays bit-identical to the pre-utility runtime.
    pub fn publish_occupancy(&mut self, map: &SharedCacheMap, utility: bool) {
        let occ = self.occupancy();
        let heat = self.shard_heats();
        let changes: Vec<(usize, u64, u64)> = (0..self.shard_count)
            .filter(|&s| {
                occ[s] != self.published[s] || (utility && heat[s] != self.published_recent[s])
            })
            .map(|s| (s, occ[s], heat[s]))
            .collect();
        if !changes.is_empty() {
            map.publish(self.tenant, &changes);
            self.published = occ;
            self.published_recent = heat;
        }
    }

    /// Share mode: publishes this tenant's occupancy through the
    /// content-addressed store. Regions that appeared since the last
    /// publish are hashed ([`region_key`]) and acquire a ref in the
    /// key's shard; regions that vanished (SMC kills, flush waves,
    /// pressure eviction applied at a barrier) release theirs. The
    /// per-shard *logical* byte totals — grouped by content-key shard,
    /// not by `(tenant, entry)` — then go to the capacity map exactly
    /// like [`publish_occupancy`](TenantSession::publish_occupancy).
    ///
    /// Region ids are monotone until a full cache flush, so the diff
    /// against the previous publish touches only changed regions; a
    /// flush (the ids restart) is detected via the cache's flush count
    /// and releases everything before re-acquiring the live set.
    ///
    /// All store updates are commutative refcount operations, so
    /// worker scheduling cannot leak into the round's final state.
    pub fn publish_shared(&mut self, map: &SharedCacheMap, store: &RegionStore, utility: bool) {
        let flushes = self.sim.cache().flushes();
        if flushes != self.share_gen {
            for (_, r) in std::mem::take(&mut self.shared) {
                store.release(r.shard, r.key, self.tenant);
            }
            self.share_gen = flushes;
        }
        let cache = self.sim.cache();
        let live: Vec<RegionId> = cache.regions().iter().map(|r| r.id()).collect();
        let dead: Vec<RegionId> = {
            let live_set: std::collections::BTreeSet<RegionId> = live.iter().copied().collect();
            self.shared
                .keys()
                .filter(|id| !live_set.contains(id))
                .copied()
                .collect()
        };
        for id in dead {
            let r = self.shared.remove(&id).expect("collected from the map");
            store.release(r.shard, r.key, self.tenant);
        }
        for region in self.sim.cache().regions() {
            if self.shared.contains_key(&region.id()) {
                continue;
            }
            let key = region_key(self.workload, region);
            let shard = shard_of_key(key, self.shard_count);
            let bytes = region.size_estimate(self.stub_bytes);
            store.acquire(shard, key, bytes, self.tenant);
            self.shared
                .insert(region.id(), SharedRef { key, shard, bytes });
        }
        let mut occ = vec![0u64; self.shard_count];
        let mut heat = vec![0u64; self.shard_count];
        for (id, r) in &self.shared {
            occ[r.shard] += r.bytes;
            heat[r.shard] += self.region_recent(*id);
        }
        if utility {
            // Per-entry heat goes to the store so a shared entry's
            // eviction utility can sum every holder's recent use. Each
            // tenant writes only its own slot — commutative, so worker
            // scheduling cannot leak into the round's final state.
            for (id, r) in &self.shared {
                store.publish_heat(r.shard, r.key, self.tenant, self.region_recent(*id));
            }
        }
        let changes: Vec<(usize, u64, u64)> = (0..self.shard_count)
            .filter(|&s| {
                occ[s] != self.published[s] || (utility && heat[s] != self.published_recent[s])
            })
            .map(|s| (s, occ[s], heat[s]))
            .collect();
        if !changes.is_empty() {
            map.publish(self.tenant, &changes);
            self.published = occ;
            self.published_recent = heat;
        }
    }

    /// Barrier-side share-mode pressure response: drops this
    /// session's regions whose content keys are in `doomed` (all
    /// belonging to store shard `shard` — the store already removed
    /// the entries), returning `(regions evicted, logical bytes left
    /// in the shard, recent heat left in the shard)`. The caller
    /// republishes the new totals to the capacity map.
    pub fn evict_shared(&mut self, shard: usize, doomed: &[u64]) -> (u64, u64, u64) {
        let dead: Vec<RegionId> = self
            .shared
            .iter()
            .filter(|(_, r)| r.shard == shard && doomed.contains(&r.key))
            .map(|(&id, _)| id)
            .collect();
        for id in &dead {
            self.shared.remove(id);
        }
        let evicted = self.sim.evict_regions(&dead) as u64;
        let (mut left, mut left_recent) = (0u64, 0u64);
        for (id, r) in &self.shared {
            if r.shard == shard {
                left += r.bytes;
                left_recent += self.region_recent(*id);
            }
        }
        self.published[shard] = left;
        self.published_recent[shard] = left_recent;
        (evicted, left, left_recent)
    }

    /// Share mode: the content refs this session believes it holds —
    /// `(store shard, key, bytes)` per live region, for invariant
    /// checks.
    pub fn shared_refs(&self) -> Vec<(usize, u64, u64)> {
        self.shared
            .values()
            .map(|r| (r.shard, r.key, r.bytes))
            .collect()
    }

    /// Barrier-side pressure planning: this tenant's live regions in
    /// `shard`, in selection order, each with its size estimate. The
    /// scheduler plans a shard's whole victim set against these lists
    /// and then applies it with one [`TenantSession::evict_planned`]
    /// call per tenant.
    pub fn shard_regions(&self, shard: usize) -> Vec<(RegionId, u64)> {
        self.sim
            .cache()
            .regions()
            .iter()
            .filter(|r| shard_of(self.tenant, r.entry(), self.shard_count) == shard)
            .map(|r| (r.id(), r.size_estimate(self.stub_bytes)))
            .collect()
    }

    /// [`TenantSession::shard_regions`] with each region's decayed
    /// recent heat attached — the utility-aware planner's input:
    /// `(id, bytes, recent cached instructions)` in selection order.
    pub fn shard_regions_with_heat(&self, shard: usize) -> Vec<(RegionId, u64, u64)> {
        self.sim
            .cache()
            .regions()
            .iter()
            .filter(|r| shard_of(self.tenant, r.entry(), self.shard_count) == shard)
            .map(|r| {
                (
                    r.id(),
                    r.size_estimate(self.stub_bytes),
                    self.region_recent(r.id()),
                )
            })
            .collect()
    }

    /// Barrier-side pressure response: evicts the planned victim set
    /// `ids` from `shard` in one pass, recording `left` (the planner's
    /// byte total for the surviving regions) as the published
    /// occupancy. Returns the regions actually evicted.
    pub fn evict_planned(&mut self, shard: usize, ids: &[RegionId], left: u64) -> u64 {
        let evicted = self.sim.evict_regions(ids) as u64;
        debug_assert_eq!(left, self.shard_occupancy(shard), "planned bytes drifted");
        self.published[shard] = left;
        self.published_recent[shard] = self.shard_heats()[shard];
        evicted
    }

    /// The persisted shape of every cached region, in selection order
    /// (see [`RegionSnapshot`]).
    pub fn region_snapshots(&self) -> Vec<RegionSnapshot> {
        self.sim
            .cache()
            .regions()
            .iter()
            .map(RegionSnapshot::capture)
            .collect()
    }

    /// Barrier-side selector switch: swaps the session onto `kind`
    /// with fresh profiling state; cache and metrics survive.
    pub fn switch_selector(&mut self, kind: SelectorKind, config: &SimConfig) {
        self.sim.set_selector(kind.make(self.program, config));
        self.kind = kind;
    }

    /// Total instructions executed so far.
    pub fn total_insts(&self) -> u64 {
        self.sim.total_insts()
    }

    /// Instructions served from the cache so far.
    pub fn cache_insts(&self) -> u64 {
        self.sim.cache_insts()
    }

    /// Instructions ever copied into the cache (monotone).
    pub fn insts_selected(&self) -> u64 {
        self.sim.insts_selected()
    }

    /// Regions ever selected (monotone).
    pub fn regions_selected(&self) -> u64 {
        self.sim.regions_selected()
    }

    /// Regions evicted from this session by shard pressure.
    pub fn pressure_evicted(&self) -> u64 {
        self.sim.resilience().pressure_evicted_regions
    }

    /// The session's resilience statistics so far.
    pub fn resilience(&self) -> &rsel_core::ResilienceStats {
        self.sim.resilience()
    }

    /// SMC invalidations attributed to each cache shard over the whole
    /// session (by the killed region's entry address).
    pub fn smc_by_shard(&self) -> &[u64] {
        &self.smc_by_shard
    }

    /// The persistent blacklist state: `(entry, invalidations)` in
    /// ascending entry order (see
    /// [`Simulator::export_blacklist`](rsel_core::Simulator::export_blacklist)).
    pub fn blacklist_snapshot(&self) -> Vec<(rsel_program::Addr, u32)> {
        self.sim.export_blacklist()
    }

    /// The session's full run report.
    pub fn report(&self) -> RunReport {
        self.sim.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TenantSpec {
        TenantSpec::record(&suite()[0], 7, Scale::Test)
    }

    #[test]
    fn epochs_partition_the_stream() {
        let spec = spec();
        let cfg = SimConfig::default();
        let mut s = TenantSession::new(0, &spec, SelectorKind::Net, &cfg, 8);
        let mut steps = 0;
        let mut insts = 0;
        while !s.finished() {
            let e = s.run_epoch(1000);
            steps += e.steps;
            insts += e.insts;
        }
        assert_eq!(steps as usize, spec.len(), "every step replayed once");
        assert_eq!(insts, s.total_insts(), "deltas sum to the total");
        assert!(s.epochs_run() >= spec.len() as u64 / 1000);
    }

    #[test]
    fn epoch_run_matches_monolithic_run() {
        let spec = spec();
        let cfg = SimConfig::default();
        let mut epoch = TenantSession::new(0, &spec, SelectorKind::Lei, &cfg, 8);
        while !epoch.finished() {
            epoch.run_epoch(777);
        }
        let mut mono = Simulator::new(
            spec.program(),
            SelectorKind::Lei.make(spec.program(), &cfg),
            &cfg,
        );
        mono.run(spec.decoded.compact().replay(spec.program()));
        assert_eq!(epoch.report(), mono.report(), "epoching is invisible");
    }

    #[test]
    fn occupancy_tracks_cache_and_shedding() {
        let spec = spec();
        let cfg = SimConfig::default();
        let map = SharedCacheMap::new(8, u64::MAX);
        let mut s = TenantSession::new(0, &spec, SelectorKind::Net, &cfg, 8);
        while !s.finished() {
            s.run_epoch(2000);
            s.publish_occupancy(&map, false);
        }
        let total: u64 = s.occupancy().iter().sum();
        assert_eq!(total, s.sim.cache().size_estimate(cfg.stub_bytes));
        assert!(total > 0, "the hot workload cached something");
        // Shed the oldest half of the heaviest shard in one planned
        // eviction, the way the scheduler's barrier does.
        let heavy = (0..8).max_by_key(|&i| s.occupancy()[i]).unwrap();
        let before = s.occupancy()[heavy];
        let regs = s.shard_regions(heavy);
        assert_eq!(regs.iter().map(|&(_, b)| b).sum::<u64>(), before);
        let count = regs.len().div_ceil(2);
        let doomed: Vec<RegionId> = regs[..count].iter().map(|&(id, _)| id).collect();
        let left: u64 = regs[count..].iter().map(|&(_, b)| b).sum();
        let evicted = s.evict_planned(heavy, &doomed, left);
        assert_eq!(evicted, count as u64);
        assert!(left < before);
        assert_eq!(left, s.occupancy()[heavy]);
        assert_eq!(s.pressure_evicted(), evicted);
    }

    #[test]
    fn switching_keeps_cache_and_totals() {
        let spec = spec();
        let cfg = SimConfig::default();
        let mut s = TenantSession::new(0, &spec, SelectorKind::Net, &cfg, 8);
        s.run_epoch(3000);
        let insts = s.total_insts();
        let cached = s.sim.cache().len();
        s.switch_selector(SelectorKind::Lei, &cfg);
        assert_eq!(s.kind(), SelectorKind::Lei);
        assert_eq!(s.total_insts(), insts);
        assert_eq!(s.sim.cache().len(), cached, "regions survive the switch");
        s.run_epoch(3000);
        assert!(s.total_insts() > insts, "the new selector keeps serving");
    }
}
